//! Watching the weather: the Network Weather Service observing a host
//! whose load regime changes, with the adaptive selector switching
//! predictors as the signal character shifts.
//!
//! ```sh
//! cargo run --example nws_forecast_demo
//! ```

use metasim::host::HostSpec;
use metasim::load::LoadModel;
use metasim::net::{LinkSpec, TopologyBuilder};
use metasim::{HostId, SimTime};
use nws::{ResourceKey, WeatherService, WeatherServiceConfig};

fn main() {
    // A host that idles for 30 min, then a noisy user session starts,
    // then the machine goes quiet again.
    let mut b = TopologyBuilder::new();
    let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::ZERO));
    b.add_host(HostSpec::workstation(
        "watched",
        25.0,
        128.0,
        seg,
        LoadModel::Trace(vec![
            (SimTime::ZERO, 0.95),
            (SimTime::from_secs(1800), 0.3),
            (SimTime::from_secs(1860), 0.5),
            (SimTime::from_secs(1920), 0.25),
            (SimTime::from_secs(1980), 0.45),
            (SimTime::from_secs(2040), 0.3),
            (SimTime::from_secs(3600), 0.9),
        ]),
    ));
    let topo = b
        .instantiate(SimTime::from_secs(10_000), 0)
        .expect("topology");

    let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
    let key = ResourceKey::Cpu(HostId(0));

    println!("time     measured  forecast  err     predictor");
    println!("------------------------------------------------------");
    for minute in (5..=90).step_by(5) {
        let now = SimTime::from_secs(minute * 60);
        ws.advance(&topo, now);
        let current = ws.current(key).expect("measurement");
        let f = ws.forecast(key).expect("forecast");
        println!(
            "{:>4} min    {:>6.2}    {:>6.2}  {:>6.3}  {}",
            minute, current, f.value, f.error, f.method
        );
    }
    println!(
        "\nThe selector leans on long averages while the host is quiet,\n\
         and shifts toward reactive predictors when the session starts."
    );
}
