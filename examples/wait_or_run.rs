//! The §3.2 wait-or-run-now decision: is it worth queueing for a
//! dedicated partition, or should the application run immediately on
//! the loaded workstations?
//!
//! ```sh
//! cargo run --example wait_or_run
//! ```

use apples::advisor::advise;
use apples::hat::jacobi2d_hat;
use apples::info::{ForecastSource, InfoPool};
use apples::user::UserSpec;
use metasim::host::{HostSpec, SharingPolicy};
use metasim::load::LoadModel;
use metasim::net::{LinkSpec, TopologyBuilder};
use metasim::{HostId, SimTime};

fn main() {
    // Two dedicated nodes behind a batch queue, two loaded
    // workstations available right now.
    let queue_waits = [60.0, 900.0, 7200.0];
    println!("Wait for the dedicated partition, or run now on shared nodes?\n");
    println!("application: Jacobi2D 1200x1200, 800 iterations");
    println!("dedicated:   2 x 40 Mflop/s (full speed once acquired)");
    println!("shared:      2 x 40 Mflop/s at ~35% availability, no wait\n");

    for wait in queue_waits {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 20.0, SimTime::from_micros(200)));
        for i in 0..2 {
            let mut spec = HostSpec::dedicated(&format!("batch-{i}"), 40.0, 1024.0, seg);
            spec.sharing = SharingPolicy::SpaceShared {
                wait: SimTime::from_secs_f64(wait),
            };
            b.add_host(spec);
        }
        for i in 0..2 {
            b.add_host(HostSpec::workstation(
                &format!("shared-{i}"),
                40.0,
                1024.0,
                seg,
                LoadModel::Constant(0.35),
            ));
        }
        let topo = b
            .instantiate(SimTime::from_secs(1_000_000), 0)
            .expect("topology");

        let hat = jacobi2d_hat(1200, 800);
        let user = UserSpec::default();
        let mut pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        pool.source = ForecastSource::Oracle;

        let advice = advise(
            &pool,
            &[vec![HostId(0), HostId(1)], vec![HostId(2), HostId(3)]],
        )
        .expect("advice");
        let chosen = advice.chosen();
        let verdict = if chosen.wait_seconds > 0.0 {
            "WAIT for dedicated"
        } else {
            "RUN NOW on shared"
        };
        println!(
            "queue wait {:>5.0} s  ->  {verdict:<20} (predicted completion {:>7.1} s)",
            wait, chosen.completion_seconds
        );
        for o in &advice.options {
            println!(
                "    option: wait {:>5.0} s, complete in {:>8.1} s",
                o.wait_seconds, o.completion_seconds
            );
        }
    }
    println!(
        "\n§3.2: \"estimating the sum of the wait time and the dedicated time\n\
         and comparing it with a prediction of the slowdown the application\n\
         will experience on non-dedicated resources\" — mechanized."
    );
}
