//! A multi-tenant job stream on the shared testbed: Poisson arrivals
//! over a mix of Jacobi solves, pipelines and event farms, each job
//! scheduled by its own selfish AppLeS agent against the live system
//! state — earlier jobs' imposed load is what later agents' NWS
//! sensors observe (§3).
//!
//! ```sh
//! cargo run --release --example grid_stream
//! ```

use apples_grid::workload::{ArrivalProcess, JobMix, WorkloadConfig};
use apples_grid::{run, GridConfig, Regime};
use metasim::SimTime;

fn main() {
    let workload = WorkloadConfig {
        arrivals: ArrivalProcess::Poisson { rate_hz: 0.015 },
        mix: JobMix::default_mix(),
        duration: SimTime::from_secs(2400),
        seed: 42,
        ..WorkloadConfig::default()
    };

    // Same stream, two information regimes: agents that observe the
    // live (contended) system vs agents deciding from one pristine
    // pre-stream snapshot.
    for regime in [Regime::Blind, Regime::Aware] {
        let cfg = GridConfig {
            seed: 42,
            regime,
            ..GridConfig::default()
        };
        let out = run(&cfg, &workload).expect("job stream");
        let f = &out.fleet;
        println!(
            "{:?}: {} jobs, mean exec {:.1} s, p95 latency {:.1} s",
            regime, f.jobs, f.mean_exec_seconds, f.latency_p95
        );
        for r in out.records.iter().take(6) {
            println!(
                "  job {:>2} {:>10} submit {:>6.0}s exec {:>8.1}s on [{}]",
                r.id,
                r.kind,
                r.submit.as_secs_f64(),
                r.exec_seconds,
                r.hosts.join(", ")
            );
        }
        if out.records.len() > 6 {
            println!("  ... {} more", out.records.len() - 6);
        }
        println!();
    }
    println!(
        "No agent coordinates with any other; any aware-regime advantage\n\
         is purely from observation — applications experience each other\n\
         only through \"the dynamically varying performance capability\n\
         of metacomputing system resources\" (§3)."
    );
}
