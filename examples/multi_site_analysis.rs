//! Multi-site event analysis: the CLEO data set is too large for one
//! storage server (§2.1), so events live on two sites and the compute
//! pool must be split between them so both shares finish together.
//!
//! ```sh
//! cargo run --release --example multi_site_analysis
//! ```

use apples::info::InfoPool;
use apples::user::UserSpec;
use apples_apps::nile::{cleo_analysis_hat, plan_multi_site, run_multi_site};
use metasim::host::HostSpec;
use metasim::net::{LinkSpec, TopologyBuilder};
use metasim::SimTime;

fn main() {
    // Two storage sites joined by a campus backbone; five compute
    // hosts of mixed speed.
    let mut b = TopologyBuilder::new();
    let lan_a = b.add_segment(LinkSpec::dedicated(
        "site-a",
        12.5,
        SimTime::from_micros(500),
    ));
    let lan_b = b.add_segment(LinkSpec::dedicated(
        "site-b",
        12.5,
        SimTime::from_micros(500),
    ));
    b.connect(
        lan_a,
        lan_b,
        LinkSpec::dedicated("backbone", 5.0, SimTime::from_millis(2)),
    );
    let store_a = b.add_host(HostSpec::dedicated("store-a", 20.0, 4096.0, lan_a));
    let store_b = b.add_host(HostSpec::dedicated("store-b", 20.0, 4096.0, lan_b));
    let mut compute = Vec::new();
    for (name, speed, seg) in [
        ("alpha-0", 40.0, lan_a),
        ("alpha-1", 40.0, lan_a),
        ("alpha-2", 40.0, lan_b),
        ("ws-0", 20.0, lan_b),
        ("ws-1", 10.0, lan_b),
    ] {
        compute.push(b.add_host(HostSpec::dedicated(name, speed, 512.0, seg)));
    }
    let topo = b
        .instantiate(SimTime::from_secs(1_000_000), 3)
        .expect("topology");

    // 70% of the events live at site A.
    let events = 200_000u64;
    let sites = [(store_a, 140_000u64), (store_b, 60_000u64)];
    let hat = cleo_analysis_hat(events);
    let user = UserSpec::default();
    let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);

    let plan = plan_multi_site(&pool, &compute, &sites, store_a).expect("plan");
    println!("Multi-site CLEO analysis: {events} events across two stores\n");
    for (sched, &(store, share)) in plan.per_site.iter().zip(&sites) {
        let store_name = &topo.host(store).expect("host").spec.name;
        println!("{store_name} ({share} events):");
        for &(h, e) in &sched.assignments {
            let name = &topo.host(h).expect("host").spec.name;
            println!("  {name:>8}: {e} events");
        }
    }
    let measured = run_multi_site(&topo, &hat, &plan, SimTime::ZERO).expect("run");
    println!(
        "\npredicted {:.1} s, measured {:.1} s (slowest site)",
        plan.predicted_seconds, measured
    );
    println!(
        "\nThe compute pool splits ~70/30 with the data, so neither site\n\
         becomes the straggler — \"movement of data is expensive and often\n\
         neither desirable nor feasible\" (§2.1), so compute follows data."
    );
}
