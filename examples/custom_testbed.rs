//! Building your own metacomputing system: a custom topology with one
//! host driven by a *recorded* load trace (the CSV format of
//! `metasim::tracefile`), scheduled by an AppLeS agent, with a
//! per-worker utilization timeline of the run.
//!
//! ```sh
//! cargo run --example custom_testbed
//! ```

use apples::hat::jacobi2d_hat;
use apples::user::UserSpec;
use apples::{Coordinator, Schedule};
use metasim::exec::simulate_spmd;
use metasim::host::HostSpec;
use metasim::load::LoadModel;
use metasim::net::{LinkSpec, TopologyBuilder};
use metasim::trace::render_timeline;
use metasim::tracefile::load_model_from_trace;
use metasim::SimTime;
use nws::{WeatherService, WeatherServiceConfig};

/// A recorded availability trace — in practice read from a file with
/// `std::fs::read_to_string("host.trace")`.
const RECORDED_TRACE: &str = "\
# availability of the shared visualization server, afternoon sample
0,0.92
600,0.85
1200,0.30
1500,0.22
2100,0.45
2700,0.88
3600,0.95
";

fn main() {
    // Two lab machines plus the trace-driven shared server.
    let mut b = TopologyBuilder::new();
    let lan = b.add_segment(LinkSpec::dedicated("lan", 12.5, SimTime::from_micros(400)));
    b.add_host(HostSpec::dedicated("node-a", 25.0, 512.0, lan));
    b.add_host(HostSpec::dedicated("node-b", 25.0, 512.0, lan));
    let recorded = load_model_from_trace(RECORDED_TRACE).expect("trace parses");
    b.add_host(HostSpec {
        name: "shared-server".into(),
        mflops: 60.0,
        mem_mb: 1024.0,
        sharing: metasim::host::SharingPolicy::TimeShared,
        paging_slowdown: 50.0,
        segment: lan,
        load: recorded,
    });
    // An always-idle control for comparison.
    b.add_host(HostSpec::workstation(
        "night-owl",
        25.0,
        512.0,
        lan,
        LoadModel::Constant(0.97),
    ));
    let topo = b
        .instantiate(SimTime::from_secs(100_000), 7)
        .expect("topology");

    // Schedule at t = 1500 s — right in the recorded trace's busy dip.
    let now = SimTime::from_secs(1500);
    let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
    ws.advance(&topo, now);

    let hat = jacobi2d_hat(1200, 80);
    let agent = Coordinator::new(hat.clone(), UserSpec::default());
    let (decision, _) = agent.run(&topo, &ws, now).expect("schedule");

    println!("Custom testbed with a trace-driven host (decision at t = 1500 s,");
    println!("while the recorded trace shows the shared server at ~22%):\n");
    let Schedule::Stencil(sched) = decision.schedule() else {
        panic!("stencil expected")
    };
    let labels: Vec<String> = sched
        .parts
        .iter()
        .map(|p| topo.host(p.host).expect("host").spec.name.clone())
        .collect();
    for (p, label) in sched.parts.iter().zip(&labels) {
        println!(
            "  {label:>14}: {:>4} rows ({:.1}%)",
            p.rows,
            p.rows as f64 / sched.n as f64 * 100.0
        );
    }

    let t = hat.as_stencil().expect("stencil");
    let outcome = simulate_spmd(&topo, &sched.to_spmd_job(t, now)).expect("run");
    println!(
        "\nexecution: {:.2} s; per-worker utilization:\n",
        outcome.makespan(now).as_secs_f64()
    );
    print!(
        "{}",
        render_timeline(&outcome, &labels, 40).expect("one label per worker")
    );
    println!(
        "\nThe nominally fastest machine (60 Mflop/s shared server) gets a\n\
         modest strip because the *recorded* trace says it is busy now —\n\
         swap in your own `host.trace` to replay measured conditions."
    );
}
