//! The §5 scenario end-to-end: Jacobi2D on the SDSC/PCL testbed of
//! Figure 2, comparing the AppLeS partition against the static
//! non-uniform Strip and HPF Uniform/Blocked partitions back-to-back
//! under the same load realization — and verifying on the *real*
//! numeric kernel that partitioning never changes results.
//!
//! ```sh
//! cargo run --release --example jacobi2d_scheduling
//! ```

use apples::info::InfoPool;
use apples_apps::jacobi2d::partition::jacobi_context;
use apples_apps::jacobi2d::{
    apples_stencil_schedule, blocked_uniform, static_strip, Grid, PartitionedRun,
};
use metasim::exec::simulate_spmd;
use metasim::testbed::{pcl_sdsc, TestbedConfig};
use metasim::SimTime;
use nws::{WeatherService, WeatherServiceConfig};

fn main() {
    let n = 1600;
    let iterations = 60;
    let tb = pcl_sdsc(&TestbedConfig::default()).expect("testbed");
    let (hat, user) = jacobi_context(n, iterations);
    let t = hat.as_stencil().expect("stencil");

    let mut weather = WeatherService::for_topology(&tb.topo, WeatherServiceConfig::default());
    let now = SimTime::from_secs(600);
    weather.advance(&tb.topo, now);

    println!("Jacobi2D {n}x{n}, {iterations} iterations on the Figure 2 testbed\n");

    // -- AppLeS --
    let pool = InfoPool::with_nws(&tb.topo, &weather, &hat, &user, now);
    let apples = apples_stencil_schedule(&pool).expect("apples plan");
    let apples_run = simulate_spmd(&tb.topo, &apples.to_spmd_job(t, now)).expect("run");
    println!("AppLeS partition:");
    for p in &apples.parts {
        let h = tb.topo.host(p.host).expect("host");
        println!(
            "  {:>14}: {:>4} rows ({:.1}%)",
            h.spec.name,
            p.rows,
            p.rows as f64 / n as f64 * 100.0
        );
    }
    println!(
        "  execution: {:.2} s\n",
        apples_run.makespan(now).as_secs_f64()
    );

    // -- static strip --
    let strip = static_strip(&tb.topo, n, iterations, &tb.workstations());
    let strip_run = simulate_spmd(&tb.topo, &strip.to_spmd_job(t, now)).expect("run");
    println!(
        "static Strip partition (nominal speeds): {:.2} s",
        strip_run.makespan(now).as_secs_f64()
    );

    // -- blocked --
    let blocked = blocked_uniform(n, iterations, &tb.workstations());
    let blocked_run = simulate_spmd(&tb.topo, &blocked.to_spmd_job(t, now)).expect("run");
    println!(
        "HPF Uniform/Blocked partition:           {:.2} s",
        blocked_run.makespan(now).as_secs_f64()
    );
    println!(
        "\nAppLeS speedup: {:.2}x over Strip, {:.2}x over Blocked",
        strip_run.makespan(now).as_secs_f64() / apples_run.makespan(now).as_secs_f64(),
        blocked_run.makespan(now).as_secs_f64() / apples_run.makespan(now).as_secs_f64()
    );

    // -- numeric correctness of the chosen partition --
    // Run the real kernel (small grid, same strip *proportions*) both
    // sequentially and strip-partitioned: results must match exactly.
    let small_n = 200;
    let mut seq = Grid::new(small_n, |r, _| if r == 0 { 100.0 } else { 0.0 });
    let fracs = apples.fractions();
    let mut strip_rows: Vec<usize> = fracs
        .iter()
        .map(|f| ((small_n as f64) * f).round().max(1.0) as usize)
        .collect();
    let total: usize = strip_rows.iter().sum();
    *strip_rows.last_mut().expect("strips") =
        (strip_rows.last().expect("strips") + small_n) - total;
    let mut par = PartitionedRun::new(&seq, &strip_rows);
    seq.run(50);
    par.run(50);
    assert_eq!(seq.data(), par.assemble().as_slice());
    println!(
        "\nnumeric check: partitioned kernel ({} strips) matches the\n\
         sequential solver bit-for-bit after 50 sweeps ✓",
        strip_rows.len()
    );
}
