//! The §2.1 scenario: CLEO/NILE distributed event analysis. A
//! physicist's analysis campaign re-runs over the same event selection
//! while the Site Manager decides between remote access to the
//! experiment's storage and skimming a private local data set.
//!
//! ```sh
//! cargo run --release --example nile_analysis
//! ```

use apples::info::InfoPool;
use apples::user::UserSpec;
use apples_apps::nile::{cleo_analysis_hat, SiteManager};
use apples_bench::nile_exp::nile_testbed;
use metasim::SimTime;

fn main() {
    let events = 150_000u64;
    let tb = nile_testbed(7);
    let hat = cleo_analysis_hat(events);
    let user = UserSpec::default();
    let pool = InfoPool::static_nominal(&tb.topo, &hat, &user, SimTime::ZERO);

    println!("CLEO/NILE event analysis: {events} events, compute on the Alpha farm\n");
    for runs in [1usize, 4, 16] {
        let sm = SiteManager {
            runs,
            skim_mb_factor: 3.0,
        };
        let plan = sm
            .plan_campaign(&pool, &tb.compute, tb.server, tb.local_site)
            .expect("plan");
        let measured = sm
            .run_campaign(
                &tb.topo,
                &hat,
                &plan,
                tb.server,
                tb.local_site,
                SimTime::ZERO,
            )
            .expect("run");
        println!(
            "{runs:>2} run(s): Site Manager chose {:<6} — predicted {:>9.1} s \
             (alt {:>9.1} s), measured {:>9.1} s",
            if plan.skim { "SKIM" } else { "REMOTE" },
            plan.predicted_seconds,
            plan.predicted_alternative_seconds,
            measured
        );
        print!("          events/host:");
        for &(h, e) in &plan.per_run.assignments {
            let name = &tb.topo.host(h).expect("host").spec.name;
            print!(" {name}={e}");
        }
        println!("\n");
    }
    println!(
        "\"The cost of skimming is compared with a prediction of the\n\
         reduction in cost of event analysis when the data is local.\" (§2.1)"
    );
}
