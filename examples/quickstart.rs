//! Quickstart: schedule an application with an AppLeS agent.
//!
//! Builds a tiny two-site metacomputing system, lets the Network
//! Weather Service watch it for ten simulated minutes, then asks an
//! AppLeS agent to schedule a Jacobi2D run — the full
//! select → plan → estimate → actuate blueprint — and prints what the
//! agent decided and how the run actually went.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use apples::hat::jacobi2d_hat;
use apples::user::UserSpec;
use apples::Coordinator;
use metasim::host::HostSpec;
use metasim::load::LoadModel;
use metasim::net::{LinkSpec, TopologyBuilder};
use metasim::SimTime;
use nws::{WeatherService, WeatherServiceConfig};

fn main() {
    // 1. Describe the system: two lab workstations on a shared
    //    Ethernet, one of them busy, plus a fast machine across a
    //    gateway.
    let mut b = TopologyBuilder::new();
    let lab = b.add_segment(LinkSpec::dedicated(
        "lab-ethernet",
        1.25,
        SimTime::from_millis(1),
    ));
    let remote = b.add_segment(LinkSpec::dedicated(
        "remote-fddi",
        12.5,
        SimTime::from_micros(500),
    ));
    let gw = b.add_link(LinkSpec::dedicated("gateway", 0.9, SimTime::from_millis(3)));
    b.add_route(lab, remote, vec![gw])
        .expect("fresh builder accepts the gateway route");

    b.add_host(HostSpec::workstation(
        "lab-idle",
        20.0,
        128.0,
        lab,
        LoadModel::Constant(0.9),
    ));
    b.add_host(HostSpec::workstation(
        "lab-busy",
        20.0,
        128.0,
        lab,
        LoadModel::MarkovOnOff {
            idle_avail: 0.9,
            busy_avail: 0.15,
            mean_idle: SimTime::from_secs(30),
            mean_busy: SimTime::from_secs(60),
        },
    ));
    b.add_host(HostSpec::workstation(
        "remote-alpha",
        40.0,
        256.0,
        remote,
        LoadModel::Constant(0.7),
    ));
    let topo = b
        .instantiate(SimTime::from_secs(100_000), 42)
        .expect("topology");

    // 2. Let the Weather Service observe for ten minutes.
    let mut weather = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
    let now = SimTime::from_secs(600);
    weather.advance(&topo, now);

    // 3. Describe the application (HAT) and the user (US).
    let hat = jacobi2d_hat(800, 50); // 800x800 grid, 50 iterations
    let user = UserSpec::default();

    // 4. Run the agent: decide and actuate.
    let agent = Coordinator::new(hat, user);
    let (decision, report) = agent.run(&topo, &weather, now).expect("schedule");

    println!("AppLeS quickstart — Jacobi2D 800x800, 50 iterations\n");
    println!(
        "candidates considered: {} (rejected {})",
        decision.considered.len(),
        decision.rejected
    );
    let chosen = decision.chosen();
    println!(
        "chosen resource set:   {} host(s), predicted {:.2} s",
        chosen.hosts.len(),
        chosen.predicted_seconds
    );
    if let apples::Schedule::Stencil(s) = decision.schedule() {
        for p in &s.parts {
            let h = topo.host(p.host).expect("host");
            println!(
                "  {:>14}: {:>4} rows ({:.1}%)",
                h.spec.name,
                p.rows,
                p.rows as f64 / s.n as f64 * 100.0
            );
        }
    }
    println!("\nactuated execution:    {:.2} s", report.elapsed_seconds);
    println!(
        "prediction error:      {:+.1}%",
        (chosen.predicted_seconds / report.elapsed_seconds - 1.0) * 100.0
    );
}
