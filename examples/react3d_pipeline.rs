//! The §2.2–2.3 scenario: 3D-REACT on the CASA testbed — LHSF on the
//! SDSC C90 feeding Log-D/ASY on the CalTech Paragon over HiPPI-SONET,
//! with the pipeline-size tradeoff the developers solved analytically.
//!
//! ```sh
//! cargo run --release --example react3d_pipeline
//! ```

use apples_apps::react3d::{casa_testbed, distributed_run, single_site_run, sweep_pipeline_sizes};
use metasim::SimTime;

fn main() {
    const HOUR: f64 = 3600.0;
    let tb = casa_testbed(0).expect("casa testbed");

    println!("3D-REACT: H + D2 => HD + D quantum reactive scattering\n");

    let c90 = single_site_run(&tb, tb.c90).expect("c90").as_secs_f64() / HOUR;
    let paragon = single_site_run(&tb, tb.paragon)
        .expect("paragon")
        .as_secs_f64()
        / HOUR;
    println!("single-site C90 (pages: both tasks exceed memory): {c90:>6.2} h");
    println!("single-site Paragon (LHSF barely parallelizes):    {paragon:>6.2} h\n");

    println!("pipeline-size sweep (LHSF on C90 -> Log-D/ASY on Paragon):");
    let sweep = sweep_pipeline_sizes(&tb, &[1, 2, 5, 10, 20, 40, 130, 520], 4).expect("sweep");
    let best = sweep
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("sweep");
    for &(u, secs) in &sweep {
        println!(
            "  {:>4} SF/subdomain: {:>6.2} h{}",
            u,
            secs / HOUR,
            if u == best.0 { "   <- best" } else { "" }
        );
    }

    let run = distributed_run(&tb, best.0, 4).expect("run");
    println!(
        "\ndistributed makespan: {:.2} h (speedup {:.1}x over the best single site)",
        run.makespan(SimTime::ZERO).as_secs_f64() / HOUR,
        c90.min(paragon) / (run.makespan(SimTime::ZERO).as_secs_f64() / HOUR)
    );
    println!(
        "consumer stalled {:.0} s waiting for data; producer blocked {:.0} s on\n\
         the pipeline-depth bound — the §2.3 tradeoff in the flesh.",
        run.consumer_stall_seconds, run.producer_block_seconds
    );
}
