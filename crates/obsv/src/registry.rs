//! Deterministic metrics registry: counters, gauges and fixed-boundary
//! histograms.
//!
//! Determinism is the point. Prometheus client libraries lean on
//! wall-clock timestamps and hash-map iteration; here both are banned.
//! Families and series live in [`BTreeMap`]s keyed by name and by a
//! canonical (sorted) label rendering, so two runs of the same seeded
//! scenario produce byte-identical expositions — which is what lets CI
//! diff two snapshots as a regression gate.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Nearest-rank percentile over raw samples.
///
/// `p` is in percent and is clamped to `[0, 100]`; NaN samples are
/// dropped before ranking; an empty (or empty-after-filter) slice
/// yields `0.0`, never NaN. This is the one sample-percentile
/// implementation in the workspace — `apples_grid::metrics` re-exports
/// it, and [`Histogram::quantile`] is its bucketed counterpart.
pub fn percentile(samples: &[f64], p: f64) -> f64 {
    let mut sorted: Vec<f64> = samples.iter().copied().filter(|x| !x.is_nan()).collect();
    if sorted.is_empty() {
        return 0.0;
    }
    sorted.sort_by(|a, b| a.total_cmp(b));
    let p = p.clamp(0.0, 100.0);
    let rank = ((p / 100.0) * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

/// A fixed-boundary histogram with exact bucket counts.
///
/// Boundaries are inclusive upper bounds (`le`), strictly increasing;
/// everything above the last boundary lands in the implicit `+Inf`
/// bucket. Quantiles interpolate linearly inside the winning bucket
/// (the Prometheus `histogram_quantile` rule) and are clamped to the
/// observed `[min, max]`, so they are exact at the resolution of the
/// bucket grid and never extrapolate.
#[derive(Debug, Clone, PartialEq)]
pub struct Histogram {
    boundaries: Vec<f64>,
    counts: Vec<u64>,
    sum: f64,
    count: u64,
    min: f64,
    max: f64,
    /// NaN observations dropped (NaN belongs to no bucket).
    pub nan_dropped: u64,
}

impl Histogram {
    /// Build a histogram from explicit upper bounds. Non-finite bounds
    /// are dropped and the rest sorted and deduplicated, so the result
    /// is always well-formed.
    pub fn with_boundaries(mut boundaries: Vec<f64>) -> Histogram {
        boundaries.retain(|b| b.is_finite());
        boundaries.sort_by(|a, b| a.total_cmp(b));
        boundaries.dedup();
        let buckets = boundaries.len() + 1;
        Histogram {
            boundaries,
            counts: vec![0; buckets],
            sum: 0.0,
            count: 0,
            min: 0.0,
            max: 0.0,
            nan_dropped: 0,
        }
    }

    /// Log-spaced boundaries from `lo` to at least `hi` with
    /// `per_decade` buckets per factor of ten, preceded by an explicit
    /// zero boundary. The workhorse grid for simulated durations, which
    /// span micro-seconds to days.
    ///
    /// The zero boundary gives exactly-zero observations (instant
    /// events: cache hits, zero-wait dispatches) their own bucket
    /// instead of collapsing them into `(-inf, lo]` with every sub-`lo`
    /// duration — without it, quantiles of fast-event distributions
    /// interpolate across a bucket whose population is mostly zeros and
    /// clamp to the floor.
    pub fn log_spaced(lo: f64, hi: f64, per_decade: usize) -> Histogram {
        let lo = if lo.is_finite() && lo > 0.0 { lo } else { 1e-6 };
        let hi = if hi.is_finite() && hi > lo {
            hi
        } else {
            lo * 1e6
        };
        let per_decade = per_decade.max(1);
        let mut bounds = vec![0.0];
        let mut i = 0u32;
        loop {
            let b = lo * 10f64.powf(f64::from(i) / per_decade as f64);
            bounds.push(b);
            if b >= hi || bounds.len() > 512 {
                break;
            }
            i += 1;
        }
        Histogram::with_boundaries(bounds)
    }

    /// Record one observation. NaN is counted in
    /// [`Histogram::nan_dropped`] and otherwise ignored.
    pub fn observe(&mut self, v: f64) {
        if v.is_nan() {
            self.nan_dropped += 1;
            return;
        }
        let idx = self
            .boundaries
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.boundaries.len());
        self.counts[idx] += 1;
        self.sum += v;
        if self.count == 0 {
            self.min = v;
            self.max = v;
        } else {
            if v.total_cmp(&self.min).is_lt() {
                self.min = v;
            }
            if v.total_cmp(&self.max).is_gt() {
                self.max = v;
            }
        }
        self.count += 1;
    }

    /// Total observations (NaN excluded).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all observations.
    pub fn sum(&self) -> f64 {
        self.sum
    }

    /// Smallest observation, `0.0` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation, `0.0` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Upper bounds of the finite buckets.
    pub fn boundaries(&self) -> &[f64] {
        &self.boundaries
    }

    /// Per-bucket counts; the final entry is the `+Inf` bucket.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Quantile `q` in `[0, 1]` (clamped), linearly interpolated within
    /// the winning bucket and clamped to the observed range. Empty
    /// histograms yield `0.0`.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = if q.is_nan() { 0.0 } else { q.clamp(0.0, 1.0) };
        if q.total_cmp(&0.0).is_eq() {
            return self.min;
        }
        let rank = (q * self.count as f64).max(1.0);
        let mut cum_prev = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            let cum = cum_prev + n;
            if (cum as f64).total_cmp(&rank).is_ge() && n > 0 {
                // The +Inf bucket has no upper bound to interpolate
                // toward; the observed max is the honest answer.
                let Some(hi) = self.boundaries.get(i).copied() else {
                    return self.max;
                };
                let frac = (rank - cum_prev as f64) / n as f64;
                let lo = if i == 0 {
                    self.min.min(hi)
                } else {
                    self.boundaries[i - 1]
                };
                let v = lo + frac * (hi - lo);
                return v.clamp(self.min, self.max);
            }
            cum_prev = cum;
        }
        self.max
    }

    /// Median from buckets.
    pub fn p50(&self) -> f64 {
        self.quantile(0.50)
    }

    /// 95th percentile from buckets.
    pub fn p95(&self) -> f64 {
        self.quantile(0.95)
    }

    /// 99th percentile from buckets.
    pub fn p99(&self) -> f64 {
        self.quantile(0.99)
    }
}

/// What a metric family holds.
#[derive(Debug, Clone, PartialEq)]
enum Value {
    Counter(f64),
    Gauge(f64),
    Hist(Histogram),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Counter,
    Gauge,
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Family {
    kind: Kind,
    help: String,
    /// Default boundaries for new histogram series of this family.
    boundaries: Vec<f64>,
    /// Canonical label rendering → series value.
    series: BTreeMap<String, Value>,
}

/// Render labels canonically: sorted by key, `{k="v",…}`, empty string
/// for no labels. One rendering per label set means series identity is
/// deterministic.
fn label_key(labels: &[(&str, &str)]) -> String {
    if labels.is_empty() {
        return String::new();
    }
    let mut pairs: Vec<(&str, &str)> = labels.to_vec();
    pairs.sort();
    let mut out = String::from("{");
    for (i, (k, v)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{k}=\"{}\"",
            v.replace('\\', "\\\\").replace('"', "\\\"")
        );
    }
    out.push('}');
    out
}

/// The registry: named metric families, each holding labeled series.
///
/// All mutation goes through value-type-specific methods; a name
/// registered as one kind silently ignores writes of another kind
/// rather than panicking (the registry is observability plumbing — it
/// must never take the simulation down).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Registry {
    families: BTreeMap<String, Family>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn family(&mut self, name: &str, kind: Kind, help: &str, boundaries: &[f64]) -> &mut Family {
        self.families
            .entry(name.to_string())
            .or_insert_with(|| Family {
                kind,
                help: help.to_string(),
                boundaries: boundaries.to_vec(),
                series: BTreeMap::new(),
            })
    }

    /// Pre-register a counter family with help text.
    pub fn describe_counter(&mut self, name: &str, help: &str) {
        self.family(name, Kind::Counter, help, &[]);
    }

    /// Pre-register a gauge family with help text.
    pub fn describe_gauge(&mut self, name: &str, help: &str) {
        self.family(name, Kind::Gauge, help, &[]);
    }

    /// Pre-register a histogram family with help text and bucket
    /// boundaries shared by every series of the family.
    pub fn describe_histogram(&mut self, name: &str, help: &str, boundaries: &[f64]) {
        self.family(name, Kind::Histogram, help, boundaries);
    }

    /// Add `by` to a counter series (auto-registered on first touch).
    /// Negative and non-finite increments are ignored — counters only
    /// go up.
    pub fn inc(&mut self, name: &str, labels: &[(&str, &str)], by: f64) {
        if !by.is_finite() || by.total_cmp(&0.0).is_lt() {
            return;
        }
        let key = label_key(labels);
        let fam = self.family(name, Kind::Counter, "", &[]);
        if fam.kind != Kind::Counter {
            return;
        }
        if let Value::Counter(v) = fam.series.entry(key).or_insert(Value::Counter(0.0)) {
            *v += by;
        }
    }

    /// Set a gauge series to `v` (auto-registered on first touch).
    pub fn set(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let key = label_key(labels);
        let fam = self.family(name, Kind::Gauge, "", &[]);
        if fam.kind != Kind::Gauge {
            return;
        }
        fam.series.insert(key, Value::Gauge(v));
    }

    /// Add `delta` (may be negative) to a gauge series.
    pub fn add(&mut self, name: &str, labels: &[(&str, &str)], delta: f64) {
        let key = label_key(labels);
        let fam = self.family(name, Kind::Gauge, "", &[]);
        if fam.kind != Kind::Gauge {
            return;
        }
        if let Value::Gauge(v) = fam.series.entry(key).or_insert(Value::Gauge(0.0)) {
            *v += delta;
        }
    }

    /// Record an observation into a histogram series. Undescribed
    /// families get default log-spaced duration buckets (1 ms–10 ks).
    pub fn observe(&mut self, name: &str, labels: &[(&str, &str)], v: f64) {
        let key = label_key(labels);
        let fam = if let Some(f) = self.families.get_mut(name) {
            f
        } else {
            let bounds = Histogram::log_spaced(1e-3, 1e4, 3);
            let bounds = bounds.boundaries().to_vec();
            self.family(name, Kind::Histogram, "", &bounds)
        };
        if fam.kind != Kind::Histogram {
            return;
        }
        let bounds = fam.boundaries.clone();
        if let Value::Hist(h) = fam
            .series
            .entry(key)
            .or_insert_with(|| Value::Hist(Histogram::with_boundaries(bounds)))
        {
            h.observe(v);
        }
    }

    /// Current value of a counter series, if it exists.
    pub fn counter_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.families.get(name)?.series.get(&label_key(labels))? {
            Value::Counter(v) => Some(*v),
            _ => None,
        }
    }

    /// Current value of a gauge series, if it exists.
    pub fn gauge_value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        match self.families.get(name)?.series.get(&label_key(labels))? {
            Value::Gauge(v) => Some(*v),
            _ => None,
        }
    }

    /// A histogram series, if it exists.
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Option<&Histogram> {
        match self.families.get(name)?.series.get(&label_key(labels))? {
            Value::Hist(h) => Some(h),
            _ => None,
        }
    }

    /// Number of registered families.
    pub fn len(&self) -> usize {
        self.families.len()
    }

    /// Whether no family is registered.
    pub fn is_empty(&self) -> bool {
        self.families.is_empty()
    }

    /// Render the registry in the Prometheus text exposition format:
    /// `# HELP` / `# TYPE` headers, one line per series, histogram
    /// series expanded into cumulative `_bucket{le=…}` plus `_sum` and
    /// `_count`. Output is byte-deterministic: families alphabetical,
    /// series in canonical label order, floats in shortest round-trip
    /// form, no timestamps.
    pub fn expose(&self) -> String {
        let mut out = String::new();
        for (name, fam) in &self.families {
            if !fam.help.is_empty() {
                let _ = writeln!(out, "# HELP {name} {}", fam.help);
            }
            let _ = writeln!(out, "# TYPE {name} {}", fam.kind.as_str());
            for (labels, value) in &fam.series {
                match value {
                    Value::Counter(v) | Value::Gauge(v) => {
                        let _ = writeln!(out, "{name}{labels} {}", fmt_value(*v));
                    }
                    Value::Hist(h) => {
                        let le_labels = |le: &str| -> String {
                            if labels.is_empty() {
                                format!("{{le=\"{le}\"}}")
                            } else {
                                format!("{},le=\"{le}\"}}", &labels[..labels.len() - 1])
                            }
                        };
                        let mut cum = 0u64;
                        for (i, &n) in h.counts().iter().enumerate() {
                            cum += n;
                            let le = match h.boundaries().get(i) {
                                Some(b) => fmt_value(*b),
                                None => "+Inf".to_string(),
                            };
                            let _ = writeln!(out, "{name}_bucket{} {cum}", le_labels(&le));
                        }
                        let _ = writeln!(out, "{name}_sum{labels} {}", fmt_value(h.sum()));
                        let _ = writeln!(out, "{name}_count{labels} {}", h.count());
                    }
                }
            }
        }
        out
    }
}

/// Shortest round-trip float rendering; integers drop the fraction the
/// way Rust's `{}` does (`3` not `3.0`), NaN/inf spelled Prometheus
/// style.
fn fmt_value(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v.is_infinite() {
        if v.is_sign_positive() {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        }
    } else {
        format!("{v}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_edge_cases() {
        assert_eq!(percentile(&[], 50.0), 0.0);
        assert_eq!(percentile(&[f64::NAN, f64::NAN], 50.0), 0.0);
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, -10.0), 1.0); // clamped to p0
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 100.0), 4.0);
        assert_eq!(percentile(&xs, 250.0), 4.0); // clamped to p100
        assert_eq!(percentile(&xs, 50.0), 2.0);
        assert!(!percentile(&[f64::NAN], 99.0).is_nan());
    }

    #[test]
    fn histogram_counts_and_quantiles() {
        let mut h = Histogram::with_boundaries(vec![1.0, 10.0, 100.0]);
        for v in [0.5, 0.7, 5.0, 50.0, 500.0] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.counts(), &[2, 1, 1, 1]);
        assert!((h.sum() - 556.2).abs() < 1e-9);
        assert_eq!(h.min(), 0.5);
        assert_eq!(h.max(), 500.0);
        // p50 rank 2.5 lands in bucket (1,10]; interpolation stays
        // within the bucket bounds.
        let p50 = h.p50();
        assert!((1.0..=10.0).contains(&p50), "p50={p50}");
        // p99 rank ~4.95 lands in the +Inf bucket → max observed.
        assert_eq!(h.p99(), 500.0);
        assert_eq!(h.quantile(0.0), 0.5);
    }

    #[test]
    fn histogram_nan_and_empty() {
        let mut h = Histogram::with_boundaries(vec![1.0]);
        assert_eq!(h.quantile(0.5), 0.0);
        h.observe(f64::NAN);
        assert_eq!(h.count(), 0);
        assert_eq!(h.nan_dropped, 1);
        assert_eq!(h.p95(), 0.0);
    }

    #[test]
    fn log_spaced_is_monotonic() {
        let h = Histogram::log_spaced(1e-3, 1e3, 3);
        let b = h.boundaries();
        assert!(b.len() > 10);
        assert!(b.windows(2).all(|w| w[0] < w[1]));
        assert!(*b.last().unwrap() >= 1e3);
    }

    #[test]
    fn log_spaced_zero_bucket_separates_instant_events() {
        let mut h = Histogram::log_spaced(1e-3, 1e3, 3);
        assert_eq!(h.boundaries()[0], 0.0, "first boundary must be zero");
        for _ in 0..90 {
            h.observe(0.0);
        }
        for _ in 0..10 {
            h.observe(5e-4);
        }
        // Zeros get their own bucket; sub-lo positives land in (0, lo].
        assert_eq!(h.counts()[0], 90);
        assert_eq!(h.counts()[1], 10);
        // Before the fix both populations shared (-inf, lo] and the
        // median of a mostly-instant distribution interpolated up
        // toward lo; with the zero boundary it is exactly 0.
        assert_eq!(h.p50(), 0.0);
        assert!(h.p95() > 0.0);
    }

    #[test]
    fn registry_roundtrip_and_exposition() {
        let mut r = Registry::new();
        r.describe_counter("jobs_total", "Jobs seen.");
        r.inc("jobs_total", &[("outcome", "completed")], 3.0);
        r.inc("jobs_total", &[("outcome", "failed")], 1.0);
        r.inc("jobs_total", &[("outcome", "completed")], -5.0); // ignored
        r.set("depth", &[], 4.0);
        r.add("depth", &[], -1.0);
        r.describe_histogram("lat", "Latency.", &[0.1, 1.0]);
        r.observe("lat", &[], 0.05);
        r.observe("lat", &[], 0.5);
        r.observe("lat", &[], 2.0);
        assert_eq!(
            r.counter_value("jobs_total", &[("outcome", "completed")]),
            Some(3.0)
        );
        assert_eq!(r.gauge_value("depth", &[]), Some(3.0));
        assert_eq!(r.histogram("lat", &[]).unwrap().count(), 3);
        let text = r.expose();
        assert!(text.contains("# TYPE jobs_total counter"));
        assert!(text.contains("jobs_total{outcome=\"completed\"} 3"));
        assert!(text.contains("# TYPE lat histogram"));
        assert!(text.contains("lat_bucket{le=\"0.1\"} 1"));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_count 3"));
        // Exposition is deterministic.
        assert_eq!(text, r.expose());
    }

    #[test]
    fn kind_conflicts_are_ignored_not_fatal() {
        let mut r = Registry::new();
        r.inc("m", &[], 1.0);
        r.set("m", &[], 9.0); // wrong kind: ignored
        r.observe("m", &[], 9.0); // wrong kind: ignored
        assert_eq!(r.counter_value("m", &[]), Some(1.0));
    }

    #[test]
    fn label_order_is_canonical() {
        let mut r = Registry::new();
        r.inc("m", &[("b", "2"), ("a", "1")], 1.0);
        r.inc("m", &[("a", "1"), ("b", "2")], 1.0);
        assert_eq!(r.counter_value("m", &[("a", "1"), ("b", "2")]), Some(2.0));
        assert!(r.expose().contains("m{a=\"1\",b=\"2\"} 2"));
    }
}
