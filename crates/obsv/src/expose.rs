//! Snapshot handling for Prometheus text expositions: parse a snapshot
//! back into series, and diff two snapshots for regression gating.
//!
//! The writer side is [`crate::Registry::expose`]; because expositions
//! are byte-deterministic, CI can run a seeded scenario twice and
//! require an empty diff — and a *non*-empty diff against a committed
//! baseline is a reviewable description of what a change did to the
//! system's behavior.

use std::collections::BTreeMap;

/// A parsed exposition: series name (with canonical labels) → value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Series in the order-independent canonical map form.
    pub series: BTreeMap<String, f64>,
}

impl Snapshot {
    /// Parse Prometheus text format. `# HELP`/`# TYPE` and blank lines
    /// are skipped; a malformed line is skipped rather than fatal
    /// (snapshots may be hand-edited baselines).
    pub fn parse(text: &str) -> Snapshot {
        let mut series = BTreeMap::new();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            // The value is the last whitespace-separated token; the
            // series name (labels may contain spaces inside quotes)
            // is everything before it.
            let Some(split) = line.rfind(|c: char| c.is_ascii_whitespace()) else {
                continue;
            };
            let (name, value) = line.split_at(split);
            let name = name.trim_end();
            let value = value.trim_start();
            let parsed = match value {
                "+Inf" => f64::INFINITY,
                "-Inf" => f64::NEG_INFINITY,
                "NaN" => f64::NAN,
                v => match v.parse() {
                    Ok(p) => p,
                    Err(_) => continue,
                },
            };
            if !name.is_empty() {
                series.insert(name.to_string(), parsed);
            }
        }
        Snapshot { series }
    }
}

/// One differing series between two snapshots.
#[derive(Debug, Clone, PartialEq)]
pub struct SeriesDelta {
    /// Series name with labels.
    pub series: String,
    /// Value in the left snapshot (`None` if absent).
    pub left: Option<f64>,
    /// Value in the right snapshot (`None` if absent).
    pub right: Option<f64>,
}

impl SeriesDelta {
    /// `name left -> right` with `-` for an absent side.
    pub fn render(&self) -> String {
        let side = |v: Option<f64>| match v {
            Some(v) => format!("{v}"),
            None => "-".to_string(),
        };
        format!(
            "{} {} -> {}",
            self.series,
            side(self.left),
            side(self.right)
        )
    }
}

/// Compare two expositions series-by-series. Returns the differing
/// series in name order; empty means the snapshots agree. Comparison
/// uses total ordering, so `NaN == NaN` (a reproducible NaN is not a
/// regression).
pub fn snapshot_diff(left: &str, right: &str) -> Vec<SeriesDelta> {
    let l = Snapshot::parse(left);
    let r = Snapshot::parse(right);
    let mut out = Vec::new();
    let names: std::collections::BTreeSet<&String> =
        l.series.keys().chain(r.series.keys()).collect();
    for name in names {
        let lv = l.series.get(name).copied();
        let rv = r.series.get(name).copied();
        let same = match (lv, rv) {
            (Some(a), Some(b)) => a.total_cmp(&b).is_eq(),
            (None, None) => true,
            _ => false,
        };
        if !same {
            out.push(SeriesDelta {
                series: name.clone(),
                left: lv,
                right: rv,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::Registry;

    #[test]
    fn parse_roundtrips_exposition() {
        let mut r = Registry::new();
        r.describe_counter("a_total", "A.");
        r.inc("a_total", &[("k", "v")], 2.0);
        r.describe_histogram("h", "H.", &[1.0]);
        r.observe("h", &[], 0.5);
        let snap = Snapshot::parse(&r.expose());
        assert_eq!(snap.series.get("a_total{k=\"v\"}"), Some(&2.0));
        assert_eq!(snap.series.get("h_bucket{le=\"1\"}"), Some(&1.0));
        assert_eq!(snap.series.get("h_count"), Some(&1.0));
    }

    #[test]
    fn identical_snapshots_diff_empty() {
        let text = "# TYPE x counter\nx 1\ny{l=\"a b\"} 2.5\n";
        assert!(snapshot_diff(text, text).is_empty());
    }

    #[test]
    fn differing_and_missing_series_are_reported() {
        let a = "x 1\ny 2\n";
        let b = "x 3\nz 4\n";
        let d = snapshot_diff(a, b);
        assert_eq!(d.len(), 3);
        assert_eq!(d[0].series, "x");
        assert_eq!(d[0].render(), "x 1 -> 3");
        assert_eq!(d[1].render(), "y 2 -> -");
        assert_eq!(d[2].render(), "z - -> 4");
    }

    #[test]
    fn nan_equals_nan() {
        let a = "x NaN\n";
        assert!(snapshot_diff(a, a).is_empty());
    }
}
