#![warn(missing_docs)]

//! # obsv — deterministic observability for the AppLeS testbed
//!
//! The AppLeS argument is that a scheduler wins by *seeing* what the
//! testbed is doing; this crate is the seeing apparatus for the
//! reproduction itself. It turns the [`metasim::simtrace`] event
//! stream into three artifacts:
//!
//! * a **metrics registry** ([`Registry`]) — counters, gauges and
//!   fixed-boundary histograms with bucket-interpolated p50/p95/p99,
//!   deterministic by construction: no wall-clock, no hash-map
//!   iteration, canonical label ordering. [`MetricsSink`] implements
//!   [`metasim::simtrace::EventSink`], so every `_with_sink` call site
//!   in the stack feeds it without modification, and [`FanoutSink`]
//!   lets JSONL tracing and metrics watch the same run;
//! * **simprof** ([`Profile`]) — a time-attribution profiler that
//!   folds a trace into per-job/per-host/per-phase buckets
//!   (queue-wait, retry-backoff, compute, border-exchange,
//!   contention-wait) which partition each job's makespan exactly,
//!   rendered as flamegraph folded stacks, an ASCII Gantt/utilization
//!   timeline, or a table;
//! * **exposition** — Prometheus text format via
//!   [`Registry::expose`], with [`Snapshot`] parsing and
//!   [`snapshot_diff`] so CI can gate on "same seed ⇒ same metrics";
//! * **causal span trees** ([`SpanTree`]) — per-job
//!   job → attempt → phase hierarchies with cause edges (retry,
//!   revocation, backfill), whose partition leaves tile each makespan
//!   exactly and reconcile with simprof to 0 µs, plus per-job
//!   critical paths and a per-trace [`Composition`] summary;
//! * a **time-series engine** ([`TimeSeriesSink`]) — fixed-width or
//!   event-aligned windows over the same stream: per-kind counts,
//!   busy/utilization, queue depth, backlog, imposed load; byte-stable
//!   JSONL.
//!
//! Everything here is read-only with respect to the simulation: a
//! sink that is never attached costs nothing, and attaching one
//! cannot change simulated outcomes.

pub mod expose;
pub mod profile;
pub mod registry;
pub mod sink;
pub mod span;
pub mod timeseries;

pub use expose::{snapshot_diff, SeriesDelta, Snapshot};
pub use profile::{ExecShares, HostProfile, JobProfile, Phase, Profile, PHASES};
pub use registry::{percentile, Histogram, Registry};
pub use sink::{FanoutSink, MetricsSink};
pub use span::{Cause, Composition, JobSpanTree, Span, SpanKind, SpanTree};
pub use timeseries::{Row, TimeSeries, TimeSeriesSink, WindowMode, KINDS};
