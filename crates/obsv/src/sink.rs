//! [`MetricsSink`]: an [`EventSink`] that folds the trace stream into a
//! [`Registry`] on the fly, plus [`FanoutSink`] so tracing and metrics
//! can watch the same run simultaneously.
//!
//! Because every `_with_sink` call site in metasim exec/fault/load, nws
//! `Service::advance`, core decide/actuate/run_stencil and grid
//! run/retry already threads an `EventSink`, attaching a `MetricsSink`
//! instruments the whole stack without touching any of those layers.

use std::collections::{BTreeMap, VecDeque};

use metasim::simtrace::{EventSink, TraceEvent};

use crate::registry::{Histogram, Registry};

/// Folds [`TraceEvent`]s into metrics as they are emitted.
///
/// All metric names carry the `apples_` prefix. Durations go to
/// log-spaced histograms; matched `transfer_start`/`transfer_finish`
/// pairs (FIFO per host pair, which is deterministic because the
/// simulator emits them in simulation order) produce transfer duration
/// observations.
#[derive(Debug)]
pub struct MetricsSink {
    registry: Registry,
    /// Open transfers keyed by (from, to), FIFO of start micros.
    pending_transfers: BTreeMap<(usize, usize), VecDeque<u64>>,
    queue_depth: i64,
    queue_peak: i64,
}

impl Default for MetricsSink {
    fn default() -> Self {
        MetricsSink::new()
    }
}

impl MetricsSink {
    /// A sink with every metric family pre-registered (so `# HELP`
    /// lines appear even for series that never fire).
    pub fn new() -> MetricsSink {
        let mut r = Registry::new();
        let dur = Histogram::log_spaced(1e-3, 1e4, 3);
        let dur = dur.boundaries().to_vec();
        let share: Vec<f64> = (1..=10).map(|i| f64::from(i) / 10.0).collect();
        r.describe_counter("apples_events_total", "Trace events observed, by kind.");
        r.describe_counter(
            "apples_jobs_total",
            "Jobs that left the stream, by outcome (completed|failed).",
        );
        r.describe_counter(
            "apples_job_attempts_total",
            "Placement attempts dispatched (first tries and retries).",
        );
        r.describe_counter(
            "apples_job_retries_total",
            "Failed attempts that were scheduled for retry after backoff.",
        );
        r.describe_counter(
            "apples_backfills_total",
            "Queued jobs started out of FCFS order by EASY backfilling.",
        );
        r.describe_gauge(
            "apples_queue_depth",
            "Jobs submitted or awaiting retry but not yet dispatched.",
        );
        r.describe_gauge(
            "apples_queue_depth_peak",
            "High-water mark of apples_queue_depth over the run.",
        );
        r.describe_histogram(
            "apples_compute_seconds",
            "Per-worker compute wall-clock (load and paging slowdown included).",
            &dur,
        );
        r.describe_counter(
            "apples_compute_work_mflop_total",
            "Total work dispatched to workers, Mflop.",
        );
        r.describe_counter("apples_transfer_mb_total", "Payload delivered, MB.");
        r.describe_histogram(
            "apples_transfer_seconds",
            "Transfer admission-to-delivery wall-clock.",
            &dur,
        );
        r.describe_histogram(
            "apples_transfer_contention_share",
            "Achieved over nominal bottleneck bandwidth (1 = link to itself).",
            &share,
        );
        r.describe_histogram(
            "apples_forecast_abs_error",
            "Absolute error of each issued forecast against the observation.",
            Histogram::log_spaced(1e-4, 10.0, 3).boundaries(),
        );
        r.describe_counter(
            "apples_faults_injected_total",
            "Faults injected into the topology, by target (host|link).",
        );
        r.describe_counter(
            "apples_placements_revoked_total",
            "Running placements revoked by host death.",
        );
        r.describe_counter(
            "apples_load_impositions_total",
            "Background-load windows imposed on hosts by dispatched jobs.",
        );
        r.describe_histogram(
            "apples_selection_candidates",
            "Candidate resource sets per selection.",
            &[1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0],
        );
        r.describe_counter(
            "apples_reschedule_decisions_total",
            "Phase-boundary reschedule decisions, by migrated (true|false).",
        );
        r.describe_histogram(
            "apples_job_exec_seconds",
            "Job admission-to-completion wall-clock.",
            &dur,
        );
        r.describe_counter(
            "apples_actuations_total",
            "Schedules actuated on the testbed.",
        );
        r.describe_counter(
            "apples_host_busy_seconds_total",
            "Cumulative compute seconds, by host.",
        );
        r.describe_gauge(
            "apples_sim_last_event_seconds",
            "Simulation timestamp of the most recent event.",
        );
        MetricsSink {
            registry: r,
            pending_transfers: BTreeMap::new(),
            queue_depth: 0,
            queue_peak: 0,
        }
    }

    /// Read access to the accumulated metrics.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Consume the sink, keeping the registry.
    pub fn into_registry(self) -> Registry {
        self.registry
    }

    fn set_queue_depth(&mut self, delta: i64) {
        self.queue_depth = (self.queue_depth + delta).max(0);
        self.queue_peak = self.queue_peak.max(self.queue_depth);
        self.registry
            .set("apples_queue_depth", &[], self.queue_depth as f64);
        self.registry
            .set("apples_queue_depth_peak", &[], self.queue_peak as f64);
    }
}

impl EventSink for MetricsSink {
    fn record(&mut self, event: TraceEvent) {
        let r = &mut self.registry;
        r.inc("apples_events_total", &[("kind", event.kind())], 1.0);
        r.set(
            "apples_sim_last_event_seconds",
            &[],
            event.at().as_secs_f64(),
        );
        match &event {
            TraceEvent::ComputeStart { work_mflop, .. } => {
                r.inc("apples_compute_work_mflop_total", &[], *work_mflop);
            }
            TraceEvent::ComputeFinish {
                host,
                elapsed_seconds,
                ..
            } => {
                r.observe("apples_compute_seconds", &[], *elapsed_seconds);
                let h = host.0.to_string();
                r.inc(
                    "apples_host_busy_seconds_total",
                    &[("host", &h)],
                    *elapsed_seconds,
                );
            }
            TraceEvent::TransferStart { from, to, at, .. } => {
                self.pending_transfers
                    .entry((from.0, to.0))
                    .or_default()
                    .push_back(at.0);
            }
            TraceEvent::TransferFinish {
                from,
                to,
                at,
                mb,
                contention_share,
            } => {
                r.inc("apples_transfer_mb_total", &[], *mb);
                r.observe("apples_transfer_contention_share", &[], *contention_share);
                if let Some(q) = self.pending_transfers.get_mut(&(from.0, to.0)) {
                    if let Some(started) = q.pop_front() {
                        let secs = at.saturating_sub(metasim::SimTime(started)).as_secs_f64();
                        self.registry.observe("apples_transfer_seconds", &[], secs);
                    }
                }
            }
            TraceEvent::HostFaultInjected { .. } => {
                r.inc("apples_faults_injected_total", &[("target", "host")], 1.0);
            }
            TraceEvent::LinkFaultInjected { .. } => {
                r.inc("apples_faults_injected_total", &[("target", "link")], 1.0);
            }
            TraceEvent::PlacementRevoked { .. } => {
                r.inc("apples_placements_revoked_total", &[], 1.0);
            }
            TraceEvent::LoadImposed { .. } => {
                r.inc("apples_load_impositions_total", &[], 1.0);
            }
            TraceEvent::ForecastIssued {
                predicted,
                observed,
                ..
            } => {
                r.observe(
                    "apples_forecast_abs_error",
                    &[],
                    (predicted - observed).abs(),
                );
            }
            TraceEvent::ResourceSelection { candidates, .. } => {
                r.observe("apples_selection_candidates", &[], *candidates as f64);
            }
            TraceEvent::RescheduleDecision { migrated, .. } => {
                let m = if *migrated { "true" } else { "false" };
                r.inc("apples_reschedule_decisions_total", &[("migrated", m)], 1.0);
            }
            TraceEvent::Actuated { .. } => {
                r.inc("apples_actuations_total", &[], 1.0);
            }
            TraceEvent::JobSubmitted { .. } => {
                self.set_queue_depth(1);
            }
            TraceEvent::JobDispatched { .. } => {
                self.registry.inc("apples_job_attempts_total", &[], 1.0);
                self.set_queue_depth(-1);
            }
            TraceEvent::JobRetried { .. } => {
                self.registry.inc("apples_job_retries_total", &[], 1.0);
                self.set_queue_depth(1);
            }
            // Queue depth is unchanged here: the matching
            // JobDispatched event carries the dequeue.
            TraceEvent::JobBackfilled { .. } => {
                r.inc("apples_backfills_total", &[], 1.0);
            }
            TraceEvent::JobCompleted { exec_seconds, .. } => {
                r.observe("apples_job_exec_seconds", &[], *exec_seconds);
                r.inc("apples_jobs_total", &[("outcome", "completed")], 1.0);
            }
            TraceEvent::JobFailed { .. } => {
                r.inc("apples_jobs_total", &[("outcome", "failed")], 1.0);
            }
            TraceEvent::CandidateConsidered { .. }
            | TraceEvent::ScheduleChosen { .. }
            | TraceEvent::RescheduleTriggered { .. }
            | TraceEvent::JobWorkMeasured { .. } => {}
        }
    }
}

/// Broadcasts each event to several sinks, so a run can stream JSONL
/// *and* accumulate metrics in one pass.
///
/// `enabled()` is true when any child is enabled; disabled children are
/// skipped per event. The event is cloned for all children but the
/// last.
#[derive(Default)]
pub struct FanoutSink<'a> {
    sinks: Vec<&'a mut dyn EventSink>,
}

impl<'a> FanoutSink<'a> {
    /// An empty fan-out (disabled until a child is added).
    pub fn new() -> FanoutSink<'a> {
        FanoutSink { sinks: Vec::new() }
    }

    /// Add a child sink.
    pub fn push(&mut self, sink: &'a mut dyn EventSink) {
        self.sinks.push(sink);
    }
}

impl EventSink for FanoutSink<'_> {
    fn enabled(&self) -> bool {
        self.sinks.iter().any(|s| s.enabled())
    }

    fn record(&mut self, event: TraceEvent) {
        let last_enabled = self.sinks.iter().rposition(|s| s.enabled());
        let Some(last) = last_enabled else { return };
        for (i, sink) in self.sinks.iter_mut().enumerate() {
            if !sink.enabled() {
                continue;
            }
            if i == last {
                sink.record(event);
                return;
            }
            sink.record(event.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metasim::simtrace::VecSink;
    use metasim::{HostId, SimTime};

    fn ev_stream() -> Vec<TraceEvent> {
        vec![
            TraceEvent::JobSubmitted {
                job: 0,
                kind: "jacobi".into(),
                at: SimTime::ZERO,
            },
            TraceEvent::JobDispatched {
                job: 0,
                at: SimTime::from_secs_f64(1.0),
                attempt: 1,
            },
            TraceEvent::ComputeStart {
                host: HostId(2),
                at: SimTime::from_secs_f64(1.0),
                work_mflop: 100.0,
            },
            TraceEvent::TransferStart {
                from: HostId(2),
                to: HostId(3),
                at: SimTime::from_secs_f64(1.0),
                mb: 8.0,
            },
            TraceEvent::TransferFinish {
                from: HostId(2),
                to: HostId(3),
                at: SimTime::from_secs_f64(3.0),
                mb: 8.0,
                contention_share: 0.5,
            },
            TraceEvent::ComputeFinish {
                host: HostId(2),
                at: SimTime::from_secs_f64(5.0),
                elapsed_seconds: 4.0,
            },
            TraceEvent::JobCompleted {
                job: 0,
                at: SimTime::from_secs_f64(5.0),
                exec_seconds: 4.0,
            },
        ]
    }

    #[test]
    fn metrics_sink_folds_events() {
        let mut sink = MetricsSink::new();
        for e in ev_stream() {
            sink.record(e);
        }
        let r = sink.registry();
        assert_eq!(
            r.counter_value("apples_events_total", &[("kind", "job_submitted")]),
            Some(1.0)
        );
        assert_eq!(
            r.counter_value("apples_jobs_total", &[("outcome", "completed")]),
            Some(1.0)
        );
        assert_eq!(r.gauge_value("apples_queue_depth", &[]), Some(0.0));
        assert_eq!(r.gauge_value("apples_queue_depth_peak", &[]), Some(1.0));
        assert_eq!(
            r.counter_value("apples_host_busy_seconds_total", &[("host", "2")]),
            Some(4.0)
        );
        // Transfer pairing: 3.0 - 1.0 = 2 s.
        let h = r.histogram("apples_transfer_seconds", &[]).unwrap();
        assert_eq!(h.count(), 1);
        assert!((h.sum() - 2.0).abs() < 1e-9);
        assert_eq!(
            r.gauge_value("apples_sim_last_event_seconds", &[]),
            Some(5.0)
        );
    }

    #[test]
    fn metrics_are_deterministic_across_runs() {
        let run = || {
            let mut sink = MetricsSink::new();
            for e in ev_stream() {
                sink.record(e);
            }
            sink.into_registry().expose()
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn fanout_feeds_all_children() {
        let mut tracing = VecSink::new();
        let mut metrics = MetricsSink::new();
        {
            let mut fan = FanoutSink::new();
            fan.push(&mut tracing);
            fan.push(&mut metrics);
            assert!(fan.enabled());
            for e in ev_stream() {
                fan.record(e);
            }
        }
        assert_eq!(tracing.events.len(), 7);
        assert_eq!(
            metrics
                .registry()
                .counter_value("apples_job_attempts_total", &[]),
            Some(1.0)
        );
    }

    #[test]
    fn empty_fanout_is_disabled() {
        let fan = FanoutSink::new();
        assert!(!fan.enabled());
    }
}
