//! simprof: time-attribution profiling of a trace stream.
//!
//! Answers "where did the simulated seconds go?" by folding the event
//! stream into per-job, per-host and per-phase buckets. The five
//! phases partition each job's makespan *exactly* (integer
//! microseconds, no float residue):
//!
//! * **queue-wait** — submission to first dispatch (FCFS admission),
//! * **retry-backoff** — first dispatch to last dispatch (failed
//!   attempts and their backoff windows),
//! * **compute** — the per-worker mean of compute wall-clock inside
//!   the final execution window,
//! * **border-exchange** — the per-worker mean of *ideal* transfer
//!   time (duration × contention share): what moving the data would
//!   cost with the bottleneck link to itself,
//! * **contention-wait** — the remainder of the execution window:
//!   bandwidth lost to competing flows, co-allocation barrier skew,
//!   and any executor time the trace does not itemize.
//!
//! The grid service processes jobs sequentially in admission order, so
//! executor events between a `job_dispatched` and the matching
//! `job_completed`/`job_retried`/`job_failed` belong to that job; the
//! profiler tracks the open job while folding. Accumulators reset on
//! each dispatch, so only the final attempt's events shape the split of
//! the execution window — earlier attempts are wall-clock inside
//! retry-backoff.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use metasim::simtrace::{host_utilization_timeline, TraceEvent};
use metasim::{HostId, SimTime};

/// One attribution bucket. Order is significant: it is the emission
/// order in folded stacks and tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Phase {
    /// Submission to first dispatch.
    QueueWait,
    /// First dispatch to final dispatch (failed attempts + backoff).
    RetryBackoff,
    /// Per-worker mean compute wall-clock in the final attempt.
    Compute,
    /// Per-worker mean ideal (uncontended) transfer time.
    BorderExchange,
    /// Remainder: contention, barrier skew, unitemized executor time.
    ContentionWait,
}

/// All phases, in canonical order.
pub const PHASES: [Phase; 5] = [
    Phase::QueueWait,
    Phase::RetryBackoff,
    Phase::Compute,
    Phase::BorderExchange,
    Phase::ContentionWait,
];

impl Phase {
    /// Stable kebab-case name (used in folded stacks and tables).
    pub fn name(self) -> &'static str {
        match self {
            Phase::QueueWait => "queue-wait",
            Phase::RetryBackoff => "retry-backoff",
            Phase::Compute => "compute",
            Phase::BorderExchange => "border-exchange",
            Phase::ContentionWait => "contention-wait",
        }
    }

    fn index(self) -> usize {
        match self {
            Phase::QueueWait => 0,
            Phase::RetryBackoff => 1,
            Phase::Compute => 2,
            Phase::BorderExchange => 3,
            Phase::ContentionWait => 4,
        }
    }
}

/// Attribution for one job. The five buckets sum to
/// `finish - submit` exactly (integer microseconds).
#[derive(Debug, Clone, PartialEq)]
pub struct JobProfile {
    /// Submission-order index.
    pub job: usize,
    /// Job class name.
    pub kind: String,
    /// Submission time.
    pub submit: SimTime,
    /// First dispatch.
    pub first_dispatch: SimTime,
    /// Final (successful or last-failed) dispatch.
    pub last_dispatch: SimTime,
    /// Completion or final-failure time.
    pub finish: SimTime,
    /// Attempts made.
    pub attempts: u32,
    /// Whether the job completed (vs. exhausted its retries).
    pub completed: bool,
    /// Distinct hosts that computed for this job (final attempt).
    pub hosts: Vec<HostId>,
    bucket_us: [u64; 5],
}

impl JobProfile {
    /// Microseconds attributed to `phase`.
    pub fn bucket_us(&self, phase: Phase) -> u64 {
        self.bucket_us[phase.index()]
    }

    /// Seconds attributed to `phase`.
    pub fn bucket_seconds(&self, phase: Phase) -> f64 {
        SimTime(self.bucket_us[phase.index()]).as_secs_f64()
    }

    /// Submission-to-finish, microseconds. Equals the bucket sum.
    pub fn makespan_us(&self) -> u64 {
        self.finish.saturating_sub(self.submit).0
    }

    /// Submission-to-finish, seconds.
    pub fn makespan_seconds(&self) -> f64 {
        self.finish.saturating_sub(self.submit).as_secs_f64()
    }
}

/// Per-host totals over the whole trace (all jobs and non-job events).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct HostProfile {
    /// Workers started on this host (`compute_start` count).
    pub workers: usize,
    /// Total compute wall-clock on this host, seconds.
    pub compute_seconds: f64,
    /// MB sent from this host.
    pub mb_sent: f64,
    /// MB delivered to this host.
    pub mb_received: f64,
    /// Ideal (uncontended) seconds of transfers sent from this host.
    pub border_seconds: f64,
    /// Extra transfer seconds lost to contention, from this host.
    pub contention_seconds: f64,
}

/// Trace-wide execution-time shares (worker-seconds, normalized).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecShares {
    /// Fraction of worker-seconds spent computing.
    pub compute: f64,
    /// Fraction spent on ideal border exchange.
    pub border_exchange: f64,
    /// Fraction lost to transfer contention.
    pub contention_wait: f64,
}

struct OpenJob {
    kind: String,
    submit: SimTime,
    first_dispatch: Option<SimTime>,
    last_dispatch: Option<SimTime>,
    attempts: u32,
    // Final-attempt accumulators (reset on each dispatch).
    workers: usize,
    compute_ws: f64,
    border_ws: f64,
    hosts: Vec<HostId>,
}

/// The folded profile of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct Profile {
    /// Closed jobs, in submission order.
    pub jobs: Vec<JobProfile>,
    /// Per-host totals, keyed by host.
    pub hosts: BTreeMap<HostId, HostProfile>,
    /// First and last event timestamps.
    pub span: Option<(SimTime, SimTime)>,
    /// Events folded.
    pub events: usize,
    /// Jobs submitted but never completed/failed in the trace.
    pub unclosed_jobs: usize,
    /// JSONL lines that did not parse (only via
    /// [`Profile::from_jsonl`]).
    pub skipped_lines: usize,
    /// Raw events kept for timeline rendering.
    timeline_events: Vec<TraceEvent>,
}

impl Profile {
    /// Fold an in-memory event stream.
    pub fn from_events(events: &[TraceEvent]) -> Profile {
        let mut jobs: BTreeMap<usize, OpenJob> = BTreeMap::new();
        let mut done: Vec<JobProfile> = Vec::new();
        let mut hosts: BTreeMap<HostId, HostProfile> = BTreeMap::new();
        let mut open_transfers: BTreeMap<(usize, usize), Vec<u64>> = BTreeMap::new();
        let mut current: Option<usize> = None;
        let mut span: Option<(SimTime, SimTime)> = None;

        for e in events {
            let at = e.at();
            span = Some(match span {
                None => (at, at),
                Some((f, l)) => (f.min(at), l.max(at)),
            });
            match e {
                TraceEvent::JobSubmitted { job, kind, at } => {
                    jobs.insert(
                        *job,
                        OpenJob {
                            kind: kind.clone(),
                            submit: *at,
                            first_dispatch: None,
                            last_dispatch: None,
                            attempts: 0,
                            workers: 0,
                            compute_ws: 0.0,
                            border_ws: 0.0,
                            hosts: Vec::new(),
                        },
                    );
                }
                TraceEvent::JobDispatched { job, at, attempt } => {
                    current = Some(*job);
                    if let Some(j) = jobs.get_mut(job) {
                        j.first_dispatch.get_or_insert(*at);
                        j.last_dispatch = Some(*at);
                        j.attempts = j.attempts.max(*attempt);
                        // Only the final attempt's events shape the
                        // execution-window split.
                        j.workers = 0;
                        j.compute_ws = 0.0;
                        j.border_ws = 0.0;
                        j.hosts.clear();
                    }
                }
                TraceEvent::ComputeStart { host, .. } => {
                    let h = hosts.entry(*host).or_default();
                    h.workers += 1;
                    if let Some(j) = current.and_then(|c| jobs.get_mut(&c)) {
                        j.workers += 1;
                        if !j.hosts.contains(host) {
                            j.hosts.push(*host);
                        }
                    }
                }
                TraceEvent::ComputeFinish {
                    host,
                    elapsed_seconds,
                    ..
                } => {
                    let elapsed = if elapsed_seconds.is_finite() {
                        *elapsed_seconds
                    } else {
                        0.0
                    };
                    hosts.entry(*host).or_default().compute_seconds += elapsed;
                    if let Some(j) = current.and_then(|c| jobs.get_mut(&c)) {
                        j.compute_ws += elapsed;
                    }
                }
                TraceEvent::TransferStart { from, to, at, .. } => {
                    open_transfers.entry((from.0, to.0)).or_default().push(at.0);
                }
                TraceEvent::TransferFinish {
                    from,
                    to,
                    at,
                    mb,
                    contention_share,
                } => {
                    let mb = if mb.is_finite() { *mb } else { 0.0 };
                    hosts.entry(*from).or_default().mb_sent += mb;
                    hosts.entry(*to).or_default().mb_received += mb;
                    let started = open_transfers
                        .get_mut(&(from.0, to.0))
                        .and_then(|q| (!q.is_empty()).then(|| q.remove(0)));
                    if let Some(started) = started {
                        let dur = at.saturating_sub(SimTime(started)).as_secs_f64();
                        let share = if contention_share.is_finite() {
                            contention_share.clamp(0.0, 1.0)
                        } else {
                            1.0
                        };
                        let ideal = dur * share;
                        let h = hosts.entry(*from).or_default();
                        h.border_seconds += ideal;
                        h.contention_seconds += dur - ideal;
                        if let Some(j) = current.and_then(|c| jobs.get_mut(&c)) {
                            j.border_ws += ideal;
                        }
                    }
                }
                TraceEvent::JobWorkMeasured {
                    job,
                    dedicated_seconds,
                    ..
                } => {
                    // A fractional-share (PS) regime executes what-if
                    // runs off-trace, so the attempt window would
                    // otherwise read as pure contention. The measured
                    // dedicated seconds stand in for compute; the
                    // remainder of the window is dilution. Job-id
                    // keyed: no reliance on the sequential `current`.
                    if let Some(j) = jobs.get_mut(job) {
                        j.compute_ws = if dedicated_seconds.is_finite() {
                            dedicated_seconds.max(0.0)
                        } else {
                            0.0
                        };
                    }
                }
                TraceEvent::JobCompleted { job, at, .. } => {
                    if let Some(open) = jobs.remove(job) {
                        done.push(close_job(*job, open, *at, true));
                    }
                    if current == Some(*job) {
                        current = None;
                    }
                }
                TraceEvent::JobFailed { job, at, attempts } => {
                    if let Some(mut open) = jobs.remove(job) {
                        open.attempts = open.attempts.max(*attempts);
                        done.push(close_job(*job, open, *at, false));
                    }
                    if current == Some(*job) {
                        current = None;
                    }
                }
                _ => {}
            }
        }

        done.sort_by_key(|j| j.job);
        Profile {
            jobs: done,
            hosts,
            span,
            events: events.len(),
            unclosed_jobs: jobs.len(),
            skipped_lines: 0,
            timeline_events: events.to_vec(),
        }
    }

    /// Fold a JSONL trace (as written by `WriterSink` / `--trace`).
    /// Unparseable lines are counted in
    /// [`Profile::skipped_lines`] and skipped.
    pub fn from_jsonl(text: &str) -> Profile {
        let (events, skipped) = TraceEvent::from_jsonl(text);
        let mut p = Profile::from_events(&events);
        p.skipped_lines = skipped;
        p
    }

    /// Trace-wide execution-time shares from the per-host totals.
    /// Returns `None` when the trace has no compute or transfer time.
    pub fn exec_shares(&self) -> Option<ExecShares> {
        let mut compute = 0.0;
        let mut border = 0.0;
        let mut contention = 0.0;
        for h in self.hosts.values() {
            compute += h.compute_seconds;
            border += h.border_seconds;
            contention += h.contention_seconds;
        }
        let total = compute + border + contention;
        if total.total_cmp(&0.0).is_le() || !total.is_finite() {
            return None;
        }
        Some(ExecShares {
            compute: compute / total,
            border_exchange: border / total,
            contention_wait: contention / total,
        })
    }

    /// Flamegraph-compatible folded stacks, one line per frame chain:
    /// `grid;job<idx>:<kind>;<phase> <microseconds>` for each job, then
    /// `host<h>;<component> <microseconds>` for each host. Zero-count
    /// frames are omitted. Byte-deterministic for a given trace.
    pub fn folded(&self) -> String {
        let mut out = String::new();
        for j in &self.jobs {
            for phase in PHASES {
                let us = j.bucket_us(phase);
                if us == 0 {
                    continue;
                }
                let _ = writeln!(out, "grid;job{}:{};{} {us}", j.job, j.kind, phase.name());
            }
        }
        for (host, h) in &self.hosts {
            for (component, secs) in [
                ("compute", h.compute_seconds),
                ("border-exchange", h.border_seconds),
                ("contention-wait", h.contention_seconds),
            ] {
                let us = secs_to_us(secs);
                if us == 0 {
                    continue;
                }
                let _ = writeln!(out, "host{};{component} {us}", host.0);
            }
        }
        out
    }

    /// ASCII Gantt chart of the job stream plus per-host utilization
    /// lanes, `width` columns wide over the trace span.
    ///
    /// Job lanes: `.` queued, `~` retry/backoff, `#` executing.
    /// Host lanes shade busy fraction per column with ` .:-=+*#%@`.
    pub fn gantt(&self, width: usize) -> String {
        let width = width.clamp(16, 512);
        let Some((t0, t1)) = self.span else {
            return String::from("(empty trace)\n");
        };
        let span_us = t1.saturating_sub(t0).0.max(1);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "span {:.3}s .. {:.3}s  ({} events, {} jobs)",
            t0.as_secs_f64(),
            t1.as_secs_f64(),
            self.events,
            self.jobs.len()
        );
        if !self.jobs.is_empty() {
            let _ = writeln!(out, "jobs  [.] queued  [~] retry/backoff  [#] executing");
            let label_w = self
                .jobs
                .iter()
                .map(|j| format!("job{}:{}", j.job, j.kind).len())
                .max()
                .unwrap_or(0);
            for j in &self.jobs {
                let mut lane = vec![' '; width];
                for (col, slot) in lane.iter_mut().enumerate() {
                    // Column midpoint in trace time.
                    let t = t0.0 + (span_us * (2 * col as u64 + 1)) / (2 * width as u64);
                    let c = if t < j.submit.0 || t >= j.finish.0 {
                        ' '
                    } else if t < j.first_dispatch.0 {
                        '.'
                    } else if t < j.last_dispatch.0 {
                        '~'
                    } else {
                        '#'
                    };
                    *slot = c;
                }
                let label = format!("job{}:{}", j.job, j.kind);
                let lane: String = lane.into_iter().collect();
                let _ = writeln!(out, "{label:label_w$} |{lane}|");
            }
        }
        if !self.hosts.is_empty() {
            let _ = writeln!(out, "hosts (busy fraction per column)");
            let bucket_seconds = (span_us as f64 / 1e6 / width as f64).max(1e-6);
            let tl = host_utilization_timeline(&self.timeline_events, bucket_seconds);
            const RAMP: [char; 10] = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
            for (host, frac) in &tl {
                let mut lane = String::with_capacity(width);
                for col in 0..width {
                    let f = frac.get(col).copied().unwrap_or(0.0);
                    let i = ((f * (RAMP.len() - 1) as f64).round() as usize).min(RAMP.len() - 1);
                    lane.push(RAMP[i]);
                }
                let _ = writeln!(out, "host{:<4} |{lane}|", host.0);
            }
        }
        out
    }

    /// Plain-text attribution table: one row per job with the five
    /// bucket seconds and their share of the makespan, then per-host
    /// totals and the trace-wide execution shares.
    pub fn table(&self) -> String {
        let mut out = String::new();
        if !self.jobs.is_empty() {
            let _ = writeln!(
                out,
                "{:<6} {:<12} {:>3} {:>4} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "job",
                "kind",
                "ok",
                "try",
                "makespan",
                "queue",
                "retry",
                "compute",
                "border",
                "contend"
            );
            for j in &self.jobs {
                let _ = writeln!(
                    out,
                    "{:<6} {:<12} {:>3} {:>4} {:>9.3}s {:>9.3}s {:>9.3}s {:>9.3}s {:>9.3}s {:>9.3}s",
                    j.job,
                    truncate(&j.kind, 12),
                    if j.completed { "yes" } else { "no" },
                    j.attempts,
                    j.makespan_seconds(),
                    j.bucket_seconds(Phase::QueueWait),
                    j.bucket_seconds(Phase::RetryBackoff),
                    j.bucket_seconds(Phase::Compute),
                    j.bucket_seconds(Phase::BorderExchange),
                    j.bucket_seconds(Phase::ContentionWait),
                );
            }
        }
        if !self.hosts.is_empty() {
            let _ = writeln!(
                out,
                "{:<6} {:>7} {:>12} {:>10} {:>10} {:>10} {:>10}",
                "host", "workers", "compute", "mb-out", "mb-in", "border", "contend"
            );
            for (host, h) in &self.hosts {
                let _ = writeln!(
                    out,
                    "{:<6} {:>7} {:>11.3}s {:>10.1} {:>10.1} {:>9.3}s {:>9.3}s",
                    host.0,
                    h.workers,
                    h.compute_seconds,
                    h.mb_sent,
                    h.mb_received,
                    h.border_seconds,
                    h.contention_seconds,
                );
            }
        }
        if let Some(s) = self.exec_shares() {
            let _ = writeln!(
                out,
                "exec shares: compute {:.1}%  border-exchange {:.1}%  contention-wait {:.1}%",
                s.compute * 100.0,
                s.border_exchange * 100.0,
                s.contention_wait * 100.0
            );
        }
        if self.unclosed_jobs > 0 {
            let _ = writeln!(
                out,
                "note: {} job(s) still open at end of trace",
                self.unclosed_jobs
            );
        }
        if self.skipped_lines > 0 {
            let _ = writeln!(
                out,
                "note: {} unparseable line(s) skipped",
                self.skipped_lines
            );
        }
        out
    }
}

fn secs_to_us(secs: f64) -> u64 {
    if !secs.is_finite() || secs.total_cmp(&0.0).is_le() {
        return 0;
    }
    // simlint: allow(sim-time-hygiene): the sanctioned seconds->micros boundary; trace events carry f64 seconds and round-to-nearest differs deliberately from SimTime::from_secs_f64's ceil
    (secs * 1_000_000.0).round() as u64
}

fn close_job(job: usize, open: OpenJob, finish: SimTime, completed: bool) -> JobProfile {
    let submit = open.submit;
    let first_dispatch = open.first_dispatch.unwrap_or(finish);
    let last_dispatch = open.last_dispatch.unwrap_or(finish);
    let queue_us = first_dispatch.saturating_sub(submit).0;
    let retry_us = last_dispatch.saturating_sub(first_dispatch).0;
    let window_us = finish.saturating_sub(last_dispatch).0;
    // Worker-seconds → wall-clock inside the window: divide by the
    // worker count (co-allocated workers run in parallel). Clamp each
    // bucket so the three always partition the window exactly.
    let n = open.workers.max(1) as f64;
    let compute_us = secs_to_us(open.compute_ws / n).min(window_us);
    let border_us = secs_to_us(open.border_ws / n).min(window_us - compute_us);
    let contention_us = window_us - compute_us - border_us;
    let mut hosts = open.hosts;
    hosts.sort();
    JobProfile {
        job,
        kind: open.kind,
        submit,
        first_dispatch,
        last_dispatch,
        finish,
        attempts: open.attempts,
        completed,
        hosts,
        bucket_us: [queue_us, retry_us, compute_us, border_us, contention_us],
    }
}

fn truncate(s: &str, n: usize) -> &str {
    match s.char_indices().nth(n) {
        Some((i, _)) => &s[..i],
        None => s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn retry_stream() -> Vec<TraceEvent> {
        vec![
            TraceEvent::JobSubmitted {
                job: 0,
                kind: "jacobi".into(),
                at: t(0.0),
            },
            TraceEvent::JobDispatched {
                job: 0,
                at: t(2.0),
                attempt: 1,
            },
            TraceEvent::ComputeStart {
                host: HostId(1),
                at: t(2.0),
                work_mflop: 10.0,
            },
            TraceEvent::JobRetried {
                job: 0,
                at: t(5.0),
                attempt: 1,
            },
            TraceEvent::JobDispatched {
                job: 0,
                at: t(5.0),
                attempt: 2,
            },
            TraceEvent::ComputeStart {
                host: HostId(2),
                at: t(5.0),
                work_mflop: 10.0,
            },
            TraceEvent::ComputeStart {
                host: HostId(3),
                at: t(5.0),
                work_mflop: 10.0,
            },
            TraceEvent::TransferStart {
                from: HostId(2),
                to: HostId(3),
                at: t(5.0),
                mb: 4.0,
            },
            TraceEvent::TransferFinish {
                from: HostId(2),
                to: HostId(3),
                at: t(7.0),
                mb: 4.0,
                contention_share: 0.5,
            },
            TraceEvent::ComputeFinish {
                host: HostId(2),
                at: t(9.0),
                elapsed_seconds: 3.0,
            },
            TraceEvent::ComputeFinish {
                host: HostId(3),
                at: t(9.0),
                elapsed_seconds: 3.0,
            },
            TraceEvent::JobCompleted {
                job: 0,
                at: t(11.0),
                exec_seconds: 9.0,
            },
        ]
    }

    #[test]
    fn buckets_partition_makespan_exactly() {
        let p = Profile::from_events(&retry_stream());
        assert_eq!(p.jobs.len(), 1);
        let j = &p.jobs[0];
        let sum: u64 = PHASES.iter().map(|&ph| j.bucket_us(ph)).sum();
        assert_eq!(sum, j.makespan_us());
        assert_eq!(j.makespan_us(), 11_000_000);
        assert_eq!(j.bucket_us(Phase::QueueWait), 2_000_000);
        assert_eq!(j.bucket_us(Phase::RetryBackoff), 3_000_000);
        // Final window 6 s; 2 workers × 3 s compute → 3 s.
        assert_eq!(j.bucket_us(Phase::Compute), 3_000_000);
        // One 2 s transfer at share 0.5 → 1 s ideal over 2 workers.
        assert_eq!(j.bucket_us(Phase::BorderExchange), 500_000);
        assert_eq!(j.bucket_us(Phase::ContentionWait), 2_500_000);
        assert!(j.completed);
        assert_eq!(j.attempts, 2);
        // First-attempt state was reset: only hosts 2 and 3 remain.
        assert_eq!(j.hosts, vec![HostId(2), HostId(3)]);
    }

    #[test]
    fn folded_output_is_deterministic_and_nonempty() {
        let events = retry_stream();
        let a = Profile::from_events(&events).folded();
        let b = Profile::from_events(&events).folded();
        assert_eq!(a, b);
        assert!(a.contains("grid;job0:jacobi;compute 3000000"));
        assert!(a.contains("host2;border-exchange 1000000"));
    }

    #[test]
    fn jsonl_roundtrip_matches_in_memory() {
        let events = retry_stream();
        let jsonl: String = events
            .iter()
            .map(|e| format!("{}\n", e.to_json()))
            .collect();
        let from_text = Profile::from_jsonl(&jsonl);
        let from_mem = Profile::from_events(&events);
        assert_eq!(from_text.skipped_lines, 0);
        assert_eq!(from_text.jobs, from_mem.jobs);
        assert_eq!(from_text.folded(), from_mem.folded());
    }

    #[test]
    fn gantt_and_table_render() {
        let p = Profile::from_events(&retry_stream());
        let g = p.gantt(40);
        assert!(g.contains("job0:jacobi"));
        assert!(g.contains("host2"));
        let t = p.table();
        assert!(t.contains("jacobi"));
        assert!(t.contains("exec shares"));
    }

    #[test]
    fn empty_trace_profiles_cleanly() {
        let p = Profile::from_events(&[]);
        assert!(p.jobs.is_empty());
        assert_eq!(p.folded(), "");
        assert_eq!(p.gantt(40), "(empty trace)\n");
        assert!(p.exec_shares().is_none());
    }

    #[test]
    fn unclosed_jobs_are_counted_not_invented() {
        let events = vec![TraceEvent::JobSubmitted {
            job: 0,
            kind: "x".into(),
            at: t(0.0),
        }];
        let p = Profile::from_events(&events);
        assert!(p.jobs.is_empty());
        assert_eq!(p.unclosed_jobs, 1);
    }
}
