//! Causal span trees over the simtrace stream.
//!
//! simprof answers "where did each job's seconds go" with five flat
//! buckets; this module keeps the *structure*: a trace folds into one
//! span tree per job — job → attempt → phase leaf — with cause edges
//! explaining why each attempt exists (a prior attempt was retried, a
//! placement was revoked, a backfill started it early). The phase
//! leaves are the same five buckets as [`crate::Profile`] and are
//! taken from it verbatim, so the two views reconcile to 0 µs by
//! construction — a property the tests still gate, because it is the
//! contract that makes span output trustworthy for critical-path work.
//!
//! **Partition invariant.** For every closed job, the `partition`
//! leaves tile `[submit, finish]` exactly in integer microseconds:
//! queue-wait, then one retry-backoff leaf per non-final attempt
//! (covering that attempt's dispatch-to-redispatch window: the failed
//! run, its backoff, and any re-queue wait), then the final attempt's
//! compute / border-exchange / contention-wait split. Transfer spans
//! are *annotations* — real `[start, finish]` intervals that overlap
//! compute — and are excluded from the partition (`partition: false`),
//! as are the structural job/attempt spans.
//!
//! **Critical path.** Jobs here are sequential (one placement at a
//! time), so a job's critical path is its chronological chain of
//! partition leaves; what distinguishes scheduling regimes is the
//! *composition* of that chain. [`SpanTree::composition`] aggregates
//! it per trace, and the race report diffs compositions across
//! regimes.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use metasim::simtrace::TraceEvent;
use metasim::{HostId, SimTime};

use crate::profile::{Phase, Profile, PHASES};

/// What a span represents.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SpanKind {
    /// Root: one per job, `[submit, finish]`.
    Job,
    /// One placement attempt, child of the job span.
    Attempt,
    /// Submission to first dispatch (partition leaf).
    QueueWait,
    /// A non-final attempt's dispatch-to-redispatch window
    /// (partition leaf).
    RetryBackoff,
    /// Final-attempt compute time (partition leaf).
    Compute,
    /// Final-attempt ideal transfer time (partition leaf).
    BorderExchange,
    /// Final-attempt remainder: contention, barrier skew, dilution
    /// (partition leaf).
    ContentionWait,
    /// One observed transfer `[start, finish]` (annotation, overlaps
    /// compute; not part of the partition).
    Transfer,
}

impl SpanKind {
    /// Stable kebab-case name (used in JSONL and renderings).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::Job => "job",
            SpanKind::Attempt => "attempt",
            SpanKind::QueueWait => "queue-wait",
            SpanKind::RetryBackoff => "retry-backoff",
            SpanKind::Compute => "compute",
            SpanKind::BorderExchange => "border-exchange",
            SpanKind::ContentionWait => "contention-wait",
            SpanKind::Transfer => "transfer",
        }
    }

    /// The simprof phase a partition leaf reconciles against, `None`
    /// for structural and annotation spans.
    pub fn phase(self) -> Option<Phase> {
        match self {
            SpanKind::QueueWait => Some(Phase::QueueWait),
            SpanKind::RetryBackoff => Some(Phase::RetryBackoff),
            SpanKind::Compute => Some(Phase::Compute),
            SpanKind::BorderExchange => Some(Phase::BorderExchange),
            SpanKind::ContentionWait => Some(Phase::ContentionWait),
            _ => None,
        }
    }
}

/// Why a span exists: the causal edge from the event that produced it.
#[derive(Debug, Clone, PartialEq)]
pub enum Cause {
    /// The previous attempt (`failed_attempt`) failed and was
    /// scheduled for retry.
    Retried {
        /// Attempt number that failed.
        failed_attempt: u32,
    },
    /// A placement revocation (host death) killed the previous
    /// attempt.
    Revoked {
        /// Host that died under the placement.
        host: HostId,
        /// Detection time.
        at: SimTime,
    },
    /// EASY backfilling started this attempt ahead of FCFS order.
    Backfilled {
        /// The head-of-queue reservation the backfill must not delay.
        reservation: SimTime,
    },
}

impl Cause {
    fn to_json(&self) -> String {
        match self {
            Cause::Retried { failed_attempt } => {
                format!("{{\"cause\":\"retried\",\"failed_attempt\":{failed_attempt}}}")
            }
            Cause::Revoked { host, at } => {
                format!(
                    "{{\"cause\":\"revoked\",\"host\":{},\"at\":{}}}",
                    host.0, at.0
                )
            }
            Cause::Backfilled { reservation } => format!(
                "{{\"cause\":\"backfilled\",\"reservation\":{}}}",
                reservation.0
            ),
        }
    }

    fn render(&self) -> String {
        match self {
            Cause::Retried { failed_attempt } => format!("retried(attempt {failed_attempt})"),
            Cause::Revoked { host, at } => {
                format!("revoked(host {} @ {:.3}s)", host.0, at.as_secs_f64())
            }
            Cause::Backfilled { reservation } => {
                format!("backfilled(reservation {:.3}s)", reservation.as_secs_f64())
            }
        }
    }
}

/// One node of a job's span tree. Spans live in the owning
/// [`JobSpanTree`]'s arena; `parent` indexes into it.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// What this span represents.
    pub kind: SpanKind,
    /// Span start (inclusive).
    pub start: SimTime,
    /// Span end (exclusive for partition leaves).
    pub end: SimTime,
    /// Arena index of the parent span; `None` for the job root.
    pub parent: Option<usize>,
    /// Attempt number this span belongs to (0 = job level / queue).
    pub attempt: u32,
    /// Whether this leaf participates in the exact makespan partition.
    pub partition: bool,
    /// Causal edges explaining why the span exists.
    pub causes: Vec<Cause>,
    /// Placement revocations absorbed during this span.
    pub revocations: u32,
}

impl Span {
    /// Duration in integer microseconds.
    pub fn us(&self) -> u64 {
        self.end.saturating_sub(self.start).0
    }
}

/// The span tree of one closed job.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpanTree {
    /// Submission-order index.
    pub job: usize,
    /// Job class name.
    pub class: String,
    /// Whether the job completed (vs. exhausted its retries).
    pub completed: bool,
    /// Attempts made.
    pub attempts: u32,
    /// Span arena; index 0 is the job root, children follow their
    /// parents.
    pub spans: Vec<Span>,
}

impl JobSpanTree {
    /// The job root span.
    pub fn root(&self) -> &Span {
        &self.spans[0]
    }

    /// Submission-to-finish, microseconds.
    pub fn makespan_us(&self) -> u64 {
        self.root().us()
    }

    /// The job's critical path: its partition leaves in chronological
    /// order. Jobs hold one placement at a time, so this chain *is*
    /// the unique submit-to-finish path; regimes differ in its
    /// composition, not its shape.
    pub fn critical_path(&self) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.partition).collect()
    }

    /// The phase whose partition leaves dominate the critical path
    /// (most microseconds; earlier canonical phase wins ties).
    pub fn dominant_phase(&self) -> Phase {
        let mut us = [0u64; 5];
        for s in self.critical_path() {
            if let Some(p) = s.kind.phase() {
                us[phase_index(p)] += s.us();
            }
        }
        let mut best = Phase::QueueWait;
        let mut best_us = 0u64;
        for p in PHASES {
            if us[phase_index(p)] > best_us {
                best = p;
                best_us = us[phase_index(p)];
            }
        }
        best
    }
}

/// Aggregate critical-path composition of a trace: how the summed
/// makespan of all jobs splits across the five phases, and which phase
/// dominates each job.
#[derive(Debug, Clone, PartialEq)]
pub struct Composition {
    /// Closed jobs folded.
    pub jobs: usize,
    /// Of those, jobs that completed.
    pub completed: usize,
    /// Summed makespan, microseconds.
    pub total_us: u64,
    /// Microseconds per phase (canonical [`PHASES`] order); sums to
    /// `total_us`.
    pub phase_us: [u64; 5],
    /// Jobs whose critical path each phase dominates (canonical
    /// order).
    pub dominant_jobs: [usize; 5],
    /// Transfer annotation spans observed.
    pub transfers: usize,
    /// Placement revocations absorbed across all attempts.
    pub revocations: u64,
}

impl Composition {
    /// Fraction of the summed makespan attributed to `phase` (0 when
    /// the trace is empty).
    pub fn share(&self, phase: Phase) -> f64 {
        if self.total_us == 0 {
            return 0.0;
        }
        self.phase_us[phase_index(phase)] as f64 / self.total_us as f64
    }

    /// One-line human rendering of the composition.
    pub fn render(&self) -> String {
        let mut out = format!(
            "{} job(s), {} completed, {:.3}s total makespan:",
            self.jobs,
            self.completed,
            SimTime(self.total_us).as_secs_f64()
        );
        for p in PHASES {
            let _ = write!(out, "  {} {:.1}%", p.name(), self.share(p) * 100.0);
        }
        out
    }

    /// The composition as a JSON object (byte-deterministic).
    pub fn to_json(&self) -> String {
        let mut phases = String::new();
        for (i, p) in PHASES.iter().enumerate() {
            if i > 0 {
                phases.push(',');
            }
            let _ = write!(
                phases,
                "\"{}\":{{\"us\":{},\"share\":{:.6},\"dominates\":{}}}",
                p.name(),
                self.phase_us[phase_index(*p)],
                self.share(*p),
                self.dominant_jobs[phase_index(*p)]
            );
        }
        format!(
            "{{\"jobs\":{},\"completed\":{},\"total_us\":{},\"transfers\":{},\
             \"revocations\":{},\"phases\":{{{phases}}}}}",
            self.jobs, self.completed, self.total_us, self.transfers, self.revocations
        )
    }
}

fn phase_index(p: Phase) -> usize {
    PHASES.iter().position(|&q| q == p).unwrap_or(0)
}

/// Per-job span trees folded from one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanTree {
    /// Closed jobs in submission order.
    pub jobs: Vec<JobSpanTree>,
    /// Jobs submitted but never completed/failed in the trace.
    pub unclosed_jobs: usize,
    /// JSONL lines that did not parse (via [`SpanTree::from_jsonl`]).
    pub skipped_lines: usize,
}

/// Fold-time state for one job (dispatch boundaries and causes; the
/// phase durations come from [`Profile`]).
#[derive(Default)]
struct JobFold {
    dispatches: Vec<SimTime>,
    attempt_causes: Vec<Vec<Cause>>,
    attempt_revocations: Vec<u32>,
    /// Causes accumulated for the *next* dispatch of this job.
    pending_causes: Vec<Cause>,
    /// (attempt, start, end) of observed transfers.
    transfers: Vec<(u32, SimTime, SimTime)>,
}

impl SpanTree {
    /// Fold an in-memory event stream into span trees.
    pub fn from_events(events: &[TraceEvent]) -> SpanTree {
        let profile = Profile::from_events(events);

        let mut folds: BTreeMap<usize, JobFold> = BTreeMap::new();
        let mut open_transfers: BTreeMap<(usize, usize), Vec<u64>> = BTreeMap::new();
        // Revocations emitted but not yet tied to a lifecycle event.
        // Producers emit `placement_revoked` strictly before the
        // victim's `job_retried`/`job_failed`, so FIFO draining at the
        // next lifecycle close attributes them correctly.
        let mut pending_revocations: Vec<(HostId, SimTime)> = Vec::new();
        let mut current: Option<usize> = None;

        let drain_revocations =
            |pending: &mut Vec<(HostId, SimTime)>, fold: &mut JobFold, as_cause: bool| {
                if pending.is_empty() {
                    return;
                }
                if let Some(n) = fold.attempt_revocations.last_mut() {
                    *n += pending.len() as u32;
                }
                if as_cause {
                    if let Some(&(host, at)) = pending.first() {
                        fold.pending_causes.push(Cause::Revoked { host, at });
                    }
                }
                pending.clear();
            };

        for e in events {
            match e {
                TraceEvent::JobSubmitted { job, .. } => {
                    folds.entry(*job).or_default();
                }
                TraceEvent::JobDispatched { job, at, .. } => {
                    current = Some(*job);
                    let f = folds.entry(*job).or_default();
                    f.dispatches.push(*at);
                    f.attempt_causes.push(std::mem::take(&mut f.pending_causes));
                    f.attempt_revocations.push(0);
                }
                TraceEvent::JobBackfilled {
                    job, reservation, ..
                } => {
                    folds
                        .entry(*job)
                        .or_default()
                        .pending_causes
                        .push(Cause::Backfilled {
                            reservation: *reservation,
                        });
                }
                TraceEvent::PlacementRevoked { host, at } => {
                    pending_revocations.push((*host, *at));
                }
                TraceEvent::JobRetried { job, attempt, .. } => {
                    if let Some(f) = folds.get_mut(job) {
                        f.pending_causes.push(Cause::Retried {
                            failed_attempt: *attempt,
                        });
                        drain_revocations(&mut pending_revocations, f, true);
                    }
                }
                TraceEvent::JobCompleted { job, .. } | TraceEvent::JobFailed { job, .. } => {
                    if let Some(f) = folds.get_mut(job) {
                        // Revocations the attempt absorbed without
                        // dying (phase-wise rescheduling) or that ended
                        // it for good: counted, not a cause of anything
                        // that follows.
                        drain_revocations(&mut pending_revocations, f, false);
                    }
                    if current == Some(*job) {
                        current = None;
                    }
                }
                TraceEvent::TransferStart { from, to, at, .. } => {
                    open_transfers.entry((from.0, to.0)).or_default().push(at.0);
                }
                TraceEvent::TransferFinish { from, to, at, .. } => {
                    let started = open_transfers
                        .get_mut(&(from.0, to.0))
                        .and_then(|q| (!q.is_empty()).then(|| q.remove(0)));
                    if let (Some(started), Some(f)) =
                        (started, current.and_then(|c| folds.get_mut(&c)))
                    {
                        let attempt = f.dispatches.len() as u32;
                        f.transfers.push((attempt, SimTime(started), *at));
                    }
                }
                _ => {}
            }
        }

        let jobs = profile
            .jobs
            .iter()
            .map(|jp| build_job_tree(jp, folds.remove(&jp.job).unwrap_or_default()))
            .collect();
        SpanTree {
            jobs,
            unclosed_jobs: profile.unclosed_jobs,
            skipped_lines: 0,
        }
    }

    /// Fold a JSONL trace. Unparseable lines are counted in
    /// [`SpanTree::skipped_lines`] and skipped.
    pub fn from_jsonl(text: &str) -> SpanTree {
        let (events, skipped) = TraceEvent::from_jsonl(text);
        let mut t = SpanTree::from_events(&events);
        t.skipped_lines = skipped;
        t
    }

    /// Aggregate critical-path composition across all closed jobs.
    pub fn composition(&self) -> Composition {
        let mut c = Composition {
            jobs: self.jobs.len(),
            completed: self.jobs.iter().filter(|j| j.completed).count(),
            total_us: 0,
            phase_us: [0; 5],
            dominant_jobs: [0; 5],
            transfers: 0,
            revocations: 0,
        };
        for j in &self.jobs {
            c.total_us += j.makespan_us();
            for s in &j.spans {
                if let Some(p) = s.kind.phase() {
                    if s.partition {
                        c.phase_us[phase_index(p)] += s.us();
                    }
                }
                if s.kind == SpanKind::Transfer {
                    c.transfers += 1;
                }
                c.revocations += u64::from(s.revocations);
            }
            c.dominant_jobs[phase_index(j.dominant_phase())] += 1;
        }
        c
    }

    /// Byte-deterministic JSONL export: one object per span, jobs in
    /// submission order, spans in arena (pre-)order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for j in &self.jobs {
            let class = j.class.replace('\\', "\\\\").replace('"', "\\\"");
            for (i, s) in j.spans.iter().enumerate() {
                let parent = match s.parent {
                    Some(p) => p.to_string(),
                    None => "null".to_string(),
                };
                let causes: Vec<String> = s.causes.iter().map(Cause::to_json).collect();
                let _ = writeln!(
                    out,
                    "{{\"job\":{},\"class\":\"{}\",\"span\":{i},\"parent\":{parent},\
                     \"kind\":\"{}\",\"attempt\":{},\"start\":{},\"end\":{},\
                     \"partition\":{},\"revocations\":{},\"causes\":[{}]}}",
                    j.job,
                    class,
                    s.kind.name(),
                    s.attempt,
                    s.start.0,
                    s.end.0,
                    s.partition,
                    s.revocations,
                    causes.join(",")
                );
            }
        }
        out
    }

    /// Human-readable tree rendering: one indented block per job, each
    /// span with its interval, duration and causes, then the
    /// composition line.
    pub fn render(&self) -> String {
        let mut out = String::new();
        for j in &self.jobs {
            let root = j.root();
            let _ = writeln!(
                out,
                "job {} {} [{:.3}s .. {:.3}s] {} attempts={}",
                j.job,
                j.class,
                root.start.as_secs_f64(),
                root.end.as_secs_f64(),
                if j.completed { "completed" } else { "failed" },
                j.attempts
            );
            for s in j.spans.iter().skip(1) {
                // Depth = chain length to the root.
                let mut depth = 0usize;
                let mut p = s.parent;
                while let Some(i) = p {
                    depth += 1;
                    p = j.spans[i].parent;
                }
                let indent = "  ".repeat(depth);
                let mut line = format!(
                    "{indent}{} [{:.3}s .. {:.3}s] {:.3}s",
                    s.kind.name(),
                    s.start.as_secs_f64(),
                    s.end.as_secs_f64(),
                    SimTime(s.us()).as_secs_f64()
                );
                if s.kind == SpanKind::Attempt {
                    let _ = write!(line, " (attempt {})", s.attempt);
                }
                if s.revocations > 0 {
                    let _ = write!(line, " revocations={}", s.revocations);
                }
                for c in &s.causes {
                    let _ = write!(line, " <- {}", c.render());
                }
                let _ = writeln!(out, "{line}");
            }
            let _ = writeln!(
                out,
                "  critical path: {}",
                j.critical_path()
                    .iter()
                    .filter(|s| s.us() > 0)
                    .map(|s| format!("{} {:.3}s", s.kind.name(), SimTime(s.us()).as_secs_f64()))
                    .collect::<Vec<_>>()
                    .join(" -> ")
            );
        }
        let _ = writeln!(out, "{}", self.composition().render());
        if self.unclosed_jobs > 0 {
            let _ = writeln!(
                out,
                "note: {} job(s) still open at end of trace",
                self.unclosed_jobs
            );
        }
        if self.skipped_lines > 0 {
            let _ = writeln!(
                out,
                "note: {} unparseable line(s) skipped",
                self.skipped_lines
            );
        }
        out
    }
}

/// Assemble one job's span arena from its profile row (authoritative
/// phase durations) and the fold (attempt boundaries, causes,
/// transfers).
fn build_job_tree(jp: &crate::profile::JobProfile, fold: JobFold) -> JobSpanTree {
    let mut spans = Vec::new();
    spans.push(Span {
        kind: SpanKind::Job,
        start: jp.submit,
        end: jp.finish,
        parent: None,
        attempt: 0,
        partition: false,
        causes: Vec::new(),
        revocations: 0,
    });
    spans.push(Span {
        kind: SpanKind::QueueWait,
        start: jp.submit,
        end: jp.first_dispatch,
        parent: Some(0),
        attempt: 0,
        partition: true,
        causes: Vec::new(),
        revocations: 0,
    });

    let n = fold.dispatches.len();
    let mut attempt_span_idx: Vec<usize> = Vec::with_capacity(n);
    for (i, &d) in fold.dispatches.iter().enumerate() {
        let is_final = i + 1 == n;
        let end = if is_final {
            jp.finish
        } else {
            fold.dispatches[i + 1]
        };
        let idx = spans.len();
        attempt_span_idx.push(idx);
        spans.push(Span {
            kind: SpanKind::Attempt,
            start: d,
            end,
            parent: Some(0),
            attempt: (i + 1) as u32,
            partition: false,
            causes: fold.attempt_causes.get(i).cloned().unwrap_or_default(),
            revocations: fold.attempt_revocations.get(i).copied().unwrap_or(0),
        });
        if is_final {
            // The final window splits exactly as simprof attributes it.
            let compute_us = jp.bucket_us(Phase::Compute);
            let border_us = jp.bucket_us(Phase::BorderExchange);
            let c0 = d;
            let c1 = SimTime(c0.0 + compute_us);
            let b1 = SimTime(c1.0 + border_us);
            for (kind, s, e) in [
                (SpanKind::Compute, c0, c1),
                (SpanKind::BorderExchange, c1, b1),
                (SpanKind::ContentionWait, b1, jp.finish),
            ] {
                spans.push(Span {
                    kind,
                    start: s,
                    end: e,
                    parent: Some(idx),
                    attempt: (i + 1) as u32,
                    partition: true,
                    causes: Vec::new(),
                    revocations: 0,
                });
            }
        } else {
            // Everything between two dispatches — the failed run, its
            // backoff, and any re-queue wait — is retry-backoff, the
            // same lump simprof charges to that phase.
            spans.push(Span {
                kind: SpanKind::RetryBackoff,
                start: d,
                end,
                parent: Some(idx),
                attempt: (i + 1) as u32,
                partition: true,
                causes: Vec::new(),
                revocations: 0,
            });
        }
    }

    for (attempt, start, end) in fold.transfers {
        let slot = (attempt as usize)
            .min(attempt_span_idx.len())
            .saturating_sub(1);
        let Some(&parent) = attempt_span_idx.get(slot) else {
            continue;
        };
        spans.push(Span {
            kind: SpanKind::Transfer,
            start,
            end,
            parent: Some(parent),
            attempt,
            partition: false,
            causes: Vec::new(),
            revocations: 0,
        });
    }

    JobSpanTree {
        job: jp.job,
        class: jp.kind.clone(),
        completed: jp.completed,
        attempts: jp.attempts,
        spans,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    /// Same shape as simprof's test stream: one job, a revoked first
    /// attempt, a successful second attempt with a transfer.
    fn retry_stream() -> Vec<TraceEvent> {
        vec![
            TraceEvent::JobSubmitted {
                job: 0,
                kind: "jacobi".into(),
                at: t(0.0),
            },
            TraceEvent::JobDispatched {
                job: 0,
                at: t(2.0),
                attempt: 1,
            },
            TraceEvent::ComputeStart {
                host: HostId(1),
                at: t(2.0),
                work_mflop: 10.0,
            },
            TraceEvent::PlacementRevoked {
                host: HostId(1),
                at: t(4.0),
            },
            TraceEvent::JobRetried {
                job: 0,
                at: t(5.0),
                attempt: 1,
            },
            TraceEvent::JobDispatched {
                job: 0,
                at: t(5.0),
                attempt: 2,
            },
            TraceEvent::ComputeStart {
                host: HostId(2),
                at: t(5.0),
                work_mflop: 10.0,
            },
            TraceEvent::ComputeStart {
                host: HostId(3),
                at: t(5.0),
                work_mflop: 10.0,
            },
            TraceEvent::TransferStart {
                from: HostId(2),
                to: HostId(3),
                at: t(5.0),
                mb: 4.0,
            },
            TraceEvent::TransferFinish {
                from: HostId(2),
                to: HostId(3),
                at: t(7.0),
                mb: 4.0,
                contention_share: 0.5,
            },
            TraceEvent::ComputeFinish {
                host: HostId(2),
                at: t(9.0),
                elapsed_seconds: 3.0,
            },
            TraceEvent::ComputeFinish {
                host: HostId(3),
                at: t(9.0),
                elapsed_seconds: 3.0,
            },
            TraceEvent::JobCompleted {
                job: 0,
                at: t(11.0),
                exec_seconds: 9.0,
            },
        ]
    }

    #[test]
    fn partition_leaves_tile_the_makespan_exactly() {
        let tree = SpanTree::from_events(&retry_stream());
        assert_eq!(tree.jobs.len(), 1);
        let j = &tree.jobs[0];
        let leaves = j.critical_path();
        // Contiguous: each leaf starts where the previous ended.
        let mut cursor = j.root().start;
        for leaf in &leaves {
            assert_eq!(leaf.start, cursor, "gap before {}", leaf.kind.name());
            cursor = leaf.end;
        }
        assert_eq!(cursor, j.root().end);
        let sum: u64 = leaves.iter().map(|s| s.us()).sum();
        assert_eq!(sum, j.makespan_us());
        assert_eq!(j.makespan_us(), 11_000_000);
    }

    #[test]
    fn spans_reconcile_with_simprof_to_zero_microseconds() {
        let events = retry_stream();
        let tree = SpanTree::from_events(&events);
        let profile = Profile::from_events(&events);
        let j = &tree.jobs[0];
        let jp = &profile.jobs[0];
        for phase in PHASES {
            let span_us: u64 = j
                .spans
                .iter()
                .filter(|s| s.partition && s.kind.phase() == Some(phase))
                .map(|s| s.us())
                .sum();
            assert_eq!(span_us, jp.bucket_us(phase), "phase {}", phase.name());
        }
    }

    #[test]
    fn causes_link_revocation_retry_and_transfers_attach() {
        let tree = SpanTree::from_events(&retry_stream());
        let j = &tree.jobs[0];
        let attempt1 = j
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Attempt && s.attempt == 1)
            .unwrap();
        // The revocation was absorbed by (and counted against) the
        // attempt it killed.
        assert_eq!(attempt1.revocations, 1);
        let attempt2 = j
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Attempt && s.attempt == 2)
            .unwrap();
        assert!(attempt2
            .causes
            .contains(&Cause::Retried { failed_attempt: 1 }));
        assert!(attempt2.causes.contains(&Cause::Revoked {
            host: HostId(1),
            at: t(4.0),
        }));
        // The transfer annotation hangs off attempt 2 and is excluded
        // from the partition.
        let transfer = j
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Transfer)
            .unwrap();
        assert_eq!(transfer.attempt, 2);
        assert!(!transfer.partition);
        assert_eq!(j.spans[transfer.parent.unwrap()].attempt, 2);
    }

    #[test]
    fn backfill_cause_attaches_to_the_dispatch_it_started() {
        let events = vec![
            TraceEvent::JobSubmitted {
                job: 3,
                kind: "nile".into(),
                at: t(0.0),
            },
            TraceEvent::JobBackfilled {
                job: 3,
                at: t(2.0),
                reservation: t(50.0),
            },
            TraceEvent::JobDispatched {
                job: 3,
                at: t(2.0),
                attempt: 1,
            },
            TraceEvent::JobCompleted {
                job: 3,
                at: t(6.0),
                exec_seconds: 4.0,
            },
        ];
        let tree = SpanTree::from_events(&events);
        let j = &tree.jobs[0];
        let attempt = j
            .spans
            .iter()
            .find(|s| s.kind == SpanKind::Attempt)
            .unwrap();
        assert_eq!(
            attempt.causes,
            vec![Cause::Backfilled {
                reservation: t(50.0)
            }]
        );
    }

    #[test]
    fn work_measured_splits_fractional_window_into_compute() {
        // A fractional-regime job: no executor events, but the
        // scheduler published the dedicated-equivalent work.
        let events = vec![
            TraceEvent::JobSubmitted {
                job: 0,
                kind: "jacobi".into(),
                at: t(0.0),
            },
            TraceEvent::JobDispatched {
                job: 0,
                at: t(1.0),
                attempt: 1,
            },
            TraceEvent::JobWorkMeasured {
                job: 0,
                at: t(1.0),
                dedicated_seconds: 6.0,
            },
            TraceEvent::JobCompleted {
                job: 0,
                at: t(11.0),
                exec_seconds: 10.0,
            },
        ];
        let tree = SpanTree::from_events(&events);
        let j = &tree.jobs[0];
        let us = |kind: SpanKind| -> u64 {
            j.spans
                .iter()
                .filter(|s| s.kind == kind)
                .map(|s| s.us())
                .sum()
        };
        // 10 s window: 6 s dedicated compute, 4 s PS dilution.
        assert_eq!(us(SpanKind::Compute), 6_000_000);
        assert_eq!(us(SpanKind::ContentionWait), 4_000_000);
        assert_eq!(j.dominant_phase(), Phase::Compute);
    }

    #[test]
    fn jsonl_and_render_are_byte_deterministic() {
        let events = retry_stream();
        let a = SpanTree::from_events(&events);
        let b = SpanTree::from_events(&events);
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.render(), b.render());
        assert!(a.to_jsonl().contains("\"kind\":\"retry-backoff\""));
        assert!(a.render().contains("critical path:"));
        // And via the trace-text path.
        let jsonl: String = events
            .iter()
            .map(|e| format!("{}\n", e.to_json()))
            .collect();
        let c = SpanTree::from_jsonl(&jsonl);
        assert_eq!(c.to_jsonl(), a.to_jsonl());
    }

    #[test]
    fn composition_aggregates_and_serializes() {
        let tree = SpanTree::from_events(&retry_stream());
        let c = tree.composition();
        assert_eq!(c.jobs, 1);
        assert_eq!(c.completed, 1);
        assert_eq!(c.total_us, 11_000_000);
        let sum: u64 = c.phase_us.iter().sum();
        assert_eq!(sum, c.total_us);
        assert_eq!(c.transfers, 1);
        assert_eq!(c.revocations, 1);
        let json = c.to_json();
        assert!(json.contains("\"total_us\":11000000"));
        assert_eq!(json, tree.composition().to_json());
    }

    #[test]
    fn empty_trace_folds_cleanly() {
        let tree = SpanTree::from_events(&[]);
        assert!(tree.jobs.is_empty());
        assert_eq!(tree.to_jsonl(), "");
        let c = tree.composition();
        assert_eq!(c.total_us, 0);
        assert_eq!(c.share(Phase::Compute), 0.0);
    }
}
