//! A windowed, deterministic time-series engine over the simtrace
//! stream.
//!
//! The metrics registry answers "what were the totals at the end of the
//! run"; this module answers "what was happening at minute 12" — the
//! view that makes two scheduling regimes comparable *over time* rather
//! than only in aggregate. A [`TimeSeriesSink`] folds events into
//! per-window rows as they are emitted:
//!
//! * per-kind event counts (the `apples_events_total` families, now
//!   with a time axis),
//! * busy compute seconds, spread across the windows each worker's
//!   `[finish - elapsed, finish]` interval overlaps,
//! * transfer megabytes and mean contention share,
//! * imposed-load capacity loss (host-seconds lost to background
//!   load, `(1 - factor) ×` overlap),
//! * and, at [`TimeSeriesSink::finalize`], the running gauges:
//!   queue depth (submitted + retried − dispatched), backlog
//!   (submitted − completed − failed) and utilization
//!   (busy seconds / window width).
//!
//! Windows are either fixed-width ([`WindowMode::Fixed`]) or
//! event-aligned ([`WindowMode::EventAligned`], one row per distinct
//! event timestamp — exact change points, no quantization). Rows live
//! in a `BTreeMap` keyed by window start, so out-of-emission-order
//! events (a fractional scheduler writing back load windows with past
//! timestamps at the end of its run) land in the right window without
//! any flushing discipline.
//!
//! The fold is allocation-conscious: each row is a fixed-size
//! accumulator (a per-kind count array, no per-event strings or maps);
//! the only steady-state allocation is the `BTreeMap` node when a
//! window is first touched. Export is byte-deterministic: windows in
//! ascending order, floats in fixed 6-decimal form, per-kind counts in
//! canonical kind order.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use metasim::simtrace::{EventSink, TraceEvent};
use metasim::SimTime;

/// Canonical trace-event kinds, in taxonomy order. Row exports list
/// per-kind counts in this order.
pub const KINDS: [&str; 22] = [
    "compute_start",
    "compute_finish",
    "transfer_start",
    "transfer_finish",
    "host_fault_injected",
    "link_fault_injected",
    "placement_revoked",
    "load_imposed",
    "forecast_issued",
    "resource_selection",
    "candidate_considered",
    "schedule_chosen",
    "actuated",
    "reschedule_triggered",
    "reschedule_decision",
    "job_submitted",
    "job_dispatched",
    "job_retried",
    "job_backfilled",
    "job_work_measured",
    "job_completed",
    "job_failed",
];

fn kind_index(kind: &str) -> Option<usize> {
    KINDS.iter().position(|&k| k == kind)
}

const I_JOB_SUBMITTED: usize = 15;
const I_JOB_DISPATCHED: usize = 16;
const I_JOB_RETRIED: usize = 17;
const I_JOB_COMPLETED: usize = 20;
const I_JOB_FAILED: usize = 21;

/// How event time maps to rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WindowMode {
    /// Fixed-width windows of the given width; interval quantities
    /// (busy seconds, imposed load) are spread across every window
    /// they overlap.
    Fixed(SimTime),
    /// One row per distinct event timestamp; interval quantities are
    /// charged to the row of the event that reports them.
    EventAligned,
}

/// Fixed-size per-window accumulator.
#[derive(Debug, Clone, PartialEq)]
struct RowAcc {
    kinds: [u64; 22],
    busy_seconds: f64,
    mb: f64,
    imposed_load_seconds: f64,
    share_sum: f64,
    share_count: u64,
}

impl RowAcc {
    fn new() -> RowAcc {
        RowAcc {
            kinds: [0; 22],
            busy_seconds: 0.0,
            mb: 0.0,
            imposed_load_seconds: 0.0,
            share_sum: 0.0,
            share_count: 0,
        }
    }
}

/// One finalized window.
#[derive(Debug, Clone, PartialEq)]
pub struct Row {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive; for event-aligned rows, the next row's
    /// start, or `start` for the final row).
    pub end: SimTime,
    /// Events recorded in the window.
    pub events: u64,
    /// Per-kind event counts, [`KINDS`] order.
    pub kinds: [u64; 22],
    /// Compute seconds overlapping the window.
    pub busy_seconds: f64,
    /// Megabytes delivered in the window.
    pub mb: f64,
    /// Host-seconds of capacity lost to imposed background load.
    pub imposed_load_seconds: f64,
    /// Mean transfer contention share of transfers finishing in the
    /// window (`None` when no transfer finished).
    pub mean_share: Option<f64>,
    /// Busy seconds over window width (mean busy hosts; 0 for
    /// zero-width rows).
    pub utilization: f64,
    /// Jobs submitted or awaiting retry but not yet dispatched, at
    /// window end.
    pub queue_depth: u64,
    /// Jobs submitted but neither completed nor failed, at window end.
    pub backlog: u64,
}

/// A finalized series.
#[derive(Debug, Clone, PartialEq)]
pub struct TimeSeries {
    /// Rows in ascending window order.
    pub rows: Vec<Row>,
}

impl TimeSeries {
    /// Byte-deterministic JSONL export, one row per line. Per-kind
    /// counts include only non-zero kinds, in canonical order.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.rows {
            let mut kinds = String::new();
            for (i, name) in KINDS.iter().enumerate() {
                if r.kinds[i] == 0 {
                    continue;
                }
                if !kinds.is_empty() {
                    kinds.push(',');
                }
                let _ = write!(kinds, "\"{name}\":{}", r.kinds[i]);
            }
            let share = match r.mean_share {
                Some(s) => format!("{s:.6}"),
                None => "null".to_string(),
            };
            let _ = writeln!(
                out,
                "{{\"start\":{},\"end\":{},\"events\":{},\"busy_seconds\":{:.6},\
                 \"mb\":{:.6},\"imposed_load_seconds\":{:.6},\"mean_share\":{share},\
                 \"utilization\":{:.6},\"queue_depth\":{},\"backlog\":{},\"kinds\":{{{kinds}}}}}",
                r.start.0,
                r.end.0,
                r.events,
                r.busy_seconds,
                r.mb,
                r.imposed_load_seconds,
                r.utilization,
                r.queue_depth,
                r.backlog,
            );
        }
        out
    }

    /// Compact human rendering: one line per row with the headline
    /// gauges.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>10} {:>8} {:>10} {:>8} {:>8} {:>7} {:>7}",
            "window", "events", "busy", "util", "mb", "queue", "backlog"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:>9.1}s {:>8} {:>9.3}s {:>8.3} {:>8.2} {:>7} {:>7}",
                r.start.as_secs_f64(),
                r.events,
                r.busy_seconds,
                r.utilization,
                r.mb,
                r.queue_depth,
                r.backlog,
            );
        }
        out
    }
}

/// An [`EventSink`] folding the stream into windowed rows.
#[derive(Debug)]
pub struct TimeSeriesSink {
    mode: WindowMode,
    width_us: u64,
    rows: BTreeMap<u64, RowAcc>,
}

impl TimeSeriesSink {
    /// A sink with the given window mode. Fixed widths are clamped to
    /// at least 1 µs.
    pub fn new(mode: WindowMode) -> TimeSeriesSink {
        let width_us = match mode {
            WindowMode::Fixed(w) => w.0.max(1),
            WindowMode::EventAligned => 0,
        };
        TimeSeriesSink {
            mode,
            width_us,
            rows: BTreeMap::new(),
        }
    }

    /// Fixed windows of `seconds` width.
    pub fn fixed_seconds(seconds: f64) -> TimeSeriesSink {
        TimeSeriesSink::new(WindowMode::Fixed(SimTime::from_secs_f64(seconds.max(0.0))))
    }

    fn window_start(&self, at: SimTime) -> u64 {
        match self.mode {
            WindowMode::Fixed(_) => (at.0 / self.width_us) * self.width_us,
            WindowMode::EventAligned => at.0,
        }
    }

    fn row(&mut self, at: SimTime) -> &mut RowAcc {
        let key = self.window_start(at);
        self.rows.entry(key).or_insert_with(RowAcc::new)
    }

    /// Spread `amount` (in seconds-like units) over the windows the
    /// interval `[start, end]` overlaps, proportionally to overlap. In
    /// event-aligned mode the whole amount is charged to the reporting
    /// row at `report_at`.
    fn spread(
        &mut self,
        start: SimTime,
        end: SimTime,
        report_at: SimTime,
        amount: f64,
        to_busy: bool,
    ) {
        if !amount.is_finite() || amount.total_cmp(&0.0).is_le() {
            return;
        }
        let add = |acc: &mut RowAcc, v: f64| {
            if to_busy {
                acc.busy_seconds += v;
            } else {
                acc.imposed_load_seconds += v;
            }
        };
        if matches!(self.mode, WindowMode::EventAligned) || end.0 <= start.0 {
            add(self.row(report_at), amount);
            return;
        }
        let span = (end.0 - start.0) as f64;
        let w = self.width_us;
        let first = (start.0 / w) * w;
        let mut win = first;
        while win < end.0 {
            let win_end = win + w;
            let overlap = (end.0.min(win_end) - start.0.max(win)) as f64;
            if overlap > 0.0 {
                add(
                    self.rows.entry(win).or_insert_with(RowAcc::new),
                    amount * overlap / span,
                );
            }
            win = win_end;
        }
    }

    /// Finalize into rows, computing the running gauges in window
    /// order.
    pub fn finalize(&self) -> TimeSeries {
        let mut rows = Vec::with_capacity(self.rows.len());
        let starts: Vec<u64> = self.rows.keys().copied().collect();
        let mut submitted = 0u64;
        let mut dispatched = 0u64;
        let mut retried = 0u64;
        let mut completed = 0u64;
        let mut failed = 0u64;
        for (i, (&start, acc)) in self.rows.iter().enumerate() {
            submitted += acc.kinds[I_JOB_SUBMITTED];
            dispatched += acc.kinds[I_JOB_DISPATCHED];
            retried += acc.kinds[I_JOB_RETRIED];
            completed += acc.kinds[I_JOB_COMPLETED];
            failed += acc.kinds[I_JOB_FAILED];
            let end = match self.mode {
                WindowMode::Fixed(_) => start + self.width_us,
                WindowMode::EventAligned => starts.get(i + 1).copied().unwrap_or(start),
            };
            let width_secs = SimTime(end.saturating_sub(start)).as_secs_f64();
            let utilization = if width_secs > 0.0 {
                acc.busy_seconds / width_secs
            } else {
                0.0
            };
            rows.push(Row {
                start: SimTime(start),
                end: SimTime(end),
                events: acc.kinds.iter().sum(),
                kinds: acc.kinds,
                busy_seconds: acc.busy_seconds,
                mb: acc.mb,
                imposed_load_seconds: acc.imposed_load_seconds,
                mean_share: (acc.share_count > 0).then(|| acc.share_sum / acc.share_count as f64),
                utilization,
                queue_depth: (submitted + retried).saturating_sub(dispatched),
                backlog: submitted.saturating_sub(completed + failed),
            });
        }
        TimeSeries { rows }
    }
}

impl EventSink for TimeSeriesSink {
    fn record(&mut self, event: TraceEvent) {
        let at = event.at();
        if let Some(i) = kind_index(event.kind()) {
            self.row(at).kinds[i] += 1;
        }
        match &event {
            TraceEvent::ComputeFinish {
                at,
                elapsed_seconds,
                ..
            } => {
                let elapsed = if elapsed_seconds.is_finite() {
                    elapsed_seconds.max(0.0)
                } else {
                    0.0
                };
                let start = SimTime(at.0.saturating_sub(SimTime::from_secs_f64(elapsed).0));
                self.spread(start, *at, *at, elapsed, true);
            }
            TraceEvent::TransferFinish {
                at,
                mb,
                contention_share,
                ..
            } => {
                if mb.is_finite() {
                    self.row(*at).mb += mb.max(0.0);
                }
                if contention_share.is_finite() {
                    let r = self.row(*at);
                    r.share_sum += contention_share.clamp(0.0, 1.0);
                    r.share_count += 1;
                }
            }
            TraceEvent::LoadImposed {
                at, until, factor, ..
            } => {
                let loss_rate = if factor.is_finite() {
                    (1.0 - factor.clamp(0.0, 1.0)).max(0.0)
                } else {
                    0.0
                };
                let seconds = until.saturating_sub(*at).as_secs_f64() * loss_rate;
                self.spread(*at, *until, *at, seconds, false);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metasim::HostId;

    fn t(secs: f64) -> SimTime {
        SimTime::from_secs_f64(secs)
    }

    fn stream() -> Vec<TraceEvent> {
        vec![
            TraceEvent::JobSubmitted {
                job: 0,
                kind: "jacobi".into(),
                at: t(5.0),
            },
            TraceEvent::JobDispatched {
                job: 0,
                at: t(12.0),
                attempt: 1,
            },
            TraceEvent::TransferFinish {
                from: HostId(0),
                to: HostId(1),
                at: t(14.0),
                mb: 8.0,
                contention_share: 0.5,
            },
            // 20 s of compute over [15, 35]: spans windows [10,20),
            // [20,30), [30,40).
            TraceEvent::ComputeFinish {
                host: HostId(1),
                at: t(35.0),
                elapsed_seconds: 20.0,
            },
            TraceEvent::JobCompleted {
                job: 0,
                at: t(35.0),
                exec_seconds: 23.0,
            },
        ]
    }

    #[test]
    fn fixed_windows_spread_busy_time_proportionally() {
        let mut sink = TimeSeriesSink::fixed_seconds(10.0);
        for e in stream() {
            sink.record(e);
        }
        let ts = sink.finalize();
        let by_start: BTreeMap<u64, &Row> = ts.rows.iter().map(|r| (r.start.0, r)).collect();
        assert!((by_start[&10_000_000].busy_seconds - 5.0).abs() < 1e-9);
        assert!((by_start[&20_000_000].busy_seconds - 10.0).abs() < 1e-9);
        assert!((by_start[&30_000_000].busy_seconds - 5.0).abs() < 1e-9);
        assert!((by_start[&20_000_000].utilization - 1.0).abs() < 1e-9);
        let total: f64 = ts.rows.iter().map(|r| r.busy_seconds).sum();
        assert!((total - 20.0).abs() < 1e-9);
        assert!((by_start[&10_000_000].mb - 8.0).abs() < 1e-9);
        assert_eq!(by_start[&10_000_000].mean_share, Some(0.5));
        assert_eq!(by_start[&0].mean_share, None);
    }

    #[test]
    fn gauges_run_cumulatively_across_windows() {
        let mut sink = TimeSeriesSink::fixed_seconds(10.0);
        for e in stream() {
            sink.record(e);
        }
        let ts = sink.finalize();
        let by_start: BTreeMap<u64, &Row> = ts.rows.iter().map(|r| (r.start.0, r)).collect();
        // After window [0,10): submitted, not yet dispatched.
        assert_eq!(by_start[&0].queue_depth, 1);
        assert_eq!(by_start[&0].backlog, 1);
        // After [10,20): dispatched.
        assert_eq!(by_start[&10_000_000].queue_depth, 0);
        assert_eq!(by_start[&10_000_000].backlog, 1);
        // After [30,40): completed.
        assert_eq!(by_start[&30_000_000].backlog, 0);
    }

    #[test]
    fn event_aligned_rows_are_exact_change_points() {
        let mut sink = TimeSeriesSink::new(WindowMode::EventAligned);
        for e in stream() {
            sink.record(e);
        }
        let ts = sink.finalize();
        let starts: Vec<u64> = ts.rows.iter().map(|r| r.start.0).collect();
        assert_eq!(starts, vec![5_000_000, 12_000_000, 14_000_000, 35_000_000]);
        // Rows tile: each end is the next start.
        for w in ts.rows.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
        // Busy time is charged to the reporting row.
        assert!((ts.rows[3].busy_seconds - 20.0).abs() < 1e-9);
    }

    #[test]
    fn out_of_order_load_events_land_in_their_window() {
        let mut sink = TimeSeriesSink::fixed_seconds(10.0);
        // The lifecycle runs to 35 s first…
        for e in stream() {
            sink.record(e);
        }
        // …then a fractional scheduler writes back a load window with a
        // past timestamp: [12, 22] at factor 0.5 → 5 host-seconds lost.
        sink.record(TraceEvent::LoadImposed {
            host: HostId(1),
            at: t(12.0),
            until: t(22.0),
            factor: 0.5,
        });
        let ts = sink.finalize();
        let by_start: BTreeMap<u64, &Row> = ts.rows.iter().map(|r| (r.start.0, r)).collect();
        assert!((by_start[&10_000_000].imposed_load_seconds - 4.0).abs() < 1e-9);
        assert!((by_start[&20_000_000].imposed_load_seconds - 1.0).abs() < 1e-9);
    }

    #[test]
    fn jsonl_is_byte_deterministic_and_parsable_shape() {
        let run = || {
            let mut sink = TimeSeriesSink::fixed_seconds(10.0);
            for e in stream() {
                sink.record(e);
            }
            sink.finalize().to_jsonl()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("\"job_submitted\":1"));
        assert!(a.contains("\"mean_share\":null"));
        assert!(a.lines().count() == 4);
        let r = run();
        let rendered = {
            let mut sink = TimeSeriesSink::fixed_seconds(10.0);
            for e in stream() {
                sink.record(e);
            }
            sink.finalize().render()
        };
        assert!(rendered.contains("backlog"));
        assert!(!r.is_empty());
    }

    #[test]
    fn every_trace_kind_is_indexed() {
        // KINDS must stay in sync with the TraceEvent taxonomy; a new
        // variant without a slot would silently drop from rows.
        let probe = TraceEvent::JobWorkMeasured {
            job: 0,
            at: t(1.0),
            dedicated_seconds: 2.0,
        };
        assert!(kind_index(probe.kind()).is_some());
        assert_eq!(KINDS.len(), 22);
    }
}
