//! Mid-execution rescheduling (§3.2).
//!
//! "Dynamic and predictive information can be used to determine both a
//! potentially performance-efficient initial schedule, and to make
//! decisions about redistribution of the application during
//! execution." One-shot scheduling bets on the forecast holding for
//! the whole run; when the load regime shifts mid-run (a user logs in,
//! a batch job starts), the bet goes bad.
//!
//! [`ReschedulingAgent`] executes an iterative application in *phases*.
//! After each phase it refreshes the Weather Service, re-runs the
//! blueprint for the remaining iterations, and migrates only when the
//! predicted saving exceeds the predicted cost of moving the data —
//! the same application-centric calculus as the initial decision.

use crate::actuator::actuate_with_sink;
use crate::coordinator::Coordinator;
use crate::error::ApplesError;
use crate::estimator::estimate_stencil;
use crate::hat::{Hat, StencilTemplate};
use crate::info::InfoPool;
use crate::schedule::{Schedule, StencilSchedule};
use metasim::net::{simulate_transfers, TransferReq};
use metasim::simtrace::{EventSink, NoopSink, TraceEvent};
use metasim::{HostId, SimTime, Topology};
use nws::WeatherService;

/// Configuration of a rescheduling run.
#[derive(Debug, Clone, Copy)]
pub struct ReschedulePolicy {
    /// Iterations executed between scheduling points.
    pub phase_iterations: usize,
    /// Migrate only when the predicted remaining time under the new
    /// schedule, plus migration cost, undercuts the current schedule's
    /// predicted remaining time by this factor (e.g. `0.9` demands a
    /// 10% predicted saving).
    pub improvement_threshold: f64,
}

impl Default for ReschedulePolicy {
    fn default() -> Self {
        ReschedulePolicy {
            phase_iterations: 20,
            improvement_threshold: 0.9,
        }
    }
}

/// One executed phase in the report.
#[derive(Debug, Clone)]
pub struct PhaseRecord {
    /// Simulated time the phase started.
    pub start: SimTime,
    /// Iterations executed in this phase.
    pub iterations: usize,
    /// Seconds the phase took.
    pub elapsed_seconds: f64,
    /// Whether the agent migrated to a new schedule before this phase.
    pub migrated: bool,
    /// Seconds spent moving data for the migration (zero if none).
    pub migration_seconds: f64,
    /// Hosts used in this phase.
    pub hosts: Vec<HostId>,
    /// Per-host wall-clock seconds spent in the compute phase, in
    /// `hosts` order — what a service needs to write the phase's load
    /// back into the topology.
    pub compute_seconds: Vec<f64>,
}

/// Outcome of a rescheduling run.
#[derive(Debug, Clone)]
pub struct RescheduleReport {
    /// Completion time.
    pub finish: SimTime,
    /// Total wall-clock seconds including migrations.
    pub elapsed_seconds: f64,
    /// Number of migrations performed.
    pub migrations: usize,
    /// Number of phases abandoned because a host died under them (the
    /// remnant work was re-planned onto the survivors).
    pub revocations: usize,
    /// Per-phase details.
    pub phases: Vec<PhaseRecord>,
}

/// An agent that reconsiders its schedule between phases.
#[derive(Debug, Clone)]
pub struct ReschedulingAgent {
    /// The underlying one-shot agent.
    pub coordinator: Coordinator,
    /// Phase length and migration threshold.
    pub policy: ReschedulePolicy,
}

impl ReschedulingAgent {
    /// Wrap a coordinator with the default policy.
    pub fn new(coordinator: Coordinator) -> Self {
        ReschedulingAgent {
            coordinator,
            policy: ReschedulePolicy::default(),
        }
    }

    /// Execute a stencil application with phase-wise rescheduling.
    ///
    /// The weather service is advanced to each scheduling point, so
    /// every re-plan sees measurements up to (but never beyond) the
    /// current simulated time.
    pub fn run_stencil(
        &self,
        topo: &Topology,
        weather: &mut WeatherService,
        start: SimTime,
    ) -> Result<RescheduleReport, ApplesError> {
        self.run_stencil_with_sink(topo, weather, start, &mut NoopSink)
    }

    /// [`Self::run_stencil`], streaming every re-plan's trigger, the
    /// keep/migrate calculus, revocations, and the underlying executor
    /// events into `sink`.
    pub fn run_stencil_with_sink(
        &self,
        topo: &Topology,
        weather: &mut WeatherService,
        start: SimTime,
        sink: &mut dyn EventSink,
    ) -> Result<RescheduleReport, ApplesError> {
        let template = self
            .coordinator
            .hat
            .as_stencil()
            .ok_or(ApplesError::TemplateMismatch {
                expected: "iterative-stencil",
                found: self.coordinator.hat.class_name(),
            })?
            .clone();
        if self.policy.phase_iterations == 0 {
            return Err(ApplesError::Invalid("phase_iterations must be ≥ 1".into()));
        }

        let mut now = start;
        let mut remaining = template.iterations;
        let mut phases = Vec::new();
        let mut migrations = 0usize;
        let mut revocations = 0usize;
        let mut current: Option<StencilSchedule> = None;
        // Hosts discovered dead at runtime (a phase failed on them).
        let mut known_dead: Vec<metasim::HostId> = Vec::new();
        let mut failures = 0usize;

        while remaining > 0 {
            weather.advance_with_sink(topo, now, sink);
            let phase_iters = remaining.min(self.policy.phase_iterations);
            if sink.enabled() {
                sink.record(TraceEvent::RescheduleTriggered {
                    at: now,
                    phase: phases.len(),
                });
            }

            // Re-plan for everything still to do, excluding hosts we
            // have watched die.
            let mut user = self.coordinator.user.clone();
            user.excluded_hosts.extend(known_dead.iter().copied());
            let replan_hat = rescoped_hat(&self.coordinator.hat.name, &template, remaining);
            let pool = InfoPool::with_nws(topo, weather, &replan_hat, &user, now);
            let candidate = match self
                .coordinator_for(&replan_hat, &user)
                .decide_with_sink(&pool, sink)
            {
                Ok(d) => match d.schedule() {
                    Schedule::Stencil(s) => Some(s.clone()),
                    _ => None,
                },
                Err(_) => None,
            };

            let mut migrated = false;
            let mut migration_seconds = 0.0;
            match (&mut current, candidate) {
                (slot @ None, Some(cand)) => {
                    *slot = Some(cand);
                }
                (Some(cur), Some(cand)) if cand.parts != cur.parts => {
                    // Predicted remaining times under both schedules.
                    let keep_pred = predict_remaining(&pool, cur, remaining)?;
                    let move_pred = predict_remaining(&pool, &cand, remaining)?;
                    let move_cost = migration_cost(topo, &template, cur, &cand, now)?;
                    let migrate =
                        move_pred + move_cost < keep_pred * self.policy.improvement_threshold;
                    if sink.enabled() {
                        sink.record(TraceEvent::RescheduleDecision {
                            at: now,
                            keep_seconds: keep_pred,
                            move_seconds: move_pred,
                            move_cost_seconds: move_cost,
                            migrated: migrate,
                        });
                    }
                    if migrate {
                        migration_seconds = perform_migration(topo, &template, cur, &cand, now)?;
                        now += SimTime::from_secs_f64(migration_seconds);
                        *cur = cand;
                        migrated = true;
                        migrations += 1;
                    }
                }
                _ => {}
            }
            let sched = current.as_ref().ok_or(ApplesError::NoViableSchedule)?;

            // Execute one phase on the current schedule. Phase
            // boundaries act as checkpoints: if a host dies mid-phase
            // (work that never completes), the phase is abandoned, the
            // dead hosts are excluded, and the phase is re-planned and
            // re-run from the checkpoint.
            let phase_sched = StencilSchedule {
                n: sched.n,
                iterations: phase_iters,
                parts: sched.parts.clone(),
            };
            let report = match actuate_with_sink(
                topo,
                &rescoped_hat(&self.coordinator.hat.name, &template, phase_iters),
                &Schedule::Stencil(phase_sched.clone()),
                now,
                sink,
            ) {
                Ok(r) => r,
                Err(err) => {
                    let mut found_dead = false;
                    // A revocation names the failed host directly — the
                    // executor watched the placement die.
                    if let ApplesError::Sim(metasim::SimError::PlacementLost { host, .. }) = &err {
                        let h = metasim::HostId(*host);
                        if sink.enabled() {
                            sink.record(TraceEvent::PlacementRevoked { host: h, at: now });
                        }
                        if !known_dead.contains(&h) {
                            known_dead.push(h);
                            found_dead = true;
                        }
                    }
                    // Also identify hosts whose work can never finish:
                    // the availability process's final segment is pinned
                    // at zero, i.e. the host is (or becomes) permanently
                    // unavailable. This is what a real agent infers
                    // from a timeout: the resource is gone for good.
                    for h in phase_sched.hosts() {
                        let avail = topo.host(h)?.availability();
                        let dead_forever = avail
                            .points()
                            .last()
                            .map(|&(_, v)| v == 0.0)
                            .unwrap_or(false);
                        if dead_forever && !known_dead.contains(&h) {
                            if sink.enabled() {
                                sink.record(TraceEvent::PlacementRevoked { host: h, at: now });
                            }
                            known_dead.push(h);
                            found_dead = true;
                        }
                    }
                    failures += 1;
                    if !found_dead || failures > topo.hosts().len() {
                        return Err(err);
                    }
                    revocations += 1;
                    // Force a fresh decision next round.
                    current = None;
                    continue;
                }
            };
            let compute_seconds = match &report.detail {
                crate::actuator::ActuationDetail::Spmd(out) => out.compute_seconds.clone(),
                _ => Vec::new(),
            };
            phases.push(PhaseRecord {
                start: now,
                iterations: phase_iters,
                elapsed_seconds: report.elapsed_seconds,
                migrated,
                migration_seconds,
                hosts: phase_sched.hosts(),
                compute_seconds,
            });
            now = report.finish;
            remaining -= phase_iters;
        }

        Ok(RescheduleReport {
            finish: now,
            elapsed_seconds: now.saturating_sub(start).as_secs_f64(),
            migrations,
            revocations,
            phases,
        })
    }

    fn coordinator_for(&self, hat: &Hat, user: &crate::user::UserSpec) -> Coordinator {
        Coordinator {
            hat: hat.clone(),
            user: user.clone(),
            selector: self.coordinator.selector,
        }
    }
}

/// The same HAT with the iteration count replaced.
fn rescoped_hat(name: &str, template: &StencilTemplate, iterations: usize) -> Hat {
    let mut t = template.clone();
    t.iterations = iterations;
    Hat::stencil(name, t)
}

/// Predicted seconds to finish `remaining` iterations on `sched`.
fn predict_remaining(
    pool: &InfoPool<'_>,
    sched: &StencilSchedule,
    remaining: usize,
) -> Result<f64, ApplesError> {
    let rescoped = StencilSchedule {
        n: sched.n,
        iterations: remaining,
        parts: sched.parts.clone(),
    };
    estimate_stencil(pool, &rescoped)
}

/// Rows that must move between hosts to turn `from` into `to`:
/// per-host surplus/deficit matched greedily in strip order.
fn migration_moves(from: &StencilSchedule, to: &StencilSchedule) -> Vec<(HostId, HostId, usize)> {
    use std::collections::BTreeMap;
    let mut delta: BTreeMap<usize, i64> = BTreeMap::new();
    for p in &from.parts {
        *delta.entry(p.host.0).or_insert(0) += p.rows as i64;
    }
    for p in &to.parts {
        *delta.entry(p.host.0).or_insert(0) -= p.rows as i64;
    }
    let mut surplus: Vec<(usize, i64)> = delta
        .iter()
        .filter(|&(_, &d)| d > 0)
        .map(|(&h, &d)| (h, d))
        .collect();
    let mut deficit: Vec<(usize, i64)> = delta
        .iter()
        .filter(|&(_, &d)| d < 0)
        .map(|(&h, &d)| (h, -d))
        .collect();
    let mut moves = Vec::new();
    let (mut si, mut di) = (0usize, 0usize);
    while si < surplus.len() && di < deficit.len() {
        let take = surplus[si].1.min(deficit[di].1);
        moves.push((HostId(surplus[si].0), HostId(deficit[di].0), take as usize));
        surplus[si].1 -= take;
        deficit[di].1 -= take;
        if surplus[si].1 == 0 {
            si += 1;
        }
        if deficit[di].1 == 0 {
            di += 1;
        }
    }
    moves
}

/// Predicted cost of a migration (estimator view).
fn migration_cost(
    topo: &Topology,
    t: &crate::hat::StencilTemplate,
    from: &StencilSchedule,
    to: &StencilSchedule,
    now: SimTime,
) -> Result<f64, ApplesError> {
    let mut worst = 0.0f64;
    for (src, dst, rows) in migration_moves(from, to) {
        let mb = t.strip_resident_mb(rows);
        let est = topo.transfer_estimate(src, dst, mb, now)?;
        worst = worst.max(est.as_secs_f64());
    }
    Ok(worst)
}

/// Actually move the data (simulated), returning elapsed seconds.
fn perform_migration(
    topo: &Topology,
    t: &crate::hat::StencilTemplate,
    from: &StencilSchedule,
    to: &StencilSchedule,
    now: SimTime,
) -> Result<f64, ApplesError> {
    let reqs: Vec<TransferReq> = migration_moves(from, to)
        .into_iter()
        .enumerate()
        .map(|(i, (src, dst, rows))| TransferReq {
            from: src,
            to: dst,
            mb: t.strip_resident_mb(rows),
            start: now,
            tag: i,
        })
        .collect();
    if reqs.is_empty() {
        return Ok(0.0);
    }
    let done = simulate_transfers(topo, &reqs)?
        .into_iter()
        .map(|r| r.delivered)
        .fold(now, SimTime::max);
    Ok(done.saturating_sub(now).as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hat::jacobi2d_hat;
    use crate::schedule::StencilPart;
    use crate::user::UserSpec;
    use metasim::host::HostSpec;
    use metasim::load::LoadModel;
    use metasim::net::{LinkSpec, TopologyBuilder};
    use nws::WeatherServiceConfig;

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    /// Two hosts; host 0 collapses from idle to hammered at t=650,
    /// host 1 does the reverse — a hard mid-run regime swap.
    fn swapping_topo() -> Topology {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 20.0, SimTime::from_micros(200)));
        b.add_host(HostSpec::workstation(
            "swap-a",
            30.0,
            4096.0,
            seg,
            LoadModel::Trace(vec![(s(0.0), 1.0), (s(650.0), 0.08)]),
        ));
        b.add_host(HostSpec::workstation(
            "swap-b",
            30.0,
            4096.0,
            seg,
            LoadModel::Trace(vec![(s(0.0), 0.08), (s(650.0), 1.0)]),
        ));
        b.instantiate(s(1_000_000.0), 0).unwrap()
    }

    fn agent(n: usize, iterations: usize) -> ReschedulingAgent {
        ReschedulingAgent::new(Coordinator::new(
            jacobi2d_hat(n, iterations),
            UserSpec::default(),
        ))
    }

    #[test]
    fn completes_all_iterations_in_phases() {
        let topo = swapping_topo();
        let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        let a = agent(600, 50);
        let report = a.run_stencil(&topo, &mut ws, s(600.0)).unwrap();
        let total: usize = report.phases.iter().map(|p| p.iterations).sum();
        assert_eq!(total, 50);
        assert!(report.elapsed_seconds > 0.0);
        // Default phase length 20: phases of 20, 20, 10.
        assert_eq!(report.phases.len(), 3);
    }

    #[test]
    fn migrates_across_a_regime_swap() {
        // Long run spanning the t=650 swap: the agent should migrate
        // at least once, shifting work toward the newly idle host.
        let topo = swapping_topo();
        let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        let mut a = agent(1400, 400);
        a.policy.phase_iterations = 50;
        let report = a.run_stencil(&topo, &mut ws, s(600.0)).unwrap();
        assert!(
            report.migrations >= 1,
            "expected at least one migration: {report:?}"
        );
    }

    #[test]
    fn rescheduling_beats_one_shot_across_the_swap() {
        let topo = swapping_topo();

        // One-shot: decide at t=600 (host 0 looks great), run to
        // completion through the swap.
        let hat = jacobi2d_hat(1400, 400);
        let user = UserSpec::default();
        let mut ws1 = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        ws1.advance(&topo, s(600.0));
        let one_shot_agent = Coordinator::new(hat.clone(), user.clone());
        let (_, one_shot) = one_shot_agent.run(&topo, &ws1, s(600.0)).unwrap();

        // Rescheduling across the same conditions.
        let mut ws2 = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        let mut a = agent(1400, 400);
        a.policy.phase_iterations = 50;
        let adaptive = a.run_stencil(&topo, &mut ws2, s(600.0)).unwrap();

        assert!(
            adaptive.elapsed_seconds < one_shot.elapsed_seconds,
            "adaptive {:.1}s should beat one-shot {:.1}s",
            adaptive.elapsed_seconds,
            one_shot.elapsed_seconds
        );
    }

    #[test]
    fn stable_conditions_mean_no_migrations() {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 20.0, SimTime::from_micros(200)));
        b.add_host(HostSpec::dedicated("a", 30.0, 4096.0, seg));
        b.add_host(HostSpec::dedicated("b", 30.0, 4096.0, seg));
        let topo = b.instantiate(s(1e6), 0).unwrap();
        let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        let a = agent(800, 100);
        let report = a.run_stencil(&topo, &mut ws, s(600.0)).unwrap();
        assert_eq!(report.migrations, 0, "{report:?}");
    }

    #[test]
    fn migration_moves_conserve_rows() {
        let from = StencilSchedule {
            n: 100,
            iterations: 1,
            parts: vec![
                StencilPart {
                    host: HostId(0),
                    rows: 70,
                },
                StencilPart {
                    host: HostId(1),
                    rows: 30,
                },
            ],
        };
        let to = StencilSchedule {
            n: 100,
            iterations: 1,
            parts: vec![
                StencilPart {
                    host: HostId(0),
                    rows: 20,
                },
                StencilPart {
                    host: HostId(1),
                    rows: 50,
                },
                StencilPart {
                    host: HostId(2),
                    rows: 30,
                },
            ],
        };
        let moves = migration_moves(&from, &to);
        let moved: usize = moves.iter().map(|&(_, _, r)| r).sum();
        assert_eq!(moved, 50); // host 0 sheds 50 rows
                               // Every move goes from a shrinking host to a growing one.
        for (src, dst, _) in moves {
            assert_eq!(src, HostId(0));
            assert!(dst == HostId(1) || dst == HostId(2));
        }
    }

    #[test]
    fn identical_schedules_need_no_moves() {
        let sched = StencilSchedule {
            n: 10,
            iterations: 1,
            parts: vec![StencilPart {
                host: HostId(0),
                rows: 10,
            }],
        };
        assert!(migration_moves(&sched, &sched).is_empty());
    }

    #[test]
    fn survives_a_host_dying_mid_run() {
        // Host 0 dies for good at t = 650 while holding most of the
        // grid; the agent must abandon the failed phase, exclude the
        // corpse, and finish on host 1.
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 20.0, SimTime::from_micros(200)));
        b.add_host(HostSpec::workstation(
            "doomed",
            60.0,
            4096.0,
            seg,
            LoadModel::Trace(vec![(s(0.0), 1.0), (s(650.0), 0.0)]),
        ));
        b.add_host(HostSpec::dedicated("survivor", 20.0, 4096.0, seg));
        let topo = b.instantiate(s(1_000_000.0), 0).unwrap();
        let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        // Enough iterations that the run crosses t = 650.
        let mut a = agent(1400, 600);
        a.policy.phase_iterations = 100;
        let report = a.run_stencil(&topo, &mut ws, s(600.0)).unwrap();
        let total: usize = report.phases.iter().map(|p| p.iterations).sum();
        assert_eq!(total, 600, "all iterations must complete");
        // Later phases must not use the dead host.
        let last = report.phases.last().unwrap();
        assert_eq!(last.hosts, vec![HostId(1)], "{report:?}");
    }

    #[test]
    fn all_hosts_dead_is_a_hard_error() {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 20.0, SimTime::from_micros(200)));
        for i in 0..2 {
            b.add_host(HostSpec::workstation(
                &format!("doomed{i}"),
                30.0,
                4096.0,
                seg,
                LoadModel::Trace(vec![(s(0.0), 1.0), (s(650.0), 0.0)]),
            ));
        }
        let topo = b.instantiate(s(1_000_000.0), 0).unwrap();
        let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        let mut a = agent(1400, 2000);
        a.policy.phase_iterations = 200;
        assert!(a.run_stencil(&topo, &mut ws, s(600.0)).is_err());
    }

    #[test]
    fn zero_phase_length_is_invalid() {
        let topo = swapping_topo();
        let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        let mut a = agent(100, 10);
        a.policy.phase_iterations = 0;
        assert!(a.run_stencil(&topo, &mut ws, SimTime::ZERO).is_err());
    }
}
