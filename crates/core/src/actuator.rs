//! The Actuator (§4.1): implement the chosen schedule on the target
//! resource-management system.
//!
//! In the paper the Actuator drove KeLP over the real testbed; here it
//! lowers the schedule onto [`metasim`]'s executors and runs them. The
//! report it returns carries the realized (simulated) timings — the
//! ground truth the Performance Estimator's predictions are compared
//! against.

use crate::error::ApplesError;
use crate::hat::Hat;
use crate::schedule::{FarmSchedule, Schedule};
use metasim::exec::{simulate_pipeline, simulate_spmd_with_sink, PipelineOutcome, SpmdOutcome};
use metasim::net::{simulate_transfers_with_sink, TransferReq};
use metasim::simtrace::{EventSink, NoopSink, TraceEvent};
use metasim::{HostId, SimTime, Topology};

/// Realized outcome of a task-farm actuation.
#[derive(Debug, Clone, PartialEq)]
pub struct FarmOutcome {
    /// Time the last result arrived at the result home.
    pub finish: SimTime,
    /// Per-assignment completion times, in assignment order.
    pub host_done: Vec<(HostId, SimTime)>,
}

/// Executor-specific detail of an actuation.
#[derive(Debug, Clone, PartialEq)]
pub enum ActuationDetail {
    /// Bulk-synchronous SPMD outcome.
    Spmd(SpmdOutcome),
    /// Pipeline outcome.
    Pipeline(PipelineOutcome),
    /// Task-farm outcome.
    Farm(FarmOutcome),
}

/// What actually happened when the schedule ran.
#[derive(Debug, Clone, PartialEq)]
pub struct ActuationReport {
    /// Completion time.
    pub finish: SimTime,
    /// Wall-clock seconds from submission to completion.
    pub elapsed_seconds: f64,
    /// Executor-specific detail.
    pub detail: ActuationDetail,
}

/// Run `schedule` on the simulated system starting at `start`.
pub fn actuate(
    topo: &Topology,
    hat: &Hat,
    schedule: &Schedule,
    start: SimTime,
) -> Result<ActuationReport, ApplesError> {
    actuate_with_sink(topo, hat, schedule, start, &mut NoopSink)
}

/// [`actuate`], streaming the executors' compute/transfer events plus a
/// closing [`TraceEvent::Actuated`] into `sink`.
pub fn actuate_with_sink(
    topo: &Topology,
    hat: &Hat,
    schedule: &Schedule,
    start: SimTime,
    sink: &mut dyn EventSink,
) -> Result<ActuationReport, ApplesError> {
    let report = match schedule {
        Schedule::Stencil(s) => {
            let t = hat.as_stencil().ok_or(ApplesError::TemplateMismatch {
                expected: "iterative-stencil",
                found: hat.class_name(),
            })?;
            s.validate()?;
            let job = s.to_spmd_job(t, start);
            let out = simulate_spmd_with_sink(topo, &job, sink)?;
            ActuationReport {
                finish: out.finish,
                elapsed_seconds: out.makespan(start).as_secs_f64(),
                detail: ActuationDetail::Spmd(out),
            }
        }
        Schedule::Pipeline(p) => {
            let t = hat.as_pipeline().ok_or(ApplesError::TemplateMismatch {
                expected: "pipeline",
                found: hat.class_name(),
            })?;
            let pname = topo.host(p.producer)?.spec.name.clone();
            let cname = topo.host(p.consumer)?.spec.name.clone();
            let job = p.to_pipeline_job(t, &pname, &cname, start)?;
            let out = simulate_pipeline(topo, &job)?;
            ActuationReport {
                finish: out.finish,
                elapsed_seconds: out.makespan(start).as_secs_f64(),
                detail: ActuationDetail::Pipeline(out),
            }
        }
        Schedule::Farm(f) => actuate_farm(topo, hat, f, start, sink)?,
    };
    if sink.enabled() {
        sink.record(TraceEvent::Actuated {
            at: start,
            finish: report.finish,
            elapsed_seconds: report.elapsed_seconds,
        });
    }
    Ok(report)
}

/// Task-farm execution: ship each host its input slice (all pulls
/// contend on the network together), compute, ship results back.
fn actuate_farm(
    topo: &Topology,
    hat: &Hat,
    sched: &FarmSchedule,
    start: SimTime,
    sink: &mut dyn EventSink,
) -> Result<ActuationReport, ApplesError> {
    let t = hat.as_task_farm().ok_or(ApplesError::TemplateMismatch {
        expected: "task-farm",
        found: hat.class_name(),
    })?;
    sched.validate(t)?;

    // Phase 1: distribute input data.
    let pulls: Vec<TransferReq> = sched
        .assignments
        .iter()
        .enumerate()
        .map(|(i, &(host, events))| TransferReq {
            from: sched.data_home,
            to: host,
            mb: events as f64 * t.mb_per_event,
            start,
            tag: i,
        })
        .collect();
    let delivered = simulate_transfers_with_sink(topo, &pulls, sink)?;

    // Phase 2: compute; phase 3: return results.
    let mut pushes = Vec::with_capacity(sched.assignments.len());
    for (i, &(host, events)) in sched.assignments.iter().enumerate() {
        let h = topo.host(host)?;
        let compute_start = delivered[i].delivered + h.startup_wait();
        let resident = events as f64 * t.mb_per_event;
        let work = events as f64 * t.mflop_per_event;
        let done = h.compute_finish_checked(compute_start, work, resident)?;
        if sink.enabled() {
            sink.record(TraceEvent::ComputeStart {
                host,
                at: compute_start,
                work_mflop: work,
            });
            sink.record(TraceEvent::ComputeFinish {
                host,
                at: done,
                elapsed_seconds: done.saturating_sub(compute_start).as_secs_f64(),
            });
        }
        pushes.push(TransferReq {
            from: host,
            to: sched.result_home,
            mb: events as f64 * t.result_mb_per_event,
            start: done,
            tag: i,
        });
    }
    let results = simulate_transfers_with_sink(topo, &pushes, sink)?;

    let mut host_done = Vec::with_capacity(results.len());
    let mut finish = start;
    for (r, &(host, _)) in results.iter().zip(&sched.assignments) {
        host_done.push((host, r.delivered));
        finish = finish.max(r.delivered);
    }
    Ok(ActuationReport {
        finish,
        elapsed_seconds: finish.saturating_sub(start).as_secs_f64(),
        detail: ActuationDetail::Farm(FarmOutcome { finish, host_done }),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hat::{jacobi2d_hat, Hat, TaskFarmTemplate};
    use crate::schedule::{StencilPart, StencilSchedule};
    use metasim::host::HostSpec;
    use metasim::net::{LinkSpec, TopologyBuilder};

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    fn topo2() -> Topology {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::ZERO));
        b.add_host(HostSpec::dedicated("a", 10.0, 4096.0, seg));
        b.add_host(HostSpec::dedicated("b", 10.0, 4096.0, seg));
        b.instantiate(s(1e6), 0).unwrap()
    }

    #[test]
    fn stencil_actuation_runs_the_simulator() {
        let topo = topo2();
        let hat = jacobi2d_hat(1000, 10);
        let sched = Schedule::Stencil(StencilSchedule {
            n: 1000,
            iterations: 10,
            parts: vec![StencilPart {
                host: HostId(0),
                rows: 1000,
            }],
        });
        let rep = actuate(&topo, &hat, &sched, SimTime::ZERO).unwrap();
        // 5 Mflop/iter at 10 Mflop/s × 10 iterations = 5 s.
        assert!((rep.elapsed_seconds - 5.0).abs() < 1e-6);
        assert!(matches!(rep.detail, ActuationDetail::Spmd(_)));
    }

    #[test]
    fn actuation_respects_start_time() {
        let topo = topo2();
        let hat = jacobi2d_hat(1000, 1);
        let sched = Schedule::Stencil(StencilSchedule {
            n: 1000,
            iterations: 1,
            parts: vec![StencilPart {
                host: HostId(0),
                rows: 1000,
            }],
        });
        let rep = actuate(&topo, &hat, &sched, s(100.0)).unwrap();
        assert!((rep.finish.as_secs_f64() - 100.5).abs() < 1e-6);
        assert!((rep.elapsed_seconds - 0.5).abs() < 1e-6);
    }

    #[test]
    fn mismatched_template_is_rejected() {
        let topo = topo2();
        let hat = jacobi2d_hat(10, 1);
        let farm = Schedule::Farm(FarmSchedule {
            data_home: HostId(0),
            result_home: HostId(0),
            assignments: vec![(HostId(0), 1)],
        });
        assert!(matches!(
            actuate(&topo, &hat, &farm, SimTime::ZERO),
            Err(ApplesError::TemplateMismatch { .. })
        ));
    }

    #[test]
    fn farm_actuation_moves_data_then_computes() {
        let topo = topo2();
        let hat = Hat::task_farm(
            "farm",
            TaskFarmTemplate {
                events: 100,
                mflop_per_event: 1.0,
                mb_per_event: 0.1,
                result_mb_per_event: 0.01,
            },
        );
        let sched = Schedule::Farm(FarmSchedule {
            data_home: HostId(0),
            result_home: HostId(0),
            assignments: vec![(HostId(1), 100)],
        });
        let rep = actuate(&topo, &hat, &sched, SimTime::ZERO).unwrap();
        // Pull 10 MB at 10 MB/s = 1 s; compute 100 Mflop at 10 Mflop/s
        // = 10 s; push 1 MB = 0.1 s. Total 11.1 s.
        assert!(
            (rep.elapsed_seconds - 11.1).abs() < 1e-6,
            "got {}",
            rep.elapsed_seconds
        );
        match rep.detail {
            ActuationDetail::Farm(f) => assert_eq!(f.host_done.len(), 1),
            other => panic!("unexpected detail {other:?}"),
        }
    }

    #[test]
    fn farm_local_assignment_skips_the_network() {
        let topo = topo2();
        let hat = Hat::task_farm(
            "farm",
            TaskFarmTemplate {
                events: 100,
                mflop_per_event: 1.0,
                mb_per_event: 0.1,
                result_mb_per_event: 0.01,
            },
        );
        let sched = Schedule::Farm(FarmSchedule {
            data_home: HostId(0),
            result_home: HostId(0),
            assignments: vec![(HostId(0), 100)],
        });
        let rep = actuate(&topo, &hat, &sched, SimTime::ZERO).unwrap();
        // Compute only: 10 s.
        assert!((rep.elapsed_seconds - 10.0).abs() < 1e-6);
    }
}
