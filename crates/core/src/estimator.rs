//! The Performance Estimator (§4.1).
//!
//! Given a candidate schedule and the Information Pool, predict the
//! performance the user cares about. The models here are deliberately
//! the same closed forms the Planner optimizes — the paper's point is
//! not model sophistication but that the models are *parameterized by
//! dynamic forecasts* instead of nominal speeds. The simulator
//! ([`metasim::exec`]) is the ground truth these predictions are
//! compared against in the test-suite and the EXPERIMENTS harness.

use crate::error::ApplesError;
use crate::hat::StencilTemplate;
use crate::info::InfoPool;
use crate::schedule::{FarmSchedule, PipelineSchedule, Schedule, StencilSchedule};
use crate::user::PerformanceMetric;
use metasim::HostId;

/// Predicted wall-clock seconds for any schedule variant.
pub fn estimate_seconds(pool: &InfoPool<'_>, schedule: &Schedule) -> Result<f64, ApplesError> {
    match schedule {
        Schedule::Stencil(s) => estimate_stencil(pool, s),
        Schedule::Pipeline(p) => estimate_pipeline(pool, p),
        Schedule::Farm(f) => estimate_farm(pool, f),
    }
}

/// Memory slowdown factor for a strip on a host (mirrors
/// [`metasim::Host::memory_factor`], using static spec information).
fn memory_factor(pool: &InfoPool<'_>, host: HostId, resident_mb: f64) -> Result<f64, ApplesError> {
    let spec = &pool.topo.host(host)?.spec;
    Ok(if resident_mb <= spec.mem_mb {
        1.0
    } else {
        1.0 / (1.0 + spec.paging_slowdown * (resident_mb / spec.mem_mb - 1.0))
    })
}

/// §5 cost model: `T_i = A_i * P_i + C_i`, iteration time `max_i T_i`,
/// total `iterations * max_i T_i` plus the longest startup wait.
///
/// The communication term is *contention-aware* in the spirit of the
/// paper's reference \[7\] (Figueira & Berman, "Modeling the effects of
/// contention on the performance of heterogeneous applications"): all
/// border exchanges of one iteration overlap, so each link's predicted
/// usable bandwidth is divided by the number of the application's own
/// flows crossing it before the per-flow time is computed.
pub fn estimate_stencil(pool: &InfoPool<'_>, sched: &StencilSchedule) -> Result<f64, ApplesError> {
    sched.validate()?;
    let t: &StencilTemplate = pool.hat.as_stencil().ok_or(ApplesError::TemplateMismatch {
        expected: "iterative-stencil",
        found: pool.hat.class_name(),
    })?;
    let k = sched.parts.len();
    let border = t.border_mb();

    // Count this schedule's own flows per link: every adjacent strip
    // pair exchanges one message in each direction per iteration.
    let mut link_flows: std::collections::BTreeMap<metasim::LinkId, usize> =
        std::collections::BTreeMap::new();
    for w in sched.parts.windows(2) {
        if w[0].host == w[1].host {
            continue;
        }
        for l in pool.topo.route(w[0].host, w[1].host)? {
            *link_flows.entry(l).or_insert(0) += 2; // both directions
        }
    }

    // Per-flow transfer seconds with the shared-bandwidth discount.
    let contended_transfer =
        |from: metasim::HostId, to: metasim::HostId| -> Result<f64, ApplesError> {
            if from == to {
                return Ok(0.0);
            }
            let mut latency = metasim::SimTime::ZERO;
            let mut bw = f64::INFINITY;
            for l in pool.topo.route(from, to)? {
                let link = pool.topo.link(l)?;
                latency += link.spec.latency;
                let share = *link_flows.get(&l).unwrap_or(&1) as f64;
                bw = bw.min(link.spec.bandwidth_mbps * pool.link_availability(l) / share);
            }
            if bw <= 0.0 {
                return Err(ApplesError::Sim(metasim::SimError::NeverCompletes {
                    work: border,
                }));
            }
            Ok(latency.as_secs_f64() + border / bw)
        };

    let mut iter_time: f64 = 0.0;
    let mut startup: f64 = 0.0;
    for (i, part) in sched.parts.iter().enumerate() {
        let eff = pool.effective_mflops(part.host)?;
        if eff <= 0.0 {
            return Err(ApplesError::PlanningFailed(format!(
                "host {} predicted fully unavailable",
                part.host
            )));
        }
        let resident = t.strip_resident_mb(part.rows);
        let mf = memory_factor(pool, part.host, resident)?;
        let compute = t.strip_mflop_per_iter(part.rows) / (eff * mf);
        let mut comm = 0.0;
        if i > 0 {
            // Send to and receive from the previous strip.
            comm += contended_transfer(part.host, sched.parts[i - 1].host)?;
            comm += contended_transfer(sched.parts[i - 1].host, part.host)?;
        }
        if i + 1 < k {
            comm += contended_transfer(part.host, sched.parts[i + 1].host)?;
            comm += contended_transfer(sched.parts[i + 1].host, part.host)?;
        }
        iter_time = iter_time.max(compute + comm);
        startup = startup.max(pool.topo.host(part.host)?.startup_wait().as_secs_f64());
    }
    Ok(startup + sched.iterations as f64 * iter_time)
}

/// Pipeline model: fill time plus the bottleneck stage paced over the
/// remaining batches. Pipeline-depth stalls beyond depth 1 are not
/// modelled (the simulator charges them; the estimator is optimistic,
/// exactly like the paper's analytic models).
pub fn estimate_pipeline(
    pool: &InfoPool<'_>,
    sched: &PipelineSchedule,
) -> Result<f64, ApplesError> {
    let t = pool
        .hat
        .as_pipeline()
        .ok_or(ApplesError::TemplateMismatch {
            expected: "pipeline",
            found: pool.hat.class_name(),
        })?;
    let pname = pool.topo.host(sched.producer)?.spec.name.clone();
    let cname = pool.topo.host(sched.consumer)?.spec.name.clone();
    let job = sched.to_pipeline_job(t, &pname, &cname, metasim::SimTime::ZERO)?;

    let peff = pool.effective_mflops(sched.producer)?;
    let ceff = pool.effective_mflops(sched.consumer)?;
    if peff <= 0.0 || ceff <= 0.0 {
        return Err(ApplesError::PlanningFailed(
            "pipeline endpoint predicted fully unavailable".into(),
        ));
    }
    let pmf = memory_factor(pool, sched.producer, job.producer_resident_mb)?;
    let cmf = memory_factor(pool, sched.consumer, job.consumer_resident_mb)?;

    let tp = job.producer_mflop_per_unit / (peff * pmf);
    let tc = job.consumer_mflop_per_unit / (ceff * cmf);
    let tx = pool.transfer_seconds(sched.producer, sched.consumer, job.mb_per_unit)?;
    let b = job.n_units as f64;
    if b == 0.0 {
        return Ok(0.0);
    }
    let startup = pool
        .topo
        .host(sched.producer)?
        .startup_wait()
        .max(pool.topo.host(sched.consumer)?.startup_wait())
        .as_secs_f64();
    let bottleneck = tp.max(tc).max(tx);
    Ok(startup + tp + tx + tc + (b - 1.0) * bottleneck)
}

/// Task-farm model: each host pays its share of input data movement
/// (serialized at the data home's uplink), computes its events, and
/// returns results; the farm finishes with its slowest member.
pub fn estimate_farm(pool: &InfoPool<'_>, sched: &FarmSchedule) -> Result<f64, ApplesError> {
    let t = pool
        .hat
        .as_task_farm()
        .ok_or(ApplesError::TemplateMismatch {
            expected: "task-farm",
            found: pool.hat.class_name(),
        })?;
    sched.validate(t)?;
    // Remote readers share the data home's uplink: charge each remote
    // host its payload at a 1/k share of the route bandwidth.
    let remote: usize = sched
        .assignments
        .iter()
        .filter(|&&(h, _)| h != sched.data_home)
        .count();
    let share = remote.max(1) as f64;
    let mut worst: f64 = 0.0;
    for &(host, events) in &sched.assignments {
        let eff = pool.effective_mflops(host)?;
        if eff <= 0.0 {
            return Err(ApplesError::PlanningFailed(format!(
                "farm host {host} predicted fully unavailable"
            )));
        }
        let compute = events as f64 * t.mflop_per_event / eff;
        let data_mb = events as f64 * t.mb_per_event;
        let pull = if host == sched.data_home {
            0.0
        } else {
            pool.transfer_seconds(sched.data_home, host, data_mb)? * share
        };
        let result_mb = events as f64 * t.result_mb_per_event;
        let push = pool.transfer_seconds(host, sched.result_home, result_mb)?;
        worst = worst.max(pull + compute + push);
    }
    Ok(worst)
}

/// Score a candidate under the user's metric; lower is better. For
/// [`PerformanceMetric::Speedup`] the caller supplies the best
/// single-host time as the denominator's reference.
pub fn objective(
    metric: &PerformanceMetric,
    predicted_seconds: f64,
    n_hosts: usize,
    best_single_host_seconds: Option<f64>,
) -> f64 {
    match metric {
        PerformanceMetric::ExecutionTime => predicted_seconds,
        PerformanceMetric::Speedup => match best_single_host_seconds {
            // Minimize time/single = maximize speedup.
            Some(single) if single > 0.0 => predicted_seconds / single,
            _ => predicted_seconds,
        },
        PerformanceMetric::Cost { per_host_second } => {
            predicted_seconds + per_host_second * n_hosts as f64 * predicted_seconds
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hat::jacobi2d_hat;
    use crate::schedule::StencilPart;
    use crate::user::UserSpec;
    use metasim::host::HostSpec;
    use metasim::net::{LinkSpec, TopologyBuilder};
    use metasim::{SimTime, Topology};

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    fn topo2() -> Topology {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::ZERO));
        b.add_host(HostSpec::dedicated("a", 10.0, 4096.0, seg));
        b.add_host(HostSpec::dedicated("b", 10.0, 4096.0, seg));
        b.instantiate(s(100_000.0), 0).unwrap()
    }

    #[test]
    fn stencil_estimate_matches_simulation_on_dedicated_hosts() {
        // With dedicated hosts and an uncontended network, the §5 cost
        // model and the BSP simulator should agree closely.
        let topo = topo2();
        let hat = jacobi2d_hat(1000, 20);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let sched = StencilSchedule {
            n: 1000,
            iterations: 20,
            parts: vec![
                StencilPart {
                    host: HostId(0),
                    rows: 500,
                },
                StencilPart {
                    host: HostId(1),
                    rows: 500,
                },
            ],
        };
        let predicted = estimate_stencil(&pool, &sched).unwrap();
        let t = hat.as_stencil().unwrap();
        let job = sched.to_spmd_job(t, SimTime::ZERO);
        let actual = metasim::exec::simulate_spmd(&topo, &job)
            .unwrap()
            .finish
            .as_secs_f64();
        let rel = (predicted - actual).abs() / actual;
        // The model charges each side send+receive separately while the
        // simulator overlaps concurrent flows, so the model is a bit
        // pessimistic; they must still agree to ~20%.
        assert!(
            rel < 0.2,
            "predicted {predicted:.3}s vs simulated {actual:.3}s (rel {rel:.3})"
        );
    }

    #[test]
    fn stencil_estimate_is_exact_without_comm() {
        let topo = topo2();
        let hat = jacobi2d_hat(1000, 10);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let sched = StencilSchedule {
            n: 1000,
            iterations: 10,
            parts: vec![StencilPart {
                host: HostId(0),
                rows: 1000,
            }],
        };
        let predicted = estimate_stencil(&pool, &sched).unwrap();
        // 1000*1000*5 flop = 5 Mflop/iter at 10 Mflop/s = 0.5 s; ×10.
        assert!((predicted - 5.0).abs() < 1e-9);
    }

    #[test]
    fn paging_inflates_the_estimate() {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::ZERO));
        b.add_host(HostSpec::dedicated("small", 10.0, 4.0, seg));
        let topo = b.instantiate(s(1e6), 0).unwrap();
        let hat = jacobi2d_hat(1000, 1); // full grid: 16 MB resident
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let sched = StencilSchedule {
            n: 1000,
            iterations: 1,
            parts: vec![StencilPart {
                host: HostId(0),
                rows: 1000,
            }],
        };
        let spilled = estimate_stencil(&pool, &sched).unwrap();
        // Without paging this is 0.5 s; 4× overcommit with k=50 gives
        // a factor 1 + 50*3 = 151.
        assert!(spilled > 50.0, "expected a paging cliff, got {spilled}");
    }

    #[test]
    fn objective_execution_time_is_identity() {
        assert_eq!(
            objective(&PerformanceMetric::ExecutionTime, 42.0, 3, None),
            42.0
        );
    }

    #[test]
    fn objective_cost_charges_hosts() {
        let m = PerformanceMetric::Cost {
            per_host_second: 0.1,
        };
        // 10 s on 4 hosts: 10 + 0.1*4*10 = 14.
        assert!((objective(&m, 10.0, 4, None) - 14.0).abs() < 1e-12);
        // Cost can prefer fewer hosts even when slightly slower.
        assert!(objective(&m, 11.0, 1, None) < objective(&m, 10.0, 4, None));
    }

    #[test]
    fn objective_speedup_normalizes_by_single_host() {
        let m = PerformanceMetric::Speedup;
        assert!((objective(&m, 5.0, 2, Some(20.0)) - 0.25).abs() < 1e-12);
        // Missing reference degrades to raw time.
        assert_eq!(objective(&m, 5.0, 2, None), 5.0);
    }

    #[test]
    fn farm_estimate_balances_compute_and_data() {
        let topo = topo2();
        let hat = crate::hat::Hat::task_farm(
            "farm",
            crate::hat::TaskFarmTemplate {
                events: 1000,
                mflop_per_event: 1.0,
                mb_per_event: 0.01,
                result_mb_per_event: 0.0,
            },
        );
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let local_only = FarmSchedule {
            data_home: HostId(0),
            result_home: HostId(0),
            assignments: vec![(HostId(0), 1000)],
        };
        // 1000 Mflop at 10 Mflop/s, no data movement: 100 s.
        let t_local = estimate_farm(&pool, &local_only).unwrap();
        assert!((t_local - 100.0).abs() < 1e-9);

        let split = FarmSchedule {
            data_home: HostId(0),
            result_home: HostId(0),
            assignments: vec![(HostId(0), 500), (HostId(1), 500)],
        };
        let t_split = estimate_farm(&pool, &split).unwrap();
        // Remote half pays 5 MB at 10 MB/s = 0.5 s on top of 50 s.
        assert!(t_split < t_local);
        assert!((t_split - 50.5).abs() < 0.1, "got {t_split}");
    }

    #[test]
    fn wrong_template_errors() {
        let topo = topo2();
        let hat = jacobi2d_hat(10, 1);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let farm = FarmSchedule {
            data_home: HostId(0),
            result_home: HostId(0),
            assignments: vec![(HostId(0), 1)],
        };
        assert!(matches!(
            estimate_farm(&pool, &farm),
            Err(ApplesError::TemplateMismatch { .. })
        ));
    }
}
