//! The Information Pool.
//!
//! §4.1: "Application-specific, system-specific, and dynamic information
//! used by these subsystems constitute an Information Pool which all
//! subsystems share." The pool bundles the four information sources —
//! NWS forecasts, the HAT, the models, and the User Specifications —
//! behind the queries the subsystems actually make: *what compute rate
//! will this host deliver?* and *what bandwidth will this route
//! deliver?* in the imminent scheduling window.
//!
//! The pool's [`ForecastSource`] selects where dynamic information comes
//! from. Besides the NWS there are three alternates used by the
//! prediction-quality ablation (§3.6: "a schedule is only as good as
//! the accuracy of its underlying predictions"):
//!
//! * [`ForecastSource::LastValue`] — raw most-recent measurement,
//! * [`ForecastSource::Oracle`] — the true mean availability over the
//!   upcoming window (an unrealizable upper bound on forecast quality),
//! * [`ForecastSource::StaticNominal`] — assume dedicated resources,
//!   which is exactly what the paper's static Strip and Blocked
//!   partitions assume.

use crate::hat::Hat;
use crate::user::UserSpec;
use metasim::{HostId, SimError, SimTime, Topology};
use nws::{ResourceKey, WeatherService};

/// Where the pool's dynamic availability information comes from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ForecastSource {
    /// NWS adaptive-selector forecasts (the AppLeS design point).
    Nws,
    /// The most recent raw measurement, no forecasting.
    LastValue,
    /// Cheat: the realized mean availability over the upcoming window.
    Oracle,
    /// Assume every resource is fully available (static scheduling).
    StaticNominal,
}

/// Shared information context for one scheduling decision.
pub struct InfoPool<'a> {
    /// The system being scheduled onto.
    pub topo: &'a Topology,
    /// The weather service (may be absent for static scheduling).
    pub weather: Option<&'a WeatherService>,
    /// The application template.
    pub hat: &'a Hat,
    /// The user specifications.
    pub user: &'a UserSpec,
    /// Source of dynamic information.
    pub source: ForecastSource,
    /// The decision time: forecasts are for the window starting here.
    pub now: SimTime,
    /// Window length the oracle averages the true availability over.
    pub oracle_window: SimTime,
    /// When set and the source is NWS, forecasts use
    /// [`WeatherService::forecast_mean_over`] with this horizon — the
    /// expected duration of the run being scheduled (§3.2: forecasts
    /// "for the time frame in which the application will be
    /// scheduled"). `None` uses one-step forecasts.
    pub nws_horizon: Option<SimTime>,
}

impl<'a> InfoPool<'a> {
    /// A pool using NWS forecasts.
    pub fn with_nws(
        topo: &'a Topology,
        weather: &'a WeatherService,
        hat: &'a Hat,
        user: &'a UserSpec,
        now: SimTime,
    ) -> Self {
        InfoPool {
            topo,
            weather: Some(weather),
            hat,
            user,
            source: ForecastSource::Nws,
            now,
            oracle_window: SimTime::from_secs(600),
            nws_horizon: None,
        }
    }

    /// A pool that assumes dedicated resources (static scheduling).
    pub fn static_nominal(
        topo: &'a Topology,
        hat: &'a Hat,
        user: &'a UserSpec,
        now: SimTime,
    ) -> Self {
        InfoPool {
            topo,
            weather: None,
            hat,
            user,
            source: ForecastSource::StaticNominal,
            now,
            oracle_window: SimTime::from_secs(600),
            nws_horizon: None,
        }
    }

    /// Predicted CPU availability fraction of `host` for the imminent
    /// window. Falls back to `1.0` when no information is available.
    pub fn cpu_availability(&self, host: HostId) -> f64 {
        self.availability(ResourceKey::Cpu(host), |w| {
            self.topo
                .host(host)
                .map(|h| h.availability().mean(self.now, self.now + w))
                .unwrap_or(1.0)
        })
    }

    /// Predicted available-capacity fraction of a link.
    pub fn link_availability(&self, link: metasim::LinkId) -> f64 {
        self.availability(ResourceKey::Link(link), |w| {
            self.topo
                .link(link)
                .map(|l| l.availability().mean(self.now, self.now + w))
                .unwrap_or(1.0)
        })
    }

    fn availability(&self, key: ResourceKey, oracle: impl Fn(SimTime) -> f64) -> f64 {
        match self.source {
            ForecastSource::StaticNominal => 1.0,
            ForecastSource::Oracle => oracle(self.oracle_window),
            ForecastSource::LastValue => self
                .weather
                .and_then(|w| w.current(key))
                .unwrap_or(1.0)
                .clamp(0.0, 1.0),
            ForecastSource::Nws => self
                .weather
                .and_then(|w| match self.nws_horizon {
                    Some(h) => w.forecast_mean_over(key, h),
                    None => w.forecast(key),
                })
                .map(|f| f.value)
                .unwrap_or(1.0),
        }
    }

    /// Predicted effective compute rate of `host` in Mflop/s: nominal
    /// speed scaled by the availability forecast. Memory effects are
    /// applied by the estimator, which knows the schedule's footprint.
    pub fn effective_mflops(&self, host: HostId) -> Result<f64, SimError> {
        let h = self.topo.host(host)?;
        Ok(h.spec.mflops * self.cpu_availability(host))
    }

    /// Predicted bottleneck bandwidth (MB/s) along the route between
    /// two hosts. Same-host routes report `f64::INFINITY`.
    pub fn route_bandwidth(&self, from: HostId, to: HostId) -> Result<f64, SimError> {
        let route = self.topo.route(from, to)?;
        let mut bw = f64::INFINITY;
        for l in route {
            let link = self.topo.link(l)?;
            let avail = self.link_availability(l);
            bw = bw.min(link.spec.bandwidth_mbps * avail);
        }
        Ok(bw)
    }

    /// Route latency between two hosts (static information).
    pub fn route_latency(&self, from: HostId, to: HostId) -> Result<SimTime, SimError> {
        self.topo.route_latency(from, to)
    }

    /// Predicted seconds to move `mb` between two hosts: latency plus
    /// payload over predicted bottleneck bandwidth.
    pub fn transfer_seconds(&self, from: HostId, to: HostId, mb: f64) -> Result<f64, SimError> {
        if from == to || mb <= 0.0 {
            return Ok(0.0);
        }
        let bw = self.route_bandwidth(from, to)?;
        if bw <= 0.0 {
            return Err(SimError::NeverCompletes { work: mb });
        }
        Ok(self.route_latency(from, to)?.as_secs_f64() + mb / bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hat::jacobi2d_hat;
    use metasim::host::HostSpec;
    use metasim::load::LoadModel;
    use metasim::net::{LinkSpec, TopologyBuilder};
    use nws::WeatherServiceConfig;

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    fn topo() -> Topology {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::shared(
            "seg",
            10.0,
            SimTime::from_millis(2),
            LoadModel::Constant(0.8),
        ));
        b.add_host(HostSpec::workstation(
            "a",
            100.0,
            64.0,
            seg,
            LoadModel::Constant(0.5),
        ));
        b.add_host(HostSpec::dedicated("b", 50.0, 64.0, seg));
        b.instantiate(s(10_000.0), 0).unwrap()
    }

    #[test]
    fn static_nominal_assumes_full_availability() {
        let topo = topo();
        let hat = jacobi2d_hat(100, 1);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        assert_eq!(pool.cpu_availability(HostId(0)), 1.0);
        assert_eq!(pool.effective_mflops(HostId(0)).unwrap(), 100.0);
        assert_eq!(pool.route_bandwidth(HostId(0), HostId(1)).unwrap(), 10.0);
    }

    #[test]
    fn nws_pool_reflects_measured_load() {
        let topo = topo();
        let hat = jacobi2d_hat(100, 1);
        let user = UserSpec::default();
        let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        ws.advance(&topo, s(500.0));
        let pool = InfoPool::with_nws(&topo, &ws, &hat, &user, s(500.0));
        assert!((pool.cpu_availability(HostId(0)) - 0.5).abs() < 1e-9);
        assert!((pool.effective_mflops(HostId(0)).unwrap() - 50.0).abs() < 1e-6);
        // Link at 0.8 availability: 8 MB/s.
        assert!((pool.route_bandwidth(HostId(0), HostId(1)).unwrap() - 8.0).abs() < 1e-6);
    }

    #[test]
    fn oracle_reads_true_future_mean() {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::ZERO));
        b.add_host(HostSpec::workstation(
            "a",
            100.0,
            64.0,
            seg,
            LoadModel::Trace(vec![(s(0.0), 1.0), (s(100.0), 0.2)]),
        ));
        let topo = b.instantiate(s(10_000.0), 0).unwrap();
        let hat = jacobi2d_hat(100, 1);
        let user = UserSpec::default();
        let mut pool = InfoPool::static_nominal(&topo, &hat, &user, s(100.0));
        pool.source = ForecastSource::Oracle;
        pool.oracle_window = s(50.0);
        // Oracle window [100, 150] lies entirely in the 0.2 regime.
        assert!((pool.cpu_availability(HostId(0)) - 0.2).abs() < 1e-9);
    }

    #[test]
    fn last_value_uses_raw_measurement() {
        let topo = topo();
        let hat = jacobi2d_hat(100, 1);
        let user = UserSpec::default();
        let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        ws.advance(&topo, s(100.0));
        let mut pool = InfoPool::with_nws(&topo, &ws, &hat, &user, s(100.0));
        pool.source = ForecastSource::LastValue;
        assert!((pool.cpu_availability(HostId(0)) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn horizon_forecast_discounts_transient_states() {
        // A host that flaps between 0.9 and 0.1 with ~2 min holding
        // times: the one-step forecast tracks the current state, but a
        // pool scheduling a very long run should see something close to
        // the long-run mean instead.
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::ZERO));
        b.add_host(HostSpec::workstation(
            "flapper",
            100.0,
            64.0,
            seg,
            LoadModel::MarkovOnOff {
                idle_avail: 0.9,
                busy_avail: 0.1,
                mean_idle: SimTime::from_secs(120),
                mean_busy: SimTime::from_secs(120),
            },
        ));
        let topo = b.instantiate(s(1_000_000.0), 5).unwrap();
        let hat = jacobi2d_hat(100, 1);
        let user = UserSpec::default();
        let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        ws.advance(&topo, s(50_000.0));

        let mut pool = InfoPool::with_nws(&topo, &ws, &hat, &user, s(50_000.0));
        let one_step = pool.cpu_availability(HostId(0));
        pool.nws_horizon = Some(s(100_000.0));
        let long = pool.cpu_availability(HostId(0));
        // The one-step forecast sits near one of the two levels; the
        // long-horizon forecast regresses toward the middle.
        assert!(
            (long - 0.5).abs() < (one_step - 0.5).abs() + 1e-12,
            "long {long} should be nearer the mean than one-step {one_step}"
        );
    }

    #[test]
    fn transfer_seconds_model() {
        let topo = topo();
        let hat = jacobi2d_hat(100, 1);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        // 20 MB at 10 MB/s + 2 ms latency.
        let t = pool.transfer_seconds(HostId(0), HostId(1), 20.0).unwrap();
        assert!((t - 2.002).abs() < 1e-6);
        // Local transfer is free.
        assert_eq!(
            pool.transfer_seconds(HostId(0), HostId(0), 20.0).unwrap(),
            0.0
        );
    }

    #[test]
    fn unknown_host_errors() {
        let topo = topo();
        let hat = jacobi2d_hat(100, 1);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        assert!(pool.effective_mflops(HostId(9)).is_err());
    }
}
