//! The Heterogeneous Application Template (HAT).
//!
//! The HAT is the interface through which "the user provides specific
//! information about the structure, characteristics and current
//! implementations of the application and its tasks" (§4.1). It carries
//! the *implementation-independent* structure (task relationships,
//! communication regularity — §3.4) and the *implementation-dependent*
//! constants (flops per point, bytes per message, per-architecture
//! efficiencies) the planner and estimator parameterize their models
//! with.
//!
//! Three templates cover the application shapes the paper discusses:
//!
//! * [`StencilTemplate`] — iterative data-parallel grid codes (Jacobi2D,
//!   §5),
//! * [`PipelineTemplate`] — two-task producer/consumer codes (3D-REACT,
//!   §2.2),
//! * [`TaskFarmTemplate`] — independent-task data-parallel analysis
//!   (CLEO/NILE event processing, §2.1).

/// A named application description.
#[derive(Debug, Clone, PartialEq)]
pub struct Hat {
    /// Application name (for reports).
    pub name: String,
    /// Structural template.
    pub structure: AppStructure,
}

impl Hat {
    /// A HAT for an iterative stencil code.
    pub fn stencil(name: &str, t: StencilTemplate) -> Self {
        Hat {
            name: name.to_string(),
            structure: AppStructure::IterativeStencil(t),
        }
    }

    /// A HAT for a two-task pipeline code.
    pub fn pipeline(name: &str, t: PipelineTemplate) -> Self {
        Hat {
            name: name.to_string(),
            structure: AppStructure::Pipeline(t),
        }
    }

    /// A HAT for an independent-task farm.
    pub fn task_farm(name: &str, t: TaskFarmTemplate) -> Self {
        Hat {
            name: name.to_string(),
            structure: AppStructure::IndependentTasks(t),
        }
    }

    /// Short name of the structural class.
    pub fn class_name(&self) -> &'static str {
        match self.structure {
            AppStructure::IterativeStencil(_) => "iterative-stencil",
            AppStructure::Pipeline(_) => "pipeline",
            AppStructure::IndependentTasks(_) => "task-farm",
        }
    }

    /// The stencil template, if this is a stencil application.
    pub fn as_stencil(&self) -> Option<&StencilTemplate> {
        match &self.structure {
            AppStructure::IterativeStencil(t) => Some(t),
            _ => None,
        }
    }

    /// The pipeline template, if this is a pipeline application.
    pub fn as_pipeline(&self) -> Option<&PipelineTemplate> {
        match &self.structure {
            AppStructure::Pipeline(t) => Some(t),
            _ => None,
        }
    }

    /// The task-farm template, if this is a task-farm application.
    pub fn as_task_farm(&self) -> Option<&TaskFarmTemplate> {
        match &self.structure {
            AppStructure::IndependentTasks(t) => Some(t),
            _ => None,
        }
    }
}

/// Structural classification of the application.
#[derive(Debug, Clone, PartialEq)]
pub enum AppStructure {
    /// Bulk-synchronous iterative grid code.
    IterativeStencil(StencilTemplate),
    /// Two-task producer/consumer pipeline.
    Pipeline(PipelineTemplate),
    /// Independent tasks over a partitioned data set.
    IndependentTasks(TaskFarmTemplate),
}

/// Template for an `n × n` iterative 5-point stencil code (Jacobi2D).
#[derive(Debug, Clone, PartialEq)]
pub struct StencilTemplate {
    /// Grid edge length (the grid is `n × n` points).
    pub n: usize,
    /// Floating-point operations per point per iteration (a 5-point
    /// Jacobi update is 5: four adds and one multiply).
    pub flops_per_point: f64,
    /// Resident bytes per point (Jacobi double-buffers an `f64` grid:
    /// 16 bytes).
    pub bytes_per_point: f64,
    /// Bytes exchanged per border point per neighbour per iteration
    /// (one `f64` row element: 8 bytes).
    pub border_bytes_per_point: f64,
    /// Iterations to run.
    pub iterations: usize,
}

impl StencilTemplate {
    /// Total Mflop per iteration over the whole grid.
    pub fn total_mflop_per_iter(&self) -> f64 {
        (self.n as f64) * (self.n as f64) * self.flops_per_point / 1e6
    }

    /// Mflop per iteration for a strip of `rows` rows.
    pub fn strip_mflop_per_iter(&self, rows: usize) -> f64 {
        (rows as f64) * (self.n as f64) * self.flops_per_point / 1e6
    }

    /// Resident MB for a strip of `rows` rows.
    pub fn strip_resident_mb(&self, rows: usize) -> f64 {
        (rows as f64) * (self.n as f64) * self.bytes_per_point / 1e6
    }

    /// MB shipped across one border per iteration.
    pub fn border_mb(&self) -> f64 {
        (self.n as f64) * self.border_bytes_per_point / 1e6
    }
}

/// Per-architecture relative efficiency of a task implementation.
///
/// §2.3 notes that 3D-REACT's Log-D "has been optimized for vector
/// execution" on the Cray and is "different than the implementation
/// that the Paragon uses": the same task delivers a different fraction
/// of peak on different machines. Efficiency is matched by substring
/// against host names; unmatched hosts get [`ArchEfficiency::default_efficiency`].
#[derive(Debug, Clone, PartialEq)]
pub struct ArchEfficiency {
    /// `(host-name substring, efficiency in (0, 1])` pairs, first match
    /// wins.
    pub rules: Vec<(String, f64)>,
    /// Efficiency for hosts no rule matches.
    pub default_efficiency: f64,
}

impl Default for ArchEfficiency {
    fn default() -> Self {
        ArchEfficiency {
            rules: Vec::new(),
            default_efficiency: 1.0,
        }
    }
}

impl ArchEfficiency {
    /// The efficiency for a host with the given name.
    pub fn for_host(&self, host_name: &str) -> f64 {
        for (pat, eff) in &self.rules {
            if host_name.contains(pat.as_str()) {
                return *eff;
            }
        }
        self.default_efficiency
    }
}

/// Template for a two-task pipeline (LHSF → Log-D/ASY in 3D-REACT).
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineTemplate {
    /// Total work units to stream (surface functions in 3D-REACT).
    pub total_units: usize,
    /// Producer Mflop per unit at efficiency 1.
    pub producer_mflop_per_unit: f64,
    /// Consumer Mflop per unit at efficiency 1.
    pub consumer_mflop_per_unit: f64,
    /// MB transferred per unit.
    pub mb_per_unit: f64,
    /// Producer resident MB (independent of batching).
    pub producer_resident_mb: f64,
    /// Consumer base resident MB.
    pub consumer_base_mb: f64,
    /// Extra consumer MB per *buffered unit* — the §2.3 "buffering
    /// performance cost" of a large pipeline size.
    pub consumer_mb_per_buffered_unit: f64,
    /// Per-message fixed overhead in MB-equivalents is captured by link
    /// latency; per-message CPU overhead (marshalling, data-format
    /// conversion between machine formats, §2.2) in Mflop.
    pub convert_mflop_per_message: f64,
    /// Producer-task efficiency per architecture.
    pub producer_efficiency: ArchEfficiency,
    /// Consumer-task efficiency per architecture.
    pub consumer_efficiency: ArchEfficiency,
}

/// Template for an independent-task farm over a distributed data set
/// (CLEO/NILE event analysis).
#[derive(Debug, Clone, PartialEq)]
pub struct TaskFarmTemplate {
    /// Number of events (records) to analyze.
    pub events: u64,
    /// Mflop per event.
    pub mflop_per_event: f64,
    /// MB read per event from the data's home site.
    pub mb_per_event: f64,
    /// MB of results aggregated back to the submitting site per event.
    pub result_mb_per_event: f64,
}

impl TaskFarmTemplate {
    /// Total compute in Mflop.
    pub fn total_mflop(&self) -> f64 {
        self.events as f64 * self.mflop_per_event
    }

    /// Total input data volume in MB.
    pub fn total_data_mb(&self) -> f64 {
        self.events as f64 * self.mb_per_event
    }
}

/// The Jacobi2D HAT used throughout the paper's §5 experiments.
pub fn jacobi2d_hat(n: usize, iterations: usize) -> Hat {
    Hat::stencil(
        "jacobi2d",
        StencilTemplate {
            n,
            flops_per_point: 5.0,
            bytes_per_point: 16.0,
            border_bytes_per_point: 8.0,
            iterations,
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jacobi_hat_constants() {
        let hat = jacobi2d_hat(1000, 10);
        let t = hat.as_stencil().unwrap();
        // 1e6 points * 5 flop = 5 Mflop per iteration.
        assert!((t.total_mflop_per_iter() - 5.0).abs() < 1e-12);
        // A 100-row strip: 100 * 1000 * 16 B = 1.6 MB resident.
        assert!((t.strip_resident_mb(100) - 1.6).abs() < 1e-12);
        // Border: 1000 * 8 B = 0.008 MB.
        assert!((t.border_mb() - 0.008).abs() < 1e-15);
        assert_eq!(hat.class_name(), "iterative-stencil");
    }

    #[test]
    fn strip_work_scales_with_rows() {
        let t = jacobi2d_hat(2000, 1);
        let t = t.as_stencil().unwrap();
        assert!((t.strip_mflop_per_iter(500) * 4.0 - t.total_mflop_per_iter()).abs() < 1e-9);
    }

    #[test]
    fn accessors_reject_wrong_class() {
        let hat = jacobi2d_hat(100, 1);
        assert!(hat.as_pipeline().is_none());
        assert!(hat.as_task_farm().is_none());
        assert!(hat.as_stencil().is_some());
    }

    #[test]
    fn arch_efficiency_matching() {
        let eff = ArchEfficiency {
            rules: vec![("cray".into(), 1.0), ("paragon".into(), 0.6)],
            default_efficiency: 0.4,
        };
        assert_eq!(eff.for_host("sdsc-cray-c90"), 1.0);
        assert_eq!(eff.for_host("caltech-paragon-3"), 0.6);
        assert_eq!(eff.for_host("random-ws"), 0.4);
    }

    #[test]
    fn arch_efficiency_first_match_wins() {
        let eff = ArchEfficiency {
            rules: vec![("sdsc".into(), 0.9), ("sdsc-cray".into(), 0.1)],
            default_efficiency: 1.0,
        };
        assert_eq!(eff.for_host("sdsc-cray"), 0.9);
    }

    #[test]
    fn task_farm_totals() {
        let t = TaskFarmTemplate {
            events: 1000,
            mflop_per_event: 2.0,
            mb_per_event: 0.02,
            result_mb_per_event: 0.001,
        };
        assert_eq!(t.total_mflop(), 2000.0);
        assert!((t.total_data_mb() - 20.0).abs() < 1e-9);
    }
}
