//! Error type for the scheduling framework.

use metasim::SimError;
use std::fmt;

/// Errors surfaced while deriving or actuating a schedule.
#[derive(Debug, Clone, PartialEq)]
pub enum ApplesError {
    /// The resource selector found no feasible resource set (everything
    /// was filtered out by user constraints or capacity checks).
    NoFeasibleResources,
    /// The planner could not produce a schedule for a resource set.
    PlanningFailed(String),
    /// No candidate schedule survived estimation.
    NoViableSchedule,
    /// The HAT does not match the requested planning strategy (e.g.
    /// asked for a strip plan of a pipeline application).
    TemplateMismatch {
        /// What the planner expected.
        expected: &'static str,
        /// What the HAT contained.
        found: &'static str,
    },
    /// The underlying simulator rejected an operation.
    Sim(SimError),
    /// A configuration constraint was violated.
    Invalid(String),
}

impl fmt::Display for ApplesError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApplesError::NoFeasibleResources => {
                write!(f, "no feasible resource set after filtering")
            }
            ApplesError::PlanningFailed(msg) => write!(f, "planning failed: {msg}"),
            ApplesError::NoViableSchedule => {
                write!(f, "no candidate schedule survived estimation")
            }
            ApplesError::TemplateMismatch { expected, found } => {
                write!(
                    f,
                    "template mismatch: planner expects {expected}, HAT is {found}"
                )
            }
            ApplesError::Sim(e) => write!(f, "simulator error: {e}"),
            ApplesError::Invalid(msg) => write!(f, "invalid configuration: {msg}"),
        }
    }
}

impl std::error::Error for ApplesError {}

impl From<SimError> for ApplesError {
    fn from(e: SimError) -> Self {
        ApplesError::Sim(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        assert!(ApplesError::NoFeasibleResources
            .to_string()
            .contains("feasible"));
        assert!(ApplesError::PlanningFailed("x".into())
            .to_string()
            .contains("x"));
        let tm = ApplesError::TemplateMismatch {
            expected: "stencil",
            found: "pipeline",
        };
        assert!(tm.to_string().contains("stencil"));
        assert!(tm.to_string().contains("pipeline"));
    }

    #[test]
    fn sim_errors_convert() {
        let e: ApplesError = SimError::UnknownHost(3).into();
        assert!(matches!(e, ApplesError::Sim(_)));
        assert!(e.to_string().contains("unknown host"));
    }
}
