//! The Planner: resource set → candidate schedule (§4.1).
//!
//! For stencil applications the planner implements the §5 cost model
//! directly. With strips of `a_i` rows on an `n × n` grid:
//!
//! ```text
//! T_i = A_i * P_i + C_i        A_i = a_i * n   (area of region i)
//! ```
//!
//! where `P_i` is the *predicted* seconds per point on host `i`
//! (nominal speed × forecast availability) and `C_i` is the predicted
//! seconds to send and receive the strip's borders. The iteration time
//! is `max_i T_i`, so the optimum equalizes the `T_i`: solving
//! `Σ a_i = n` with `T_i = T` for all `i` gives
//!
//! ```text
//! T = (n + Σ C_i / r_i) / (Σ 1 / r_i),     r_i = n * P_i  (sec/row)
//! a_i = (T - C_i) / r_i
//! ```
//!
//! Hosts whose `a_i` comes out non-positive are dropped (they are too
//! slow or too far to help) and the system is re-solved. Hosts whose
//! strip would exceed physical memory are capped at their memory
//! capacity and the remainder is redistributed (water-filling) — this
//! is what lets the Figure 6 AppLeS "locate available memory elsewhere
//! in the resource pool" instead of paging.
//!
//! For pipeline applications the planner assigns the producer and
//! consumer to the given host pair and picks the batching granularity
//! (the paper's "pipeline size") by sweeping candidate unit sizes
//! through the Performance Estimator's pipeline model.

use crate::error::ApplesError;
use crate::estimator;
use crate::hat::StencilTemplate;
use crate::info::InfoPool;
use crate::schedule::{PipelineSchedule, Schedule, StencilPart, StencilSchedule};
use metasim::HostId;

/// Per-host parameters the strip solver works with.
#[derive(Debug, Clone)]
struct StripHost {
    host: HostId,
    /// Predicted seconds per row.
    sec_per_row: f64,
    /// Predicted border-exchange seconds per iteration.
    comm_sec: f64,
    /// Maximum rows before the strip exceeds physical memory
    /// (`usize::MAX` when the spill guard is off).
    cap_rows: usize,
    /// Resident MB per row of this grid.
    row_mb: f64,
    /// Physical memory of the host, MB.
    mem_mb: f64,
    /// Paging slowdown coefficient of the host.
    paging_k: f64,
}

impl StripHost {
    /// Compute slowdown divisor once `rows * row_mb` exceeds memory.
    fn memory_factor(&self, rows: f64) -> f64 {
        let resident = rows * self.row_mb;
        if resident <= self.mem_mb {
            1.0
        } else {
            1.0 / (1.0 + self.paging_k * (resident / self.mem_mb - 1.0))
        }
    }
}

/// Plan a non-uniform strip decomposition over `hosts` (the given
/// strip order is *not* assumed — the planner orders strips itself,
/// grouping hosts that share a network segment so borders stay local).
///
/// ```
/// use apples::hat::jacobi2d_hat;
/// use apples::info::InfoPool;
/// use apples::planner::plan_strip;
/// use apples::user::UserSpec;
/// use metasim::host::HostSpec;
/// use metasim::net::{LinkSpec, TopologyBuilder};
/// use metasim::{HostId, SimTime};
///
/// let mut b = TopologyBuilder::new();
/// let seg = b.add_segment(LinkSpec::dedicated("seg", 100.0, SimTime::ZERO));
/// b.add_host(HostSpec::dedicated("slow", 10.0, 1024.0, seg));
/// b.add_host(HostSpec::dedicated("fast", 30.0, 1024.0, seg));
/// let topo = b.instantiate(SimTime::from_secs(1000), 0).unwrap();
///
/// let hat = jacobi2d_hat(400, 10);
/// let user = UserSpec::default();
/// let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
/// let sched = plan_strip(&pool, &[HostId(0), HostId(1)]).unwrap();
///
/// // Rows split ~1:3 with the speeds.
/// assert_eq!(sched.parts.iter().map(|p| p.rows).sum::<usize>(), 400);
/// let fast = sched.parts.iter().find(|p| p.host == HostId(1)).unwrap();
/// assert!(fast.rows > 280);
/// ```
pub fn plan_strip(pool: &InfoPool<'_>, hosts: &[HostId]) -> Result<StencilSchedule, ApplesError> {
    let t = pool.hat.as_stencil().ok_or(ApplesError::TemplateMismatch {
        expected: "iterative-stencil",
        found: pool.hat.class_name(),
    })?;
    if hosts.is_empty() {
        return Err(ApplesError::PlanningFailed("empty resource set".into()));
    }

    // Strip order: group by segment, fastest-first inside a segment.
    let mut ordered: Vec<HostId> = hosts.to_vec();
    ordered.sort_by(|&a, &b| {
        let ha = pool.topo.host(a).map(|h| h.spec.segment.0).unwrap_or(0);
        let hb = pool.topo.host(b).map(|h| h.spec.segment.0).unwrap_or(0);
        ha.cmp(&hb).then_with(|| {
            let sa = pool.effective_mflops(a).unwrap_or(0.0);
            let sb = pool.effective_mflops(b).unwrap_or(0.0);
            sb.total_cmp(&sa)
        })
    });

    let row_mb = t.strip_resident_mb(1);
    let mut live: Vec<StripHost> = Vec::with_capacity(ordered.len());
    for &h in &ordered {
        let eff = pool.effective_mflops(h)?;
        if eff <= 0.0 {
            continue; // fully unavailable host contributes nothing
        }
        let sec_per_row = t.strip_mflop_per_iter(1) / eff;
        let spec = &pool.topo.host(h)?.spec;
        let cap_rows = if pool.user.avoid_memory_spill {
            (spec.mem_mb / row_mb).floor() as usize
        } else {
            usize::MAX
        };
        live.push(StripHost {
            host: h,
            sec_per_row,
            comm_sec: 0.0, // filled per solve round (depends on neighbours)
            cap_rows,
            row_mb,
            mem_mb: spec.mem_mb,
            paging_k: spec.paging_slowdown,
        });
    }
    if live.is_empty() {
        return Err(ApplesError::PlanningFailed(
            "no host in the set has positive predicted availability".into(),
        ));
    }

    // Balance the full set, then greedily test whether evicting the
    // host with the costliest borders improves the predicted iteration
    // time. The equal-time solution is only locally optimal: a host
    // behind an expensive link can inflate everyone's balanced time,
    // and the best plan *for this resource set* may simply not use it.
    let (mut best_live, mut best_rows, mut best_t, mut best_spilled) = solve_round(pool, t, live)?;
    while best_live.len() > 1 {
        // The loop guard holds at least two hosts, so a missing max
        // is impossible; stop evicting rather than abort if it happens.
        let Some(worst) = best_live
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.comm_sec.total_cmp(&b.1.comm_sec))
            .map(|(i, _)| i)
        else {
            break;
        };
        let mut reduced = best_live.clone();
        reduced.remove(worst);
        match solve_round(pool, t, reduced) {
            // An eviction may not *introduce* memory spill: under the
            // user's spill guard, a narrower-but-paging schedule is
            // never an acceptable "improvement" over a spill-free one.
            Ok((l, r, tt, spilled)) if tt < best_t * (1.0 - 1e-9) && (best_spilled || !spilled) => {
                best_live = l;
                best_rows = r;
                best_t = tt;
                best_spilled = spilled;
            }
            _ => break,
        }
    }

    let parts = integerize(t.n, &best_live, &best_rows);
    let sched = StencilSchedule {
        n: t.n,
        iterations: t.iterations,
        parts,
    };
    sched.validate()?;
    Ok(sched)
}

/// One balancing round over a fixed host list: recompute border costs,
/// solve with caps, drop hopeless hosts, and fall back to
/// capacity-proportional allocation when the set cannot hold the grid.
/// Returns the surviving hosts, their fractional rows, the predicted
/// iteration time, and whether the allocation spills memory.
fn solve_round(
    pool: &InfoPool<'_>,
    t: &StencilTemplate,
    mut live: Vec<StripHost>,
) -> Result<(Vec<StripHost>, Vec<f64>, f64, bool), ApplesError> {
    loop {
        fill_comm_costs(pool, t, &mut live)?;
        match solve_with_caps(t.n, &live) {
            SolveOutcome::Feasible(rows) => {
                let iter_t = predicted_iteration_time(&live, &rows);
                return Ok((live, rows, iter_t, false));
            }
            SolveOutcome::Drop(idx) => {
                live.remove(idx);
                if live.is_empty() {
                    return Err(ApplesError::PlanningFailed(
                        "every host was dropped during strip balancing".into(),
                    ));
                }
            }
            SolveOutcome::CapacityExceeded => {
                // Total memory across the set cannot hold the grid
                // without spilling. Fall back to capacity-proportional
                // allocation — everyone spills in proportion — and let
                // the estimator charge the paging penalty.
                let rows = proportional_to_capacity(t.n, &live);
                let iter_t = predicted_iteration_time(&live, &rows);
                return Ok((live, rows, iter_t, true));
            }
        }
    }
}

/// `max_i (a_i * r_i / mem_factor_i + C_i)` — the §5 model's iteration
/// time, with the paging penalty applied when a strip spills.
fn predicted_iteration_time(live: &[StripHost], rows: &[f64]) -> f64 {
    live.iter()
        .zip(rows)
        .map(|(h, &a)| a * h.sec_per_row / h.memory_factor(a) + h.comm_sec)
        .fold(0.0, f64::max)
}

/// Border-exchange cost per iteration for each strip, given the current
/// strip order: each neighbour costs one latency plus one border
/// payload at the predicted route bandwidth, for the send and for the
/// matching receive.
fn fill_comm_costs(
    pool: &InfoPool<'_>,
    t: &StencilTemplate,
    live: &mut [StripHost],
) -> Result<(), ApplesError> {
    let k = live.len();
    let border = t.border_mb();
    let hosts: Vec<HostId> = live.iter().map(|s| s.host).collect();
    for i in 0..k {
        let mut c = 0.0;
        if i > 0 {
            c += 2.0 * pool.transfer_seconds(hosts[i], hosts[i - 1], border)?;
        }
        if i + 1 < k {
            c += 2.0 * pool.transfer_seconds(hosts[i], hosts[i + 1], border)?;
        }
        live[i].comm_sec = c;
    }
    Ok(())
}

enum SolveOutcome {
    /// Fractional row allocation, same order as the input hosts.
    Feasible(Vec<f64>),
    /// Host at this index received a non-positive allocation; drop it.
    Drop(usize),
    /// Memory caps cannot hold the grid.
    CapacityExceeded,
}

/// Solve the equal-time system with memory caps by water-filling.
fn solve_with_caps(n: usize, live: &[StripHost]) -> SolveOutcome {
    let k = live.len();
    let mut fixed: Vec<Option<f64>> = vec![None; k];
    let mut remaining = n as f64;

    loop {
        let free: Vec<usize> = (0..k).filter(|&i| fixed[i].is_none()).collect();
        if free.is_empty() {
            return if remaining > 1e-9 {
                SolveOutcome::CapacityExceeded
            } else {
                SolveOutcome::Feasible((0..k).map(|i| fixed[i].unwrap_or(0.0)).collect())
            };
        }
        // T = (R + Σ C_i/r_i) / (Σ 1/r_i) over the free hosts.
        let mut num = remaining;
        let mut den = 0.0;
        for &i in &free {
            num += live[i].comm_sec / live[i].sec_per_row;
            den += 1.0 / live[i].sec_per_row;
        }
        let t_bal = num / den;

        // Pin any host whose balanced share exceeds its memory cap.
        // Pinning must happen BEFORE the hopeless-host check: a
        // dominant fast host deflates the balanced time, making slow
        // hosts look useless — but once the fast host is pinned at its
        // memory cap, those hosts may be essential to hold the grid.
        let mut pinned_any = false;
        for &i in &free {
            let a_i = (t_bal - live[i].comm_sec) / live[i].sec_per_row;
            let cap = live[i].cap_rows as f64;
            if a_i > cap {
                // Never pin more than is left to hand out (a cap can
                // exceed the whole grid when memory is plentiful).
                let pin = cap.min(remaining.max(0.0));
                fixed[i] = Some(pin);
                remaining -= pin;
                pinned_any = true;
            }
        }
        if pinned_any {
            continue;
        }

        // A host whose comm cost alone exceeds the balanced time
        // cannot usefully hold any rows: drop the worst offender.
        if let Some(&worst) = free
            .iter()
            .filter(|&&i| (t_bal - live[i].comm_sec) / live[i].sec_per_row <= 0.0)
            .max_by(|&&a, &&b| live[a].comm_sec.total_cmp(&live[b].comm_sec))
        {
            return SolveOutcome::Drop(worst);
        }

        // Feasible: fill in the free hosts' balanced shares.
        let mut rows = vec![0.0; k];
        for i in 0..k {
            rows[i] = match fixed[i] {
                Some(v) => v,
                None => (t_bal - live[i].comm_sec) / live[i].sec_per_row,
            };
        }
        return SolveOutcome::Feasible(rows);
    }
}

/// Allocation proportional to memory capacity (the everyone-spills
/// fallback). Hosts with unlimited caps split the grid by speed.
fn proportional_to_capacity(n: usize, live: &[StripHost]) -> Vec<f64> {
    let total_cap: f64 = live.iter().map(|s| s.cap_rows as f64).sum();
    if total_cap <= 0.0 {
        // Degenerate: split by speed.
        let total_speed: f64 = live.iter().map(|s| 1.0 / s.sec_per_row).sum();
        return live
            .iter()
            .map(|s| n as f64 * (1.0 / s.sec_per_row) / total_speed)
            .collect();
    }
    live.iter()
        .map(|s| n as f64 * s.cap_rows as f64 / total_cap)
        .collect()
}

/// Round a fractional allocation to integers summing to `n`, dropping
/// hosts that round to zero.
fn integerize(n: usize, live: &[StripHost], rows: &[f64]) -> Vec<StencilPart> {
    let mut floored: Vec<usize> = rows.iter().map(|&r| r.max(0.0).floor() as usize).collect();
    let mut assigned: usize = floored.iter().sum();

    // Distribute the remainder by largest fractional part. Caps are
    // respected as long as any host has headroom; only when every host
    // is pinned at its cap (the everyone-spills fallback) do the extra
    // rows go out round-robin regardless.
    let mut frac: Vec<(usize, f64)> = rows
        .iter()
        .enumerate()
        .map(|(i, &r)| (i, r - r.floor()))
        .collect();
    frac.sort_by(|a, b| b.1.total_cmp(&a.1));
    while assigned < n {
        let mut progressed = false;
        for &(i, _) in &frac {
            if assigned >= n {
                break;
            }
            if floored[i] < live[i].cap_rows {
                floored[i] += 1;
                assigned += 1;
                progressed = true;
            }
        }
        if !progressed {
            for &(i, _) in &frac {
                if assigned >= n {
                    break;
                }
                floored[i] += 1;
                assigned += 1;
            }
        }
    }
    // Shave any excess (can happen when every row was pinned at caps
    // and rounding overshot).
    let mut over = assigned.saturating_sub(n);
    for f in floored.iter_mut() {
        if over == 0 {
            break;
        }
        let take = (*f).min(over);
        *f -= take;
        over -= take;
    }

    live.iter()
        .zip(&floored)
        .filter(|&(_, &r)| r > 0)
        .map(|(s, &r)| StencilPart {
            host: s.host,
            rows: r,
        })
        .collect()
}

/// Candidate pipeline unit sizes swept when planning a pipeline
/// (§2.3's 5–20 surface functions per subdomain sits in the middle).
pub const PIPELINE_UNIT_CANDIDATES: &[usize] = &[1, 2, 5, 10, 20, 40, 80];

/// Plan a two-task pipeline on an ordered `(producer, consumer)` host
/// pair: pick the unit size minimizing the estimated makespan.
pub fn plan_pipeline(
    pool: &InfoPool<'_>,
    producer: HostId,
    consumer: HostId,
    depth: usize,
) -> Result<PipelineSchedule, ApplesError> {
    let t = pool
        .hat
        .as_pipeline()
        .ok_or(ApplesError::TemplateMismatch {
            expected: "pipeline",
            found: pool.hat.class_name(),
        })?;
    let mut best: Option<(f64, PipelineSchedule)> = None;
    for &unit in PIPELINE_UNIT_CANDIDATES {
        if unit > t.total_units.max(1) {
            continue;
        }
        let cand = PipelineSchedule {
            producer,
            consumer,
            unit_size: unit,
            depth,
        };
        let secs = estimator::estimate_pipeline(pool, &cand)?;
        if best.as_ref().is_none_or(|(b, _)| secs < *b) {
            best = Some((secs, cand));
        }
    }
    best.map(|(_, s)| s)
        .ok_or_else(|| ApplesError::PlanningFailed("no viable pipeline unit size".into()))
}

/// Plan a schedule for the pool's application class on the given
/// resource set. Stencils use every host in the set; pipelines use the
/// first two hosts as (producer, consumer).
pub fn plan(pool: &InfoPool<'_>, hosts: &[HostId]) -> Result<Schedule, ApplesError> {
    use crate::hat::AppStructure::*;
    match &pool.hat.structure {
        IterativeStencil(_) => Ok(Schedule::Stencil(plan_strip(pool, hosts)?)),
        Pipeline(_) => {
            if hosts.is_empty() {
                return Err(ApplesError::PlanningFailed("empty resource set".into()));
            }
            // Task-to-machine assignment matters (§2.3: the LHSF code
            // vectorizes, Log-D has per-machine implementations), so
            // try both orientations of the pair and keep the better.
            let producer = hosts[0];
            let consumer = *hosts.get(1).unwrap_or(&hosts[0]);
            let forward = plan_pipeline(pool, producer, consumer, 4)?;
            if producer == consumer {
                return Ok(Schedule::Pipeline(forward));
            }
            let backward = plan_pipeline(pool, consumer, producer, 4)?;
            let f_secs = estimator::estimate_pipeline(pool, &forward)?;
            let b_secs = estimator::estimate_pipeline(pool, &backward)?;
            Ok(Schedule::Pipeline(if f_secs <= b_secs {
                forward
            } else {
                backward
            }))
        }
        IndependentTasks(_) => Err(ApplesError::PlanningFailed(
            "task farms are planned by their Site Manager (see apples-apps::nile)".into(),
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hat::jacobi2d_hat;
    use crate::info::InfoPool;
    use crate::user::UserSpec;
    use metasim::host::HostSpec;
    use metasim::load::LoadModel;
    use metasim::net::{LinkSpec, TopologyBuilder};
    use metasim::{SimTime, Topology};

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    /// Hosts with speeds 10/20/40 Mflop/s on one fast segment.
    fn topo3() -> Topology {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 100.0, SimTime::from_micros(100)));
        b.add_host(HostSpec::dedicated("slow", 10.0, 4096.0, seg));
        b.add_host(HostSpec::dedicated("mid", 20.0, 4096.0, seg));
        b.add_host(HostSpec::dedicated("fast", 40.0, 4096.0, seg));
        b.instantiate(s(100_000.0), 0).unwrap()
    }

    #[test]
    fn strips_proportional_to_speed_when_comm_is_negligible() {
        let topo = topo3();
        let hat = jacobi2d_hat(700, 10);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let sched = plan_strip(&pool, &[HostId(0), HostId(1), HostId(2)]).unwrap();
        assert_eq!(sched.parts.iter().map(|p| p.rows).sum::<usize>(), 700);
        // Speeds 10:20:40 ⇒ rows ≈ 100:200:400.
        let rows_of = |h: usize| {
            sched
                .parts
                .iter()
                .find(|p| p.host == HostId(h))
                .map(|p| p.rows)
                .unwrap_or(0)
        };
        assert!(
            (rows_of(0) as i64 - 100).abs() <= 3,
            "slow got {}",
            rows_of(0)
        );
        assert!((rows_of(1) as i64 - 200).abs() <= 3);
        assert!((rows_of(2) as i64 - 400).abs() <= 3);
    }

    #[test]
    fn loaded_host_gets_a_smaller_strip() {
        // Two nominally identical hosts, one 50% loaded: the oracle
        // pool should give the loaded host about a third of the grid
        // (speeds 0.5 : 1.0).
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 100.0, SimTime::from_micros(100)));
        b.add_host(HostSpec::workstation(
            "loaded",
            20.0,
            4096.0,
            seg,
            LoadModel::Constant(0.5),
        ));
        b.add_host(HostSpec::dedicated("free", 20.0, 4096.0, seg));
        let topo = b.instantiate(s(100_000.0), 0).unwrap();
        let hat = jacobi2d_hat(600, 10);
        let user = UserSpec::default();
        let mut pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        pool.source = crate::info::ForecastSource::Oracle;
        let sched = plan_strip(&pool, &[HostId(0), HostId(1)]).unwrap();
        let loaded = sched.parts.iter().find(|p| p.host == HostId(0)).unwrap();
        assert!(
            (loaded.rows as i64 - 200).abs() <= 4,
            "loaded host got {} rows",
            loaded.rows
        );
    }

    #[test]
    fn useless_host_is_dropped() {
        // A host behind an extremely slow gateway whose border cost
        // dwarfs any compute contribution must be excluded.
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 100.0, SimTime::from_micros(100)));
        let far = b.add_segment(LinkSpec::dedicated("far", 100.0, SimTime::from_micros(100)));
        let gw = b.add_link(LinkSpec::dedicated("gw", 1e-4, SimTime::from_secs(30)));
        b.add_route(seg, far, vec![gw]).unwrap();
        b.add_host(HostSpec::dedicated("a", 40.0, 4096.0, seg));
        b.add_host(HostSpec::dedicated("b", 40.0, 4096.0, seg));
        b.add_host(HostSpec::dedicated("distant", 40.0, 4096.0, far));
        let topo = b.instantiate(s(100_000.0), 0).unwrap();
        let hat = jacobi2d_hat(400, 10);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let sched = plan_strip(&pool, &[HostId(0), HostId(1), HostId(2)]).unwrap();
        assert!(
            !sched.hosts().contains(&HostId(2)),
            "distant host should be dropped, got {:?}",
            sched.parts
        );
        assert_eq!(sched.parts.iter().map(|p| p.rows).sum::<usize>(), 400);
    }

    #[test]
    fn memory_cap_redistributes_rows() {
        // Fast host can hold only 100 rows of a 300-row grid; the rest
        // must flow to the slow host even though it is slower.
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 100.0, SimTime::from_micros(100)));
        // Row of n=300 doubles: 300*16 B = 4.8 KB ⇒ 100 rows = 0.48 MB.
        b.add_host(HostSpec::dedicated("fast-smallmem", 100.0, 0.48, seg));
        b.add_host(HostSpec::dedicated("slow-bigmem", 10.0, 4096.0, seg));
        let topo = b.instantiate(s(100_000.0), 0).unwrap();
        let hat = jacobi2d_hat(300, 10);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let sched = plan_strip(&pool, &[HostId(0), HostId(1)]).unwrap();
        let fast = sched.parts.iter().find(|p| p.host == HostId(0)).unwrap();
        let slow = sched.parts.iter().find(|p| p.host == HostId(1)).unwrap();
        assert!(
            fast.rows <= 100,
            "fast host over memory: {} rows",
            fast.rows
        );
        assert_eq!(fast.rows + slow.rows, 300);
    }

    #[test]
    fn spill_guard_off_ignores_memory() {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 100.0, SimTime::from_micros(100)));
        b.add_host(HostSpec::dedicated("fast-smallmem", 100.0, 0.48, seg));
        b.add_host(HostSpec::dedicated("slow-bigmem", 10.0, 4096.0, seg));
        let topo = b.instantiate(s(100_000.0), 0).unwrap();
        let hat = jacobi2d_hat(300, 10);
        let user = UserSpec {
            avoid_memory_spill: false,
            ..Default::default()
        };
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let sched = plan_strip(&pool, &[HostId(0), HostId(1)]).unwrap();
        let fast = sched.parts.iter().find(|p| p.host == HostId(0)).unwrap();
        // Unconstrained balance gives the 10× faster host ~273 rows.
        assert!(
            fast.rows > 200,
            "expected speed-balanced rows, got {}",
            fast.rows
        );
    }

    #[test]
    fn insufficient_total_memory_falls_back_to_proportional() {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 100.0, SimTime::from_micros(100)));
        // Each host holds 50 rows; grid needs 300.
        b.add_host(HostSpec::dedicated("a", 10.0, 0.24, seg));
        b.add_host(HostSpec::dedicated("b", 10.0, 0.24, seg));
        let topo = b.instantiate(s(100_000.0), 0).unwrap();
        let hat = jacobi2d_hat(300, 10);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let sched = plan_strip(&pool, &[HostId(0), HostId(1)]).unwrap();
        assert_eq!(sched.parts.iter().map(|p| p.rows).sum::<usize>(), 300);
        // Proportional to equal capacities: an even split.
        assert_eq!(sched.parts[0].rows, 150);
    }

    #[test]
    fn single_host_takes_everything() {
        let topo = topo3();
        let hat = jacobi2d_hat(500, 10);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let sched = plan_strip(&pool, &[HostId(2)]).unwrap();
        assert_eq!(sched.parts.len(), 1);
        assert_eq!(sched.parts[0].rows, 500);
    }

    #[test]
    fn empty_set_is_an_error() {
        let topo = topo3();
        let hat = jacobi2d_hat(100, 1);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        assert!(plan_strip(&pool, &[]).is_err());
    }

    #[test]
    fn wrong_template_is_a_mismatch() {
        let topo = topo3();
        let hat = crate::hat::Hat::pipeline(
            "p",
            crate::hat::PipelineTemplate {
                total_units: 10,
                producer_mflop_per_unit: 1.0,
                consumer_mflop_per_unit: 1.0,
                mb_per_unit: 0.1,
                producer_resident_mb: 1.0,
                consumer_base_mb: 1.0,
                consumer_mb_per_buffered_unit: 0.0,
                convert_mflop_per_message: 0.0,
                producer_efficiency: Default::default(),
                consumer_efficiency: Default::default(),
            },
        );
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        assert!(matches!(
            plan_strip(&pool, &[HostId(0)]),
            Err(ApplesError::TemplateMismatch { .. })
        ));
    }

    #[test]
    fn strip_order_groups_segments() {
        // Hosts on two segments must come out grouped so only one
        // border crosses the gateway.
        let mut b = TopologyBuilder::new();
        let sa = b.add_segment(LinkSpec::dedicated(
            "segA",
            100.0,
            SimTime::from_micros(100),
        ));
        let sb = b.add_segment(LinkSpec::dedicated(
            "segB",
            100.0,
            SimTime::from_micros(100),
        ));
        let gw = b.add_link(LinkSpec::dedicated("gw", 1.0, SimTime::from_millis(5)));
        b.add_route(sa, sb, vec![gw]).unwrap();
        b.add_host(HostSpec::dedicated("a0", 20.0, 4096.0, sa));
        b.add_host(HostSpec::dedicated("b0", 20.0, 4096.0, sb));
        b.add_host(HostSpec::dedicated("a1", 20.0, 4096.0, sa));
        b.add_host(HostSpec::dedicated("b1", 20.0, 4096.0, sb));
        let topo = b.instantiate(s(100_000.0), 0).unwrap();
        let hat = jacobi2d_hat(800, 10);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let sched = plan_strip(&pool, &[HostId(0), HostId(1), HostId(2), HostId(3)]).unwrap();
        let segs: Vec<usize> = sched
            .hosts()
            .iter()
            .map(|&h| topo.host(h).unwrap().spec.segment.0)
            .collect();
        // Grouped: segment ids are non-decreasing.
        assert!(segs.windows(2).all(|w| w[0] <= w[1]), "order {segs:?}");
    }
}
