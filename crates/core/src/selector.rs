//! The Resource Selector (§4.1, §4.2).
//!
//! "Using information from the HAT and US to guide the selection
//! process, the Resource Selector routines identify promising sets of
//! resources for the Coordinator to consider. Access rights, resource
//! capacities, user directives, and other constraints are used to
//! 'filter' infeasible resource sets. The Resource Selector uses an
//! application-specific notion of logical 'distance' between resources
//! to prioritize them."
//!
//! Two candidate-generation strategies are provided. The paper's §5
//! prototype considered *all subsets* of its eight workstations —
//! [`CandidateStrategy::Exhaustive`] reproduces that. For larger pools
//! that is exponential, so [`CandidateStrategy::GreedyPrefixes`] ranks
//! hosts by forecast speed discounted by logical distance to the
//! already-selected set and emits each prefix as a candidate.

use crate::distance::{characteristic_message_mb, characteristic_work_mflop, logical_distance};
use crate::error::ApplesError;
use crate::info::InfoPool;
use metasim::HostId;

/// How candidate resource sets are generated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateStrategy {
    /// Every non-empty subset of the feasible hosts (the §5 approach).
    /// Refuses pools with more than 16 feasible hosts.
    Exhaustive,
    /// Greedy distance-aware ranking; candidate `k` is the first `k`
    /// hosts of the ranking.
    GreedyPrefixes,
    /// Exhaustive when the feasible pool is small (at most 12 hosts),
    /// greedy otherwise.
    Auto,
}

/// Generates filtered, prioritized candidate resource sets.
#[derive(Debug, Clone, Copy)]
pub struct ResourceSelector {
    /// Candidate-generation strategy.
    pub strategy: CandidateStrategy,
}

impl Default for ResourceSelector {
    fn default() -> Self {
        ResourceSelector {
            strategy: CandidateStrategy::Auto,
        }
    }
}

/// Largest feasible pool the exhaustive strategy will enumerate.
const EXHAUSTIVE_LIMIT: usize = 16;

/// Largest feasible pool for which [`CandidateStrategy::Auto`] still
/// resolves to exhaustive enumeration. Deliberately below
/// [`EXHAUSTIVE_LIMIT`]: every subset is planned *and* estimated
/// against live forecasts, so a 16-host pool costs 2^16 ≈ 65k
/// plan+estimate passes — tens of seconds per decision — while the
/// Figure-2 testbed (8 hosts, 10 with the SP-2 nodes) stays well
/// under this bound and keeps the paper's all-subsets behavior.
/// Callers who want exhaustive search on 13–16 hosts regardless of
/// the cost can still ask for [`CandidateStrategy::Exhaustive`]
/// explicitly.
const AUTO_EXHAUSTIVE_LIMIT: usize = 12;

impl ResourceSelector {
    /// Hosts that pass the user's access filter and have a positive
    /// predicted availability.
    pub fn feasible_hosts(pool: &InfoPool<'_>) -> Vec<HostId> {
        pool.topo
            .hosts()
            .iter()
            .map(|h| h.id)
            .filter(|&h| pool.user.permits(h))
            .filter(|&h| pool.effective_mflops(h).map(|v| v > 0.0).unwrap_or(false))
            .collect()
    }

    /// Candidate resource sets, filtered and prioritized.
    pub fn candidates(&self, pool: &InfoPool<'_>) -> Result<Vec<Vec<HostId>>, ApplesError> {
        let feasible = Self::feasible_hosts(pool);
        if feasible.is_empty() {
            return Err(ApplesError::NoFeasibleResources);
        }
        let max = pool.user.max_hosts.min(feasible.len());
        let strategy = match self.strategy {
            CandidateStrategy::Auto => {
                if feasible.len() <= AUTO_EXHAUSTIVE_LIMIT {
                    CandidateStrategy::Exhaustive
                } else {
                    CandidateStrategy::GreedyPrefixes
                }
            }
            s => s,
        };
        match strategy {
            CandidateStrategy::Exhaustive => {
                if feasible.len() > EXHAUSTIVE_LIMIT {
                    return Err(ApplesError::Invalid(format!(
                        "exhaustive selection over {} hosts would enumerate 2^{} sets",
                        feasible.len(),
                        feasible.len()
                    )));
                }
                let n = feasible.len();
                let mut out = Vec::with_capacity((1usize << n) - 1);
                for mask in 1u32..(1u32 << n) {
                    if (mask.count_ones() as usize) > max {
                        continue;
                    }
                    let set: Vec<HostId> = (0..n)
                        .filter(|&i| mask & (1 << i) != 0)
                        .map(|i| feasible[i])
                        .collect();
                    out.push(set);
                }
                Ok(out)
            }
            CandidateStrategy::GreedyPrefixes => {
                let ranked = Self::greedy_rank(pool, &feasible)?;
                Ok((1..=max).map(|k| ranked[..k].to_vec()).collect())
            }
            CandidateStrategy::Auto => Err(ApplesError::Invalid(
                "candidate strategy Auto must be resolved before enumeration".into(),
            )),
        }
    }

    /// Rank hosts greedily: start with the fastest, then repeatedly add
    /// the host whose *projected contribution time* is smallest — the
    /// time it would take to compute an even share of the application's
    /// characteristic work plus the cost of exchanging the
    /// application's characteristic messages with the hosts already
    /// chosen. Both terms are in seconds, so "fast but far" and "slow
    /// but near" are compared on the application's own scale (§3.3).
    fn greedy_rank(pool: &InfoPool<'_>, feasible: &[HostId]) -> Result<Vec<HostId>, ApplesError> {
        let msg = characteristic_message_mb(pool);
        let work = characteristic_work_mflop(pool);
        let mut remaining: Vec<HostId> = feasible.to_vec();
        let mut chosen: Vec<HostId> = Vec::with_capacity(feasible.len());

        // Seed with the fastest host.
        remaining.sort_by(|&a, &b| {
            let sa = pool.effective_mflops(a).unwrap_or(0.0);
            let sb = pool.effective_mflops(b).unwrap_or(0.0);
            sb.total_cmp(&sa)
        });
        chosen.push(remaining.remove(0));

        while !remaining.is_empty() {
            let share = work / (chosen.len() + 1) as f64;
            let mut best_idx = 0;
            let mut best_time = f64::INFINITY;
            for (i, &h) in remaining.iter().enumerate() {
                let speed = pool.effective_mflops(h)?.max(1e-12);
                let mut dist = 0.0;
                for &c in &chosen {
                    dist += logical_distance(pool, h, c, msg)?;
                }
                dist /= chosen.len() as f64;
                // Even compute share plus send+receive with up to two
                // neighbours per round.
                let projected = share / speed + 4.0 * dist;
                if projected < best_time {
                    best_time = projected;
                    best_idx = i;
                }
            }
            chosen.push(remaining.remove(best_idx));
        }
        Ok(chosen)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hat::jacobi2d_hat;
    use crate::info::InfoPool;
    use crate::user::UserSpec;
    use metasim::host::HostSpec;
    use metasim::net::{LinkSpec, TopologyBuilder};
    use metasim::{SimTime, Topology};

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    fn topo4() -> Topology {
        let mut b = TopologyBuilder::new();
        let near = b.add_segment(LinkSpec::dedicated(
            "near",
            100.0,
            SimTime::from_micros(100),
        ));
        let far = b.add_segment(LinkSpec::dedicated("far", 100.0, SimTime::from_micros(100)));
        let gw = b.add_link(LinkSpec::dedicated("gw", 0.1, SimTime::from_millis(50)));
        b.add_route(near, far, vec![gw]).unwrap();
        b.add_host(HostSpec::dedicated("fast", 40.0, 256.0, near));
        b.add_host(HostSpec::dedicated("mid", 20.0, 256.0, near));
        b.add_host(HostSpec::dedicated("slow", 10.0, 256.0, near));
        b.add_host(HostSpec::dedicated("fast-far", 40.0, 256.0, far));
        b.instantiate(s(1000.0), 0).unwrap()
    }

    #[test]
    fn exhaustive_enumerates_all_subsets() {
        let topo = topo4();
        let hat = jacobi2d_hat(100, 1);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let sel = ResourceSelector {
            strategy: CandidateStrategy::Exhaustive,
        };
        let c = sel.candidates(&pool).unwrap();
        assert_eq!(c.len(), 15); // 2^4 - 1
    }

    #[test]
    fn max_hosts_caps_subset_size() {
        let topo = topo4();
        let hat = jacobi2d_hat(100, 1);
        let user = UserSpec {
            max_hosts: 2,
            ..Default::default()
        };
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let sel = ResourceSelector {
            strategy: CandidateStrategy::Exhaustive,
        };
        let c = sel.candidates(&pool).unwrap();
        // 4 singletons + 6 pairs.
        assert_eq!(c.len(), 10);
        assert!(c.iter().all(|set| set.len() <= 2));
    }

    #[test]
    fn excluded_hosts_never_appear() {
        let topo = topo4();
        let hat = jacobi2d_hat(100, 1);
        let user = UserSpec {
            excluded_hosts: vec![HostId(0)],
            ..Default::default()
        };
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let sel = ResourceSelector::default();
        let c = sel.candidates(&pool).unwrap();
        assert!(c.iter().all(|set| !set.contains(&HostId(0))));
    }

    #[test]
    fn empty_feasible_set_is_an_error() {
        let topo = topo4();
        let hat = jacobi2d_hat(100, 1);
        let user = UserSpec {
            allowed_hosts: Some(vec![]),
            ..Default::default()
        };
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let sel = ResourceSelector::default();
        assert!(matches!(
            sel.candidates(&pool),
            Err(ApplesError::NoFeasibleResources)
        ));
    }

    #[test]
    fn greedy_prefixes_start_with_fastest() {
        let topo = topo4();
        let hat = jacobi2d_hat(100, 1);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let sel = ResourceSelector {
            strategy: CandidateStrategy::GreedyPrefixes,
        };
        let c = sel.candidates(&pool).unwrap();
        assert_eq!(c.len(), 4);
        assert_eq!(c[0], vec![HostId(0)]);
        // Every prefix extends the previous one.
        for w in c.windows(2) {
            assert_eq!(&w[1][..w[0].len()], &w[0][..]);
        }
    }

    #[test]
    fn greedy_prefers_near_host_over_equally_fast_far_host() {
        let topo = topo4();
        let hat = jacobi2d_hat(2000, 1); // borders: 16 KB messages
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let sel = ResourceSelector {
            strategy: CandidateStrategy::GreedyPrefixes,
        };
        let c = sel.candidates(&pool).unwrap();
        let ranking = &c[3];
        // `fast-far` (host 3) is as fast as `fast` but behind a 0.1 MB/s
        // gateway: it must rank below the near `mid` host.
        let pos = |h: usize| ranking.iter().position(|&x| x == HostId(h)).unwrap();
        assert!(
            pos(1) < pos(3),
            "near mid host should outrank far fast host: {ranking:?}"
        );
    }

    #[test]
    fn auto_uses_exhaustive_for_small_pools() {
        let topo = topo4();
        let hat = jacobi2d_hat(100, 1);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let sel = ResourceSelector::default();
        assert_eq!(sel.candidates(&pool).unwrap().len(), 15);
    }

    fn flat_topo(n: usize) -> Topology {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 100.0, SimTime::from_micros(100)));
        for i in 0..n {
            b.add_host(HostSpec::dedicated(&format!("h{i}"), 20.0, 256.0, seg));
        }
        b.instantiate(s(1000.0), 0).unwrap()
    }

    /// A 13-host pool sits between the auto cutoff (12) and the hard
    /// exhaustive limit (16): auto must fall back to greedy prefixes
    /// (13 candidates, not 2^13 − 1 = 8191 — at that size every
    /// subset gets planned and estimated, which is seconds per
    /// decision), while an explicit Exhaustive request still works.
    #[test]
    fn auto_goes_greedy_between_cutoff_and_exhaustive_limit() {
        let topo = flat_topo(13);
        let hat = jacobi2d_hat(100, 1);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let auto = ResourceSelector::default().candidates(&pool).unwrap();
        assert_eq!(auto.len(), 13, "auto should emit greedy prefixes");
        let exhaustive = ResourceSelector {
            strategy: CandidateStrategy::Exhaustive,
        }
        .candidates(&pool)
        .unwrap();
        assert_eq!(exhaustive.len(), 8191, "explicit exhaustive still runs");
    }
}
