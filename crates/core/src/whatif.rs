//! Application-centric capacity planning.
//!
//! §1.2 frames the metacomputer as an evolving pool: "As new technology
//! is added to the resource pool, the performance of existing
//! applications should be enhanced." The application-centric question
//! is then: *which* upgrade enhances **my** application most? Doubling
//! the fastest host, adding memory to the one that pages, or fattening
//! the link the borders cross?
//!
//! [`evaluate`] answers it the AppLeS way: apply each hypothetical
//! upgrade to a copy of the system, let the agent re-plan (an upgrade
//! changes the best schedule, not just the old schedule's speed), and
//! actuate both plans under the *same* realized contention. Background
//! load is untouched — faster silicon does not calm the other users.

use crate::coordinator::Coordinator;
use crate::error::ApplesError;
use crate::hat::Hat;
use crate::info::InfoPool;
use crate::user::UserSpec;
use metasim::{HostId, LinkId, SimTime, Topology};
use nws::WeatherService;

/// A hypothetical hardware change.
#[derive(Debug, Clone, PartialEq)]
pub enum Upgrade {
    /// Multiply a host's nominal speed.
    HostSpeed {
        /// The host to upgrade.
        host: HostId,
        /// Speed multiplier (> 1 is an upgrade).
        factor: f64,
    },
    /// Multiply a host's physical memory.
    HostMemory {
        /// The host to upgrade.
        host: HostId,
        /// Memory multiplier.
        factor: f64,
    },
    /// Multiply a link's capacity.
    LinkBandwidth {
        /// The link to upgrade.
        link: LinkId,
        /// Bandwidth multiplier.
        factor: f64,
    },
}

impl Upgrade {
    /// Human-readable description against a topology.
    pub fn describe(&self, topo: &Topology) -> String {
        match self {
            Upgrade::HostSpeed { host, factor } => format!(
                "{} CPU x{factor}",
                topo.host(*host)
                    .map(|h| h.spec.name.clone())
                    .unwrap_or_default()
            ),
            Upgrade::HostMemory { host, factor } => format!(
                "{} memory x{factor}",
                topo.host(*host)
                    .map(|h| h.spec.name.clone())
                    .unwrap_or_default()
            ),
            Upgrade::LinkBandwidth { link, factor } => format!(
                "{} bandwidth x{factor}",
                topo.link(*link)
                    .map(|l| l.spec.name.clone())
                    .unwrap_or_default()
            ),
        }
    }

    fn apply(&self, topo: &mut Topology) -> Result<(), ApplesError> {
        match self {
            Upgrade::HostSpeed { host, factor } => {
                topo.host_mut(*host)?.spec.mflops *= factor;
            }
            Upgrade::HostMemory { host, factor } => {
                topo.host_mut(*host)?.spec.mem_mb *= factor;
            }
            Upgrade::LinkBandwidth { link, factor } => {
                topo.link_mut(*link)?.spec.bandwidth_mbps *= factor;
            }
        }
        Ok(())
    }
}

/// One evaluated upgrade.
#[derive(Debug, Clone)]
pub struct WhatIfResult {
    /// The hypothetical change.
    pub upgrade: Upgrade,
    /// Actuated seconds on the upgraded system (re-planned).
    pub upgraded_seconds: f64,
    /// `baseline / upgraded` — how much faster the application gets.
    pub speedup: f64,
}

/// Outcome of a what-if sweep.
#[derive(Debug, Clone)]
pub struct WhatIfReport {
    /// Actuated seconds on the unmodified system.
    pub baseline_seconds: f64,
    /// Every evaluated upgrade, sorted by descending speedup.
    pub results: Vec<WhatIfResult>,
}

/// Evaluate hypothetical upgrades for one application: re-plan and
/// actuate on an upgraded copy of the system, under the same realized
/// background load, and rank by delivered speedup.
pub fn evaluate(
    topo: &Topology,
    weather: &WeatherService,
    hat: &Hat,
    user: &UserSpec,
    now: SimTime,
    upgrades: &[Upgrade],
) -> Result<WhatIfReport, ApplesError> {
    let agent = Coordinator::new(hat.clone(), user.clone());
    let run_on = |t: &Topology| -> Result<f64, ApplesError> {
        let pool = InfoPool::with_nws(t, weather, hat, user, now);
        let decision = agent.decide(&pool)?;
        Ok(crate::actuator::actuate(t, hat, decision.schedule(), now)?.elapsed_seconds)
    };
    let baseline_seconds = run_on(topo)?;
    let mut results = Vec::with_capacity(upgrades.len());
    for upgrade in upgrades {
        let mut upgraded = topo.clone();
        upgrade.apply(&mut upgraded)?;
        let upgraded_seconds = run_on(&upgraded)?;
        results.push(WhatIfResult {
            upgrade: upgrade.clone(),
            upgraded_seconds,
            speedup: baseline_seconds / upgraded_seconds,
        });
    }
    results.sort_by(|a, b| b.speedup.total_cmp(&a.speedup));
    Ok(WhatIfReport {
        baseline_seconds,
        results,
    })
}

/// The standard menu: double every host's CPU, double every host's
/// memory, double every link's bandwidth — one upgrade at a time.
pub fn standard_menu(topo: &Topology) -> Vec<Upgrade> {
    let mut menu = Vec::new();
    for h in topo.hosts() {
        menu.push(Upgrade::HostSpeed {
            host: h.id,
            factor: 2.0,
        });
        menu.push(Upgrade::HostMemory {
            host: h.id,
            factor: 2.0,
        });
    }
    for l in topo.links() {
        menu.push(Upgrade::LinkBandwidth {
            link: l.id,
            factor: 2.0,
        });
    }
    menu
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hat::jacobi2d_hat;
    use metasim::host::HostSpec;
    use metasim::net::{LinkSpec, TopologyBuilder};
    use nws::WeatherServiceConfig;

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    fn warmed(topo: &Topology) -> WeatherService {
        let mut ws = WeatherService::for_topology(topo, WeatherServiceConfig::default());
        ws.advance(topo, s(600.0));
        ws
    }

    #[test]
    fn cpu_upgrades_rank_by_contribution() {
        // Hosts at 10 and 30 Mflop/s: doubling the fast host adds more
        // aggregate speed, so it must rank first.
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 50.0, SimTime::from_micros(100)));
        b.add_host(HostSpec::dedicated("slow", 10.0, 4096.0, seg));
        b.add_host(HostSpec::dedicated("fast", 30.0, 4096.0, seg));
        let topo = b.instantiate(s(1e6), 0).unwrap();
        let ws = warmed(&topo);
        let hat = jacobi2d_hat(1200, 50);
        let user = UserSpec::default();
        let menu = vec![
            Upgrade::HostSpeed {
                host: HostId(0),
                factor: 2.0,
            },
            Upgrade::HostSpeed {
                host: HostId(1),
                factor: 2.0,
            },
        ];
        let report = evaluate(&topo, &ws, &hat, &user, s(600.0), &menu).unwrap();
        assert!(report.results[0].speedup > report.results[1].speedup);
        match &report.results[0].upgrade {
            Upgrade::HostSpeed { host, .. } => assert_eq!(*host, HostId(1)),
            other => panic!("unexpected winner {other:?}"),
        }
        // Both upgrades genuinely help.
        for r in &report.results {
            assert!(r.speedup > 1.0, "{r:?}");
        }
    }

    #[test]
    fn memory_upgrade_wins_when_the_app_spills() {
        // One fast host whose memory cannot hold the grid: doubling
        // its memory beats doubling an (irrelevant) link.
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 50.0, SimTime::from_micros(100)));
        // 1000x1000 doubles need 16 MB; give the host 10 MB.
        b.add_host(HostSpec::dedicated("tight", 50.0, 10.0, seg));
        let topo = b.instantiate(s(1e6), 0).unwrap();
        let ws = warmed(&topo);
        let hat = jacobi2d_hat(1000, 20);
        let user = UserSpec::default();
        let menu = vec![
            Upgrade::HostMemory {
                host: HostId(0),
                factor: 2.0,
            },
            Upgrade::LinkBandwidth {
                link: metasim::LinkId(0),
                factor: 2.0,
            },
        ];
        let report = evaluate(&topo, &ws, &hat, &user, s(600.0), &menu).unwrap();
        match &report.results[0].upgrade {
            Upgrade::HostMemory { .. } => {}
            other => panic!("memory should win, got {other:?}"),
        }
        assert!(report.results[0].speedup > 2.0, "{:?}", report.results[0]);
    }

    #[test]
    fn link_upgrade_wins_when_comm_bound() {
        // Fat borders over a thin gateway between two fast hosts.
        let mut b = TopologyBuilder::new();
        let sa = b.add_segment(LinkSpec::dedicated(
            "segA",
            100.0,
            SimTime::from_micros(100),
        ));
        let sb = b.add_segment(LinkSpec::dedicated(
            "segB",
            100.0,
            SimTime::from_micros(100),
        ));
        let gw = b.connect(
            sa,
            sb,
            LinkSpec::dedicated("thin", 0.05, SimTime::from_millis(1)),
        );
        b.add_host(HostSpec::dedicated("a", 50.0, 4096.0, sa));
        b.add_host(HostSpec::dedicated("b", 50.0, 4096.0, sb));
        let topo = b.instantiate(s(1e6), 0).unwrap();
        let ws = warmed(&topo);
        let hat = jacobi2d_hat(2000, 20);
        let user = UserSpec::default();
        let menu = vec![
            Upgrade::LinkBandwidth {
                link: gw,
                factor: 4.0,
            },
            Upgrade::HostMemory {
                host: HostId(0),
                factor: 2.0,
            },
        ];
        let report = evaluate(&topo, &ws, &hat, &user, s(600.0), &menu).unwrap();
        match &report.results[0].upgrade {
            Upgrade::LinkBandwidth { .. } => {}
            other => panic!("link should win, got {other:?}"),
        }
    }

    #[test]
    fn standard_menu_covers_every_resource() {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::ZERO));
        b.add_host(HostSpec::dedicated("a", 10.0, 64.0, seg));
        b.add_host(HostSpec::dedicated("b", 10.0, 64.0, seg));
        let topo = b.instantiate(s(1.0), 0).unwrap();
        let menu = standard_menu(&topo);
        // 2 hosts x (speed + memory) + 1 link.
        assert_eq!(menu.len(), 5);
    }

    #[test]
    fn describe_names_the_resource() {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("backbone", 10.0, SimTime::ZERO));
        b.add_host(HostSpec::dedicated("atlas", 10.0, 64.0, seg));
        let topo = b.instantiate(s(1.0), 0).unwrap();
        assert!(Upgrade::HostSpeed {
            host: HostId(0),
            factor: 2.0
        }
        .describe(&topo)
        .contains("atlas"));
        assert!(Upgrade::LinkBandwidth {
            link: metasim::LinkId(0),
            factor: 2.0
        }
        .describe(&topo)
        .contains("backbone"));
    }
}
