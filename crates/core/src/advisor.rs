//! The wait-or-run-now decision (§3.2).
//!
//! "When dedicated resources are considered, the user must determine
//! whether to wait until the resources will be available or to execute
//! the application with lesser performance on the resources currently
//! available. Users make these decisions all the time by estimating
//! the sum of the wait time and the dedicated time and comparing it
//! with a prediction of the slowdown the application will experience
//! on non-dedicated resources."
//!
//! [`advise`] mechanizes that comparison: plan the application on each
//! offered resource set, charge space-shared sets their queue wait
//! (already modelled by the executors via
//! [`metasim::Host::startup_wait`]), and recommend the set with the
//! earliest predicted *completion*, not the fastest predicted
//! *execution*.

use crate::error::ApplesError;
use crate::estimator::estimate_seconds;
use crate::info::InfoPool;
use crate::planner::plan;
use crate::schedule::Schedule;
use metasim::HostId;

/// One evaluated option.
#[derive(Debug, Clone, PartialEq)]
pub struct WaitOption {
    /// The offered resource set.
    pub hosts: Vec<HostId>,
    /// The planned schedule on that set.
    pub schedule: Schedule,
    /// Queue wait before execution can begin (max over the set).
    pub wait_seconds: f64,
    /// Predicted execution seconds once running (includes the wait for
    /// space-shared hosts, since the estimator charges startup).
    pub completion_seconds: f64,
}

/// The advisor's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct WaitAdvice {
    /// Index of the recommended option within `options`.
    pub recommended: usize,
    /// Every option that planned successfully.
    pub options: Vec<WaitOption>,
}

impl WaitAdvice {
    /// The recommended option.
    pub fn chosen(&self) -> &WaitOption {
        &self.options[self.recommended]
    }
}

/// Compare resource sets by predicted completion time (wait included)
/// and recommend the earliest finisher.
///
/// Typical use: `sets[0]` is a dedicated partition with a long queue,
/// `sets[1]` the loaded workstations available right now.
pub fn advise(pool: &InfoPool<'_>, sets: &[Vec<HostId>]) -> Result<WaitAdvice, ApplesError> {
    let mut options = Vec::new();
    for hosts in sets {
        let schedule = match plan(pool, hosts) {
            Ok(s) => s,
            Err(_) => continue,
        };
        let completion_seconds = match estimate_seconds(pool, &schedule) {
            Ok(t) => t,
            Err(_) => continue,
        };
        let mut wait_seconds = 0.0f64;
        for &h in hosts {
            wait_seconds = wait_seconds.max(pool.topo.host(h)?.startup_wait().as_secs_f64());
        }
        options.push(WaitOption {
            hosts: hosts.clone(),
            schedule,
            wait_seconds,
            completion_seconds,
        });
    }
    if options.is_empty() {
        return Err(ApplesError::NoViableSchedule);
    }
    let recommended = options
        .iter()
        .enumerate()
        .min_by(|(_, a), (_, b)| a.completion_seconds.total_cmp(&b.completion_seconds))
        .map(|(i, _)| i)
        .ok_or(ApplesError::NoViableSchedule)?;
    Ok(WaitAdvice {
        recommended,
        options,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hat::jacobi2d_hat;
    use crate::user::UserSpec;
    use metasim::host::{HostSpec, SharingPolicy};
    use metasim::load::LoadModel;
    use metasim::net::{LinkSpec, TopologyBuilder};
    use metasim::{SimTime, Topology};

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    /// Hosts 0-1: a dedicated pair behind a queue of `wait` seconds.
    /// Hosts 2-3: loaded workstations available immediately.
    fn topo(wait: f64, shared_avail: f64) -> Topology {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 20.0, SimTime::from_micros(200)));
        for i in 0..2 {
            let mut spec = HostSpec::dedicated(&format!("ded{i}"), 40.0, 1024.0, seg);
            spec.sharing = SharingPolicy::SpaceShared { wait: s(wait) };
            b.add_host(spec);
        }
        for i in 0..2 {
            b.add_host(HostSpec::workstation(
                &format!("ws{i}"),
                40.0,
                1024.0,
                seg,
                LoadModel::Constant(shared_avail),
            ));
        }
        b.instantiate(s(1e6), 0).unwrap()
    }

    fn advise_on(topo: &Topology) -> WaitAdvice {
        let hat = jacobi2d_hat(1000, 1000);
        let user = UserSpec::default();
        let mut pool = InfoPool::static_nominal(topo, &hat, &user, SimTime::ZERO);
        pool.source = crate::info::ForecastSource::Oracle;
        let dedicated = vec![HostId(0), HostId(1)];
        let shared = vec![HostId(2), HostId(3)];
        advise(&pool, &[dedicated, shared]).unwrap()
    }

    #[test]
    fn short_queue_favours_waiting_for_dedicated() {
        // 5 Mflop/iter × 1000 iterations on 2×40 Mflop/s: ~63 s of
        // compute; a 30 s queue is worth paying when the shared pool
        // runs at 30% availability (~210 s of compute).
        let topo = topo(30.0, 0.3);
        let advice = advise_on(&topo);
        assert_eq!(advice.chosen().hosts, vec![HostId(0), HostId(1)]);
        assert!(advice.chosen().wait_seconds == 30.0);
    }

    #[test]
    fn long_queue_favours_running_now() {
        // A 3-hour queue dwarfs the shared pool's slowdown.
        let topo = topo(10_800.0, 0.3);
        let advice = advise_on(&topo);
        assert_eq!(advice.chosen().hosts, vec![HostId(2), HostId(3)]);
        assert_eq!(advice.chosen().wait_seconds, 0.0);
    }

    #[test]
    fn lightly_loaded_shared_pool_beats_any_queue() {
        let topo = topo(30.0, 0.99);
        let advice = advise_on(&topo);
        assert_eq!(advice.chosen().hosts, vec![HostId(2), HostId(3)]);
    }

    #[test]
    fn completion_includes_the_wait() {
        let topo = topo(500.0, 0.3);
        let advice = advise_on(&topo);
        let dedicated = advice
            .options
            .iter()
            .find(|o| o.hosts == vec![HostId(0), HostId(1)])
            .unwrap();
        assert!(
            dedicated.completion_seconds > 500.0,
            "completion {} must include the 500 s wait",
            dedicated.completion_seconds
        );
    }

    #[test]
    fn advice_is_exposed_for_all_options() {
        let topo = topo(30.0, 0.5);
        let advice = advise_on(&topo);
        assert_eq!(advice.options.len(), 2);
    }

    #[test]
    fn no_plannable_set_is_an_error() {
        let topo = topo(30.0, 0.5);
        let hat = jacobi2d_hat(1000, 1000);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        assert!(advise(&pool, &[]).is_err());
    }
}
