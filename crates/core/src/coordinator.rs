//! The Coordinator: the single active agent of an AppLeS (§4.1).
//!
//! [`Coordinator::decide`] runs the §5 blueprint: generate candidate
//! resource sets through the Resource Selector, plan each with the
//! Planner, score each plan with the Performance Estimator under the
//! user's metric, and return the winner (plus everything considered,
//! for reporting). [`Coordinator::run`] completes the loop by handing
//! the winner to the Actuator.

use crate::actuator::{actuate_with_sink, ActuationReport};
use crate::error::ApplesError;
use crate::estimator::{estimate_seconds, objective};
use crate::hat::Hat;
use crate::info::InfoPool;
use crate::planner::plan;
use crate::schedule::Schedule;
use crate::selector::ResourceSelector;
use crate::user::{PerformanceMetric, UserSpec};
use metasim::simtrace::{EventSink, NoopSink, TraceEvent};
use metasim::{HostId, SimTime, Topology};
use nws::WeatherService;

/// One evaluated candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateEval {
    /// The resource set the candidate was planned for.
    pub hosts: Vec<HostId>,
    /// The planned schedule.
    pub schedule: Schedule,
    /// Predicted wall-clock seconds.
    pub predicted_seconds: f64,
    /// Score under the user's metric (lower is better).
    pub objective: f64,
}

/// Outcome of a scheduling decision.
#[derive(Debug, Clone, PartialEq)]
pub struct Decision {
    /// Index of the winner within `considered`.
    pub chosen_index: usize,
    /// Every candidate that planned successfully, in generation order.
    pub considered: Vec<CandidateEval>,
    /// Candidates whose planning failed, with reasons (diagnostic).
    pub rejected: usize,
}

impl Decision {
    /// The winning candidate.
    pub fn chosen(&self) -> &CandidateEval {
        &self.considered[self.chosen_index]
    }

    /// The winning schedule.
    pub fn schedule(&self) -> &Schedule {
        &self.chosen().schedule
    }

    /// A human-readable summary of the decision: the winner's resource
    /// assignment with host names, its predicted time, and the closest
    /// runners-up. Used by the CLI and examples; stable enough for
    /// logs, not meant for machine parsing.
    pub fn report(&self, topo: &Topology) -> String {
        let name = |h: HostId| {
            topo.host(h)
                .map(|x| x.spec.name.clone())
                .unwrap_or_else(|_| format!("{h}"))
        };
        let mut out = String::new();
        out.push_str(&format!(
            "considered {} candidate schedules ({} rejected in planning)\n",
            self.considered.len(),
            self.rejected
        ));
        let chosen = self.chosen();
        out.push_str(&format!(
            "chosen: {} host(s), predicted {:.2} s (objective {:.4})\n",
            chosen.hosts.len(),
            chosen.predicted_seconds,
            chosen.objective
        ));
        match &chosen.schedule {
            Schedule::Stencil(s) => {
                for p in &s.parts {
                    out.push_str(&format!(
                        "  {:>18}: {:>5} rows ({:.1}%)\n",
                        name(p.host),
                        p.rows,
                        p.rows as f64 / s.n as f64 * 100.0
                    ));
                }
            }
            Schedule::Pipeline(p) => {
                out.push_str(&format!(
                    "  producer {} -> consumer {}, unit {}, depth {}\n",
                    name(p.producer),
                    name(p.consumer),
                    p.unit_size,
                    p.depth
                ));
            }
            Schedule::Farm(f) => {
                for &(h, e) in &f.assignments {
                    out.push_str(&format!("  {:>18}: {e} events\n", name(h)));
                }
            }
        }
        // Closest runners-up by objective.
        let mut order: Vec<usize> = (0..self.considered.len())
            .filter(|&i| i != self.chosen_index)
            .collect();
        order.sort_by(|&a, &b| {
            self.considered[a]
                .objective
                .total_cmp(&self.considered[b].objective)
        });
        for &i in order.iter().take(3) {
            let c = &self.considered[i];
            let hosts: Vec<String> = c.hosts.iter().map(|&h| name(h)).collect();
            out.push_str(&format!(
                "runner-up: {:.2} s on [{}]\n",
                c.predicted_seconds,
                hosts.join(", ")
            ));
        }
        out
    }
}

/// An AppLeS agent for one application.
///
/// ```
/// use apples::hat::jacobi2d_hat;
/// use apples::{Coordinator, UserSpec};
/// use metasim::host::HostSpec;
/// use metasim::net::{LinkSpec, TopologyBuilder};
/// use metasim::SimTime;
/// use nws::{WeatherService, WeatherServiceConfig};
///
/// let mut b = TopologyBuilder::new();
/// let seg = b.add_segment(LinkSpec::dedicated("seg", 20.0, SimTime::ZERO));
/// b.add_host(HostSpec::dedicated("a", 20.0, 1024.0, seg));
/// b.add_host(HostSpec::dedicated("b", 40.0, 1024.0, seg));
/// let topo = b.instantiate(SimTime::from_secs(10_000), 0).unwrap();
///
/// let mut weather = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
/// let now = SimTime::from_secs(300);
/// weather.advance(&topo, now);
///
/// let agent = Coordinator::new(jacobi2d_hat(600, 20), UserSpec::default());
/// let (decision, report) = agent.run(&topo, &weather, now).unwrap();
/// assert!(!decision.considered.is_empty());
/// assert!(report.elapsed_seconds > 0.0);
/// ```
#[derive(Debug, Clone)]
pub struct Coordinator {
    /// The application's template.
    pub hat: Hat,
    /// The user's specifications.
    pub user: UserSpec,
    /// Candidate generation strategy.
    pub selector: ResourceSelector,
}

impl Coordinator {
    /// An agent with the default (auto) resource-selection strategy.
    pub fn new(hat: Hat, user: UserSpec) -> Self {
        Coordinator {
            hat,
            user,
            selector: ResourceSelector::default(),
        }
    }

    /// Steps 1–3 of the blueprint: select, plan, estimate, choose.
    pub fn decide(&self, pool: &InfoPool<'_>) -> Result<Decision, ApplesError> {
        self.decide_with_sink(pool, &mut NoopSink)
    }

    /// [`Coordinator::decide`], emitting
    /// [`TraceEvent::ResourceSelection`], one
    /// [`TraceEvent::CandidateConsidered`] per successfully planned
    /// candidate and [`TraceEvent::ScheduleChosen`] for the winner —
    /// the cost-model view behind the decision, timestamped at
    /// `pool.now`.
    pub fn decide_with_sink(
        &self,
        pool: &InfoPool<'_>,
        sink: &mut dyn EventSink,
    ) -> Result<Decision, ApplesError> {
        let candidate_sets = self.selector.candidates(pool)?;
        if sink.enabled() {
            sink.record(TraceEvent::ResourceSelection {
                at: pool.now,
                candidates: candidate_sets.len(),
            });
        }

        // For the Speedup metric we need the best single-host time as
        // the reference denominator.
        let best_single = if matches!(self.user.metric, PerformanceMetric::Speedup) {
            let mut best: Option<f64> = None;
            for set in candidate_sets.iter().filter(|s| s.len() == 1) {
                if let Ok(sched) = plan(pool, set) {
                    if let Ok(secs) = estimate_seconds(pool, &sched) {
                        best = Some(best.map_or(secs, |b: f64| b.min(secs)));
                    }
                }
            }
            best
        } else {
            None
        };

        let mut considered = Vec::new();
        let mut rejected = 0usize;
        for set in candidate_sets {
            let sched = match plan(pool, &set) {
                Ok(s) => s,
                Err(_) => {
                    rejected += 1;
                    continue;
                }
            };
            let predicted = match estimate_seconds(pool, &sched) {
                Ok(p) => p,
                Err(_) => {
                    rejected += 1;
                    continue;
                }
            };
            let score = objective(
                &self.user.metric,
                predicted,
                sched.hosts().len(),
                best_single,
            );
            if sink.enabled() {
                sink.record(TraceEvent::CandidateConsidered {
                    at: pool.now,
                    index: considered.len(),
                    hosts: sched.hosts().len(),
                    predicted_seconds: predicted,
                    objective: score,
                });
            }
            considered.push(CandidateEval {
                hosts: set,
                schedule: sched,
                predicted_seconds: predicted,
                objective: score,
            });
        }
        if considered.is_empty() {
            return Err(ApplesError::NoViableSchedule);
        }
        // Minimum objective; then, within the user's preference margin
        // of that minimum (§3.5 — soft preferences like "we want the
        // CASA platform"), prefer schedules using more preferred hosts;
        // remaining ties go to fewer hosts (cheaper, less exposed to
        // stragglers).
        let best_objective = considered
            .iter()
            .map(|c| c.objective)
            .fold(f64::INFINITY, f64::min);
        let margin = best_objective * (1.0 + self.user.preference_margin.max(0.0));
        let chosen_index = considered
            .iter()
            .enumerate()
            .filter(|(_, c)| c.objective <= margin)
            .min_by(|(_, a), (_, b)| {
                let pa = self.user.preference_count(&a.hosts);
                let pb = self.user.preference_count(&b.hosts);
                pb.cmp(&pa)
                    .then_with(|| a.objective.total_cmp(&b.objective))
                    .then_with(|| a.schedule.hosts().len().cmp(&b.schedule.hosts().len()))
            })
            .map(|(i, _)| i)
            .ok_or(ApplesError::NoViableSchedule)?;
        if sink.enabled() {
            sink.record(TraceEvent::ScheduleChosen {
                at: pool.now,
                index: chosen_index,
                predicted_seconds: considered[chosen_index].predicted_seconds,
            });
        }
        Ok(Decision {
            chosen_index,
            considered,
            rejected,
        })
    }

    /// The full blueprint: decide with NWS information at `now`, then
    /// actuate the winner at `now`.
    pub fn run(
        &self,
        topo: &Topology,
        weather: &WeatherService,
        now: SimTime,
    ) -> Result<(Decision, ActuationReport), ApplesError> {
        self.run_with_sink(topo, weather, now, &mut NoopSink)
    }

    /// [`Coordinator::run`], with decision and actuation events
    /// streamed into `sink`.
    pub fn run_with_sink(
        &self,
        topo: &Topology,
        weather: &WeatherService,
        now: SimTime,
        sink: &mut dyn EventSink,
    ) -> Result<(Decision, ActuationReport), ApplesError> {
        let pool = InfoPool::with_nws(topo, weather, &self.hat, &self.user, now);
        let decision = self.decide_with_sink(&pool, sink)?;
        let report = actuate_with_sink(topo, &self.hat, decision.schedule(), now, sink)?;
        Ok((decision, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::actuator::actuate;
    use crate::hat::jacobi2d_hat;
    use crate::info::ForecastSource;
    use metasim::host::HostSpec;
    use metasim::load::LoadModel;
    use metasim::net::{LinkSpec, TopologyBuilder};
    use nws::WeatherServiceConfig;

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    /// Fast dedicated pair plus a heavily loaded third host.
    fn topo() -> Topology {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 50.0, SimTime::from_micros(200)));
        b.add_host(HostSpec::dedicated("fast0", 40.0, 4096.0, seg));
        b.add_host(HostSpec::dedicated("fast1", 40.0, 4096.0, seg));
        b.add_host(HostSpec::workstation(
            "busy",
            40.0,
            4096.0,
            seg,
            LoadModel::Constant(0.05),
        ));
        b.instantiate(s(1e6), 0).unwrap()
    }

    #[test]
    fn decide_picks_the_dedicated_pair_under_oracle_information() {
        let topo = topo();
        let hat = jacobi2d_hat(1200, 50);
        let user = UserSpec::default();
        let mut pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        pool.source = ForecastSource::Oracle;
        let agent = Coordinator::new(hat.clone(), user.clone());
        let d = agent.decide(&pool).unwrap();
        let hosts = d.schedule().hosts();
        assert!(hosts.contains(&HostId(0)) && hosts.contains(&HostId(1)));
        // The busy host contributes almost nothing and drags the
        // barrier; with oracle info the agent leaves it out or gives it
        // a sliver. Check the chosen objective beats single-host.
        let single: Vec<&CandidateEval> =
            d.considered.iter().filter(|c| c.hosts.len() == 1).collect();
        assert!(single
            .iter()
            .all(|c| c.objective >= d.chosen().objective - 1e-12));
    }

    #[test]
    fn static_information_cannot_see_the_load() {
        // With StaticNominal information all three hosts look equal, so
        // the planner splits evenly — this is exactly the naive static
        // schedule AppLeS beats in Figure 5.
        let topo = topo();
        let hat = jacobi2d_hat(1200, 50);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let agent = Coordinator::new(hat.clone(), user.clone());
        let d = agent.decide(&pool).unwrap();
        // Static pool predicts the 3-host split is fastest...
        assert_eq!(d.schedule().hosts().len(), 3);
        // ...but actuating it is slower than the oracle-informed pick.
        let static_run = actuate(&topo, &hat, d.schedule(), SimTime::ZERO).unwrap();
        let mut oracle_pool = InfoPool::static_nominal(&topo, &hat, &agent.user, SimTime::ZERO);
        oracle_pool.source = ForecastSource::Oracle;
        let od = agent.decide(&oracle_pool).unwrap();
        let oracle_run = actuate(&topo, &hat, od.schedule(), SimTime::ZERO).unwrap();
        assert!(
            oracle_run.elapsed_seconds < static_run.elapsed_seconds,
            "oracle {} vs static {}",
            oracle_run.elapsed_seconds,
            static_run.elapsed_seconds
        );
    }

    #[test]
    fn run_decides_and_actuates_with_nws() {
        let topo = topo();
        let hat = jacobi2d_hat(600, 10);
        let user = UserSpec::default();
        let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        ws.advance(&topo, s(600.0));
        let agent = Coordinator::new(hat.clone(), user.clone());
        let (decision, report) = agent.run(&topo, &ws, s(600.0)).unwrap();
        assert!(!decision.considered.is_empty());
        assert!(report.elapsed_seconds > 0.0);
        assert!(report.finish > s(600.0));
    }

    #[test]
    fn cost_metric_prefers_fewer_hosts() {
        let topo = topo();
        let hat = jacobi2d_hat(400, 10);
        // Steep per-host charge: doubling hosts must halve time to pay
        // off, and borders make that impossible here.
        let user = UserSpec {
            metric: PerformanceMetric::Cost {
                per_host_second: 10.0,
            },
            ..Default::default()
        };
        let mut pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        pool.source = ForecastSource::Oracle;
        let agent = Coordinator::new(hat.clone(), user.clone());
        let d = agent.decide(&pool).unwrap();
        assert_eq!(d.schedule().hosts().len(), 1, "{:?}", d.chosen());
    }

    #[test]
    fn speedup_metric_normalizes() {
        let topo = topo();
        let hat = jacobi2d_hat(800, 20);
        let user = UserSpec {
            metric: PerformanceMetric::Speedup,
            ..Default::default()
        };
        let mut pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        pool.source = ForecastSource::Oracle;
        let agent = Coordinator::new(hat.clone(), user.clone());
        let d = agent.decide(&pool).unwrap();
        // Objective is time/best-single: the winner must be < 1 (a
        // genuine speedup) on this well-connected testbed.
        assert!(d.chosen().objective < 1.0);
    }

    #[test]
    fn report_names_hosts_and_runners_up() {
        let topo = topo();
        let hat = jacobi2d_hat(600, 10);
        let user = UserSpec::default();
        let mut pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        pool.source = ForecastSource::Oracle;
        let agent = Coordinator::new(hat.clone(), user.clone());
        let d = agent.decide(&pool).unwrap();
        let report = d.report(&topo);
        assert!(report.contains("candidate schedules"));
        assert!(report.contains("chosen:"));
        assert!(report.contains("fast0") || report.contains("fast1"));
        assert!(report.contains("runner-up:"));
        // Strip lines include percentages.
        assert!(report.contains('%'));
    }

    #[test]
    fn preferences_break_near_ties() {
        // Hosts 0 and 1 are identical and dedicated; singleton
        // schedules on either score identically, so a preference for
        // host 1 must decide it.
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 50.0, SimTime::from_micros(200)));
        b.add_host(HostSpec::dedicated("twin0", 40.0, 4096.0, seg));
        b.add_host(HostSpec::dedicated("twin1", 40.0, 4096.0, seg));
        let topo = b.instantiate(s(1e6), 0).unwrap();
        let hat = jacobi2d_hat(400, 10);
        let user = UserSpec {
            preferred_hosts: vec![HostId(1)],
            max_hosts: 1,
            ..Default::default()
        };
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let agent = Coordinator::new(hat.clone(), user.clone());
        let d = agent.decide(&pool).unwrap();
        assert_eq!(d.schedule().hosts(), vec![HostId(1)]);
    }

    #[test]
    fn preferences_do_not_override_big_gaps() {
        // A preferred host that is 4x slower must still lose.
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 50.0, SimTime::from_micros(200)));
        b.add_host(HostSpec::dedicated("fast", 40.0, 4096.0, seg));
        b.add_host(HostSpec::dedicated("slow", 10.0, 4096.0, seg));
        let topo = b.instantiate(s(1e6), 0).unwrap();
        let hat = jacobi2d_hat(400, 10);
        let user = UserSpec {
            preferred_hosts: vec![HostId(1)],
            max_hosts: 1,
            ..Default::default()
        };
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let agent = Coordinator::new(hat.clone(), user.clone());
        let d = agent.decide(&pool).unwrap();
        assert_eq!(d.schedule().hosts(), vec![HostId(0)]);
    }

    #[test]
    fn no_feasible_hosts_errors() {
        let topo = topo();
        let hat = jacobi2d_hat(100, 1);
        let user = UserSpec {
            allowed_hosts: Some(vec![]),
            ..Default::default()
        };
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let agent = Coordinator::new(hat.clone(), user.clone());
        assert!(agent.decide(&pool).is_err());
    }

    #[test]
    fn decide_with_sink_narrates_the_selection() {
        use metasim::simtrace::{TraceEvent, VecSink};
        let topo = topo();
        let hat = jacobi2d_hat(600, 10);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let agent = Coordinator::new(hat.clone(), user.clone());
        let mut sink = VecSink::default();
        let d = agent.decide_with_sink(&pool, &mut sink).unwrap();

        let selections: Vec<_> = sink
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::ResourceSelection { .. }))
            .collect();
        assert_eq!(selections.len(), 1);
        let considered = sink
            .events
            .iter()
            .filter(|e| matches!(e, TraceEvent::CandidateConsidered { .. }))
            .count();
        assert_eq!(considered, d.considered.len());
        // Exactly one chosen event, and it names the winning index.
        let chosen: Vec<_> = sink
            .events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::ScheduleChosen { index, .. } => Some(*index),
                _ => None,
            })
            .collect();
        assert_eq!(chosen, vec![d.chosen_index]);
        // The sink-free path returns the identical decision.
        let plain = agent.decide(&pool).unwrap();
        assert_eq!(plain.chosen_index, d.chosen_index);
    }
}
