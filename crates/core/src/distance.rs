//! Application-specific resource locality (§3.3).
//!
//! "Two resources can be thought of as *close* if they can effectively
//! be coupled to promote the application's performance." Closeness is
//! not a property of the wires: it is the predicted time for the
//! *application's own* inter-task data movement between the two
//! resources. A pair of hosts on opposite coasts is "close" to an
//! application that barely communicates, and two hosts on the same
//! saturated Ethernet segment are "far" to one that exchanges large
//! borders every iteration.

use crate::info::InfoPool;
use metasim::{HostId, SimError};

/// Logical distance between two hosts for an application whose
/// characteristic inter-task message is `message_mb`: the predicted
/// seconds to deliver that message, given current forecasts.
///
/// `distance(a, a)` is zero — colocated tasks communicate through
/// memory.
pub fn logical_distance(
    pool: &InfoPool<'_>,
    a: HostId,
    b: HostId,
    message_mb: f64,
) -> Result<f64, SimError> {
    pool.transfer_seconds(a, b, message_mb)
}

/// The characteristic message size (MB) of the application described
/// by the pool's HAT: the payload its tasks exchange most often.
///
/// * stencil: one border row per iteration,
/// * pipeline: one unit,
/// * task farm: the per-event input record.
pub fn characteristic_message_mb(pool: &InfoPool<'_>) -> f64 {
    use crate::hat::AppStructure::*;
    match &pool.hat.structure {
        IterativeStencil(t) => t.border_mb(),
        Pipeline(t) => t.mb_per_unit,
        IndependentTasks(t) => t.mb_per_event,
    }
}

/// The characteristic compute volume (Mflop) of one "round" of the
/// application: an iteration for stencils, the full unit stream for
/// pipelines, the whole event set for farms. Used to put logical
/// distance and compute speed on the same (seconds) scale when ranking
/// resources.
pub fn characteristic_work_mflop(pool: &InfoPool<'_>) -> f64 {
    use crate::hat::AppStructure::*;
    match &pool.hat.structure {
        IterativeStencil(t) => t.total_mflop_per_iter(),
        Pipeline(t) => {
            (t.producer_mflop_per_unit + t.consumer_mflop_per_unit) * t.total_units as f64
        }
        IndependentTasks(t) => t.total_mflop(),
    }
}

/// Mean logical distance from `host` to every member of `others`,
/// using the application's characteristic message. Used by the
/// Resource Selector to prioritize hosts that are close *to the rest of
/// the candidate set*.
pub fn mean_distance_to_set(
    pool: &InfoPool<'_>,
    host: HostId,
    others: &[HostId],
) -> Result<f64, SimError> {
    let msg = characteristic_message_mb(pool);
    let mut total = 0.0;
    let mut n = 0usize;
    for &o in others {
        if o == host {
            continue;
        }
        total += logical_distance(pool, host, o, msg)?;
        n += 1;
    }
    Ok(if n == 0 { 0.0 } else { total / n as f64 })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hat::jacobi2d_hat;
    use crate::info::InfoPool;
    use crate::user::UserSpec;
    use metasim::host::HostSpec;
    use metasim::net::{LinkSpec, TopologyBuilder};
    use metasim::{SimTime, Topology};

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    /// Host 0 and 1 share a fast segment; host 2 sits behind a slow
    /// gateway.
    fn topo() -> Topology {
        let mut b = TopologyBuilder::new();
        let fast = b.add_segment(LinkSpec::dedicated(
            "fast",
            100.0,
            SimTime::from_micros(100),
        ));
        let far = b.add_segment(LinkSpec::dedicated("far", 100.0, SimTime::from_micros(100)));
        let gw = b.add_link(LinkSpec::dedicated("gw", 0.5, SimTime::from_millis(20)));
        b.add_route(fast, far, vec![gw]).unwrap();
        b.add_host(HostSpec::dedicated("a", 10.0, 64.0, fast));
        b.add_host(HostSpec::dedicated("b", 10.0, 64.0, fast));
        b.add_host(HostSpec::dedicated("c", 10.0, 64.0, far));
        b.instantiate(s(1000.0), 0).unwrap()
    }

    #[test]
    fn same_host_distance_is_zero() {
        let topo = topo();
        let hat = jacobi2d_hat(1000, 1);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        assert_eq!(
            logical_distance(&pool, HostId(0), HostId(0), 10.0).unwrap(),
            0.0
        );
    }

    #[test]
    fn gateway_host_is_farther() {
        let topo = topo();
        let hat = jacobi2d_hat(1000, 1);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let near = logical_distance(&pool, HostId(0), HostId(1), 1.0).unwrap();
        let far = logical_distance(&pool, HostId(0), HostId(2), 1.0).unwrap();
        assert!(far > 10.0 * near, "far {far} vs near {near}");
    }

    #[test]
    fn distance_depends_on_the_application() {
        // §3.3: hosts joined by a slow link are close for an
        // application that barely communicates.
        let topo = topo();
        let hat = jacobi2d_hat(1000, 1);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let tiny = logical_distance(&pool, HostId(0), HostId(2), 0.001).unwrap();
        let huge = logical_distance(&pool, HostId(0), HostId(2), 100.0).unwrap();
        assert!(huge > 100.0 * tiny);
    }

    #[test]
    fn characteristic_message_for_stencil_is_one_border() {
        let topo = topo();
        let hat = jacobi2d_hat(2000, 1);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        // 2000 points * 8 B = 0.016 MB.
        assert!((characteristic_message_mb(&pool) - 0.016).abs() < 1e-12);
    }

    #[test]
    fn mean_distance_to_set_averages_over_peers() {
        let topo = topo();
        let hat = jacobi2d_hat(1000, 1);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let all = [HostId(0), HostId(1), HostId(2)];
        let d_near = mean_distance_to_set(&pool, HostId(1), &all).unwrap();
        let d_far = mean_distance_to_set(&pool, HostId(2), &all).unwrap();
        assert!(d_far > d_near);
        // A singleton set has no peers.
        assert_eq!(
            mean_distance_to_set(&pool, HostId(0), &[HostId(0)]).unwrap(),
            0.0
        );
    }
}
