//! Schedule representations.
//!
//! A [`Schedule`] is the Planner's output and the Actuator's input: a
//! resource-dependent description of exactly which host does what. The
//! three variants mirror the HAT's application classes.

use crate::error::ApplesError;
use crate::hat::{PipelineTemplate, StencilTemplate, TaskFarmTemplate};
use metasim::exec::{PipelineJob, SpmdJob, SpmdPlacement};
use metasim::{HostId, SimTime};

/// One strip of a stencil decomposition.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilPart {
    /// Host executing the strip.
    pub host: HostId,
    /// Number of grid rows assigned.
    pub rows: usize,
}

/// A strip decomposition of an `n × n` stencil grid. Parts are in strip
/// order: part `i` exchanges borders with parts `i-1` and `i+1`.
#[derive(Debug, Clone, PartialEq)]
pub struct StencilSchedule {
    /// Grid edge length.
    pub n: usize,
    /// Iterations to run.
    pub iterations: usize,
    /// Ordered strips.
    pub parts: Vec<StencilPart>,
}

impl StencilSchedule {
    /// Check the schedule covers the grid exactly with positive strips.
    pub fn validate(&self) -> Result<(), ApplesError> {
        if self.parts.is_empty() {
            return Err(ApplesError::Invalid("schedule has no strips".into()));
        }
        let total: usize = self.parts.iter().map(|p| p.rows).sum();
        if total != self.n {
            return Err(ApplesError::Invalid(format!(
                "strips cover {total} rows of an n={} grid",
                self.n
            )));
        }
        if self.parts.iter().any(|p| p.rows == 0) {
            return Err(ApplesError::Invalid("zero-row strip".into()));
        }
        Ok(())
    }

    /// Hosts used, in strip order.
    pub fn hosts(&self) -> Vec<HostId> {
        self.parts.iter().map(|p| p.host).collect()
    }

    /// The fraction of the grid assigned to each strip.
    pub fn fractions(&self) -> Vec<f64> {
        self.parts
            .iter()
            .map(|p| p.rows as f64 / self.n as f64)
            .collect()
    }

    /// Lower the schedule to a simulable SPMD job: each strip computes
    /// its rows and exchanges one border row with each neighbour per
    /// iteration.
    pub fn to_spmd_job(&self, t: &StencilTemplate, start: SimTime) -> SpmdJob {
        let k = self.parts.len();
        let border = t.border_mb();
        let placements = self
            .parts
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let mut sends = Vec::new();
                if i > 0 {
                    sends.push((i - 1, border));
                }
                if i + 1 < k {
                    sends.push((i + 1, border));
                }
                SpmdPlacement {
                    host: p.host,
                    work_mflop: t.strip_mflop_per_iter(p.rows),
                    resident_mb: t.strip_resident_mb(p.rows),
                    sends,
                }
            })
            .collect();
        SpmdJob {
            placements,
            iterations: self.iterations,
            start,
        }
    }
}

/// A pipeline schedule: which host produces, which consumes, and the
/// batching granularity.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineSchedule {
    /// Host running the producer task (LHSF).
    pub producer: HostId,
    /// Host running the consumer task (Log-D/ASY).
    pub consumer: HostId,
    /// Work units batched per pipeline message (the paper's "pipeline
    /// size" — 5 to 20 surface functions per subdomain in 3D-REACT).
    pub unit_size: usize,
    /// Pipeline depth: batches in flight at once.
    pub depth: usize,
}

impl PipelineSchedule {
    /// Lower to a simulable pipeline job. Producer/consumer efficiency
    /// is applied by *inflating the per-unit work* on the assigned
    /// hosts, and per-message conversion overhead is charged to the
    /// consumer.
    pub fn to_pipeline_job(
        &self,
        t: &PipelineTemplate,
        producer_name: &str,
        consumer_name: &str,
        start: SimTime,
    ) -> Result<PipelineJob, ApplesError> {
        if self.unit_size == 0 {
            return Err(ApplesError::Invalid(
                "pipeline unit size must be ≥ 1".into(),
            ));
        }
        if self.depth == 0 {
            return Err(ApplesError::Invalid("pipeline depth must be ≥ 1".into()));
        }
        let batches = t.total_units.div_ceil(self.unit_size);
        let peff = t.producer_efficiency.for_host(producer_name).max(1e-9);
        let ceff = t.consumer_efficiency.for_host(consumer_name).max(1e-9);
        let units = self.unit_size as f64;
        Ok(PipelineJob {
            producer: self.producer,
            consumer: self.consumer,
            n_units: batches,
            producer_mflop_per_unit: t.producer_mflop_per_unit * units / peff,
            consumer_mflop_per_unit: (t.consumer_mflop_per_unit * units
                + t.convert_mflop_per_message)
                / ceff,
            mb_per_unit: t.mb_per_unit * units,
            producer_resident_mb: t.producer_resident_mb,
            consumer_resident_mb: t.consumer_base_mb
                + t.consumer_mb_per_buffered_unit * units * self.depth as f64,
            max_in_flight: self.depth,
            start,
        })
    }
}

/// A task-farm schedule: events per host, plus where the data lives.
#[derive(Debug, Clone, PartialEq)]
pub struct FarmSchedule {
    /// Host holding the input data.
    pub data_home: HostId,
    /// Host collecting the aggregated results.
    pub result_home: HostId,
    /// `(host, events assigned)` pairs.
    pub assignments: Vec<(HostId, u64)>,
}

impl FarmSchedule {
    /// Check the assignments cover the template's events exactly.
    pub fn validate(&self, t: &TaskFarmTemplate) -> Result<(), ApplesError> {
        let total: u64 = self.assignments.iter().map(|&(_, e)| e).sum();
        if total != t.events {
            return Err(ApplesError::Invalid(format!(
                "assignments cover {total} of {} events",
                t.events
            )));
        }
        if self.assignments.iter().any(|&(_, e)| e == 0) {
            return Err(ApplesError::Invalid("zero-event assignment".into()));
        }
        Ok(())
    }
}

/// A resource-dependent schedule, ready for estimation or actuation.
#[derive(Debug, Clone, PartialEq)]
pub enum Schedule {
    /// Strip-decomposed stencil.
    Stencil(StencilSchedule),
    /// Two-task pipeline.
    Pipeline(PipelineSchedule),
    /// Independent-task farm.
    Farm(FarmSchedule),
}

impl Schedule {
    /// Hosts the schedule occupies (deduplicated, in first-use order).
    pub fn hosts(&self) -> Vec<HostId> {
        let mut out: Vec<HostId> = Vec::new();
        let mut push = |h: HostId| {
            if !out.contains(&h) {
                out.push(h);
            }
        };
        match self {
            Schedule::Stencil(s) => s.parts.iter().for_each(|p| push(p.host)),
            Schedule::Pipeline(p) => {
                push(p.producer);
                push(p.consumer);
            }
            Schedule::Farm(f) => f.assignments.iter().for_each(|&(h, _)| push(h)),
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hat::{jacobi2d_hat, ArchEfficiency};

    fn stencil_sched() -> StencilSchedule {
        StencilSchedule {
            n: 100,
            iterations: 5,
            parts: vec![
                StencilPart {
                    host: HostId(0),
                    rows: 60,
                },
                StencilPart {
                    host: HostId(1),
                    rows: 40,
                },
            ],
        }
    }

    #[test]
    fn valid_schedule_passes() {
        assert!(stencil_sched().validate().is_ok());
    }

    #[test]
    fn row_mismatch_fails_validation() {
        let mut s = stencil_sched();
        s.parts[0].rows = 10;
        assert!(s.validate().is_err());
    }

    #[test]
    fn zero_strip_fails_validation() {
        let mut s = stencil_sched();
        s.parts[0].rows = 0;
        s.parts[1].rows = 100;
        assert!(s.validate().is_err());
    }

    #[test]
    fn empty_schedule_fails_validation() {
        let s = StencilSchedule {
            n: 10,
            iterations: 1,
            parts: vec![],
        };
        assert!(s.validate().is_err());
    }

    #[test]
    fn fractions_sum_to_one() {
        let f = stencil_sched().fractions();
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!((f[0] - 0.6).abs() < 1e-12);
    }

    #[test]
    fn spmd_lowering_builds_neighbour_exchanges() {
        let hat = jacobi2d_hat(100, 5);
        let t = hat.as_stencil().unwrap();
        let job = stencil_sched().to_spmd_job(t, SimTime::ZERO);
        assert_eq!(job.placements.len(), 2);
        assert_eq!(job.iterations, 5);
        // Worker 0 sends only to worker 1, and vice versa.
        assert_eq!(job.placements[0].sends, vec![(1, t.border_mb())]);
        assert_eq!(job.placements[1].sends, vec![(0, t.border_mb())]);
        // Work proportional to rows.
        assert!((job.placements[0].work_mflop / job.placements[1].work_mflop - 1.5).abs() < 1e-9);
    }

    #[test]
    fn interior_strip_has_two_neighbours() {
        let hat = jacobi2d_hat(90, 1);
        let t = hat.as_stencil().unwrap();
        let s = StencilSchedule {
            n: 90,
            iterations: 1,
            parts: (0..3)
                .map(|i| StencilPart {
                    host: HostId(i),
                    rows: 30,
                })
                .collect(),
        };
        let job = s.to_spmd_job(t, SimTime::ZERO);
        assert_eq!(job.placements[1].sends.len(), 2);
        assert_eq!(job.placements[0].sends.len(), 1);
        assert_eq!(job.placements[2].sends.len(), 1);
    }

    fn pipeline_template() -> PipelineTemplate {
        PipelineTemplate {
            total_units: 100,
            producer_mflop_per_unit: 10.0,
            consumer_mflop_per_unit: 20.0,
            mb_per_unit: 0.5,
            producer_resident_mb: 50.0,
            consumer_base_mb: 30.0,
            consumer_mb_per_buffered_unit: 1.0,
            convert_mflop_per_message: 2.0,
            producer_efficiency: ArchEfficiency {
                rules: vec![("cray".into(), 1.0)],
                default_efficiency: 0.5,
            },
            consumer_efficiency: ArchEfficiency::default(),
        }
    }

    #[test]
    fn pipeline_lowering_batches_units() {
        let t = pipeline_template();
        let s = PipelineSchedule {
            producer: HostId(0),
            consumer: HostId(1),
            unit_size: 10,
            depth: 3,
        };
        let job = s
            .to_pipeline_job(&t, "sdsc-cray", "paragon", SimTime::ZERO)
            .unwrap();
        assert_eq!(job.n_units, 10); // 100 / 10
                                     // Producer on the cray: efficiency 1.0 ⇒ 10 units * 10 Mflop.
        assert!((job.producer_mflop_per_unit - 100.0).abs() < 1e-9);
        // Consumer batch: 10 * 20 + 2 conversion = 202 Mflop.
        assert!((job.consumer_mflop_per_unit - 202.0).abs() < 1e-9);
        assert!((job.mb_per_unit - 5.0).abs() < 1e-12);
        // Consumer resident: 30 base + 1.0 * 10 * 3 buffered.
        assert!((job.consumer_resident_mb - 60.0).abs() < 1e-9);
    }

    #[test]
    fn pipeline_efficiency_inflates_work_off_arch() {
        let t = pipeline_template();
        let s = PipelineSchedule {
            producer: HostId(0),
            consumer: HostId(1),
            unit_size: 10,
            depth: 1,
        };
        let job = s
            .to_pipeline_job(&t, "some-workstation", "x", SimTime::ZERO)
            .unwrap();
        // Efficiency 0.5 doubles the producer's per-unit work.
        assert!((job.producer_mflop_per_unit - 200.0).abs() < 1e-9);
    }

    #[test]
    fn pipeline_lowering_rejects_degenerate_params() {
        let t = pipeline_template();
        let mut s = PipelineSchedule {
            producer: HostId(0),
            consumer: HostId(1),
            unit_size: 0,
            depth: 1,
        };
        assert!(s.to_pipeline_job(&t, "a", "b", SimTime::ZERO).is_err());
        s.unit_size = 5;
        s.depth = 0;
        assert!(s.to_pipeline_job(&t, "a", "b", SimTime::ZERO).is_err());
    }

    #[test]
    fn ragged_final_batch_rounds_up() {
        let mut t = pipeline_template();
        t.total_units = 101;
        let s = PipelineSchedule {
            producer: HostId(0),
            consumer: HostId(1),
            unit_size: 10,
            depth: 1,
        };
        let job = s.to_pipeline_job(&t, "a", "b", SimTime::ZERO).unwrap();
        assert_eq!(job.n_units, 11);
    }

    #[test]
    fn farm_validation() {
        let t = TaskFarmTemplate {
            events: 100,
            mflop_per_event: 1.0,
            mb_per_event: 0.01,
            result_mb_per_event: 0.001,
        };
        let ok = FarmSchedule {
            data_home: HostId(0),
            result_home: HostId(0),
            assignments: vec![(HostId(1), 60), (HostId(2), 40)],
        };
        assert!(ok.validate(&t).is_ok());
        let bad = FarmSchedule {
            data_home: HostId(0),
            result_home: HostId(0),
            assignments: vec![(HostId(1), 50)],
        };
        assert!(bad.validate(&t).is_err());
    }

    #[test]
    fn schedule_hosts_dedup() {
        let s = Schedule::Stencil(stencil_sched());
        assert_eq!(s.hosts(), vec![HostId(0), HostId(1)]);
        let p = Schedule::Pipeline(PipelineSchedule {
            producer: HostId(3),
            consumer: HostId(3),
            unit_size: 1,
            depth: 1,
        });
        assert_eq!(p.hosts(), vec![HostId(3)]);
    }
}
