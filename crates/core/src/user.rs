//! User Specifications (US).
//!
//! §3.5: "user preferences act as a filter over the possible resources
//! and implementations available to the user", and §3.1: performance
//! criteria vary with the user — one user minimizes execution time,
//! another optimizes cost or speedup. The US carries both: the metric
//! the Performance Estimator optimizes and the constraints the Resource
//! Selector filters with.

use metasim::{HostId, SimTime};

/// The performance objective a schedule is optimized for (§3.1).
#[derive(Debug, Clone, PartialEq)]
pub enum PerformanceMetric {
    /// Minimize predicted wall-clock execution time.
    ExecutionTime,
    /// Maximize predicted speedup over the best single-host schedule
    /// (equivalently: minimize the ratio of predicted time to the best
    /// single-host time).
    Speedup,
    /// Minimize a monetary-style cost: predicted execution time plus a
    /// per-host-second usage charge.
    Cost {
        /// Charge per host per second of occupancy, in the same
        /// abstract cost units as a second of elapsed time.
        per_host_second: f64,
    },
}

/// Constraints and preferences supplied by the user.
#[derive(Debug, Clone, PartialEq)]
pub struct UserSpec {
    /// Hosts the user may log into. `None` means "all hosts".
    pub allowed_hosts: Option<Vec<HostId>>,
    /// Hosts the user refuses to use (e.g. no CORBA ORB, §3.5).
    pub excluded_hosts: Vec<HostId>,
    /// Hosts the user *prefers* (§3.5: the 3D-REACT team wanted the
    /// CASA platform specifically). Preference is soft: when two
    /// candidate schedules score within `preference_margin` of each
    /// other, the one using more preferred hosts wins.
    pub preferred_hosts: Vec<HostId>,
    /// Relative objective slack within which preference may override
    /// raw score (e.g. `0.05` = preferred schedules win ties up to a
    /// 5% objective penalty).
    pub preference_margin: f64,
    /// Upper bound on the number of hosts a schedule may use.
    pub max_hosts: usize,
    /// The metric to optimize.
    pub metric: PerformanceMetric,
    /// Only consider strip decompositions (the §5 Jacobi2D user set
    /// exactly this preference because predictions for non-strip
    /// decompositions were too complex).
    pub strip_only: bool,
    /// Refuse schedules whose predicted per-host resident set exceeds
    /// physical memory (the scheduler will spread instead of spill).
    /// When no spill-free schedule exists, the planner relaxes this.
    pub avoid_memory_spill: bool,
    /// Time the application should be scheduled to start.
    pub earliest_start: SimTime,
}

impl Default for UserSpec {
    fn default() -> Self {
        UserSpec {
            allowed_hosts: None,
            excluded_hosts: Vec::new(),
            preferred_hosts: Vec::new(),
            preference_margin: 0.05,
            max_hosts: usize::MAX,
            metric: PerformanceMetric::ExecutionTime,
            strip_only: true,
            avoid_memory_spill: true,
            earliest_start: SimTime::ZERO,
        }
    }
}

impl UserSpec {
    /// Whether the user can and will use `host`.
    pub fn permits(&self, host: HostId) -> bool {
        if self.excluded_hosts.contains(&host) {
            return false;
        }
        match &self.allowed_hosts {
            Some(allowed) => allowed.contains(&host),
            None => true,
        }
    }

    /// How many of `hosts` the user prefers.
    pub fn preference_count(&self, hosts: &[HostId]) -> usize {
        hosts
            .iter()
            .filter(|h| self.preferred_hosts.contains(h))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_permits_everything() {
        let us = UserSpec::default();
        assert!(us.permits(HostId(0)));
        assert!(us.permits(HostId(99)));
        assert_eq!(us.metric, PerformanceMetric::ExecutionTime);
        assert!(us.strip_only);
    }

    #[test]
    fn allowlist_restricts() {
        let us = UserSpec {
            allowed_hosts: Some(vec![HostId(1), HostId(2)]),
            ..Default::default()
        };
        assert!(!us.permits(HostId(0)));
        assert!(us.permits(HostId(1)));
    }

    #[test]
    fn preference_count_counts_only_listed_hosts() {
        let us = UserSpec {
            preferred_hosts: vec![HostId(2), HostId(5)],
            ..Default::default()
        };
        assert_eq!(us.preference_count(&[HostId(2), HostId(3)]), 1);
        assert_eq!(us.preference_count(&[HostId(2), HostId(5)]), 2);
        assert_eq!(us.preference_count(&[]), 0);
    }

    #[test]
    fn exclusions_beat_allowlist() {
        let us = UserSpec {
            allowed_hosts: Some(vec![HostId(1)]),
            excluded_hosts: vec![HostId(1)],
            ..Default::default()
        };
        assert!(!us.permits(HostId(1)));
    }
}
