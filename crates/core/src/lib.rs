#![warn(missing_docs)]

//! # apples — Application-Level Schedulers
//!
//! A reproduction of the scheduling framework from **Berman & Wolski,
//! "Scheduling from the Perspective of the Application" (HPDC 1996)**.
//!
//! The paper's thesis is *application-centric scheduling*: in a
//! metacomputing system there is no global scheduler, so each
//! application carries its own scheduling agent — an **AppLeS** — that
//! evaluates everything about the system purely in terms of its impact
//! on that application's performance. An agent is organized as a
//! [`coordinator::Coordinator`] driving four subsystems (§4.1):
//!
//! * the [`selector::ResourceSelector`] — chooses and filters resource
//!   combinations, ordered by an application-specific notion of
//!   *distance* ([`distance`]),
//! * the [`planner`] — turns a resource set into a concrete
//!   candidate [`schedule::Schedule`],
//! * the [`estimator`] — predicts each candidate's
//!   performance under the user's metric, parameterized by Network
//!   Weather Service forecasts,
//! * the [`actuator`] — implements the chosen schedule on the
//!   underlying resource-management substrate (here, [`metasim`]).
//!
//! The subsystems share an [`info::InfoPool`] fed by four sources: the
//! NWS ([`nws`]), the Heterogeneous Application Template ([`hat`]), the
//! performance models ([`estimator`]), and the User Specifications
//! ([`user::UserSpec`]).
//!
//! ## The §5 blueprint
//!
//! The Jacobi2D AppLeS in the paper follows a four-step *blueprint*,
//! which [`coordinator::Coordinator::decide`] implements literally:
//!
//! 1. select candidate resource sets `S_i`;
//! 2. for each `S_i`, plan a strip-decomposition schedule and estimate
//!    its cost with `T_i = A_i * P_i + C_i`;
//! 3. pick the resource set and schedule with the minimum predicted
//!    execution time;
//! 4. actuate the selected schedule.

pub mod actuator;
pub mod advisor;
pub mod coordinator;
pub mod distance;
pub mod error;
pub mod estimator;
pub mod hat;
pub mod info;
pub mod planner;
pub mod rescheduler;
pub mod schedule;
pub mod selector;
pub mod user;
pub mod whatif;

pub use coordinator::{Coordinator, Decision};
pub use error::ApplesError;
pub use hat::{Hat, PipelineTemplate, StencilTemplate, TaskFarmTemplate};
pub use info::InfoPool;
pub use schedule::{Schedule, StencilSchedule};
pub use user::{PerformanceMetric, UserSpec};
