//! Jacobi2D: the paper's §5 case study.
//!
//! "This code is commonly used to solve the finite-difference
//! approximation to Poisson's equation which arises in many heat flow,
//! electrostatic and gravitational problems. Variable coefficients are
//! represented as elements of a two-dimensional grid which are updated
//! at each iteration as the average of a five point stencil."
//!
//! * [`grid`] — the real numeric kernel (sequential reference and a
//!   strip-partitioned execution with ghost-row exchange, verified
//!   bit-identical),
//! * [`partition`] — the partitioning strategies of Figures 3–6:
//!   AppLeS dynamic non-uniform strips, compile-time static
//!   non-uniform strips (Figure 4), and HPF-style uniform blocked
//!   decomposition,
//! * [`blocked`] — the blocked schedule representation and its
//!   lowering onto the SPMD executor.

pub mod blocked;
pub mod blocked_grid;
pub mod grid;
pub mod partition;

pub use blocked::{estimate_blocked, BlockedSchedule};
pub use blocked_grid::BlockedRun;
pub use grid::{Grid, PartitionedRun};
pub use partition::{
    apples_partition, apples_stencil_schedule, blocked_uniform, static_strip, uniform_strip,
};
