//! Block-partitioned execution of the real Jacobi kernel.
//!
//! The strip path has [`super::grid::PartitionedRun`]; this is the
//! blocked analogue: the grid is divided into a `pr × pc` mesh of
//! blocks, each carrying one ghost row/column per mesh neighbour,
//! refreshed after every sweep exactly as the distributed blocked
//! code's border exchange would. (Corner ghosts are not exchanged —
//! the 5-point stencil never reads them.)
//!
//! Tests verify block execution is *bit-identical* to the sequential
//! solver for every mesh shape, closing the correctness story for the
//! HPF-Blocked baseline the schedulers compare against.

use super::grid::Grid;

/// Block-partitioned Jacobi execution with ghost-cell exchange.
#[derive(Debug, Clone)]
pub struct BlockedRun {
    n: usize,
    /// Row extents per mesh row: `(first_row, rows)`.
    row_bands: Vec<(usize, usize)>,
    /// Column extents per mesh column: `(first_col, cols)`.
    col_bands: Vec<(usize, usize)>,
    /// `blocks[i][j]` is a `(rows+2) × (cols+2)` buffer with ghosts.
    cur: Vec<Vec<Vec<f64>>>,
    next: Vec<Vec<Vec<f64>>>,
}

fn bands(n: usize, parts: &[usize]) -> Vec<(usize, usize)> {
    assert_eq!(
        parts.iter().sum::<usize>(),
        n,
        "bands must cover the grid exactly"
    );
    assert!(parts.iter().all(|&p| p > 0), "bands must be non-empty");
    let mut out = Vec::with_capacity(parts.len());
    let mut first = 0;
    for &p in parts {
        out.push((first, p));
        first += p;
    }
    out
}

impl BlockedRun {
    /// Partition `grid` into blocks with the given row-band and
    /// column-band sizes.
    ///
    /// # Panics
    /// Panics if either band list does not cover the grid exactly.
    pub fn new(grid: &Grid, row_parts: &[usize], col_parts: &[usize]) -> Self {
        let n = grid.n();
        let row_bands = bands(n, row_parts);
        let col_bands = bands(n, col_parts);
        let block = |(r0, rows): (usize, usize), (c0, cols): (usize, usize)| {
            let w = cols + 2;
            let mut local = vec![0.0; (rows + 2) * w];
            for lr in 0..rows + 2 {
                let gr = (r0 + lr).wrapping_sub(1);
                if gr >= n {
                    continue;
                }
                for lc in 0..cols + 2 {
                    let gc = (c0 + lc).wrapping_sub(1);
                    if gc >= n {
                        continue;
                    }
                    local[lr * w + lc] = grid.get(gr, gc);
                }
            }
            local
        };
        let cur: Vec<Vec<Vec<f64>>> = row_bands
            .iter()
            .map(|&rb| col_bands.iter().map(|&cb| block(rb, cb)).collect())
            .collect();
        let next = cur.clone();
        BlockedRun {
            n,
            row_bands,
            col_bands,
            cur,
            next,
        }
    }

    /// One sweep: compute every block from its ghosts, then exchange
    /// edges with the four mesh neighbours.
    pub fn step(&mut self) {
        let n = self.n;
        // Compute phase.
        for (bi, &(r0, rows)) in self.row_bands.iter().enumerate() {
            for (bj, &(c0, cols)) in self.col_bands.iter().enumerate() {
                let w = cols + 2;
                let cur = &self.cur[bi][bj];
                let next = &mut self.next[bi][bj];
                for lr in 1..=rows {
                    let gr = r0 + lr - 1;
                    for lc in 1..=cols {
                        let gc = c0 + lc - 1;
                        let idx = lr * w + lc;
                        if gr == 0 || gc == 0 || gr == n - 1 || gc == n - 1 {
                            next[idx] = cur[idx]; // fixed boundary
                        } else {
                            next[idx] =
                                0.25 * (cur[idx - w] + cur[idx + w] + cur[idx - 1] + cur[idx + 1]);
                        }
                    }
                }
            }
        }
        std::mem::swap(&mut self.cur, &mut self.next);

        // Exchange phase: rows downward/upward, columns right/left.
        let pr = self.row_bands.len();
        let pc = self.col_bands.len();
        for bi in 0..pr {
            for bj in 0..pc {
                let (_, rows) = self.row_bands[bi];
                let (_, cols) = self.col_bands[bj];
                let w = cols + 2;
                // Down neighbour (bi+1, bj): my last row -> their top ghost,
                // their first row -> my bottom ghost.
                if bi + 1 < pr {
                    let my_last: Vec<f64> =
                        self.cur[bi][bj][rows * w + 1..rows * w + 1 + cols].to_vec();
                    let their_first: Vec<f64> = self.cur[bi + 1][bj][w + 1..w + 1 + cols].to_vec();
                    self.cur[bi + 1][bj][1..1 + cols].copy_from_slice(&my_last);
                    self.cur[bi][bj][(rows + 1) * w + 1..(rows + 1) * w + 1 + cols]
                        .copy_from_slice(&their_first);
                }
                // Right neighbour (bi, bj+1): my last column -> their left
                // ghost, their first column -> my right ghost.
                if bj + 1 < pc {
                    let (_, ncols) = self.col_bands[bj + 1];
                    let nw = ncols + 2;
                    for lr in 1..=rows {
                        let mine = self.cur[bi][bj][lr * w + cols];
                        let theirs = self.cur[bi][bj + 1][lr * nw + 1];
                        self.cur[bi][bj + 1][lr * nw] = mine;
                        self.cur[bi][bj][lr * w + cols + 1] = theirs;
                    }
                }
            }
        }
    }

    /// Run `k` sweeps.
    pub fn run(&mut self, k: usize) {
        for _ in 0..k {
            self.step();
        }
    }

    /// Reassemble the full grid from the blocks.
    pub fn assemble(&self) -> Vec<f64> {
        let n = self.n;
        let mut out = vec![0.0; n * n];
        for (bi, &(r0, rows)) in self.row_bands.iter().enumerate() {
            for (bj, &(c0, cols)) in self.col_bands.iter().enumerate() {
                let w = cols + 2;
                for lr in 1..=rows {
                    let gr = r0 + lr - 1;
                    for lc in 1..=cols {
                        let gc = c0 + lc - 1;
                        out[gr * n + gc] = self.cur[bi][bj][lr * w + lc];
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_grid(n: usize) -> Grid {
        let mut g = Grid::new(n, |r, c| (r * 7 + c * 3) as f64 % 11.0);
        // Non-trivial interior too.
        for r in 1..n - 1 {
            for c in 1..n - 1 {
                g.set(r, c, ((r * c) % 5) as f64);
            }
        }
        g
    }

    fn check(n: usize, rows: &[usize], cols: &[usize], sweeps: usize) {
        let mut seq = test_grid(n);
        let mut blocked = BlockedRun::new(&seq, rows, cols);
        seq.run(sweeps);
        blocked.run(sweeps);
        assert_eq!(
            seq.data(),
            blocked.assemble().as_slice(),
            "mesh {rows:?} x {cols:?} diverged"
        );
    }

    #[test]
    fn two_by_two_matches_sequential() {
        check(16, &[8, 8], &[8, 8], 30);
    }

    #[test]
    fn uneven_meshes_match_sequential() {
        check(17, &[5, 12], &[9, 8], 25);
        check(21, &[1, 10, 10], &[7, 7, 7], 20);
        check(12, &[4, 4, 4], &[3, 3, 3, 3], 40);
    }

    #[test]
    fn degenerate_meshes_match_sequential() {
        // 1x1 mesh is the sequential solver.
        check(9, &[9], &[9], 15);
        // 1xP and Px1 meshes are strip decompositions.
        check(15, &[15], &[5, 5, 5], 20);
        check(15, &[5, 5, 5], &[15], 20);
    }

    #[test]
    fn single_row_and_column_blocks() {
        check(10, &[1; 10], &[5, 5], 12);
        check(10, &[5, 5], &[1; 10], 12);
    }

    #[test]
    #[should_panic(expected = "cover the grid")]
    fn wrong_band_total_panics() {
        let g = test_grid(8);
        BlockedRun::new(&g, &[4, 3], &[4, 4]);
    }
}
