//! HPF-style uniform blocked decomposition.
//!
//! Figure 5's third contender: the grid is cut into a `pr × pc` mesh of
//! equal blocks, one per host, "a reasonable choice for the user who is
//! trying to optimize the performance of Jacobi2D at compile time".
//! Blocks exchange borders with up to four neighbours. The paper's
//! user preference for strips (§5) exists because block schedules are
//! harder to predict — which is exactly why we keep them around as a
//! baseline.

use apples::hat::StencilTemplate;
use metasim::exec::{SpmdJob, SpmdPlacement};
use metasim::{HostId, SimTime};

/// A uniform blocked decomposition over a `pr × pc` process mesh.
#[derive(Debug, Clone, PartialEq)]
pub struct BlockedSchedule {
    /// Grid edge length.
    pub n: usize,
    /// Iterations to run.
    pub iterations: usize,
    /// Process-mesh rows.
    pub pr: usize,
    /// Process-mesh columns.
    pub pc: usize,
    /// Hosts in row-major mesh order (`pr * pc` entries).
    pub hosts: Vec<HostId>,
}

impl BlockedSchedule {
    /// Build a mesh over `hosts`, choosing the most square `pr × pc`
    /// factorization of the host count.
    ///
    /// # Panics
    /// Panics if `hosts` is empty.
    pub fn new(n: usize, iterations: usize, hosts: &[HostId]) -> Self {
        assert!(!hosts.is_empty(), "blocked schedule needs hosts");
        let p = hosts.len();
        let pr = most_square_factor(p);
        let pc = p / pr;
        BlockedSchedule {
            n,
            iterations,
            pr,
            pc,
            hosts: hosts.to_vec(),
        }
    }

    /// Rows of blocks in mesh row `i` (near-equal split of `n`).
    pub fn block_rows(&self, i: usize) -> usize {
        near_equal_split(self.n, self.pr, i)
    }

    /// Columns of blocks in mesh column `j`.
    pub fn block_cols(&self, j: usize) -> usize {
        near_equal_split(self.n, self.pc, j)
    }

    /// Lower to a simulable SPMD job: each block computes its area and
    /// exchanges borders with its mesh neighbours each iteration.
    pub fn to_spmd_job(&self, t: &StencilTemplate, start: SimTime) -> SpmdJob {
        let mut placements = Vec::with_capacity(self.pr * self.pc);
        for i in 0..self.pr {
            for j in 0..self.pc {
                let rows = self.block_rows(i);
                let cols = self.block_cols(j);
                let work_mflop = rows as f64 * cols as f64 * t.flops_per_point / 1e6;
                let resident_mb = rows as f64 * cols as f64 * t.bytes_per_point / 1e6;
                let mut sends = Vec::new();
                let idx = |a: usize, b: usize| a * self.pc + b;
                let h_border = cols as f64 * t.border_bytes_per_point / 1e6;
                let v_border = rows as f64 * t.border_bytes_per_point / 1e6;
                if i > 0 {
                    sends.push((idx(i - 1, j), h_border));
                }
                if i + 1 < self.pr {
                    sends.push((idx(i + 1, j), h_border));
                }
                if j > 0 {
                    sends.push((idx(i, j - 1), v_border));
                }
                if j + 1 < self.pc {
                    sends.push((idx(i, j + 1), v_border));
                }
                placements.push(SpmdPlacement {
                    host: self.hosts[idx(i, j)],
                    work_mflop,
                    resident_mb,
                    sends,
                });
            }
        }
        SpmdJob {
            placements,
            iterations: self.iterations,
            start,
        }
    }
}

/// Predicted seconds for a blocked schedule under the pool's forecast
/// information — the blocked analogue of the §5 strip cost model, with
/// the same contention-aware bandwidth sharing. This is the prediction
/// machinery the paper's user declined to build ("due to the
/// non-linearity (and hence complexity) of developing predictions for
/// non-strip data decompositions"); having it lets the agent consider
/// blocked plans too (see [`super::partition::apples_blocked_decision`]).
pub fn estimate_blocked(
    pool: &apples::InfoPool<'_>,
    sched: &BlockedSchedule,
    t: &StencilTemplate,
) -> Result<f64, apples::ApplesError> {
    use std::collections::BTreeMap;
    let job = sched.to_spmd_job(t, SimTime::ZERO);

    // Count the schedule's own flows per link.
    let mut link_flows: BTreeMap<metasim::LinkId, usize> = BTreeMap::new();
    for p in &job.placements {
        for &(dst, _) in &p.sends {
            let to = job.placements[dst].host;
            if to == p.host {
                continue;
            }
            for l in pool.topo.route(p.host, to)? {
                *link_flows.entry(l).or_insert(0) += 1;
            }
        }
    }

    let mut iter_time: f64 = 0.0;
    let mut startup: f64 = 0.0;
    for p in &job.placements {
        let eff = pool.effective_mflops(p.host)?;
        if eff <= 0.0 {
            return Err(apples::ApplesError::PlanningFailed(format!(
                "host {} predicted fully unavailable",
                p.host
            )));
        }
        let spec = &pool.topo.host(p.host)?.spec;
        let mem_factor = if p.resident_mb <= spec.mem_mb {
            1.0
        } else {
            1.0 / (1.0 + spec.paging_slowdown * (p.resident_mb / spec.mem_mb - 1.0))
        };
        let compute = p.work_mflop / (eff * mem_factor);
        let mut comm = 0.0;
        for &(dst, mb) in &p.sends {
            let to = job.placements[dst].host;
            if to == p.host {
                continue;
            }
            // Send and matching receive.
            for (a, b) in [(p.host, to), (to, p.host)] {
                let mut latency = 0.0;
                let mut bw = f64::INFINITY;
                for l in pool.topo.route(a, b)? {
                    let link = pool.topo.link(l)?;
                    latency += link.spec.latency.as_secs_f64();
                    let share = *link_flows.get(&l).unwrap_or(&1) as f64;
                    bw = bw.min(link.spec.bandwidth_mbps * pool.link_availability(l) / share);
                }
                if bw <= 0.0 {
                    return Err(apples::ApplesError::PlanningFailed(
                        "blocked exchange crosses a dead link".into(),
                    ));
                }
                comm += latency + mb / bw;
            }
        }
        iter_time = iter_time.max(compute + comm);
        startup = startup.max(pool.topo.host(p.host)?.startup_wait().as_secs_f64());
    }
    Ok(startup + sched.iterations as f64 * iter_time)
}

/// The divisor of `p` closest to (and at most) `sqrt(p)`.
fn most_square_factor(p: usize) -> usize {
    let mut best = 1;
    let mut d = 1;
    while d * d <= p {
        if p.is_multiple_of(d) {
            best = d;
        }
        d += 1;
    }
    best
}

/// Size of part `i` when `n` is split into `k` near-equal parts.
fn near_equal_split(n: usize, k: usize, i: usize) -> usize {
    let base = n / k;
    let extra = n % k;
    if i < extra {
        base + 1
    } else {
        base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use apples::hat::jacobi2d_hat;

    fn hosts(k: usize) -> Vec<HostId> {
        (0..k).map(HostId).collect()
    }

    #[test]
    fn square_counts_make_square_meshes() {
        let b = BlockedSchedule::new(100, 1, &hosts(4));
        assert_eq!((b.pr, b.pc), (2, 2));
        let b9 = BlockedSchedule::new(100, 1, &hosts(9));
        assert_eq!((b9.pr, b9.pc), (3, 3));
    }

    #[test]
    fn prime_counts_degenerate_to_strips() {
        let b = BlockedSchedule::new(100, 1, &hosts(7));
        assert_eq!((b.pr, b.pc), (1, 7));
    }

    #[test]
    fn six_hosts_make_2x3() {
        let b = BlockedSchedule::new(100, 1, &hosts(6));
        assert_eq!((b.pr, b.pc), (2, 3));
    }

    #[test]
    fn block_sizes_cover_the_grid() {
        let b = BlockedSchedule::new(103, 1, &hosts(4));
        let total_rows: usize = (0..b.pr).map(|i| b.block_rows(i)).sum();
        let total_cols: usize = (0..b.pc).map(|j| b.block_cols(j)).sum();
        assert_eq!(total_rows, 103);
        assert_eq!(total_cols, 103);
    }

    #[test]
    fn corner_block_has_two_neighbours_interior_has_four() {
        let hat = jacobi2d_hat(90, 1);
        let t = hat.as_stencil().unwrap();
        let b = BlockedSchedule::new(90, 1, &hosts(9));
        let job = b.to_spmd_job(t, SimTime::ZERO);
        // Mesh is 3×3: corner (0,0) index 0; centre (1,1) index 4.
        assert_eq!(job.placements[0].sends.len(), 2);
        assert_eq!(job.placements[4].sends.len(), 4);
    }

    #[test]
    fn total_work_matches_the_grid() {
        let hat = jacobi2d_hat(100, 1);
        let t = hat.as_stencil().unwrap();
        let b = BlockedSchedule::new(100, 1, &hosts(4));
        let job = b.to_spmd_job(t, SimTime::ZERO);
        let total: f64 = job.placements.iter().map(|p| p.work_mflop).sum();
        assert!((total - t.total_mflop_per_iter()).abs() < 1e-9);
    }

    #[test]
    fn border_payloads_scale_with_block_edges() {
        let hat = jacobi2d_hat(100, 1);
        let t = hat.as_stencil().unwrap();
        let b = BlockedSchedule::new(100, 1, &hosts(4));
        let job = b.to_spmd_job(t, SimTime::ZERO);
        // 2×2 mesh of 50×50 blocks: every border is 50 points · 8 B.
        for p in &job.placements {
            for &(_, mb) in &p.sends {
                assert!((mb - 50.0 * 8.0 / 1e6).abs() < 1e-12);
            }
        }
    }

    #[test]
    #[should_panic(expected = "needs hosts")]
    fn empty_hosts_panics() {
        BlockedSchedule::new(10, 1, &[]);
    }
}
