//! The partitioning strategies compared in Figures 3–6.
//!
//! * [`uniform_strip`] — equal strips, the naive baseline.
//! * [`static_strip`] — Figure 4's non-uniform strips, "calculated
//!   statically at compile time, and parameterized by (non-uniform)
//!   CPU speeds and bandwidth": nominal speeds only, blind to load,
//!   contention and memory.
//! * [`blocked_uniform`] — Figure 5's HPF Uniform/Blocked partition.
//! * [`apples_partition`] — the AppLeS agent's dynamic partition
//!   (Figure 3), driven by NWS forecasts through the full
//!   select → plan → estimate → choose blueprint.

use super::blocked::BlockedSchedule;
use apples::coordinator::{Coordinator, Decision};
use apples::error::ApplesError;
use apples::hat::jacobi2d_hat;
use apples::info::InfoPool;
use apples::schedule::{Schedule, StencilPart, StencilSchedule};
use apples::user::UserSpec;
use metasim::{HostId, Topology};

#[cfg(doc)]
use super::blocked::estimate_blocked;

/// Equal-rows strips (remainder rows go to the leading strips).
///
/// # Panics
/// Panics if `hosts` is empty or there are more hosts than rows.
pub fn uniform_strip(n: usize, iterations: usize, hosts: &[HostId]) -> StencilSchedule {
    assert!(!hosts.is_empty(), "uniform strips need hosts");
    assert!(hosts.len() <= n, "more hosts than grid rows");
    let base = n / hosts.len();
    let extra = n % hosts.len();
    let parts = hosts
        .iter()
        .enumerate()
        .map(|(i, &host)| StencilPart {
            host,
            rows: base + usize::from(i < extra),
        })
        .collect();
    StencilSchedule {
        n,
        iterations,
        parts,
    }
}

/// Figure 4's compile-time non-uniform strips: rows proportional to
/// *nominal* CPU speed. Knows the machines are different, but not that
/// they are loaded.
///
/// # Panics
/// Panics if `hosts` is empty or references unknown hosts.
pub fn static_strip(
    topo: &Topology,
    n: usize,
    iterations: usize,
    hosts: &[HostId],
) -> StencilSchedule {
    assert!(!hosts.is_empty(), "static strips need hosts");
    let speeds: Vec<f64> = hosts
        .iter()
        .map(|&h| topo.host(h).expect("known host").spec.mflops)
        .collect();
    let total: f64 = speeds.iter().sum();
    // Largest-remainder rounding of the proportional shares.
    let shares: Vec<f64> = speeds.iter().map(|s| n as f64 * s / total).collect();
    let mut rows: Vec<usize> = shares.iter().map(|s| s.floor() as usize).collect();
    let mut remainder = n - rows.iter().sum::<usize>();
    let mut order: Vec<usize> = (0..hosts.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = shares[a] - shares[a].floor();
        let fb = shares[b] - shares[b].floor();
        fb.total_cmp(&fa)
    });
    for &i in order.iter().cycle() {
        if remainder == 0 {
            break;
        }
        rows[i] += 1;
        remainder -= 1;
    }
    let parts = hosts
        .iter()
        .zip(&rows)
        .filter(|&(_, &r)| r > 0)
        .map(|(&host, &rows)| StencilPart { host, rows })
        .collect();
    StencilSchedule {
        n,
        iterations,
        parts,
    }
}

/// Figure 5's HPF Uniform/Blocked partition.
pub fn blocked_uniform(n: usize, iterations: usize, hosts: &[HostId]) -> BlockedSchedule {
    BlockedSchedule::new(n, iterations, hosts)
}

/// The AppLeS partition: run the full blueprint over the information
/// pool and return the decision. The winning schedule is
/// `decision.schedule()`; Figure 3 reports its strip fractions.
pub fn apples_partition(pool: &InfoPool<'_>) -> Result<Decision, ApplesError> {
    let agent = Coordinator::new(pool.hat.clone(), pool.user.clone());
    agent.decide(pool)
}

/// Convenience: run the blueprint and unwrap the winning stencil
/// schedule.
pub fn apples_stencil_schedule(pool: &InfoPool<'_>) -> Result<StencilSchedule, ApplesError> {
    let decision = apples_partition(pool)?;
    match decision.schedule() {
        Schedule::Stencil(s) => Ok(s.clone()),
        _ => Err(ApplesError::Invalid(
            "jacobi coordinator produced a non-stencil schedule".into(),
        )),
    }
}

/// The standard Jacobi experiment context: HAT and user spec as in §5
/// (strip decompositions only, spill avoidance on).
pub fn jacobi_context(n: usize, iterations: usize) -> (apples::hat::Hat, UserSpec) {
    (jacobi2d_hat(n, iterations), UserSpec::default())
}

/// An AppLeS-planned *blocked* decomposition: evaluate uniform block
/// meshes over every subset size of the forecast-ranked feasible hosts
/// and return the best by the blocked cost model.
///
/// The §5 user restricted the agent to strips because block
/// predictions were considered too complex; with
/// [`super::blocked::estimate_blocked`] in hand the agent can search
/// blocked plans too, and the `ablation_decomposition` binary measures
/// how much the restriction costs (usually: strips genuinely win on a
/// heterogeneous pool, because uniform blocks cannot shape themselves
/// to per-host speed).
pub fn apples_blocked_decision(pool: &InfoPool<'_>) -> Result<(BlockedSchedule, f64), ApplesError> {
    let t = pool.hat.as_stencil().ok_or(ApplesError::TemplateMismatch {
        expected: "iterative-stencil",
        found: pool.hat.class_name(),
    })?;
    // Rank hosts by forecast speed; consider every prefix size.
    let mut feasible = apples::selector::ResourceSelector::feasible_hosts(pool);
    if feasible.is_empty() {
        return Err(ApplesError::NoFeasibleResources);
    }
    feasible.sort_by(|&a, &b| {
        let sa = pool.effective_mflops(a).unwrap_or(0.0);
        let sb = pool.effective_mflops(b).unwrap_or(0.0);
        sb.total_cmp(&sa)
    });
    let mut best: Option<(BlockedSchedule, f64)> = None;
    for k in 1..=feasible.len().min(pool.user.max_hosts) {
        let sched = super::blocked::BlockedSchedule::new(t.n, t.iterations, &feasible[..k]);
        let Ok(secs) = super::blocked::estimate_blocked(pool, &sched, t) else {
            continue;
        };
        if best.as_ref().is_none_or(|&(_, b)| secs < b) {
            best = Some((sched, secs));
        }
    }
    best.ok_or(ApplesError::NoViableSchedule)
}

#[cfg(test)]
mod tests {
    use super::*;
    use metasim::host::HostSpec;
    use metasim::net::{LinkSpec, TopologyBuilder};
    use metasim::SimTime;

    fn hosts(k: usize) -> Vec<HostId> {
        (0..k).map(HostId).collect()
    }

    fn topo() -> Topology {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::ZERO));
        b.add_host(HostSpec::dedicated("slow", 10.0, 4096.0, seg));
        b.add_host(HostSpec::dedicated("fast", 30.0, 4096.0, seg));
        b.instantiate(SimTime::from_secs(1000), 0).unwrap()
    }

    #[test]
    fn uniform_splits_evenly_with_remainder_leading() {
        let s = uniform_strip(10, 1, &hosts(3));
        let rows: Vec<usize> = s.parts.iter().map(|p| p.rows).collect();
        assert_eq!(rows, vec![4, 3, 3]);
        assert!(s.validate().is_ok());
    }

    #[test]
    fn uniform_exact_division() {
        let s = uniform_strip(9, 1, &hosts(3));
        assert!(s.parts.iter().all(|p| p.rows == 3));
    }

    #[test]
    fn static_strip_proportional_to_nominal_speed() {
        let topo = topo();
        let s = static_strip(&topo, 400, 1, &[HostId(0), HostId(1)]);
        assert!(s.validate().is_ok());
        // Speeds 10:30 ⇒ rows 100:300.
        assert_eq!(s.parts[0].rows, 100);
        assert_eq!(s.parts[1].rows, 300);
    }

    #[test]
    fn static_strip_rounding_conserves_rows() {
        let topo = topo();
        let s = static_strip(&topo, 401, 1, &[HostId(0), HostId(1)]);
        assert_eq!(s.parts.iter().map(|p| p.rows).sum::<usize>(), 401);
    }

    #[test]
    #[should_panic(expected = "more hosts than grid rows")]
    fn uniform_rejects_too_many_hosts() {
        uniform_strip(2, 1, &hosts(3));
    }

    #[test]
    fn blocked_decision_picks_a_mesh() {
        let topo = topo();
        let (hat, user) = jacobi_context(300, 5);
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let (sched, predicted) = apples_blocked_decision(&pool).unwrap();
        assert!(predicted > 0.0);
        assert!(sched.pr * sched.pc == sched.hosts.len());
        assert!(!sched.hosts.is_empty());
    }

    #[test]
    fn blocked_decision_prefers_the_fast_host_alone_when_comm_is_dear() {
        // A very slow segment makes any exchange ruinous: the best
        // uniform-block mesh is the single fastest host.
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 1e-4, SimTime::from_secs(5)));
        b.add_host(HostSpec::dedicated("slow", 10.0, 4096.0, seg));
        b.add_host(HostSpec::dedicated("fast", 30.0, 4096.0, seg));
        let topo = b.instantiate(SimTime::from_secs(1000), 0).unwrap();
        let (hat, user) = jacobi_context(300, 5);
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let (sched, _) = apples_blocked_decision(&pool).unwrap();
        assert_eq!(sched.hosts, vec![HostId(1)]);
    }

    #[test]
    fn strip_planning_beats_blocked_planning_on_heterogeneous_pools() {
        // The §5 rationale quantified: a shaped strip schedule should
        // out-predict the best uniform block mesh when speeds differ.
        let topo = topo(); // speeds 10 and 30
        let (hat, user) = jacobi_context(600, 20);
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let strip = apples_partition(&pool).unwrap();
        let (_, blocked_pred) = apples_blocked_decision(&pool).unwrap();
        assert!(
            strip.chosen().predicted_seconds <= blocked_pred + 1e-9,
            "strip {} vs blocked {}",
            strip.chosen().predicted_seconds,
            blocked_pred
        );
    }

    #[test]
    fn apples_partition_runs_the_blueprint() {
        let topo = topo();
        let (hat, user) = jacobi_context(300, 5);
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let d = apples_partition(&pool).unwrap();
        assert!(!d.considered.is_empty());
        let s = apples_stencil_schedule(&pool).unwrap();
        assert!(s.validate().is_ok());
    }
}
