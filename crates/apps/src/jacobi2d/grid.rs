//! The real Jacobi kernel.
//!
//! A double-buffered `n × n` grid of `f64` with fixed (Dirichlet)
//! boundary values; each interior point is replaced by the average of
//! its four neighbours every iteration (the classic 5-point Jacobi
//! relaxation for Laplace/Poisson problems).
//!
//! Besides the sequential reference, [`PartitionedRun`] executes the
//! same iteration strip-by-strip with explicit ghost-row exchange —
//! the computation a distributed strip partition actually performs —
//! and the tests verify it is *bit-identical* to the sequential
//! solver for every partition. That is the correctness contract the
//! scheduling layer relies on: partitioning changes performance, never
//! results.

/// A double-buffered `n × n` Jacobi grid.
#[derive(Debug, Clone, PartialEq)]
pub struct Grid {
    n: usize,
    cur: Vec<f64>,
    next: Vec<f64>,
}

impl Grid {
    /// A grid with all interior points zero and boundary values from
    /// `boundary(row, col)`.
    ///
    /// # Panics
    /// Panics if `n < 3` (no interior to relax).
    pub fn new(n: usize, boundary: impl Fn(usize, usize) -> f64) -> Self {
        assert!(n >= 3, "Jacobi grid needs n >= 3, got {n}");
        let mut cur = vec![0.0; n * n];
        for r in 0..n {
            for c in 0..n {
                if r == 0 || c == 0 || r == n - 1 || c == n - 1 {
                    cur[r * n + c] = boundary(r, c);
                }
            }
        }
        let next = cur.clone();
        Grid { n, cur, next }
    }

    /// Grid edge length.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Value at `(row, col)`.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.cur[r * self.n + c]
    }

    /// Set an interior or boundary value directly (test setup).
    pub fn set(&mut self, r: usize, c: usize, v: f64) {
        self.cur[r * self.n + c] = v;
        if r == 0 || c == 0 || r == self.n - 1 || c == self.n - 1 {
            self.next[r * self.n + c] = v;
        }
    }

    /// One Jacobi sweep over the interior.
    pub fn step(&mut self) {
        let n = self.n;
        for r in 1..n - 1 {
            let row = r * n;
            let above = row - n;
            let below = row + n;
            for c in 1..n - 1 {
                self.next[row + c] = 0.25
                    * (self.cur[above + c]
                        + self.cur[below + c]
                        + self.cur[row + c - 1]
                        + self.cur[row + c + 1]);
            }
        }
        std::mem::swap(&mut self.cur, &mut self.next);
    }

    /// Run `k` sweeps.
    pub fn run(&mut self, k: usize) {
        for _ in 0..k {
            self.step();
        }
    }

    /// Sweep until the residual drops below `tol` or `max_sweeps` is
    /// reached. Returns the number of sweeps performed. This is how a
    /// production Jacobi run decides its iteration count — the HAT's
    /// `iterations` field is typically an estimate of this number.
    pub fn run_to_convergence(&mut self, tol: f64, max_sweeps: usize) -> usize {
        for sweep in 0..max_sweeps {
            if self.residual() < tol {
                return sweep;
            }
            self.step();
        }
        max_sweeps
    }

    /// Maximum absolute change a sweep would make right now (the
    /// residual used to monitor convergence).
    pub fn residual(&self) -> f64 {
        let n = self.n;
        let mut worst: f64 = 0.0;
        for r in 1..n - 1 {
            for c in 1..n - 1 {
                let v = 0.25
                    * (self.get(r - 1, c)
                        + self.get(r + 1, c)
                        + self.get(r, c - 1)
                        + self.get(r, c + 1));
                worst = worst.max((v - self.get(r, c)).abs());
            }
        }
        worst
    }

    /// Raw row-major data (current buffer).
    pub fn data(&self) -> &[f64] {
        &self.cur
    }
}

/// Strip-partitioned execution of the same kernel: each strip owns a
/// contiguous band of rows and carries ghost copies of its neighbours'
/// border rows, refreshed between iterations exactly as the distributed
/// code's border exchange would.
#[derive(Debug, Clone)]
pub struct PartitionedRun {
    n: usize,
    /// `(first_row, rows)` per strip, covering rows `0..n`.
    strips: Vec<(usize, usize)>,
    /// Each strip stores `rows + 2` rows: ghost, own rows, ghost.
    cur: Vec<Vec<f64>>,
    next: Vec<Vec<f64>>,
}

impl PartitionedRun {
    /// Partition an initial grid into strips of the given sizes.
    ///
    /// # Panics
    /// Panics if the strip sizes do not sum to `n` or any strip is
    /// empty.
    pub fn new(grid: &Grid, strip_rows: &[usize]) -> Self {
        let n = grid.n();
        assert!(
            strip_rows.iter().sum::<usize>() == n,
            "strips must cover all {n} rows"
        );
        assert!(
            strip_rows.iter().all(|&r| r > 0),
            "strips must be non-empty"
        );
        let mut strips = Vec::with_capacity(strip_rows.len());
        let mut first = 0;
        for &rows in strip_rows {
            strips.push((first, rows));
            first += rows;
        }
        let mut cur = Vec::with_capacity(strips.len());
        for &(first, rows) in &strips {
            // rows + 2 ghost rows; out-of-range ghosts stay zero and
            // are never read (strip 0's upper ghost is the boundary
            // row of the strip itself when first == 0).
            let mut local = vec![0.0; (rows + 2) * n];
            for lr in 0..rows + 2 {
                let gr = (first + lr).wrapping_sub(1);
                if gr < n {
                    local[lr * n..(lr + 1) * n].copy_from_slice(&grid.data()[gr * n..(gr + 1) * n]);
                }
            }
            cur.push(local);
        }
        let next = cur.clone();
        PartitionedRun {
            n,
            strips,
            cur,
            next,
        }
    }

    /// One partitioned sweep: compute every strip's interior from its
    /// current rows + ghosts, then exchange borders.
    pub fn step(&mut self) {
        let n = self.n;
        // Compute phase (reads cur, writes next).
        for (s, &(first, rows)) in self.strips.iter().enumerate() {
            let cur = &self.cur[s];
            let next = &mut self.next[s];
            for lr in 1..=rows {
                let gr = first + lr - 1; // global row
                if gr == 0 || gr == n - 1 {
                    // Boundary rows are fixed.
                    next[lr * n..(lr + 1) * n].copy_from_slice(&cur[lr * n..(lr + 1) * n]);
                    continue;
                }
                let row = lr * n;
                let above = row - n;
                let below = row + n;
                for c in 1..n - 1 {
                    next[row + c] = 0.25
                        * (cur[above + c] + cur[below + c] + cur[row + c - 1] + cur[row + c + 1]);
                }
                // Fixed side boundaries.
                next[row] = cur[row];
                next[row + n - 1] = cur[row + n - 1];
            }
        }
        std::mem::swap(&mut self.cur, &mut self.next);
        // Border exchange (the simulated network's payload).
        let k = self.strips.len();
        for s in 0..k {
            let rows_s = self.strips[s].1;
            if s + 1 < k {
                // s's last own row -> (s+1)'s upper ghost.
                let (left, right) = self.cur.split_at_mut(s + 1);
                let src = &left[s][(rows_s) * self.n..(rows_s + 1) * self.n];
                right[0][0..self.n].copy_from_slice(src);
                // (s+1)'s first own row -> s's lower ghost.
                let src2: Vec<f64> = right[0][self.n..2 * self.n].to_vec();
                left[s][(rows_s + 1) * self.n..(rows_s + 2) * self.n].copy_from_slice(&src2);
            }
        }
    }

    /// Run `k` partitioned sweeps.
    pub fn run(&mut self, k: usize) {
        for _ in 0..k {
            self.step();
        }
    }

    /// Reassemble the full grid from the strips.
    pub fn assemble(&self) -> Vec<f64> {
        let n = self.n;
        let mut out = vec![0.0; n * n];
        for (s, &(first, rows)) in self.strips.iter().enumerate() {
            for lr in 1..=rows {
                let gr = first + lr - 1;
                out[gr * n..(gr + 1) * n].copy_from_slice(&self.cur[s][lr * n..(lr + 1) * n]);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hot_top(n: usize) -> Grid {
        Grid::new(n, |r, _| if r == 0 { 100.0 } else { 0.0 })
    }

    #[test]
    fn boundaries_are_fixed() {
        let mut g = hot_top(8);
        g.run(50);
        for c in 0..8 {
            assert_eq!(g.get(0, c), 100.0);
            assert_eq!(g.get(7, c), 0.0);
        }
    }

    #[test]
    fn residual_decreases_monotonically() {
        let mut g = hot_top(16);
        let mut prev = f64::INFINITY;
        for _ in 0..30 {
            g.step();
            let r = g.residual();
            assert!(r <= prev + 1e-12, "residual rose: {r} > {prev}");
            prev = r;
        }
    }

    #[test]
    fn linear_field_is_a_fixed_point() {
        // u(r, c) = r is harmonic: one sweep must not change it.
        let n = 10;
        let mut g = Grid::new(n, |r, _| r as f64);
        for r in 1..n - 1 {
            for c in 1..n - 1 {
                g.set(r, c, r as f64);
            }
        }
        let before = g.data().to_vec();
        g.step();
        for (a, b) in before.iter().zip(g.data()) {
            assert!((a - b).abs() < 1e-12);
        }
    }

    #[test]
    fn converges_to_linear_solution() {
        // Laplace with u=1 on top, u=0 on bottom, and linearly
        // interpolated sides converges to the linear gradient.
        let n = 12;
        let mut g = Grid::new(n, |r, _| 1.0 - r as f64 / (n - 1) as f64);
        g.run(3000);
        for r in 0..n {
            let expect = 1.0 - r as f64 / (n - 1) as f64;
            for c in 0..n {
                assert!(
                    (g.get(r, c) - expect).abs() < 1e-6,
                    "({r},{c}) = {} expected {expect}",
                    g.get(r, c)
                );
            }
        }
    }

    #[test]
    fn run_to_convergence_stops_at_tolerance() {
        let n = 12;
        let mut g = Grid::new(n, |r, _| 1.0 - r as f64 / (n - 1) as f64);
        let sweeps = g.run_to_convergence(1e-7, 100_000);
        assert!(sweeps < 100_000, "should converge before the cap");
        assert!(g.residual() < 1e-7);
        // Converged means converged: more sweeps change nothing much.
        let before = g.data().to_vec();
        g.run(10);
        for (a, b) in before.iter().zip(g.data()) {
            assert!((a - b).abs() < 1e-6);
        }
    }

    #[test]
    fn run_to_convergence_respects_the_cap() {
        let mut g = hot_top(32);
        let sweeps = g.run_to_convergence(1e-12, 5);
        assert_eq!(sweeps, 5);
    }

    #[test]
    fn partitioned_matches_sequential_bitwise_two_strips() {
        let mut seq = hot_top(16);
        let mut par = PartitionedRun::new(&seq, &[10, 6]);
        seq.run(25);
        par.run(25);
        assert_eq!(seq.data(), par.assemble().as_slice());
    }

    #[test]
    fn partitioned_matches_sequential_bitwise_many_uneven_strips() {
        let mut seq = hot_top(23);
        let mut par = PartitionedRun::new(&seq, &[1, 7, 2, 9, 4]);
        seq.run(40);
        par.run(40);
        assert_eq!(seq.data(), par.assemble().as_slice());
    }

    #[test]
    fn single_strip_is_the_sequential_solver() {
        let mut seq = hot_top(9);
        let mut par = PartitionedRun::new(&seq, &[9]);
        seq.run(10);
        par.run(10);
        assert_eq!(seq.data(), par.assemble().as_slice());
    }

    #[test]
    #[should_panic(expected = "must cover")]
    fn wrong_strip_total_panics() {
        let g = hot_top(8);
        PartitionedRun::new(&g, &[4, 3]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_strip_panics() {
        let g = hot_top(8);
        PartitionedRun::new(&g, &[8, 0]);
    }

    #[test]
    #[should_panic(expected = "n >= 3")]
    fn tiny_grid_rejected() {
        Grid::new(2, |_, _| 0.0);
    }
}
