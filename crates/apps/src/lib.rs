#![warn(missing_docs)]

//! # apples-apps — the paper's applications
//!
//! Three applications exercise the AppLeS framework, mirroring the
//! paper's case studies:
//!
//! * [`jacobi2d`] — the distributed data-parallel Jacobi2D code of §5,
//!   with a real 5-point stencil kernel, the three partitioning
//!   strategies compared in Figures 3–6 (AppLeS non-uniform strips,
//!   static non-uniform strips, HPF-style uniform blocks), and a
//!   partitioned reference execution verified bit-identical to the
//!   sequential solver.
//! * [`react3d`] — the task-parallel 3D-REACT quantum chemistry
//!   pipeline of §2.2–2.3 (LHSF → Log-D/ASY), with machine-specific
//!   task efficiencies and the pipeline-size tradeoff.
//! * [`nile`] — the CLEO/NILE data-parallel event analysis of §2.1,
//!   with a Site Manager that trades off skimming data to local disk
//!   against repeated remote access.

pub mod jacobi2d;
pub mod nile;
pub mod react3d;
