//! CLEO/NILE: the data-parallel metacomputer application of §2.1.
//!
//! High-energy-physics *events* (collision records) live on a storage
//! server; physicists submit analysis programs that scan an event
//! selection, possibly many times as the analysis is refined. The NILE
//! Site Manager decides where the analysis runs and whether to *skim*:
//! "the physicist may 'skim' the entire data set to create private
//! disk data sets of events for further local analysis. The cost of
//! skimming is compared with a prediction of the reduction in cost of
//! event analysis when the data is local."
//!
//! [`SiteManager`] reproduces that decision: it plans each analysis
//! run as a task farm over the available execution sites (events
//! proportional to forecast speed), predicts the cost of an R-run
//! campaign with the data left remote versus skimmed to the analysis
//! site, and picks the cheaper plan.

use apples::actuator::actuate;
use apples::error::ApplesError;
use apples::estimator::estimate_farm;
use apples::hat::{Hat, TaskFarmTemplate};
use apples::info::InfoPool;
use apples::schedule::{FarmSchedule, Schedule};
use metasim::net::{simulate_transfers, TransferReq};
use metasim::{HostId, SimTime, Topology};

/// A typical CLEO analysis: `roar`-format compressed events (§2.1:
/// raw events are 8 KB, `pass2` records 20 KB, `roar` is a lossy
/// compression of the frequently-accessed fields — we use 2 KB).
pub fn cleo_analysis_hat(events: u64) -> Hat {
    Hat::task_farm(
        "cleo-event-analysis",
        TaskFarmTemplate {
            events,
            mflop_per_event: 1.5,
            mb_per_event: 0.002,
            result_mb_per_event: 0.0001,
        },
    )
}

/// Allocate events across `hosts` proportionally to forecast speed
/// (largest-remainder rounding), producing a farm schedule.
pub fn plan_farm(
    pool: &InfoPool<'_>,
    hosts: &[HostId],
    data_home: HostId,
    result_home: HostId,
) -> Result<FarmSchedule, ApplesError> {
    let t = pool
        .hat
        .as_task_farm()
        .ok_or(ApplesError::TemplateMismatch {
            expected: "task-farm",
            found: pool.hat.class_name(),
        })?;
    if hosts.is_empty() {
        return Err(ApplesError::PlanningFailed("empty resource set".into()));
    }
    let speeds: Vec<f64> = hosts
        .iter()
        .map(|&h| pool.effective_mflops(h).unwrap_or(0.0))
        .collect();
    let total: f64 = speeds.iter().sum();
    if total <= 0.0 {
        return Err(ApplesError::PlanningFailed(
            "no host in the set has positive predicted availability".into(),
        ));
    }
    let shares: Vec<f64> = speeds.iter().map(|s| t.events as f64 * s / total).collect();
    let mut counts: Vec<u64> = shares.iter().map(|s| s.floor() as u64).collect();
    let mut remainder = t.events - counts.iter().sum::<u64>();
    let mut order: Vec<usize> = (0..hosts.len()).collect();
    order.sort_by(|&a, &b| {
        let fa = shares[a] - shares[a].floor();
        let fb = shares[b] - shares[b].floor();
        fb.total_cmp(&fa)
    });
    for &i in order.iter().cycle() {
        if remainder == 0 {
            break;
        }
        counts[i] += 1;
        remainder -= 1;
    }
    let assignments: Vec<(HostId, u64)> = hosts
        .iter()
        .zip(&counts)
        .filter(|&(_, &c)| c > 0)
        .map(|(&h, &c)| (h, c))
        .collect();
    Ok(FarmSchedule {
        data_home,
        result_home,
        assignments,
    })
}

/// The Site Manager's verdict for an analysis campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignPlan {
    /// Whether the data should be skimmed to the analysis site first.
    pub skim: bool,
    /// Predicted total seconds with the chosen strategy.
    pub predicted_seconds: f64,
    /// Predicted total seconds of the rejected strategy.
    pub predicted_alternative_seconds: f64,
    /// The per-run farm schedule under the chosen strategy.
    pub per_run: FarmSchedule,
}

/// The NILE Site Manager.
#[derive(Debug, Clone, Copy)]
pub struct SiteManager {
    /// How many times the analysis will be re-run over the same
    /// selection (physicists iterate).
    pub runs: usize,
    /// Ratio of bytes the skim must copy to the bytes one analysis
    /// run reads remotely. Skimming materializes full private event
    /// records, while a remote run reads only the (`roar`-compressed)
    /// fields the analysis touches — so this is typically > 1, and the
    /// skim only pays for itself over repeated runs.
    pub skim_mb_factor: f64,
}

impl SiteManager {
    /// Plan a campaign: compare R runs against the remote data home
    /// with one skim transfer plus R local runs, and pick the cheaper.
    ///
    /// `compute_hosts` are the candidate execution sites; `data_home`
    /// holds the events; `local_site` is where a skim would land (and
    /// where results aggregate).
    pub fn plan_campaign(
        &self,
        pool: &InfoPool<'_>,
        compute_hosts: &[HostId],
        data_home: HostId,
        local_site: HostId,
    ) -> Result<CampaignPlan, ApplesError> {
        let t = pool
            .hat
            .as_task_farm()
            .ok_or(ApplesError::TemplateMismatch {
                expected: "task-farm",
                found: pool.hat.class_name(),
            })?;
        if self.runs == 0 {
            return Err(ApplesError::Invalid(
                "campaign needs at least one run".into(),
            ));
        }
        if self.skim_mb_factor.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return Err(ApplesError::Invalid(format!(
                "skim data factor {} must be positive",
                self.skim_mb_factor
            )));
        }

        // Strategy A: leave the data remote.
        let remote_sched = plan_farm(pool, compute_hosts, data_home, local_site)?;
        let remote_run = estimate_farm(pool, &remote_sched)?;
        let remote_total = remote_run * self.runs as f64;

        // Strategy B: skim once, then run against the local copy.
        // The skim materializes full event records — `skim_mb_factor`
        // times the bytes a single remote run would actually read.
        let skim_mb = t.total_data_mb() * self.skim_mb_factor;
        let skim_cost = pool.transfer_seconds(data_home, local_site, skim_mb)?;
        let local_sched = plan_farm(pool, compute_hosts, local_site, local_site)?;
        let local_run = estimate_farm(pool, &local_sched)?;
        let skim_total = skim_cost + local_run * self.runs as f64;

        Ok(if skim_total < remote_total {
            CampaignPlan {
                skim: true,
                predicted_seconds: skim_total,
                predicted_alternative_seconds: remote_total,
                per_run: local_sched,
            }
        } else {
            CampaignPlan {
                skim: false,
                predicted_seconds: remote_total,
                predicted_alternative_seconds: skim_total,
                per_run: remote_sched,
            }
        })
    }

    /// Execute the campaign on the simulator: the optional skim
    /// transfer, then `runs` back-to-back analysis runs. Returns the
    /// total elapsed seconds.
    pub fn run_campaign(
        &self,
        topo: &Topology,
        hat: &Hat,
        plan: &CampaignPlan,
        data_home: HostId,
        local_site: HostId,
        start: SimTime,
    ) -> Result<f64, ApplesError> {
        let t = hat.as_task_farm().ok_or(ApplesError::TemplateMismatch {
            expected: "task-farm",
            found: hat.class_name(),
        })?;
        let mut now = start;
        if plan.skim {
            let skim_mb = t.total_data_mb() * self.skim_mb_factor;
            let res = simulate_transfers(
                topo,
                &[TransferReq {
                    from: data_home,
                    to: local_site,
                    mb: skim_mb,
                    start: now,
                    tag: 0,
                }],
            )?;
            now = res[0].delivered;
        }
        for _ in 0..self.runs {
            let report = actuate(topo, hat, &Schedule::Farm(plan.per_run.clone()), now)?;
            now = report.finish;
        }
        Ok(now.saturating_sub(start).as_secs_f64())
    }
}

/// A multi-site analysis: the event data lives on several storage
/// servers (§2.1: "distribution is necessary because not enough
/// resources can be made available at any single site to accommodate
/// the quantity of data"), and the compute pool must be divided among
/// the data sites so every site's share finishes together.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiSitePlan {
    /// One farm per data site, over disjoint compute-host subsets.
    pub per_site: Vec<FarmSchedule>,
    /// Predicted seconds (the slowest site's farm).
    pub predicted_seconds: f64,
}

/// Partition `compute_hosts` among data sites (each `(host, events)`)
/// and plan one farm per site.
///
/// Hosts are dealt out in descending forecast-speed order, each to the
/// site with the most *unserved* events per unit of compute already
/// assigned — a longest-processing-time heuristic that equalizes the
/// sites' finish times. Results aggregate to `result_home`.
pub fn plan_multi_site(
    pool: &InfoPool<'_>,
    compute_hosts: &[HostId],
    sites: &[(HostId, u64)],
    result_home: HostId,
) -> Result<MultiSitePlan, ApplesError> {
    let t = pool
        .hat
        .as_task_farm()
        .ok_or(ApplesError::TemplateMismatch {
            expected: "task-farm",
            found: pool.hat.class_name(),
        })?;
    if sites.is_empty() {
        return Err(ApplesError::Invalid("no data sites".into()));
    }
    let total_events: u64 = sites.iter().map(|&(_, e)| e).sum();
    if total_events != t.events {
        return Err(ApplesError::Invalid(format!(
            "data sites hold {total_events} events but the template has {}",
            t.events
        )));
    }
    if compute_hosts.len() < sites.len() {
        return Err(ApplesError::PlanningFailed(format!(
            "{} compute hosts cannot serve {} data sites",
            compute_hosts.len(),
            sites.len()
        )));
    }

    // Deal hosts: fastest first, each to the neediest site.
    let mut speed_order: Vec<HostId> = compute_hosts.to_vec();
    speed_order.sort_by(|&a, &b| {
        let sa = pool.effective_mflops(a).unwrap_or(0.0);
        let sb = pool.effective_mflops(b).unwrap_or(0.0);
        sb.total_cmp(&sa)
    });
    let mut assigned: Vec<Vec<HostId>> = vec![Vec::new(); sites.len()];
    let mut speed_sum = vec![0.0f64; sites.len()];
    for h in speed_order {
        let need = |i: usize| {
            if speed_sum[i] <= 0.0 {
                f64::INFINITY
            } else {
                sites[i].1 as f64 / speed_sum[i]
            }
        };
        let target = (0..sites.len())
            .max_by(|&a, &b| {
                need(a)
                    .total_cmp(&need(b))
                    // Break ties toward the site holding more data so
                    // infinite needs resolve deterministically.
                    .then_with(|| sites[a].1.cmp(&sites[b].1))
            })
            .expect("sites present");
        assigned[target].push(h);
        speed_sum[target] += pool.effective_mflops(h).unwrap_or(0.0);
    }

    // Plan each site's farm with a site-scoped template.
    let mut per_site = Vec::with_capacity(sites.len());
    let mut predicted: f64 = 0.0;
    for (i, &(data_home, events)) in sites.iter().enumerate() {
        if assigned[i].is_empty() {
            return Err(ApplesError::PlanningFailed(format!(
                "data site {data_home} received no compute hosts"
            )));
        }
        let site_hat = Hat::task_farm(
            &pool.hat.name,
            TaskFarmTemplate {
                events,
                ..t.clone()
            },
        );
        let site_pool = InfoPool {
            topo: pool.topo,
            weather: pool.weather,
            hat: &site_hat,
            user: pool.user,
            source: pool.source,
            now: pool.now,
            oracle_window: pool.oracle_window,
            nws_horizon: pool.nws_horizon,
        };
        let sched = plan_farm(&site_pool, &assigned[i], data_home, result_home)?;
        predicted = predicted.max(estimate_farm(&site_pool, &sched)?);
        per_site.push(sched);
    }
    Ok(MultiSitePlan {
        per_site,
        predicted_seconds: predicted,
    })
}

/// Execute a multi-site plan: every site's farm runs concurrently on
/// its disjoint host subset. Returns the elapsed seconds of the
/// slowest site. (Cross-farm network contention between sites is not
/// modelled — the farms share no hosts, and in the §2.1 setting each
/// site's traffic stays on its own campus network.)
pub fn run_multi_site(
    topo: &Topology,
    hat: &Hat,
    plan: &MultiSitePlan,
    start: SimTime,
) -> Result<f64, ApplesError> {
    let t = hat.as_task_farm().ok_or(ApplesError::TemplateMismatch {
        expected: "task-farm",
        found: hat.class_name(),
    })?;
    let mut worst = 0.0f64;
    for sched in &plan.per_site {
        let events: u64 = sched.assignments.iter().map(|&(_, e)| e).sum();
        let site_hat = Hat::task_farm(
            &hat.name,
            TaskFarmTemplate {
                events,
                ..t.clone()
            },
        );
        let report = actuate(topo, &site_hat, &Schedule::Farm(sched.clone()), start)?;
        worst = worst.max(report.elapsed_seconds);
    }
    Ok(worst)
}

#[cfg(test)]
mod tests {
    use super::*;
    use apples::user::UserSpec;
    use metasim::host::HostSpec;
    use metasim::net::{LinkSpec, TopologyBuilder};

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    /// A storage server behind a slow WAN and two fast local Alphas.
    struct Setup {
        topo: Topology,
        server: HostId,
        alphas: [HostId; 2],
    }

    fn setup() -> Setup {
        let mut b = TopologyBuilder::new();
        let local = b.add_segment(LinkSpec::dedicated(
            "local",
            12.5,
            SimTime::from_micros(500),
        ));
        let remote = b.add_segment(LinkSpec::dedicated(
            "remote",
            12.5,
            SimTime::from_micros(500),
        ));
        let wan = b.add_link(LinkSpec::dedicated("wan", 0.5, SimTime::from_millis(30)));
        b.add_route(local, remote, vec![wan]).unwrap();
        let server = b.add_host(HostSpec::dedicated("cornell-server", 20.0, 1024.0, remote));
        let a0 = b.add_host(HostSpec::dedicated("alpha-0", 40.0, 256.0, local));
        let a1 = b.add_host(HostSpec::dedicated("alpha-1", 40.0, 256.0, local));
        Setup {
            topo: b.instantiate(s(1e7), 0).unwrap(),
            server,
            alphas: [a0, a1],
        }
    }

    #[test]
    fn farm_plan_splits_events_by_speed() {
        let su = setup();
        let hat = cleo_analysis_hat(1000);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&su.topo, &hat, &user, SimTime::ZERO);
        let sched = plan_farm(&pool, &su.alphas, su.server, su.alphas[0]).unwrap();
        assert_eq!(sched.assignments.len(), 2);
        assert_eq!(sched.assignments[0].1, 500);
        assert_eq!(sched.assignments[1].1, 500);
        let t = hat.as_task_farm().unwrap();
        assert!(sched.validate(t).is_ok());
    }

    #[test]
    fn farm_plan_conserves_events_with_uneven_speeds() {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::ZERO));
        b.add_host(HostSpec::dedicated("a", 10.0, 64.0, seg));
        b.add_host(HostSpec::dedicated("b", 30.0, 64.0, seg));
        b.add_host(HostSpec::dedicated("c", 7.0, 64.0, seg));
        let topo = b.instantiate(s(100.0), 0).unwrap();
        let hat = cleo_analysis_hat(997);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&topo, &hat, &user, SimTime::ZERO);
        let sched = plan_farm(
            &pool,
            &[HostId(0), HostId(1), HostId(2)],
            HostId(0),
            HostId(0),
        )
        .unwrap();
        assert_eq!(sched.assignments.iter().map(|&(_, e)| e).sum::<u64>(), 997);
    }

    #[test]
    fn many_runs_favour_skimming() {
        let su = setup();
        let hat = cleo_analysis_hat(200_000); // 400 MB behind a 0.5 MB/s WAN
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&su.topo, &hat, &user, SimTime::ZERO);
        let sm = SiteManager {
            runs: 10,
            skim_mb_factor: 3.0,
        };
        let plan = sm
            .plan_campaign(&pool, &su.alphas, su.server, su.alphas[0])
            .unwrap();
        assert!(plan.skim, "10 runs over a slow WAN should skim: {plan:?}");
        assert!(plan.predicted_seconds < plan.predicted_alternative_seconds);
    }

    #[test]
    fn single_run_avoids_skimming() {
        let su = setup();
        let hat = cleo_analysis_hat(200_000);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&su.topo, &hat, &user, SimTime::ZERO);
        let sm = SiteManager {
            runs: 1,
            skim_mb_factor: 3.0, // full records cost 3× one run's reads
        };
        let plan = sm
            .plan_campaign(&pool, &su.alphas, su.server, su.alphas[0])
            .unwrap();
        assert!(!plan.skim, "one run should not pay a 3x skim: {plan:?}");
    }

    #[test]
    fn campaign_execution_matches_choice() {
        let su = setup();
        let hat = cleo_analysis_hat(50_000);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&su.topo, &hat, &user, SimTime::ZERO);
        let sm = SiteManager {
            runs: 8,
            skim_mb_factor: 3.0,
        };
        let plan = sm
            .plan_campaign(&pool, &su.alphas, su.server, su.alphas[0])
            .unwrap();
        let measured = sm
            .run_campaign(
                &su.topo,
                &hat,
                &plan,
                su.server,
                su.alphas[0],
                SimTime::ZERO,
            )
            .unwrap();
        assert!(measured > 0.0);
        // The estimate and the simulation should agree on the order of
        // magnitude (the farm model approximates contention).
        let ratio = measured / plan.predicted_seconds;
        assert!(
            (0.3..3.0).contains(&ratio),
            "measured {measured} vs predicted {} (ratio {ratio})",
            plan.predicted_seconds
        );
    }

    #[test]
    fn skim_beats_remote_in_actuated_time_when_predicted() {
        let su = setup();
        let hat = cleo_analysis_hat(100_000);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&su.topo, &hat, &user, SimTime::ZERO);
        let sm = SiteManager {
            runs: 10,
            skim_mb_factor: 3.0,
        };
        let plan = sm
            .plan_campaign(&pool, &su.alphas, su.server, su.alphas[0])
            .unwrap();
        assert!(plan.skim);
        // Force the remote plan and compare actuated totals.
        let remote_sched = plan_farm(&pool, &su.alphas, su.server, su.alphas[0]).unwrap();
        let remote_plan = CampaignPlan {
            skim: false,
            predicted_seconds: 0.0,
            predicted_alternative_seconds: 0.0,
            per_run: remote_sched,
        };
        let skim_time = sm
            .run_campaign(
                &su.topo,
                &hat,
                &plan,
                su.server,
                su.alphas[0],
                SimTime::ZERO,
            )
            .unwrap();
        let remote_time = sm
            .run_campaign(
                &su.topo,
                &hat,
                &remote_plan,
                su.server,
                su.alphas[0],
                SimTime::ZERO,
            )
            .unwrap();
        assert!(
            skim_time < remote_time,
            "skim {skim_time} should beat remote {remote_time}"
        );
    }

    /// Two data sites with fast links locally; compute hosts of mixed
    /// speed.
    struct MultiSetup {
        topo: Topology,
        site_a: HostId,
        site_b: HostId,
        compute: Vec<HostId>,
    }

    fn multi_setup() -> MultiSetup {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("lan", 12.5, SimTime::from_micros(500)));
        let site_a = b.add_host(HostSpec::dedicated("store-a", 20.0, 2048.0, seg));
        let site_b = b.add_host(HostSpec::dedicated("store-b", 20.0, 2048.0, seg));
        let mut compute = Vec::new();
        for (i, speed) in [40.0, 40.0, 20.0, 10.0].iter().enumerate() {
            compute.push(b.add_host(HostSpec::dedicated(&format!("c{i}"), *speed, 256.0, seg)));
        }
        MultiSetup {
            topo: b.instantiate(s(1e7), 0).unwrap(),
            site_a,
            site_b,
            compute,
        }
    }

    #[test]
    fn multi_site_covers_all_events_on_disjoint_hosts() {
        let su = multi_setup();
        let hat = cleo_analysis_hat(100_000);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&su.topo, &hat, &user, SimTime::ZERO);
        let plan = plan_multi_site(
            &pool,
            &su.compute,
            &[(su.site_a, 60_000), (su.site_b, 40_000)],
            su.site_a,
        )
        .unwrap();
        assert_eq!(plan.per_site.len(), 2);
        let total: u64 = plan
            .per_site
            .iter()
            .flat_map(|f| f.assignments.iter().map(|&(_, e)| e))
            .sum();
        assert_eq!(total, 100_000);
        // Host subsets are disjoint.
        let mut seen = std::collections::BTreeSet::new();
        for f in &plan.per_site {
            for &(h, _) in &f.assignments {
                assert!(seen.insert(h.0), "host {h} serves two sites");
            }
        }
    }

    #[test]
    fn multi_site_balances_compute_to_data() {
        let su = multi_setup();
        let hat = cleo_analysis_hat(100_000);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&su.topo, &hat, &user, SimTime::ZERO);
        // Site A holds 3x the data of site B: it should get the larger
        // share of aggregate compute speed.
        let plan = plan_multi_site(
            &pool,
            &su.compute,
            &[(su.site_a, 75_000), (su.site_b, 25_000)],
            su.site_a,
        )
        .unwrap();
        let speed_of = |f: &apples::schedule::FarmSchedule| -> f64 {
            f.assignments
                .iter()
                .map(|&(h, _)| su.topo.host(h).unwrap().spec.mflops)
                .sum()
        };
        assert!(speed_of(&plan.per_site[0]) > speed_of(&plan.per_site[1]));
        // And the measured finish times should be reasonably balanced.
        let t = run_multi_site(&su.topo, &hat, &plan, SimTime::ZERO).unwrap();
        assert!(t > 0.0);
        assert!(
            t < 1.6 * plan.predicted_seconds + 1.0,
            "measured {t} vs predicted {}",
            plan.predicted_seconds
        );
    }

    #[test]
    fn multi_site_rejects_mismatched_totals() {
        let su = multi_setup();
        let hat = cleo_analysis_hat(100_000);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&su.topo, &hat, &user, SimTime::ZERO);
        assert!(plan_multi_site(
            &pool,
            &su.compute,
            &[(su.site_a, 1), (su.site_b, 1)],
            su.site_a,
        )
        .is_err());
    }

    #[test]
    fn multi_site_needs_a_host_per_site() {
        let su = multi_setup();
        let hat = cleo_analysis_hat(100);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&su.topo, &hat, &user, SimTime::ZERO);
        assert!(plan_multi_site(
            &pool,
            &su.compute[..1],
            &[(su.site_a, 50), (su.site_b, 50)],
            su.site_a,
        )
        .is_err());
    }

    #[test]
    fn degenerate_campaigns_are_rejected() {
        let su = setup();
        let hat = cleo_analysis_hat(100);
        let user = UserSpec::default();
        let pool = InfoPool::static_nominal(&su.topo, &hat, &user, SimTime::ZERO);
        let sm = SiteManager {
            runs: 0,
            skim_mb_factor: 2.0,
        };
        assert!(sm
            .plan_campaign(&pool, &su.alphas, su.server, su.alphas[0])
            .is_err());
        let sm2 = SiteManager {
            runs: 1,
            skim_mb_factor: 0.0,
        };
        assert!(sm2
            .plan_campaign(&pool, &su.alphas, su.server, su.alphas[0])
            .is_err());
    }
}
