//! 3D-REACT: the task-parallel metacomputer application of §2.2–2.3.
//!
//! The code computes quantum reactive scattering for H + D₂ ⇒ HD + D
//! in two coupled tasks: a local-hyperspherical-surface-function
//! calculation (LHSF, vectorizes beautifully — it ran on the SDSC Cray
//! C90) feeding a logarithmic-derivative propagation plus asymptotic
//! analysis (Log-D/ASY — it ran on the CalTech Delta/Paragon). The
//! problem is "subdivided into smaller subdomains of 5 to 20 surface
//! functions per subdomain so that the LHSF task and Log-D tasks may be
//! executed concurrently, and the communication latency between them
//! may be masked".
//!
//! The constants below are calibrated so the simulated system
//! reproduces the paper's §2.3 measurements in *shape*:
//!
//! * either machine alone takes **over 16 hours** (the C90 cannot hold
//!   both tasks in memory and pages; the Paragon runs LHSF at a small
//!   fraction of peak because the algorithm does not parallelize),
//! * the pipelined two-machine schedule finishes in **under 5 hours**,
//! * the best pipeline size lands in the paper's 5–20
//!   surface-function range: smaller units pay per-message data
//!   conversion (Cray ↔ Paragon floating-point formats, §2.2), larger
//!   units lose overlap.

use apples::hat::{ArchEfficiency, Hat, PipelineTemplate};
use apples::schedule::PipelineSchedule;
use metasim::exec::{simulate_pipeline, simulate_single_site, PipelineOutcome};
use metasim::host::HostSpec;
use metasim::net::{LinkSpec, TopologyBuilder};
use metasim::{HostId, SimError, SimTime, Topology};

/// Total surface functions in a production-size run.
pub const TOTAL_SURFACE_FUNCTIONS: usize = 520;
/// LHSF work per surface function, Mflop.
pub const LHSF_MFLOP_PER_SF: f64 = 6150.0;
/// Log-D/ASY work per surface function, Mflop.
pub const LOGD_MFLOP_PER_SF: f64 = 6920.0;
/// Data shipped per surface function, MB.
pub const MB_PER_SF: f64 = 2.0;
/// Cross-format data conversion charged per message, Mflop (§2.2:
/// "the floating point format of each data point had to be converted").
pub const CONVERT_MFLOP_PER_MESSAGE: f64 = 2000.0;

/// The C90's nominal vector speed, Mflop/s.
pub const C90_MFLOPS: f64 = 450.0;
/// C90 memory available to the application, MB (§2.2: not enough to
/// run both tasks together).
pub const C90_MEM_MB: f64 = 300.0;
/// Aggregate speed of the 64-node Paragon partition, Mflop/s.
pub const PARAGON_MFLOPS: f64 = 576.0;
/// Paragon partition memory, MB.
pub const PARAGON_MEM_MB: f64 = 512.0;

/// The HAT for 3D-REACT.
pub fn react3d_hat() -> Hat {
    Hat::pipeline(
        "3d-react",
        PipelineTemplate {
            total_units: TOTAL_SURFACE_FUNCTIONS,
            producer_mflop_per_unit: LHSF_MFLOP_PER_SF,
            consumer_mflop_per_unit: LOGD_MFLOP_PER_SF,
            mb_per_unit: MB_PER_SF,
            producer_resident_mb: 200.0,
            consumer_base_mb: 160.0,
            consumer_mb_per_buffered_unit: 0.4,
            convert_mflop_per_message: CONVERT_MFLOP_PER_MESSAGE,
            // LHSF is a vector code: full speed on the Cray, a small
            // fraction of peak on the message-passing Paragon.
            producer_efficiency: ArchEfficiency {
                rules: vec![("c90".into(), 1.0), ("paragon".into(), 0.1)],
                default_efficiency: 0.3,
            },
            // Log-D has per-machine implementations (§2.3): vector on
            // the Cray, parallel on the Paragon.
            consumer_efficiency: ArchEfficiency {
                rules: vec![("c90".into(), 1.0), ("paragon".into(), 0.8)],
                default_efficiency: 0.3,
            },
        },
    )
}

/// The CASA testbed slice 3D-REACT ran on: the SDSC C90 and the
/// CalTech Paragon joined by a dedicated HiPPI-SONET link. Both
/// machines are dedicated during the run (§2.3: the application
/// "required completely dedicated access to both ... while it
/// executed").
#[derive(Debug, Clone)]
pub struct CasaTestbed {
    /// The instantiated system.
    pub topo: Topology,
    /// The SDSC Cray C90.
    pub c90: HostId,
    /// The CalTech Paragon partition.
    pub paragon: HostId,
}

/// Build the CASA testbed.
pub fn casa_testbed(seed: u64) -> Result<CasaTestbed, SimError> {
    let mut b = TopologyBuilder::new();
    let sdsc = b.add_segment(LinkSpec::dedicated(
        "sdsc-hippi",
        80.0,
        SimTime::from_micros(50),
    ));
    let caltech = b.add_segment(LinkSpec::dedicated(
        "caltech-hippi",
        80.0,
        SimTime::from_micros(50),
    ));
    let sonet = b.add_link(LinkSpec::dedicated(
        "hippi-sonet-wan",
        12.0,
        SimTime::from_millis(10),
    ));
    b.add_route(sdsc, caltech, vec![sonet])?;

    let mut c90_spec = HostSpec::dedicated("sdsc-c90", C90_MFLOPS, C90_MEM_MB, sdsc);
    c90_spec.paging_slowdown = 20.0;
    let c90 = b.add_host(c90_spec);
    let mut par_spec =
        HostSpec::dedicated("caltech-paragon", PARAGON_MFLOPS, PARAGON_MEM_MB, caltech);
    par_spec.paging_slowdown = 20.0;
    let paragon = b.add_host(par_spec);

    let topo = b.instantiate(SimTime::from_secs(1_000_000), seed)?;
    Ok(CasaTestbed { topo, c90, paragon })
}

/// Run the distributed pipeline (LHSF on the C90, Log-D on the
/// Paragon) with the given pipeline size (surface functions per
/// subdomain) and depth.
pub fn distributed_run(
    tb: &CasaTestbed,
    unit_size: usize,
    depth: usize,
) -> Result<PipelineOutcome, apples::ApplesError> {
    let hat = react3d_hat();
    let t = hat.as_pipeline().expect("pipeline HAT");
    let sched = PipelineSchedule {
        producer: tb.c90,
        consumer: tb.paragon,
        unit_size,
        depth,
    };
    let job = sched.to_pipeline_job(t, "sdsc-c90", "caltech-paragon", SimTime::ZERO)?;
    Ok(simulate_pipeline(&tb.topo, &job)?)
}

/// Run the whole application on a single machine (the §2.3 single-site
/// baseline). On the C90 the two tasks' combined resident set exceeds
/// memory and the run pages; on the Paragon the LHSF phase crawls at a
/// tenth of peak.
pub fn single_site_run(tb: &CasaTestbed, host: HostId) -> Result<SimTime, apples::ApplesError> {
    let hat = react3d_hat();
    let t = hat.as_pipeline().expect("pipeline HAT");
    let name = tb.topo.host(host)?.spec.name.clone();
    // Single-site still processes one subdomain at a time; batching of
    // 10 SF keeps the comparison honest.
    let sched = PipelineSchedule {
        producer: host,
        consumer: host,
        unit_size: 10,
        depth: 1,
    };
    let job = sched.to_pipeline_job(t, &name, &name, SimTime::ZERO)?;
    Ok(simulate_single_site(&tb.topo, host, &job)?)
}

/// Sweep pipeline sizes, returning `(unit_size, makespan_seconds)` per
/// candidate — the data behind the §2.3 pipeline-size tradeoff.
pub fn sweep_pipeline_sizes(
    tb: &CasaTestbed,
    unit_sizes: &[usize],
    depth: usize,
) -> Result<Vec<(usize, f64)>, apples::ApplesError> {
    let mut out = Vec::with_capacity(unit_sizes.len());
    for &u in unit_sizes {
        let run = distributed_run(tb, u, depth)?;
        out.push((u, run.makespan(SimTime::ZERO).as_secs_f64()));
    }
    Ok(out)
}

/// Depth-sweep record: how the pipeline bound trades producer blocking
/// against consumer buffering.
#[derive(Debug, Clone)]
pub struct DepthPoint {
    /// Pipeline depth (batches in flight).
    pub depth: usize,
    /// Makespan in seconds.
    pub makespan_s: f64,
    /// Seconds the producer was blocked on the depth bound.
    pub producer_block_s: f64,
    /// Seconds the consumer stalled waiting for data.
    pub consumer_stall_s: f64,
}

/// Sweep pipeline depths at a fixed unit size — the §2.3 "buffering
/// performance cost" axis: depth 1 serializes adjacent batches, large
/// depths grow the consumer's resident buffer.
pub fn sweep_pipeline_depths(
    tb: &CasaTestbed,
    unit_size: usize,
    depths: &[usize],
) -> Result<Vec<DepthPoint>, apples::ApplesError> {
    let mut out = Vec::with_capacity(depths.len());
    for &depth in depths {
        let run = distributed_run(tb, unit_size, depth)?;
        out.push(DepthPoint {
            depth,
            makespan_s: run.makespan(SimTime::ZERO).as_secs_f64(),
            producer_block_s: run.producer_block_seconds,
            consumer_stall_s: run.consumer_stall_seconds,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    const HOUR: f64 = 3600.0;

    #[test]
    fn single_site_exceeds_sixteen_hours_on_both_machines() {
        let tb = casa_testbed(0).unwrap();
        let c90 = single_site_run(&tb, tb.c90).unwrap().as_secs_f64();
        let par = single_site_run(&tb, tb.paragon).unwrap().as_secs_f64();
        assert!(c90 > 16.0 * HOUR, "C90 single-site: {:.1} h", c90 / HOUR);
        assert!(
            par > 16.0 * HOUR,
            "Paragon single-site: {:.1} h",
            par / HOUR
        );
    }

    #[test]
    fn distributed_run_is_under_five_hours() {
        let tb = casa_testbed(0).unwrap();
        let run = distributed_run(&tb, 10, 4).unwrap();
        let hours = run.makespan(SimTime::ZERO).as_secs_f64() / HOUR;
        assert!(hours < 5.0, "distributed: {hours:.2} h");
    }

    #[test]
    fn best_pipeline_size_is_in_the_papers_range() {
        let tb = casa_testbed(0).unwrap();
        let sweep = sweep_pipeline_sizes(&tb, &[1, 2, 5, 10, 20, 65, 130, 260], 4).unwrap();
        let best = sweep.iter().min_by(|a, b| a.1.total_cmp(&b.1)).unwrap();
        assert!(
            (2..=20).contains(&best.0),
            "optimum pipeline size {} outside the expected range; sweep: {sweep:?}",
            best.0
        );
    }

    #[test]
    fn tiny_units_pay_conversion_overhead() {
        let tb = casa_testbed(0).unwrap();
        let sweep = sweep_pipeline_sizes(&tb, &[1, 10], 4).unwrap();
        assert!(
            sweep[0].1 > sweep[1].1,
            "unit=1 ({}) should be slower than unit=10 ({})",
            sweep[0].1,
            sweep[1].1
        );
    }

    #[test]
    fn huge_units_lose_overlap() {
        let tb = casa_testbed(0).unwrap();
        let sweep = sweep_pipeline_sizes(&tb, &[10, 520], 4).unwrap();
        assert!(
            sweep[1].1 > sweep[0].1,
            "unit=520 ({}) should be slower than unit=10 ({})",
            sweep[1].1,
            sweep[0].1
        );
    }

    #[test]
    fn depth_one_blocks_the_producer_hardest() {
        let tb = casa_testbed(0).unwrap();
        let sweep = sweep_pipeline_depths(&tb, 10, &[1, 2, 4, 8]).unwrap();
        // Blocking falls monotonically with depth.
        for w in sweep.windows(2) {
            assert!(
                w[1].producer_block_s <= w[0].producer_block_s + 1e-6,
                "{sweep:?}"
            );
        }
        // And the makespan never gets worse with more depth here
        // (consumer memory stays within bounds at unit 10).
        for w in sweep.windows(2) {
            assert!(w[1].makespan_s <= w[0].makespan_s + 1e-6);
        }
    }

    #[test]
    fn speedup_over_best_single_site_exceeds_three() {
        let tb = casa_testbed(0).unwrap();
        let best_single = single_site_run(&tb, tb.c90)
            .unwrap()
            .as_secs_f64()
            .min(single_site_run(&tb, tb.paragon).unwrap().as_secs_f64());
        let dist = distributed_run(&tb, 10, 4)
            .unwrap()
            .makespan(SimTime::ZERO)
            .as_secs_f64();
        assert!(
            best_single / dist > 3.0,
            "speedup {:.2}",
            best_single / dist
        );
    }
}
