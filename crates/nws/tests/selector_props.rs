//! Property tests for the adaptive selector and the forecaster suite.

use nws::forecast::{standard_suite, Forecaster, LastValue, RunningMean, SlidingWindowMean};
use nws::AdaptiveSelector;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The selector's forecast is always one of its members' forecasts
    /// (it selects, never blends).
    #[test]
    fn selector_forecast_is_a_member_forecast(values in prop::collection::vec(0.0f64..1.0, 1..200)) {
        let mut selector = AdaptiveSelector::new();
        let mut members = standard_suite();
        for v in &values {
            selector.update(*v);
            for m in members.iter_mut() {
                m.update(*v);
            }
        }
        let sel = selector.forecast().expect("selector forecast");
        let found = members
            .iter()
            .filter_map(|m| m.forecast())
            .any(|p| (p - sel).abs() < 1e-12);
        prop_assert!(found, "selector produced {sel}, not among member forecasts");
    }

    /// Window-bounded predictors never forecast outside the range of
    /// values they have seen.
    #[test]
    fn bounded_predictors_stay_in_observed_range(values in prop::collection::vec(0.0f64..1.0, 1..100)) {
        let lo = values.iter().copied().fold(f64::INFINITY, f64::min);
        let hi = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let mut fs: Vec<Box<dyn Forecaster>> = vec![
            Box::new(LastValue::new()),
            Box::new(RunningMean::new()),
            Box::new(SlidingWindowMean::new(8)),
        ];
        for v in &values {
            for f in fs.iter_mut() {
                f.update(*v);
            }
        }
        for f in &fs {
            let p = f.forecast().expect("forecast");
            prop_assert!(
                p >= lo - 1e-12 && p <= hi + 1e-12,
                "{} forecast {p} outside [{lo}, {hi}]",
                f.name()
            );
        }
    }

    /// Updating with the same stream twice in two selector instances
    /// yields identical forecasts (pure determinism).
    #[test]
    fn selector_is_deterministic(values in prop::collection::vec(0.0f64..1.0, 1..150)) {
        let mut a = AdaptiveSelector::new();
        let mut b = AdaptiveSelector::new();
        for v in &values {
            a.update(*v);
            b.update(*v);
        }
        prop_assert_eq!(a.forecast(), b.forecast());
        prop_assert_eq!(a.best_name(), b.best_name());
    }

    /// On a constant tail, the selector's error estimate goes to zero
    /// and the forecast converges to the constant.
    #[test]
    fn selector_converges_on_constant_tails(
        prefix in prop::collection::vec(0.0f64..1.0, 0..30),
        level in 0.0f64..1.0,
    ) {
        let mut s = AdaptiveSelector::new();
        for v in &prefix {
            s.update(*v);
        }
        for _ in 0..400 {
            s.update(level);
        }
        let p = s.forecast().expect("forecast");
        prop_assert!((p - level).abs() < 0.02, "forecast {p} vs level {level}");
    }
}
