//! Sensors: periodic measurement of simulated resources.
//!
//! A sensor samples the *realized* availability process of a host CPU
//! or network link at a fixed period. Crucially, a sensor only ever
//! observes the past: [`Sensor::poll`] returns the samples that fall at
//! or before the supplied current time, and never looks ahead. The
//! forecasting layer therefore works exactly as it would against live
//! instrumentation.
//!
//! Real probes are noisy — a CPU sensor reads a load average mid-decay,
//! a bandwidth probe rides one TCP connection's luck — so sensors
//! accept an optional measurement-noise level: each sample is
//! perturbed by a deterministic, seed-derived uniform error and clamped
//! back to `[0, 1]`. Forecasters never see the clean signal, exactly as
//! in a live deployment.

use metasim::{HostId, LinkId, SimTime, Topology};

/// Deterministic per-sample noise in `[-amplitude, +amplitude]`,
/// derived from the seed and the sample time (so re-polling the same
/// instant reproduces the same reading).
fn sample_noise(seed: u64, t: SimTime, amplitude: f64) -> f64 {
    if amplitude <= 0.0 {
        return 0.0;
    }
    // SplitMix64 over (seed, time) — cheap, stateless, reproducible.
    let mut z = seed ^ t.as_micros().wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    let unit = (z >> 11) as f64 / (1u64 << 53) as f64; // [0, 1)
    (unit * 2.0 - 1.0) * amplitude
}

/// A periodic sampler of one scalar signal on the simulated system.
pub trait Sensor: Send {
    /// Collect all samples due at or before `now`, in time order.
    /// Subsequent calls resume where the previous call stopped.
    fn poll(&mut self, topo: &Topology, now: SimTime) -> Vec<(SimTime, f64)>;

    /// The sampling period.
    fn period(&self) -> SimTime;
}

/// Samples a host's CPU availability fraction.
#[derive(Debug, Clone)]
pub struct CpuSensor {
    host: HostId,
    period: SimTime,
    next: SimTime,
    noise: f64,
    noise_seed: u64,
}

impl CpuSensor {
    /// A noise-free sensor for `host` sampling every `period`.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn new(host: HostId, period: SimTime) -> Self {
        Self::with_noise(host, period, 0.0, 0)
    }

    /// A sensor whose samples carry uniform measurement error in
    /// `[-noise, +noise]`, clamped to `[0, 1]`.
    ///
    /// # Panics
    /// Panics if `period` is zero or `noise` is negative.
    pub fn with_noise(host: HostId, period: SimTime, noise: f64, noise_seed: u64) -> Self {
        // simlint: allow(panic-in-lib): documented `# Panics` constructor precondition
        assert!(period > SimTime::ZERO, "sensor period must be positive");
        // simlint: allow(panic-in-lib): documented `# Panics` constructor precondition
        assert!(noise >= 0.0, "noise amplitude must be non-negative");
        CpuSensor {
            host,
            period,
            next: SimTime::ZERO,
            noise,
            noise_seed: noise_seed ^ (host.0 as u64).wrapping_mul(0xA24B_AED4_963E_E407),
        }
    }

    /// The host being observed.
    pub fn host(&self) -> HostId {
        self.host
    }
}

impl Sensor for CpuSensor {
    fn poll(&mut self, topo: &Topology, now: SimTime) -> Vec<(SimTime, f64)> {
        let mut out = Vec::new();
        let host = match topo.host(self.host) {
            Ok(h) => h,
            Err(_) => return out,
        };
        while self.next <= now {
            let clean = host.availability().value_at(self.next);
            let v = (clean + sample_noise(self.noise_seed, self.next, self.noise)).clamp(0.0, 1.0);
            out.push((self.next, v));
            self.next += self.period;
        }
        out
    }

    fn period(&self) -> SimTime {
        self.period
    }
}

/// Samples a link's available-capacity fraction.
#[derive(Debug, Clone)]
pub struct LinkSensor {
    link: LinkId,
    period: SimTime,
    next: SimTime,
    noise: f64,
    noise_seed: u64,
}

impl LinkSensor {
    /// A noise-free sensor for `link` sampling every `period`.
    ///
    /// # Panics
    /// Panics if `period` is zero.
    pub fn new(link: LinkId, period: SimTime) -> Self {
        Self::with_noise(link, period, 0.0, 0)
    }

    /// A sensor whose samples carry uniform measurement error in
    /// `[-noise, +noise]`, clamped to `[0, 1]`.
    ///
    /// # Panics
    /// Panics if `period` is zero or `noise` is negative.
    pub fn with_noise(link: LinkId, period: SimTime, noise: f64, noise_seed: u64) -> Self {
        // simlint: allow(panic-in-lib): documented `# Panics` constructor precondition
        assert!(period > SimTime::ZERO, "sensor period must be positive");
        // simlint: allow(panic-in-lib): documented `# Panics` constructor precondition
        assert!(noise >= 0.0, "noise amplitude must be non-negative");
        LinkSensor {
            link,
            period,
            next: SimTime::ZERO,
            noise,
            noise_seed: noise_seed ^ (link.0 as u64).wrapping_mul(0xD6E8_FEB8_6659_FD93),
        }
    }

    /// The link being observed.
    pub fn link(&self) -> LinkId {
        self.link
    }
}

impl Sensor for LinkSensor {
    fn poll(&mut self, topo: &Topology, now: SimTime) -> Vec<(SimTime, f64)> {
        let mut out = Vec::new();
        let link = match topo.link(self.link) {
            Ok(l) => l,
            Err(_) => return out,
        };
        while self.next <= now {
            let clean = link.availability().value_at(self.next);
            let v = (clean + sample_noise(self.noise_seed, self.next, self.noise)).clamp(0.0, 1.0);
            out.push((self.next, v));
            self.next += self.period;
        }
        out
    }

    fn period(&self) -> SimTime {
        self.period
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metasim::host::HostSpec;
    use metasim::load::LoadModel;
    use metasim::net::{LinkSpec, TopologyBuilder};

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    fn topo() -> Topology {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::shared(
            "seg",
            10.0,
            SimTime::ZERO,
            LoadModel::Trace(vec![(s(0.0), 1.0), (s(10.0), 0.4)]),
        ));
        b.add_host(HostSpec::workstation(
            "ws",
            10.0,
            64.0,
            seg,
            LoadModel::Trace(vec![(s(0.0), 0.8), (s(5.0), 0.2)]),
        ));
        b.instantiate(s(1000.0), 0).unwrap()
    }

    #[test]
    fn cpu_sensor_samples_true_availability() {
        let topo = topo();
        let mut sensor = CpuSensor::new(HostId(0), s(2.0));
        let samples = sensor.poll(&topo, s(8.0));
        // t = 0, 2, 4 see 0.8; t = 6, 8 see 0.2.
        assert_eq!(samples.len(), 5);
        assert_eq!(samples[0], (s(0.0), 0.8));
        assert_eq!(samples[2], (s(4.0), 0.8));
        assert_eq!(samples[3], (s(6.0), 0.2));
    }

    #[test]
    fn poll_is_incremental() {
        let topo = topo();
        let mut sensor = CpuSensor::new(HostId(0), s(2.0));
        let first = sensor.poll(&topo, s(4.0));
        assert_eq!(first.len(), 3); // 0, 2, 4
        let second = sensor.poll(&topo, s(8.0));
        assert_eq!(second.len(), 2); // 6, 8
        assert_eq!(second[0].0, s(6.0));
        // No overlap.
        assert!(first.iter().all(|(t, _)| *t <= s(4.0)));
        assert!(second.iter().all(|(t, _)| *t > s(4.0)));
    }

    #[test]
    fn poll_never_sees_the_future() {
        let topo = topo();
        let mut sensor = CpuSensor::new(HostId(0), s(3.0));
        for (t, _) in sensor.poll(&topo, s(100.0)) {
            assert!(t <= s(100.0));
        }
    }

    #[test]
    fn link_sensor_tracks_link_load() {
        let topo = topo();
        let mut sensor = LinkSensor::new(LinkId(0), s(5.0));
        let samples = sensor.poll(&topo, s(15.0));
        // t = 0, 5 see 1.0; t = 10, 15 see 0.4.
        assert_eq!(samples.len(), 4);
        assert_eq!(samples[1].1, 1.0);
        assert_eq!(samples[2].1, 0.4);
    }

    #[test]
    fn noisy_sensor_perturbs_within_amplitude() {
        let topo = topo();
        let mut clean = CpuSensor::new(HostId(0), s(1.0));
        let mut noisy = CpuSensor::with_noise(HostId(0), s(1.0), 0.1, 42);
        let a = clean.poll(&topo, s(4.0));
        let b = noisy.poll(&topo, s(4.0));
        let mut any_different = false;
        for ((_, cv), (_, nv)) in a.iter().zip(&b) {
            assert!((cv - nv).abs() <= 0.1 + 1e-12, "noise exceeded amplitude");
            assert!((0.0..=1.0).contains(nv));
            if (cv - nv).abs() > 1e-12 {
                any_different = true;
            }
        }
        assert!(any_different, "noise had no effect at all");
    }

    #[test]
    fn noise_is_deterministic_per_seed() {
        let topo = topo();
        let mut a = CpuSensor::with_noise(HostId(0), s(1.0), 0.1, 42);
        let mut b = CpuSensor::with_noise(HostId(0), s(1.0), 0.1, 42);
        assert_eq!(a.poll(&topo, s(10.0)), b.poll(&topo, s(10.0)));
        let mut c = CpuSensor::with_noise(HostId(0), s(1.0), 0.1, 43);
        assert_ne!(
            a.poll(&topo, s(20.0)),
            c.poll(&topo, s(20.0)).split_off(11),
            "different windows trivially differ"
        );
    }

    #[test]
    #[should_panic(expected = "non-negative")]
    fn negative_noise_rejected() {
        CpuSensor::with_noise(HostId(0), s(1.0), -0.1, 0);
    }

    #[test]
    fn unknown_resource_yields_no_samples() {
        let topo = topo();
        let mut sensor = CpuSensor::new(HostId(99), s(1.0));
        assert!(sensor.poll(&topo, s(10.0)).is_empty());
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_rejected() {
        CpuSensor::new(HostId(0), SimTime::ZERO);
    }
}
