//! Dynamic predictor selection — the NWS "forecaster of forecasters".
//!
//! Every predictor in the battery runs on the full measurement stream.
//! When a new measurement arrives, each predictor's *previous* forecast
//! is scored against it (a postcast), and the cumulative error decides
//! which predictor answers live forecast queries. Different predictors
//! win on different signal regimes — last-value on random walks, long
//! means on stationary noise, medians on bursty spikes — and selection
//! tracks the regime automatically.

use crate::forecast::{standard_suite, Forecaster};

/// Exponential decay applied to cumulative errors so the selector can
/// abandon a predictor whose regime has passed.
const ERROR_DECAY: f64 = 0.995;

/// A battery of forecasters with postcast-error-driven selection.
///
/// ```
/// use nws::AdaptiveSelector;
///
/// let mut s = AdaptiveSelector::new();
/// // Alternating noise around 0.5: a mean-style predictor wins.
/// for i in 0..200 {
///     s.update(if i % 2 == 0 { 0.4 } else { 0.6 });
/// }
/// let f = s.forecast().unwrap();
/// assert!((f - 0.5).abs() < 0.11);
/// ```
pub struct AdaptiveSelector {
    members: Vec<Box<dyn Forecaster>>,
    /// Decayed cumulative absolute error per member.
    err: Vec<f64>,
    /// Number of scored postcasts per member.
    scored: Vec<u64>,
    samples_seen: u64,
}

impl Default for AdaptiveSelector {
    fn default() -> Self {
        Self::new()
    }
}

impl AdaptiveSelector {
    /// A selector over the standard NWS-style battery.
    pub fn new() -> Self {
        Self::with_members(standard_suite())
    }

    /// A selector over a caller-supplied battery.
    ///
    /// # Panics
    /// Panics if `members` is empty.
    pub fn with_members(members: Vec<Box<dyn Forecaster>>) -> Self {
        // simlint: allow(panic-in-lib): documented `# Panics` constructor precondition
        assert!(!members.is_empty(), "selector needs at least one member");
        let n = members.len();
        AdaptiveSelector {
            members,
            err: vec![0.0; n],
            scored: vec![0; n],
            samples_seen: 0,
        }
    }

    /// Feed a new measurement: score everyone's pending forecast, then
    /// update everyone.
    pub fn update(&mut self, value: f64) {
        for (i, m) in self.members.iter().enumerate() {
            if let Some(p) = m.forecast() {
                self.err[i] = self.err[i] * ERROR_DECAY + (p - value).abs();
                self.scored[i] += 1;
            }
        }
        for m in &mut self.members {
            m.update(value);
        }
        self.samples_seen += 1;
    }

    /// Index of the member with the lowest decayed error. Members that
    /// have never been scored rank last.
    fn best_index(&self) -> Option<usize> {
        (0..self.members.len())
            .filter(|&i| self.scored[i] > 0)
            .min_by(|&a, &b| self.err[a].total_cmp(&self.err[b]))
            .or_else(|| {
                // Nothing scored yet: any member that can forecast.
                (0..self.members.len()).find(|&i| self.members[i].forecast().is_some())
            })
    }

    /// Forecast the next measurement using the best member so far.
    pub fn forecast(&self) -> Option<f64> {
        self.best_index().and_then(|i| self.members[i].forecast())
    }

    /// Name of the member currently answering forecasts.
    pub fn best_name(&self) -> Option<String> {
        self.best_index().map(|i| self.members[i].name())
    }

    /// Decayed mean absolute error of the winning member (a confidence
    /// signal callers can use to discount the forecast).
    pub fn best_error(&self) -> Option<f64> {
        self.best_index().map(|i| {
            if self.scored[i] == 0 {
                f64::INFINITY
            } else {
                // Normalize the decayed sum by its decayed weight.
                let w: f64 = (0..self.scored[i])
                    .map(|k| ERROR_DECAY.powi(k as i32))
                    .sum();
                self.err[i] / w
            }
        })
    }

    /// Number of measurements consumed.
    pub fn samples_seen(&self) -> u64 {
        self.samples_seen
    }

    /// Discard all history.
    pub fn reset(&mut self) {
        for m in &mut self.members {
            m.reset();
        }
        self.err.iter_mut().for_each(|e| *e = 0.0);
        self.scored.iter_mut().for_each(|s| *s = 0);
        self.samples_seen = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::forecast::{LastValue, RunningMean};

    #[test]
    fn empty_selector_rejected() {
        let r = std::panic::catch_unwind(|| AdaptiveSelector::with_members(vec![]));
        assert!(r.is_err());
    }

    #[test]
    fn forecasts_after_first_sample() {
        let mut s = AdaptiveSelector::new();
        assert_eq!(s.forecast(), None);
        s.update(0.6);
        assert!(s.forecast().is_some());
        assert_eq!(s.samples_seen(), 1);
    }

    #[test]
    fn selects_last_value_on_a_trending_signal() {
        // A steadily ramping signal: last-value beats the running mean.
        let mut s = AdaptiveSelector::with_members(vec![
            Box::new(LastValue::new()),
            Box::new(RunningMean::new()),
        ]);
        for i in 0..200 {
            s.update(i as f64 * 0.01);
        }
        assert_eq!(s.best_name().unwrap(), "last_value");
    }

    #[test]
    fn selects_mean_on_alternating_noise() {
        let mut s = AdaptiveSelector::with_members(vec![
            Box::new(LastValue::new()),
            Box::new(RunningMean::new()),
        ]);
        for i in 0..200 {
            s.update(if i % 2 == 0 { 0.0 } else { 1.0 });
        }
        assert_eq!(s.best_name().unwrap(), "running_mean");
    }

    #[test]
    fn adapts_when_the_regime_changes() {
        let mut s = AdaptiveSelector::with_members(vec![
            Box::new(LastValue::new()),
            Box::new(RunningMean::new()),
        ]);
        // Regime 1: alternating noise ⇒ mean wins.
        for i in 0..300 {
            s.update(if i % 2 == 0 { 0.4 } else { 0.6 });
        }
        assert_eq!(s.best_name().unwrap(), "running_mean");
        // Regime 2: a hard level shift the all-history mean never
        // recovers from, while last-value is exact.
        for _ in 0..600 {
            s.update(0.05);
        }
        assert_eq!(s.best_name().unwrap(), "last_value");
    }

    #[test]
    fn full_battery_tracks_constant_signal_exactly() {
        let mut s = AdaptiveSelector::new();
        for _ in 0..100 {
            s.update(0.42);
        }
        let p = s.forecast().unwrap();
        assert!((p - 0.42).abs() < 1e-9);
        assert!(s.best_error().unwrap() < 1e-9);
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut s = AdaptiveSelector::new();
        for _ in 0..10 {
            s.update(0.9);
        }
        s.reset();
        assert_eq!(s.forecast(), None);
        assert_eq!(s.samples_seen(), 0);
    }
}
