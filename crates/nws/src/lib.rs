#![warn(missing_docs)]

//! # nws — a Network Weather Service
//!
//! The AppLeS paper (§4.1) feeds its Information Pool from the Network
//! Weather Service: a facility that *senses* the current availability of
//! CPUs and network links and produces *short-term forecasts* of the
//! availability an application will actually experience in the time
//! frame it is scheduled (§3.2, §3.6).
//!
//! This crate reproduces the NWS design:
//!
//! * [`series::TimeSeries`] — timestamped measurement streams,
//! * [`sensor`] — CPU and link sensors that periodically sample a
//!   [`metasim`] system (seeing only the past, never the future),
//! * [`forecast`] — a suite of cheap predictors: last value, running
//!   mean, sliding-window mean/median, exponential smoothing, an
//!   adaptive-window mean, and an autoregressive model,
//! * [`selector::AdaptiveSelector`] — NWS's key idea: run every
//!   predictor in parallel, track each one's *postcast* error on the
//!   measurements as they arrive, and answer forecasts with the
//!   predictor that has been most accurate so far,
//! * [`service::WeatherService`] — the facade the scheduler queries.
//!
//! The paper's §3.6 warns that "a schedule is only as good as the
//! accuracy of its underlying predictions"; the `apples` crate's
//! ablation experiments quantify exactly that using this crate.

pub mod error;
pub mod forecast;
pub mod selector;
pub mod sensor;
pub mod series;
pub mod service;

pub use error::{mae, mean_error, rmse};
pub use selector::AdaptiveSelector;
pub use sensor::{CpuSensor, LinkSensor, Sensor};
pub use series::TimeSeries;
pub use service::{ResourceKey, WeatherService, WeatherServiceConfig};
