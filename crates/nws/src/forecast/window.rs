//! Windowed predictors: sliding mean, sliding median, and an
//! adaptive-window mean that re-selects its window size by trailing
//! error.

use super::Forecaster;
use std::collections::VecDeque;

/// Mean of the last `k` measurements.
#[derive(Debug, Clone)]
pub struct SlidingWindowMean {
    k: usize,
    buf: VecDeque<f64>,
    sum: f64,
}

impl SlidingWindowMean {
    /// A fresh sliding-mean predictor over `k` samples.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        // simlint: allow(panic-in-lib): documented `# Panics` constructor precondition
        assert!(k > 0, "window must be non-empty");
        SlidingWindowMean {
            k,
            buf: VecDeque::with_capacity(k),
            sum: 0.0,
        }
    }
}

impl Forecaster for SlidingWindowMean {
    fn name(&self) -> String {
        format!("sw_mean({})", self.k)
    }
    fn update(&mut self, value: f64) {
        self.buf.push_back(value);
        self.sum += value;
        if self.buf.len() > self.k {
            if let Some(evicted) = self.buf.pop_front() {
                self.sum -= evicted;
            }
        }
    }
    fn forecast(&self) -> Option<f64> {
        if self.buf.is_empty() {
            None
        } else {
            // Recompute from the buffer rather than trusting the rolling
            // sum alone: the rolling sum accumulates FP drift over long
            // streams. The buffer is short, so this is cheap.
            Some(self.buf.iter().sum::<f64>() / self.buf.len() as f64)
        }
    }
    fn reset(&mut self) {
        self.buf.clear();
        self.sum = 0.0;
    }
}

/// Median of the last `k` measurements. Robust to spikes (NWS found
/// median-based predictors strong on bursty network signals).
#[derive(Debug, Clone)]
pub struct SlidingWindowMedian {
    k: usize,
    buf: VecDeque<f64>,
}

impl SlidingWindowMedian {
    /// A fresh sliding-median predictor over `k` samples.
    ///
    /// # Panics
    /// Panics if `k == 0`.
    pub fn new(k: usize) -> Self {
        // simlint: allow(panic-in-lib): documented `# Panics` constructor precondition
        assert!(k > 0, "window must be non-empty");
        SlidingWindowMedian {
            k,
            buf: VecDeque::with_capacity(k),
        }
    }
}

impl Forecaster for SlidingWindowMedian {
    fn name(&self) -> String {
        format!("sw_median({})", self.k)
    }
    fn update(&mut self, value: f64) {
        self.buf.push_back(value);
        if self.buf.len() > self.k {
            self.buf.pop_front();
        }
    }
    fn forecast(&self) -> Option<f64> {
        if self.buf.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = self.buf.iter().copied().collect();
        v.sort_by(|a, b| a.total_cmp(b));
        let n = v.len();
        Some(if n % 2 == 1 {
            v[n / 2]
        } else {
            (v[n / 2 - 1] + v[n / 2]) / 2.0
        })
    }
    fn reset(&mut self) {
        self.buf.clear();
    }
}

/// A mean whose window size is itself chosen adaptively: the predictor
/// maintains one sliding mean per candidate window, tracks each
/// candidate's cumulative absolute one-step error, and forecasts with
/// the currently best candidate.
#[derive(Debug, Clone)]
pub struct AdaptiveWindowMean {
    candidates: Vec<SlidingWindowMean>,
    err: Vec<f64>,
}

impl AdaptiveWindowMean {
    /// A fresh adaptive-window predictor over the given candidate
    /// window sizes.
    ///
    /// # Panics
    /// Panics if `windows` is empty or contains a zero.
    pub fn new(windows: &[usize]) -> Self {
        // simlint: allow(panic-in-lib): documented `# Panics` constructor precondition
        assert!(!windows.is_empty(), "need at least one candidate window");
        AdaptiveWindowMean {
            candidates: windows.iter().map(|&k| SlidingWindowMean::new(k)).collect(),
            err: vec![0.0; windows.len()],
        }
    }

    /// The window size currently winning the error race.
    pub fn current_window(&self) -> usize {
        self.err
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| self.candidates[i].k)
            .unwrap_or(0)
    }
}

impl Forecaster for AdaptiveWindowMean {
    fn name(&self) -> String {
        let ks: Vec<String> = self.candidates.iter().map(|c| c.k.to_string()).collect();
        format!("adaptive_mean({})", ks.join(","))
    }
    fn update(&mut self, value: f64) {
        // Score each candidate's prediction against the new value
        // *before* folding the value in (a postcast).
        for (c, e) in self.candidates.iter().zip(self.err.iter_mut()) {
            if let Some(p) = c.forecast() {
                *e += (p - value).abs();
            }
        }
        for c in &mut self.candidates {
            c.update(value);
        }
    }
    fn forecast(&self) -> Option<f64> {
        let best = self
            .err
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.total_cmp(b.1))
            .map(|(i, _)| i)?;
        self.candidates[best].forecast()
    }
    fn reset(&mut self) {
        for c in &mut self.candidates {
            c.reset();
        }
        self.err.iter_mut().for_each(|e| *e = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sliding_mean_windows_correctly() {
        let mut f = SlidingWindowMean::new(3);
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            f.update(v);
        }
        // Window holds [3, 4, 5].
        assert_eq!(f.forecast(), Some(4.0));
    }

    #[test]
    fn sliding_mean_before_window_fills() {
        let mut f = SlidingWindowMean::new(10);
        f.update(2.0);
        f.update(4.0);
        assert_eq!(f.forecast(), Some(3.0));
    }

    #[test]
    fn sliding_median_is_robust_to_spikes() {
        let mut med = SlidingWindowMedian::new(5);
        let mut mean = SlidingWindowMean::new(5);
        for v in [0.5, 0.5, 0.5, 0.5, 100.0] {
            med.update(v);
            mean.update(v);
        }
        assert_eq!(med.forecast(), Some(0.5));
        assert!(mean.forecast().unwrap() > 10.0);
    }

    #[test]
    fn sliding_median_even_window() {
        let mut f = SlidingWindowMedian::new(4);
        for v in [1.0, 2.0, 3.0, 10.0] {
            f.update(v);
        }
        assert_eq!(f.forecast(), Some(2.5));
    }

    #[test]
    fn adaptive_window_prefers_short_window_after_level_shift() {
        let mut f = AdaptiveWindowMean::new(&[2, 64]);
        // Long stable period, then a level shift with persistence:
        // the short window recovers quickly, the long window lags, so
        // the short window accumulates less error.
        for _ in 0..64 {
            f.update(0.9);
        }
        for _ in 0..40 {
            f.update(0.1);
        }
        assert_eq!(f.current_window(), 2);
        let p = f.forecast().unwrap();
        assert!(
            (p - 0.1).abs() < 0.05,
            "adaptive mean should track the shift, got {p}"
        );
    }

    #[test]
    fn adaptive_window_prefers_long_window_on_noise() {
        // Alternating noise around 0.5: a long mean nails 0.5; the
        // 1-sample window predicts the previous (wrong) extreme.
        let mut f = AdaptiveWindowMean::new(&[1, 32]);
        for i in 0..200 {
            f.update(if i % 2 == 0 { 0.0 } else { 1.0 });
        }
        assert_eq!(f.current_window(), 32);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn zero_window_rejected() {
        SlidingWindowMean::new(0);
    }
}
