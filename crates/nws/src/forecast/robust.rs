//! Robust and trend-following predictors.

use super::Forecaster;
use std::collections::VecDeque;

/// Trimmed mean of the last `k` measurements: drop the `trim` largest
/// and `trim` smallest before averaging. Sits between the sliding mean
/// (trim 0) and the median (maximal trim) in outlier robustness.
#[derive(Debug, Clone)]
pub struct TrimmedMean {
    k: usize,
    trim: usize,
    buf: VecDeque<f64>,
}

impl TrimmedMean {
    /// A fresh trimmed-mean predictor.
    ///
    /// # Panics
    /// Panics if `k == 0` or `2 * trim >= k` (nothing left to average).
    pub fn new(k: usize, trim: usize) -> Self {
        // simlint: allow(panic-in-lib): documented `# Panics` constructor precondition
        assert!(k > 0, "window must be non-empty");
        // simlint: allow(panic-in-lib): documented `# Panics` constructor precondition
        assert!(
            2 * trim < k,
            "trim {trim} leaves nothing of a window of {k}"
        );
        TrimmedMean {
            k,
            trim,
            buf: VecDeque::with_capacity(k),
        }
    }
}

impl Forecaster for TrimmedMean {
    fn name(&self) -> String {
        format!("trimmed_mean({},{})", self.k, self.trim)
    }
    fn update(&mut self, value: f64) {
        self.buf.push_back(value);
        if self.buf.len() > self.k {
            self.buf.pop_front();
        }
    }
    fn forecast(&self) -> Option<f64> {
        if self.buf.is_empty() {
            return None;
        }
        let mut v: Vec<f64> = self.buf.iter().copied().collect();
        v.sort_by(|a, b| a.total_cmp(b));
        // Trim as much as the (possibly still-filling) window allows.
        let t = self.trim.min((v.len() - 1) / 2);
        let kept = &v[t..v.len() - t];
        Some(kept.iter().sum::<f64>() / kept.len() as f64)
    }
    fn reset(&mut self) {
        self.buf.clear();
    }
}

/// Linear-trend extrapolation: least-squares line over the last `k`
/// samples, evaluated one step ahead. Strong on ramping signals
/// (a machine's load climbing as users arrive), degrades to the mean
/// on flat ones.
#[derive(Debug, Clone)]
pub struct LinearTrend {
    k: usize,
    buf: VecDeque<f64>,
}

impl LinearTrend {
    /// A fresh trend predictor over `k` samples.
    ///
    /// # Panics
    /// Panics if `k < 2` (a line needs two points).
    pub fn new(k: usize) -> Self {
        // simlint: allow(panic-in-lib): documented `# Panics` constructor precondition
        assert!(k >= 2, "trend window needs at least 2 samples");
        LinearTrend {
            k,
            buf: VecDeque::with_capacity(k),
        }
    }
}

impl Forecaster for LinearTrend {
    fn name(&self) -> String {
        format!("linear_trend({})", self.k)
    }
    fn update(&mut self, value: f64) {
        self.buf.push_back(value);
        if self.buf.len() > self.k {
            self.buf.pop_front();
        }
    }
    fn forecast(&self) -> Option<f64> {
        let n = self.buf.len();
        if n == 0 {
            return None;
        }
        if n == 1 {
            return self.buf.front().copied();
        }
        // Least squares of y against x = 0..n; predict at x = n.
        let nf = n as f64;
        let sx = nf * (nf - 1.0) / 2.0;
        let sxx = (nf - 1.0) * nf * (2.0 * nf - 1.0) / 6.0;
        let sy: f64 = self.buf.iter().sum();
        let sxy: f64 = self
            .buf
            .iter()
            .enumerate()
            .map(|(i, &y)| i as f64 * y)
            .sum();
        let denom = nf * sxx - sx * sx;
        if denom.abs() < 1e-12 {
            return Some(sy / nf);
        }
        let slope = (nf * sxy - sx * sy) / denom;
        let intercept = (sy - slope * sx) / nf;
        Some(intercept + slope * nf)
    }
    fn reset(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trimmed_mean_ignores_spikes() {
        let mut f = TrimmedMean::new(5, 1);
        for v in [0.5, 0.5, 0.5, 0.5, 100.0] {
            f.update(v);
        }
        assert_eq!(f.forecast(), Some(0.5));
    }

    #[test]
    fn trimmed_mean_with_zero_trim_is_the_mean() {
        let mut f = TrimmedMean::new(4, 0);
        for v in [1.0, 2.0, 3.0, 4.0] {
            f.update(v);
        }
        assert_eq!(f.forecast(), Some(2.5));
    }

    #[test]
    fn trimmed_mean_partial_window_adapts_trim() {
        let mut f = TrimmedMean::new(9, 3);
        f.update(1.0);
        // One sample: trim clamps to 0.
        assert_eq!(f.forecast(), Some(1.0));
        f.update(5.0);
        assert_eq!(f.forecast(), Some(3.0));
    }

    #[test]
    #[should_panic(expected = "leaves nothing")]
    fn excessive_trim_rejected() {
        TrimmedMean::new(4, 2);
    }

    #[test]
    fn linear_trend_extrapolates_a_ramp_exactly() {
        let mut f = LinearTrend::new(8);
        for i in 0..8 {
            f.update(0.1 + 0.05 * i as f64);
        }
        let p = f.forecast().unwrap();
        let expect = 0.1 + 0.05 * 8.0;
        assert!(
            (p - expect).abs() < 1e-9,
            "predicted {p}, expected {expect}"
        );
    }

    #[test]
    fn linear_trend_on_flat_signal_is_the_level() {
        let mut f = LinearTrend::new(8);
        for _ in 0..8 {
            f.update(0.4);
        }
        assert!((f.forecast().unwrap() - 0.4).abs() < 1e-9);
    }

    #[test]
    fn linear_trend_single_sample_is_last_value() {
        let mut f = LinearTrend::new(4);
        f.update(0.7);
        assert_eq!(f.forecast(), Some(0.7));
    }

    #[test]
    fn linear_trend_beats_last_value_on_a_ramp() {
        use crate::forecast::LastValue;
        let mut trend = LinearTrend::new(8);
        let mut last = LastValue::new();
        let mut trend_err = 0.0;
        let mut last_err = 0.0;
        for i in 0..50 {
            let v = 0.01 * i as f64;
            if i > 8 {
                trend_err += (trend.forecast().unwrap() - v).abs();
                last_err += (last.forecast().unwrap() - v).abs();
            }
            trend.update(v);
            last.update(v);
        }
        assert!(trend_err < last_err);
    }

    #[test]
    fn resets_work() {
        let mut f = TrimmedMean::new(3, 0);
        f.update(9.0);
        f.reset();
        assert_eq!(f.forecast(), None);
        let mut g = LinearTrend::new(3);
        g.update(9.0);
        g.reset();
        assert_eq!(g.forecast(), None);
    }
}
