//! Autoregressive prediction.
//!
//! Fits a mean-centred AR(p) model to a sliding window of the
//! measurement stream by least squares and forecasts one step ahead.
//! When the window is too short or the normal equations are singular
//! (e.g. a constant signal), it falls back to the window mean, so the
//! predictor always degrades gracefully.

use super::Forecaster;
use std::collections::VecDeque;

/// AR(p) least-squares predictor over a sliding window.
#[derive(Debug, Clone)]
pub struct AutoRegressive {
    order: usize,
    window: usize,
    buf: VecDeque<f64>,
}

impl AutoRegressive {
    /// A fresh AR predictor.
    ///
    /// # Panics
    /// Panics if `order == 0` or `window < order + 2` (not enough data
    /// for even one regression row plus a residual degree of freedom).
    pub fn new(order: usize, window: usize) -> Self {
        // simlint: allow(panic-in-lib): documented `# Panics` constructor precondition
        assert!(order > 0, "AR order must be positive");
        // simlint: allow(panic-in-lib): documented `# Panics` constructor precondition
        assert!(
            window >= order + 2,
            "window {window} too small for AR({order})"
        );
        AutoRegressive {
            order,
            window,
            buf: VecDeque::with_capacity(window),
        }
    }

    /// Fit centred AR coefficients on the current buffer, returning
    /// `(mean, coeffs)` or `None` if the fit is not possible.
    fn fit(&self) -> Option<(f64, Vec<f64>)> {
        let p = self.order;
        let data: Vec<f64> = self.buf.iter().copied().collect();
        let n = data.len();
        if n < p + 2 {
            return None;
        }
        let mean = data.iter().sum::<f64>() / n as f64;
        let c: Vec<f64> = data.iter().map(|x| x - mean).collect();

        // Normal equations A a = b for rows t = p..n:
        //   y_t = sum_i a_i * c_{t-1-i}
        let rows = n - p;
        let mut a = vec![0.0; p * p];
        let mut b = vec![0.0; p];
        for t in p..n {
            for i in 0..p {
                let xi = c[t - 1 - i];
                b[i] += xi * c[t];
                for j in 0..p {
                    a[i * p + j] += xi * c[t - 1 - j];
                }
            }
        }
        // Ridge-free solve; bail out on singularity.
        let coeffs = solve_linear(&mut a, &mut b, p)?;
        let _ = rows;
        Some((mean, coeffs))
    }
}

/// Solve `A x = b` for a small dense system in place by Gaussian
/// elimination with partial pivoting. Returns `None` when the matrix is
/// numerically singular.
fn solve_linear(a: &mut [f64], b: &mut [f64], n: usize) -> Option<Vec<f64>> {
    debug_assert_eq!(a.len(), n * n);
    debug_assert_eq!(b.len(), n);
    for col in 0..n {
        // Partial pivot.
        let mut pivot_row = col;
        let mut pivot_val = a[col * n + col].abs();
        for r in (col + 1)..n {
            let v = a[r * n + col].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = r;
            }
        }
        if pivot_val < 1e-10 {
            return None;
        }
        if pivot_row != col {
            for k in 0..n {
                a.swap(col * n + k, pivot_row * n + k);
            }
            b.swap(col, pivot_row);
        }
        // Eliminate below.
        let pivot = a[col * n + col];
        for r in (col + 1)..n {
            let factor = a[r * n + col] / pivot;
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[r * n + k] -= factor * a[col * n + k];
            }
            b[r] -= factor * b[col];
        }
    }
    // Back substitution.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut acc = b[row];
        for k in (row + 1)..n {
            acc -= a[row * n + k] * x[k];
        }
        x[row] = acc / a[row * n + row];
    }
    Some(x)
}

impl Forecaster for AutoRegressive {
    fn name(&self) -> String {
        format!("ar({},{})", self.order, self.window)
    }

    fn update(&mut self, value: f64) {
        self.buf.push_back(value);
        if self.buf.len() > self.window {
            self.buf.pop_front();
        }
    }

    fn forecast(&self) -> Option<f64> {
        if self.buf.is_empty() {
            return None;
        }
        let data: Vec<f64> = self.buf.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        match self.fit() {
            Some((mu, coeffs)) => {
                let mut pred = 0.0;
                for (i, &ci) in coeffs.iter().enumerate() {
                    // coeff i multiplies the value i+1 steps back.
                    let idx = data.len() - 1 - i;
                    pred += ci * (data[idx] - mu);
                }
                Some(mu + pred)
            }
            None => Some(mean),
        }
    }

    fn reset(&mut self) {
        self.buf.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solve_linear_known_system() {
        // 2x + y = 5 ; x + 3y = 10  ⇒  x = 1, y = 3.
        let mut a = vec![2.0, 1.0, 1.0, 3.0];
        let mut b = vec![5.0, 10.0];
        let x = solve_linear(&mut a, &mut b, 2).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn solve_linear_needs_pivoting() {
        // Zero in the top-left forces a row swap.
        let mut a = vec![0.0, 1.0, 1.0, 0.0];
        let mut b = vec![2.0, 3.0];
        let x = solve_linear(&mut a, &mut b, 2).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_linear_detects_singularity() {
        let mut a = vec![1.0, 2.0, 2.0, 4.0];
        let mut b = vec![1.0, 2.0];
        assert!(solve_linear(&mut a, &mut b, 2).is_none());
    }

    #[test]
    fn constant_signal_falls_back_to_mean() {
        let mut f = AutoRegressive::new(2, 16);
        for _ in 0..16 {
            f.update(0.7);
        }
        let p = f.forecast().unwrap();
        assert!((p - 0.7).abs() < 1e-9);
    }

    #[test]
    fn learns_a_sinusoid_exactly() {
        // A sampled sinusoid satisfies the exact zero-mean AR(2)
        // recurrence x_t = 2·cos(ω)·x_{t-1} - x_{t-2}, so an AR(2) fit
        // should predict the next sample to numerical precision.
        let omega = 0.37;
        let mut f = AutoRegressive::new(2, 64);
        for t in 0..64 {
            f.update((omega * t as f64).sin());
        }
        let predicted = f.forecast().unwrap();
        let actual = (omega * 64.0).sin();
        // The window's sample mean is not exactly zero (incomplete
        // periods), so centring introduces a small bias; the fit is
        // near-exact rather than exact.
        assert!(
            (predicted - actual).abs() < 0.02,
            "predicted {predicted}, actual {actual}"
        );
    }

    #[test]
    fn learns_an_alternating_process() {
        // x_t = -x_{t-1} around a mean of 0.5: values 0.9, 0.1, 0.9, ...
        // AR(1) on the centred series has coefficient -1.
        let mut f = AutoRegressive::new(1, 32);
        for i in 0..32 {
            f.update(if i % 2 == 0 { 0.9 } else { 0.1 });
        }
        // Last value was 0.1 (i=31 odd), next is 0.9.
        let p = f.forecast().unwrap();
        assert!((p - 0.9).abs() < 1e-6, "predicted {p}");
    }

    #[test]
    fn too_little_data_falls_back_to_mean() {
        let mut f = AutoRegressive::new(2, 16);
        f.update(1.0);
        f.update(3.0);
        assert_eq!(f.forecast(), Some(2.0));
    }

    #[test]
    fn forecast_none_when_empty() {
        let f = AutoRegressive::new(1, 8);
        assert_eq!(f.forecast(), None);
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn window_must_cover_order() {
        AutoRegressive::new(4, 5);
    }
}
