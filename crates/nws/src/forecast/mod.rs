//! The forecaster suite.
//!
//! The Network Weather Service deliberately uses a family of *cheap*
//! predictors rather than one sophisticated model: resource-availability
//! signals switch regimes (a user logs in, a batch job starts), and
//! which predictor is best changes with the regime. Each predictor here
//! consumes a regularly-sampled measurement stream via [`Forecaster::update`]
//! and offers a one-step-ahead prediction via [`Forecaster::forecast`].
//!
//! [`crate::selector::AdaptiveSelector`] composes these into NWS's
//! "forecaster of forecasters".

mod ar;
mod basic;
mod robust;
mod window;

pub use ar::AutoRegressive;
pub use basic::{ExpSmoothing, LastValue, RunningMean};
pub use robust::{LinearTrend, TrimmedMean};
pub use window::{AdaptiveWindowMean, SlidingWindowMean, SlidingWindowMedian};

/// A one-step-ahead predictor over a regularly-sampled series.
///
/// Implementations are deterministic: the same update sequence always
/// yields the same forecasts.
pub trait Forecaster: Send {
    /// Short identifier, e.g. `"sw_mean(8)"`.
    fn name(&self) -> String;

    /// Feed the next measurement.
    fn update(&mut self, value: f64);

    /// Predict the next measurement; `None` until the predictor has
    /// seen enough history.
    fn forecast(&self) -> Option<f64>;

    /// Discard all history.
    fn reset(&mut self);
}

/// The standard NWS-style predictor battery, suitable for availability
/// signals in `[0, 1]` sampled every few seconds.
pub fn standard_suite() -> Vec<Box<dyn Forecaster>> {
    vec![
        Box::new(LastValue::new()),
        Box::new(RunningMean::new()),
        Box::new(SlidingWindowMean::new(4)),
        Box::new(SlidingWindowMean::new(16)),
        Box::new(SlidingWindowMean::new(64)),
        Box::new(SlidingWindowMedian::new(5)),
        Box::new(SlidingWindowMedian::new(21)),
        Box::new(ExpSmoothing::new(0.2)),
        Box::new(ExpSmoothing::new(0.6)),
        Box::new(AdaptiveWindowMean::new(&[4, 8, 16, 32, 64])),
        Box::new(AutoRegressive::new(2, 64)),
        Box::new(TrimmedMean::new(9, 2)),
        Box::new(LinearTrend::new(12)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_suite_has_distinct_names() {
        let suite = standard_suite();
        let mut names: Vec<String> = suite.iter().map(|f| f.name()).collect();
        names.sort();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate forecaster names");
    }

    #[test]
    fn every_member_converges_on_a_constant_signal() {
        for mut f in standard_suite() {
            for _ in 0..100 {
                f.update(0.5);
            }
            let p = f.forecast().expect("forecast after 100 updates");
            assert!(
                (p - 0.5).abs() < 1e-9,
                "{} predicted {p} for a constant 0.5 signal",
                f.name()
            );
        }
    }

    #[test]
    fn reset_clears_every_member() {
        for mut f in standard_suite() {
            for _ in 0..10 {
                f.update(0.9);
            }
            f.reset();
            // After reset, predictors should behave as if new-born:
            // feed a different constant and converge to it.
            for _ in 0..100 {
                f.update(0.1);
            }
            let p = f.forecast().unwrap();
            assert!(
                (p - 0.1).abs() < 1e-9,
                "{} failed to converge after reset: {p}",
                f.name()
            );
        }
    }
}
