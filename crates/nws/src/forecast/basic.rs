//! Memoryless and exponentially-weighted predictors.

use super::Forecaster;

/// Predicts the most recent measurement. Optimal when the signal is a
/// random walk; terrible on noisy mean-reverting signals.
#[derive(Debug, Clone, Default)]
pub struct LastValue {
    last: Option<f64>,
}

impl LastValue {
    /// A fresh last-value predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Forecaster for LastValue {
    fn name(&self) -> String {
        "last_value".into()
    }
    fn update(&mut self, value: f64) {
        self.last = Some(value);
    }
    fn forecast(&self) -> Option<f64> {
        self.last
    }
    fn reset(&mut self) {
        self.last = None;
    }
}

/// Predicts the mean of *all* history. Optimal for i.i.d. noise around
/// a fixed level; slow to react to regime changes.
#[derive(Debug, Clone, Default)]
pub struct RunningMean {
    sum: f64,
    n: u64,
}

impl RunningMean {
    /// A fresh running-mean predictor.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Forecaster for RunningMean {
    fn name(&self) -> String {
        "running_mean".into()
    }
    fn update(&mut self, value: f64) {
        self.sum += value;
        self.n += 1;
    }
    fn forecast(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.sum / self.n as f64)
        }
    }
    fn reset(&mut self) {
        self.sum = 0.0;
        self.n = 0;
    }
}

/// Exponential smoothing: `s ← α·x + (1-α)·s`. A tunable compromise
/// between last-value (α→1) and long-run mean (α→0).
#[derive(Debug, Clone)]
pub struct ExpSmoothing {
    alpha: f64,
    state: Option<f64>,
}

impl ExpSmoothing {
    /// A fresh smoother with the given smoothing factor.
    ///
    /// # Panics
    /// Panics unless `0 < alpha <= 1`.
    pub fn new(alpha: f64) -> Self {
        // simlint: allow(panic-in-lib): documented `# Panics` constructor precondition
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "smoothing factor must be in (0, 1], got {alpha}"
        );
        ExpSmoothing { alpha, state: None }
    }
}

impl Forecaster for ExpSmoothing {
    fn name(&self) -> String {
        format!("exp_smooth({})", self.alpha)
    }
    fn update(&mut self, value: f64) {
        self.state = Some(match self.state {
            None => value,
            Some(s) => self.alpha * value + (1.0 - self.alpha) * s,
        });
    }
    fn forecast(&self) -> Option<f64> {
        self.state
    }
    fn reset(&mut self) {
        self.state = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn last_value_tracks_input() {
        let mut f = LastValue::new();
        assert_eq!(f.forecast(), None);
        f.update(0.3);
        assert_eq!(f.forecast(), Some(0.3));
        f.update(0.9);
        assert_eq!(f.forecast(), Some(0.9));
    }

    #[test]
    fn running_mean_averages() {
        let mut f = RunningMean::new();
        assert_eq!(f.forecast(), None);
        for v in [1.0, 2.0, 3.0, 4.0] {
            f.update(v);
        }
        assert_eq!(f.forecast(), Some(2.5));
    }

    #[test]
    fn exp_smoothing_recursion() {
        let mut f = ExpSmoothing::new(0.5);
        f.update(1.0); // state = 1.0
        f.update(0.0); // state = 0.5
        f.update(0.0); // state = 0.25
        assert_eq!(f.forecast(), Some(0.25));
    }

    #[test]
    fn exp_smoothing_alpha_one_is_last_value() {
        let mut f = ExpSmoothing::new(1.0);
        f.update(0.2);
        f.update(0.8);
        assert_eq!(f.forecast(), Some(0.8));
    }

    #[test]
    #[should_panic(expected = "smoothing factor")]
    fn exp_smoothing_rejects_zero_alpha() {
        ExpSmoothing::new(0.0);
    }

    #[test]
    fn resets_forget_history() {
        let mut f = RunningMean::new();
        f.update(100.0);
        f.reset();
        assert_eq!(f.forecast(), None);
        f.update(2.0);
        assert_eq!(f.forecast(), Some(2.0));
    }
}
