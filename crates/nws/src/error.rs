//! Forecast-error metrics.

/// Mean absolute error between predictions and actuals.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn mae(predicted: &[f64], actual: &[f64]) -> f64 {
    check(predicted, actual);
    predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).abs())
        .sum::<f64>()
        / predicted.len() as f64
}

/// Root-mean-square error between predictions and actuals.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn rmse(predicted: &[f64], actual: &[f64]) -> f64 {
    check(predicted, actual);
    (predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| (p - a).powi(2))
        .sum::<f64>()
        / predicted.len() as f64)
        .sqrt()
}

/// Mean signed error (bias): positive means over-prediction.
///
/// # Panics
/// Panics if the slices differ in length or are empty.
pub fn mean_error(predicted: &[f64], actual: &[f64]) -> f64 {
    check(predicted, actual);
    predicted
        .iter()
        .zip(actual)
        .map(|(p, a)| p - a)
        .sum::<f64>()
        / predicted.len() as f64
}

fn check(predicted: &[f64], actual: &[f64]) {
    // simlint: allow(panic-in-lib): internal scorer invariant; both slices come from the same selector loop
    assert_eq!(
        predicted.len(),
        actual.len(),
        "prediction/actual length mismatch"
    );
    // simlint: allow(panic-in-lib): internal scorer invariant; the selector never scores an empty window
    assert!(!predicted.is_empty(), "no samples to score");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_predictions_score_zero() {
        let xs = [0.1, 0.5, 0.9];
        assert_eq!(mae(&xs, &xs), 0.0);
        assert_eq!(rmse(&xs, &xs), 0.0);
        assert_eq!(mean_error(&xs, &xs), 0.0);
    }

    #[test]
    fn known_errors() {
        let p = [1.0, 2.0];
        let a = [0.0, 4.0];
        assert_eq!(mae(&p, &a), 1.5);
        assert!((rmse(&p, &a) - (2.5f64).sqrt()).abs() < 1e-12);
        // Bias: (1 - 0 + 2 - 4)/2 = -0.5.
        assert_eq!(mean_error(&p, &a), -0.5);
    }

    #[test]
    fn rmse_penalizes_outliers_more_than_mae() {
        let p = [0.0, 0.0, 0.0, 0.0];
        let a = [0.0, 0.0, 0.0, 4.0];
        assert!(rmse(&p, &a) > mae(&p, &a));
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        mae(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    #[should_panic(expected = "no samples")]
    fn empty_panics() {
        rmse(&[], &[]);
    }
}
