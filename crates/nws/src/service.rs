//! The Weather Service facade.
//!
//! [`WeatherService`] owns one sensor and one [`AdaptiveSelector`] per
//! monitored resource. A simulation driver calls
//! [`WeatherService::advance`] as simulated time passes; the scheduler
//! calls [`WeatherService::forecast`] when it needs the predicted
//! availability of a CPU or link for the imminent scheduling window.

use crate::selector::AdaptiveSelector;
use crate::sensor::{CpuSensor, LinkSensor, Sensor};
use crate::series::TimeSeries;
use metasim::simtrace::{EventSink, NoopSink, TraceEvent};
use metasim::{HostId, LinkId, SimTime, Topology};
use std::collections::BTreeMap;

/// Identifies a monitored signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ResourceKey {
    /// CPU availability of a host.
    Cpu(HostId),
    /// Available-capacity fraction of a link.
    Link(LinkId),
}

/// Sampling configuration.
#[derive(Debug, Clone, Copy)]
pub struct WeatherServiceConfig {
    /// CPU sampling period.
    pub cpu_period: SimTime,
    /// Link sampling period.
    pub link_period: SimTime,
    /// Measurement-noise amplitude on CPU samples (uniform, clamped).
    pub cpu_noise: f64,
    /// Measurement-noise amplitude on link samples.
    pub link_noise: f64,
    /// Seed for the deterministic noise streams.
    pub noise_seed: u64,
}

impl Default for WeatherServiceConfig {
    fn default() -> Self {
        WeatherServiceConfig {
            cpu_period: SimTime::from_secs(5),
            link_period: SimTime::from_secs(5),
            cpu_noise: 0.0,
            link_noise: 0.0,
            noise_seed: 0,
        }
    }
}

/// A forecast with provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Forecast {
    /// Predicted value for the imminent window.
    pub value: f64,
    /// Decayed mean absolute error of the predictor that produced it —
    /// a confidence signal (lower is better).
    pub error: f64,
    /// Name of the winning predictor.
    pub method: String,
}

struct Monitored {
    sensor: Box<dyn Sensor>,
    selector: AdaptiveSelector,
    history: TimeSeries,
}

/// Lag-1 autocorrelation of a sample; `None` when variance vanishes.
fn lag1_autocorrelation(values: &[f64]) -> Option<f64> {
    let n = values.len();
    if n < 3 {
        return None;
    }
    let mean = values.iter().sum::<f64>() / n as f64;
    let var: f64 = values.iter().map(|v| (v - mean).powi(2)).sum();
    if var < 1e-15 {
        return None;
    }
    let cov: f64 = values
        .windows(2)
        .map(|w| (w[0] - mean) * (w[1] - mean))
        .sum();
    Some(cov / var)
}

/// Monitoring and forecasting for every resource in a topology.
///
/// ```
/// use metasim::host::HostSpec;
/// use metasim::load::LoadModel;
/// use metasim::net::{LinkSpec, TopologyBuilder};
/// use metasim::{HostId, SimTime};
/// use nws::{ResourceKey, WeatherService, WeatherServiceConfig};
///
/// let mut b = TopologyBuilder::new();
/// let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::ZERO));
/// b.add_host(HostSpec::workstation(
///     "ws", 20.0, 128.0, seg, LoadModel::Constant(0.5),
/// ));
/// let topo = b.instantiate(SimTime::from_secs(10_000), 0).unwrap();
///
/// let mut weather = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
/// weather.advance(&topo, SimTime::from_secs(300));
/// let f = weather.forecast(ResourceKey::Cpu(HostId(0))).unwrap();
/// assert!((f.value - 0.5).abs() < 1e-9);
/// ```
pub struct WeatherService {
    monitored: BTreeMap<ResourceKey, Monitored>,
    now: SimTime,
}

impl WeatherService {
    /// Build a service monitoring every host CPU and every link in the
    /// topology.
    pub fn for_topology(topo: &Topology, cfg: WeatherServiceConfig) -> Self {
        let mut monitored = BTreeMap::new();
        for host in topo.hosts() {
            monitored.insert(
                ResourceKey::Cpu(host.id),
                Monitored {
                    sensor: Box::new(CpuSensor::with_noise(
                        host.id,
                        cfg.cpu_period,
                        cfg.cpu_noise,
                        cfg.noise_seed,
                    )),
                    selector: AdaptiveSelector::new(),
                    history: TimeSeries::new(),
                },
            );
        }
        for link in topo.links() {
            monitored.insert(
                ResourceKey::Link(link.id),
                Monitored {
                    sensor: Box::new(LinkSensor::with_noise(
                        link.id,
                        cfg.link_period,
                        cfg.link_noise,
                        cfg.noise_seed,
                    )),
                    selector: AdaptiveSelector::new(),
                    history: TimeSeries::new(),
                },
            );
        }
        WeatherService {
            monitored,
            now: SimTime::ZERO,
        }
    }

    /// Advance monitoring to `now`: collect all due samples and feed
    /// the forecasters. Monotone in `now`; going backwards is a no-op
    /// for sensors that have already passed the requested time.
    pub fn advance(&mut self, topo: &Topology, now: SimTime) {
        self.advance_with_sink(topo, now, &mut NoopSink);
    }

    /// [`WeatherService::advance`], emitting one
    /// [`TraceEvent::ForecastIssued`] per resource that received at
    /// least one new sample: the prediction made *before* the new
    /// samples arrived, scored against the freshest observation — the
    /// forecast error the scheduler would have eaten had it decided
    /// just before this advance.
    pub fn advance_with_sink(&mut self, topo: &Topology, now: SimTime, sink: &mut dyn EventSink) {
        self.now = self.now.max(now);
        for (key, m) in self.monitored.iter_mut() {
            let predicted = if sink.enabled() {
                m.selector.forecast()
            } else {
                None
            };
            let mut last_observed = None;
            for (t, v) in m.sensor.poll(topo, now) {
                m.history.push(t, v);
                m.selector.update(v);
                last_observed = Some(v);
            }
            if sink.enabled() {
                if let (Some(predicted), Some(observed)) = (predicted, last_observed) {
                    let resource = match key {
                        ResourceKey::Cpu(h) => format!("cpu:{}", h.0),
                        ResourceKey::Link(l) => format!("link:{}", l.0),
                    };
                    sink.record(TraceEvent::ForecastIssued {
                        resource,
                        at: now,
                        predicted: predicted.clamp(0.0, 1.0),
                        observed,
                        error: m.selector.best_error().unwrap_or(f64::INFINITY),
                        method: m.selector.best_name().unwrap_or_default(),
                    });
                }
            }
        }
    }

    /// The time monitoring has advanced to.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Forecast the availability of a resource for the imminent window.
    pub fn forecast(&self, key: ResourceKey) -> Option<Forecast> {
        let m = self.monitored.get(&key)?;
        let value = m.selector.forecast()?;
        Some(Forecast {
            // Availability is a fraction; clamp model excursions.
            value: value.clamp(0.0, 1.0),
            error: m.selector.best_error().unwrap_or(f64::INFINITY),
            method: m.selector.best_name().unwrap_or_default(),
        })
    }

    /// Forecast the *mean* availability of a resource over the next
    /// `horizon` — the §3.2 requirement that predictions cover "the
    /// time frame in which the application will be scheduled".
    ///
    /// A one-step forecast is the best guess for the immediate future,
    /// but availability signals mean-revert: over horizons long
    /// compared to the signal's correlation time, the long-run mean is
    /// the better predictor of the *average*. Modelling the signal as
    /// an exponentially-correlated (AR(1)-like) process with
    /// correlation time `τ` estimated from the measured lag-1
    /// autocorrelation, the expected mean over `[now, now+h]` is
    ///
    /// ```text
    /// m + (f₁ - m) · (τ/h) · (1 - e^(−h/τ))
    /// ```
    ///
    /// where `f₁` is the one-step forecast and `m` the historical mean.
    pub fn forecast_mean_over(&self, key: ResourceKey, horizon: SimTime) -> Option<Forecast> {
        let m = self.monitored.get(&key)?;
        let one_step = self.forecast(key)?;
        let n = m.history.len();
        if n < 8 {
            return Some(one_step);
        }
        let values: Vec<f64> = m.history.tail(512).iter().map(|&(_, v)| v).collect();
        let mean = values.iter().sum::<f64>() / values.len() as f64;

        let sample_period = {
            let pts = m.history.tail(2);
            (pts[1].0 - pts[0].0).as_secs_f64()
        };
        let h = horizon.as_secs_f64();
        if h <= 0.0 || sample_period <= 0.0 {
            return Some(one_step);
        }

        let rho = match lag1_autocorrelation(&values) {
            Some(r) => r.clamp(0.0, 0.999_999),
            None => 0.0, // degenerate (constant) series: any weight works
        };
        // Correlation time from the lag-1 autocorrelation; white noise
        // (rho -> 0) gives tau -> 0 and the long-run mean wins.
        let weight = if rho <= 0.0 {
            0.0
        } else {
            let tau = -sample_period / rho.ln();
            (tau / h) * (1.0 - (-h / tau).exp())
        };
        let value = (mean + (one_step.value - mean) * weight).clamp(0.0, 1.0);
        Some(Forecast {
            value,
            error: one_step.error,
            method: format!("{} ⊕ mean (w={weight:.2})", one_step.method),
        })
    }

    /// The most recent measurement of a resource.
    pub fn current(&self, key: ResourceKey) -> Option<f64> {
        self.monitored
            .get(&key)
            .and_then(|m| m.history.last())
            .map(|(_, v)| v)
    }

    /// Full measurement history of a resource.
    pub fn history(&self, key: ResourceKey) -> Option<&TimeSeries> {
        self.monitored.get(&key).map(|m| &m.history)
    }

    /// Keys of every monitored resource.
    pub fn keys(&self) -> impl Iterator<Item = ResourceKey> + '_ {
        self.monitored.keys().copied()
    }

    /// Which predictor is currently winning for each resource, with its
    /// decayed error — a monitoring dashboard's worth of introspection.
    pub fn predictor_summary(&self) -> Vec<(ResourceKey, String, f64)> {
        self.monitored
            .iter()
            .filter_map(|(&key, m)| {
                let name = m.selector.best_name()?;
                let err = m.selector.best_error().unwrap_or(f64::INFINITY);
                Some((key, name, err))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use metasim::host::HostSpec;
    use metasim::load::LoadModel;
    use metasim::net::{LinkSpec, TopologyBuilder};

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    fn topo() -> Topology {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::shared(
            "seg",
            10.0,
            SimTime::ZERO,
            LoadModel::Constant(0.7),
        ));
        b.add_host(HostSpec::workstation(
            "a",
            10.0,
            64.0,
            seg,
            LoadModel::Constant(0.5),
        ));
        b.add_host(HostSpec::workstation(
            "b",
            20.0,
            64.0,
            seg,
            LoadModel::Constant(0.9),
        ));
        b.instantiate(s(10_000.0), 0).unwrap()
    }

    #[test]
    fn monitors_all_hosts_and_links() {
        let topo = topo();
        let ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        let keys: Vec<ResourceKey> = ws.keys().collect();
        assert_eq!(keys.len(), 3); // 2 CPUs + 1 link
    }

    #[test]
    fn forecast_converges_to_constant_availability() {
        let topo = topo();
        let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        ws.advance(&topo, s(500.0));
        let f = ws.forecast(ResourceKey::Cpu(HostId(0))).unwrap();
        assert!((f.value - 0.5).abs() < 1e-9);
        assert!(f.error < 1e-9);
        let fl = ws.forecast(ResourceKey::Link(LinkId(0))).unwrap();
        assert!((fl.value - 0.7).abs() < 1e-9);
    }

    #[test]
    fn no_forecast_before_any_samples() {
        let topo = topo();
        let ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        assert!(ws.forecast(ResourceKey::Cpu(HostId(0))).is_none());
    }

    #[test]
    fn unknown_key_yields_none() {
        let topo = topo();
        let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        ws.advance(&topo, s(100.0));
        assert!(ws.forecast(ResourceKey::Cpu(HostId(42))).is_none());
        assert!(ws.current(ResourceKey::Link(LinkId(9))).is_none());
    }

    #[test]
    fn advance_is_incremental_and_history_grows() {
        let topo = topo();
        let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        ws.advance(&topo, s(50.0));
        let n1 = ws.history(ResourceKey::Cpu(HostId(0))).unwrap().len();
        ws.advance(&topo, s(100.0));
        let n2 = ws.history(ResourceKey::Cpu(HostId(0))).unwrap().len();
        assert!(n2 > n1);
        // Re-advancing to an earlier time adds nothing.
        ws.advance(&topo, s(80.0));
        let n3 = ws.history(ResourceKey::Cpu(HostId(0))).unwrap().len();
        assert_eq!(n2, n3);
        assert_eq!(ws.now(), s(100.0));
    }

    #[test]
    fn current_reports_latest_measurement() {
        let topo = topo();
        let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        ws.advance(&topo, s(100.0));
        assert_eq!(ws.current(ResourceKey::Cpu(HostId(1))), Some(0.9));
    }

    #[test]
    fn predictor_summary_covers_every_resource() {
        let topo = topo();
        let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        ws.advance(&topo, s(200.0));
        let summary = ws.predictor_summary();
        assert_eq!(summary.len(), 3); // 2 CPUs + 1 link
        for (_, name, err) in summary {
            assert!(!name.is_empty());
            assert!(err < 1e-6, "constant signals should be nailed, err {err}");
        }
    }

    #[test]
    fn advance_with_sink_scores_forecasts_against_observations() {
        use metasim::simtrace::VecSink;
        let topo = topo();
        let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        let mut sink = VecSink::new();
        // First advance: no prior forecast exists, so nothing is scored.
        ws.advance_with_sink(&topo, s(100.0), &mut sink);
        assert!(sink.events.is_empty());
        // Second advance: one event per monitored resource.
        ws.advance_with_sink(&topo, s(200.0), &mut sink);
        assert_eq!(sink.events.len(), 3); // 2 CPUs + 1 link
        for e in &sink.events {
            match e {
                TraceEvent::ForecastIssued {
                    resource,
                    predicted,
                    observed,
                    error,
                    method,
                    ..
                } => {
                    assert!(resource.starts_with("cpu:") || resource.starts_with("link:"));
                    // Constant signals: prediction nails the observation.
                    assert!((predicted - observed).abs() < 1e-9);
                    assert!(*error < 1e-6);
                    assert!(!method.is_empty());
                }
                other => panic!("unexpected event {other:?}"),
            }
        }
    }

    #[test]
    fn lag1_autocorrelation_basics() {
        // Alternating series: strong negative lag-1 correlation.
        let alt: Vec<f64> = (0..100)
            .map(|i| if i % 2 == 0 { 0.0 } else { 1.0 })
            .collect();
        assert!(lag1_autocorrelation(&alt).unwrap() < -0.9);
        // Slow ramp: strong positive correlation.
        let ramp: Vec<f64> = (0..100).map(|i| i as f64 / 100.0).collect();
        assert!(lag1_autocorrelation(&ramp).unwrap() > 0.9);
        // Constant: undefined.
        assert!(lag1_autocorrelation(&[0.5; 50]).is_none());
        assert!(lag1_autocorrelation(&[0.1, 0.2]).is_none());
    }

    #[test]
    fn horizon_forecast_blends_toward_the_mean() {
        use metasim::load::LoadModel;
        // A persistent on/off signal whose current level differs from
        // its long-run mean.
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::ZERO));
        b.add_host(HostSpec::workstation(
            "flapper",
            10.0,
            64.0,
            seg,
            LoadModel::MarkovOnOff {
                idle_avail: 0.9,
                busy_avail: 0.1,
                mean_idle: SimTime::from_secs(120),
                mean_busy: SimTime::from_secs(120),
            },
        ));
        let topo = b.instantiate(s(1_000_000.0), 3).unwrap();
        let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        ws.advance(&topo, s(50_000.0));
        let key = ResourceKey::Cpu(HostId(0));

        let one_step = ws.forecast(key).unwrap().value;
        let short = ws.forecast_mean_over(key, s(5.0)).unwrap().value;
        let long = ws.forecast_mean_over(key, s(50_000.0)).unwrap().value;
        // The blend's anchor is the empirical mean of the recent
        // window (the realized mean wanders around the theoretical 0.5
        // over a finite window).
        let hist = ws.history(key).unwrap();
        let recent: Vec<f64> = hist.tail(512).iter().map(|&(_, v)| v).collect();
        let mean = recent.iter().sum::<f64>() / recent.len() as f64;

        // A short horizon stays near the one-step forecast; a long one
        // converges to the windowed mean.
        assert!(
            (short - one_step).abs() < (long - one_step).abs(),
            "short {short} should hug one-step {one_step}; long {long}"
        );
        assert!(
            (long - mean).abs() < 0.05,
            "long-horizon forecast {long} should approach the windowed mean {mean}"
        );
    }

    #[test]
    fn horizon_forecast_on_constant_signal_is_exact() {
        let topo = topo();
        let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        ws.advance(&topo, s(500.0));
        let f = ws
            .forecast_mean_over(ResourceKey::Cpu(HostId(0)), s(10_000.0))
            .unwrap();
        assert!((f.value - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tracking_a_changing_signal() {
        // Host availability drops at t=500; forecasts taken after the
        // drop should reflect it.
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::ZERO));
        b.add_host(HostSpec::workstation(
            "a",
            10.0,
            64.0,
            seg,
            LoadModel::Trace(vec![(s(0.0), 0.9), (s(500.0), 0.2)]),
        ));
        let topo = b.instantiate(s(10_000.0), 0).unwrap();
        let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        ws.advance(&topo, s(450.0));
        let before = ws.forecast(ResourceKey::Cpu(HostId(0))).unwrap().value;
        ws.advance(&topo, s(1500.0));
        let after = ws.forecast(ResourceKey::Cpu(HostId(0))).unwrap().value;
        assert!((before - 0.9).abs() < 0.05, "before drop: {before}");
        assert!((after - 0.2).abs() < 0.1, "after drop: {after}");
    }
}
