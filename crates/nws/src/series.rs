//! Timestamped measurement streams.

use metasim::SimTime;

/// An append-only series of `(time, value)` measurements with strictly
/// increasing timestamps.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TimeSeries {
    points: Vec<(SimTime, f64)>,
}

impl TimeSeries {
    /// An empty series.
    pub fn new() -> Self {
        Self::default()
    }

    /// Construct from existing points (must be strictly increasing).
    ///
    /// # Panics
    /// Panics if timestamps are not strictly increasing.
    pub fn from_points(points: Vec<(SimTime, f64)>) -> Self {
        for w in points.windows(2) {
            // simlint: allow(panic-in-lib): documented precondition; out-of-order points would corrupt every forecast
            assert!(
                w[0].0 < w[1].0,
                "TimeSeries timestamps must be strictly increasing"
            );
        }
        TimeSeries { points }
    }

    /// Append a measurement.
    ///
    /// # Panics
    /// Panics if `t` is not after the last timestamp.
    pub fn push(&mut self, t: SimTime, v: f64) {
        if let Some(&(last, _)) = self.points.last() {
            // simlint: allow(panic-in-lib): documented precondition; a non-monotonic push is a sensor logic bug
            assert!(t > last, "measurement at {t:?} not after {last:?}");
        }
        self.points.push((t, v));
    }

    /// All measurements.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// Values only, in time order.
    pub fn values(&self) -> impl Iterator<Item = f64> + '_ {
        self.points.iter().map(|&(_, v)| v)
    }

    /// Number of measurements.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// True when no measurements have been recorded.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The most recent measurement.
    pub fn last(&self) -> Option<(SimTime, f64)> {
        self.points.last().copied()
    }

    /// The last `k` values (or fewer if the series is shorter).
    pub fn tail(&self, k: usize) -> &[(SimTime, f64)] {
        let start = self.points.len().saturating_sub(k);
        &self.points[start..]
    }

    /// Export as `time_seconds,value` CSV lines (the same format
    /// [`metasim::tracefile::parse_trace`] ingests, so a measured
    /// series can be replayed as a load model).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.points.len() * 16);
        for &(t, v) in &self.points {
            out.push_str(&format!("{},{}\n", t.as_secs_f64(), v));
        }
        out
    }

    /// Parse a series back from [`TimeSeries::to_csv`] output.
    ///
    /// Returns a message naming the offending line on malformed input
    /// (including non-increasing timestamps).
    pub fn from_csv(text: &str) -> Result<TimeSeries, String> {
        let mut series = TimeSeries::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (t_str, v_str) = line
                .split_once(',')
                .ok_or_else(|| format!("line {}: missing comma", lineno + 1))?;
            let t: f64 = t_str
                .trim()
                .parse()
                .map_err(|_| format!("line {}: bad time {t_str:?}", lineno + 1))?;
            let v: f64 = v_str
                .trim()
                .parse()
                .map_err(|_| format!("line {}: bad value {v_str:?}", lineno + 1))?;
            let at = SimTime::from_secs_f64(t);
            if let Some((last, _)) = series.last() {
                if at <= last {
                    return Err(format!(
                        "line {}: timestamp {t} not after the previous sample",
                        lineno + 1
                    ));
                }
            }
            series.push(at, v);
        }
        Ok(series)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: u64) -> SimTime {
        SimTime::from_secs(x)
    }

    #[test]
    fn push_and_query() {
        let mut ts = TimeSeries::new();
        assert!(ts.is_empty());
        ts.push(s(1), 0.5);
        ts.push(s(2), 0.7);
        assert_eq!(ts.len(), 2);
        assert_eq!(ts.last(), Some((s(2), 0.7)));
        assert_eq!(ts.values().collect::<Vec<_>>(), vec![0.5, 0.7]);
    }

    #[test]
    #[should_panic(expected = "not after")]
    fn non_monotone_push_panics() {
        let mut ts = TimeSeries::new();
        ts.push(s(2), 0.5);
        ts.push(s(2), 0.6);
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn from_points_validates() {
        TimeSeries::from_points(vec![(s(2), 0.1), (s(1), 0.2)]);
    }

    #[test]
    fn csv_round_trips() {
        let ts = TimeSeries::from_points(vec![(s(1), 0.5), (s(2), 0.75), (s(10), 1.0)]);
        let csv = ts.to_csv();
        let back = TimeSeries::from_csv(&csv).unwrap();
        assert_eq!(ts, back);
    }

    #[test]
    fn from_csv_skips_comments_and_rejects_garbage() {
        let ok = TimeSeries::from_csv("# header\n1,0.5\n\n2,0.6\n").unwrap();
        assert_eq!(ok.len(), 2);
        assert!(TimeSeries::from_csv("1 0.5").is_err());
        assert!(TimeSeries::from_csv("1,abc").is_err());
        assert!(TimeSeries::from_csv("2,0.5\n1,0.5").is_err());
    }

    #[test]
    fn tail_returns_suffix() {
        let ts = TimeSeries::from_points(vec![(s(1), 1.0), (s(2), 2.0), (s(3), 3.0)]);
        assert_eq!(ts.tail(2), &[(s(2), 2.0), (s(3), 3.0)]);
        assert_eq!(ts.tail(10).len(), 3);
        assert_eq!(ts.tail(0).len(), 0);
    }
}
