//! Criterion bench for the simulator substrate itself: SPMD iteration
//! throughput and the fluid-flow transfer simulator under contention.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use metasim::exec::{simulate_spmd, simulate_workqueue, SpmdJob, SpmdPlacement, WorkQueueJob};
use metasim::host::HostSpec;
use metasim::load::LoadModel;
use metasim::net::{simulate_transfers, LinkSpec, TopologyBuilder, TransferReq};
use metasim::{HostId, SimTime, Topology};
use std::hint::black_box;

fn ring_topo(hosts: usize) -> Topology {
    let mut b = TopologyBuilder::new();
    let seg = b.add_segment(LinkSpec::shared(
        "seg",
        10.0,
        SimTime::from_millis(1),
        LoadModel::RandomWalk {
            start: 0.7,
            step: 0.05,
            interval: SimTime::from_secs(5),
            floor: 0.3,
            ceil: 1.0,
        },
    ));
    for i in 0..hosts {
        b.add_host(HostSpec::workstation(
            &format!("h{i}"),
            20.0,
            256.0,
            seg,
            LoadModel::RandomWalk {
                start: 0.6,
                step: 0.05,
                interval: SimTime::from_secs(5),
                floor: 0.2,
                ceil: 1.0,
            },
        ));
    }
    b.instantiate(SimTime::from_secs(100_000), 0).expect("topo")
}

fn bench_spmd(c: &mut Criterion) {
    let mut g = c.benchmark_group("spmd_ring_100_iterations");
    g.sample_size(10);
    for &k in &[4usize, 8, 16] {
        let topo = ring_topo(k);
        let job = SpmdJob {
            placements: (0..k)
                .map(|w| SpmdPlacement {
                    host: HostId(w),
                    work_mflop: 5.0,
                    resident_mb: 8.0,
                    sends: vec![((w + 1) % k, 0.05)],
                })
                .collect(),
            iterations: 100,
            start: SimTime::ZERO,
        };
        g.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, _| {
            b.iter(|| black_box(simulate_spmd(&topo, black_box(&job)).expect("run")));
        });
    }
    g.finish();
}

fn bench_flows(c: &mut Criterion) {
    let mut g = c.benchmark_group("fluid_flow_transfers");
    g.sample_size(10);
    for &flows in &[10usize, 100, 500] {
        let topo = ring_topo(8);
        let reqs: Vec<TransferReq> = (0..flows)
            .map(|i| TransferReq {
                from: HostId(i % 8),
                to: HostId((i + 3) % 8),
                mb: 5.0,
                start: SimTime::from_millis((i as u64) * 37),
                tag: i,
            })
            .collect();
        g.bench_with_input(BenchmarkId::from_parameter(flows), &flows, |b, _| {
            b.iter(|| black_box(simulate_transfers(&topo, black_box(&reqs)).expect("flows")));
        });
    }
    g.finish();
}

fn bench_workqueue(c: &mut Criterion) {
    let mut g = c.benchmark_group("workqueue_chunks");
    g.sample_size(10);
    let topo = ring_topo(8);
    for &chunks in &[100usize, 1000] {
        let job = WorkQueueJob {
            master: HostId(0),
            workers: (1..8).map(HostId).collect(),
            n_chunks: chunks,
            mflop_per_chunk: 10.0,
            mb_per_chunk: 0.01,
            result_mb_per_chunk: 0.001,
            resident_mb: 1.0,
            start: SimTime::ZERO,
        };
        g.bench_with_input(BenchmarkId::from_parameter(chunks), &chunks, |b, _| {
            b.iter(|| black_box(simulate_workqueue(&topo, black_box(&job)).expect("run")));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_spmd, bench_flows, bench_workqueue);
criterion_main!(benches);
