//! Criterion bench for the Figure 6 pipeline: one memory-aware trial
//! below and above the 3700×3700 spill point.

use apples_bench::fig6::run_trial;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_fig6(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_memory_trial");
    g.sample_size(10);
    for &n in &[3000usize, 4000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(run_trial(black_box(n), 10, 1996)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig6);
criterion_main!(benches);
