//! Criterion bench for the scheduling agent itself. §4's pitch is that
//! AppLeS performs the user's scheduling process "at machine speeds":
//! the full blueprint (filter → 255-subset exhaustive search → plan →
//! estimate → choose) must be cheap next to the runs it schedules.

use apples::coordinator::Coordinator;
use apples::info::InfoPool;
use apples::planner::plan_strip;
use apples::selector::{CandidateStrategy, ResourceSelector};
use apples_apps::jacobi2d::partition::jacobi_context;
use criterion::{criterion_group, criterion_main, Criterion};
use metasim::testbed::{pcl_sdsc, TestbedConfig};
use metasim::SimTime;
use nws::{WeatherService, WeatherServiceConfig};
use std::hint::black_box;

fn bench_agent(c: &mut Criterion) {
    let tb = pcl_sdsc(&TestbedConfig::default()).expect("testbed");
    let warmup = SimTime::from_secs(600);
    let mut ws = WeatherService::for_topology(&tb.topo, WeatherServiceConfig::default());
    ws.advance(&tb.topo, warmup);
    let (hat, user) = jacobi_context(2000, 100);
    let pool = InfoPool::with_nws(&tb.topo, &ws, &hat, &user, warmup);

    let mut g = c.benchmark_group("agent");
    g.bench_function("decide_exhaustive_255_subsets", |b| {
        let mut agent = Coordinator::new(hat.clone(), user.clone());
        agent.selector = ResourceSelector {
            strategy: CandidateStrategy::Exhaustive,
        };
        b.iter(|| black_box(agent.decide(black_box(&pool)).expect("decision")));
    });
    g.bench_function("decide_greedy_prefixes", |b| {
        let mut agent = Coordinator::new(hat.clone(), user.clone());
        agent.selector = ResourceSelector {
            strategy: CandidateStrategy::GreedyPrefixes,
        };
        b.iter(|| black_box(agent.decide(black_box(&pool)).expect("decision")));
    });
    let all_hosts = tb.workstations();
    g.bench_function("plan_strip_8_hosts", |b| {
        b.iter(|| black_box(plan_strip(black_box(&pool), black_box(&all_hosts)).expect("plan")));
    });
    g.finish();

    let mut g2 = c.benchmark_group("nws_service");
    g2.bench_function("advance_600s_of_samples", |b| {
        b.iter_batched(
            || WeatherService::for_topology(&tb.topo, WeatherServiceConfig::default()),
            |mut ws| {
                ws.advance(&tb.topo, warmup);
                black_box(ws)
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g2.finish();
}

criterion_group!(benches, bench_agent);
criterion_main!(benches);
