//! Criterion bench for the 3D-REACT pipeline simulation across unit
//! sizes (the §2.3 sweep's inner loop).

use apples_bench::react_exp::distributed_seconds;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn bench_react(c: &mut Criterion) {
    let mut g = c.benchmark_group("react_pipeline_run");
    g.sample_size(10);
    for &unit in &[1usize, 10, 130] {
        g.bench_with_input(BenchmarkId::from_parameter(unit), &unit, |b, &u| {
            b.iter(|| black_box(distributed_seconds(0, black_box(u))));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_react);
criterion_main!(benches);
