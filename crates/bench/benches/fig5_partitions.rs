//! Criterion bench for the Figure 5 pipeline: times one back-to-back
//! partition-comparison trial per strategy at a representative size.

use apples_bench::fig5::run_trial;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use metasim::testbed::LoadProfile;
use std::hint::black_box;

fn bench_fig5(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig5_partition_trial");
    g.sample_size(10);
    for &n in &[1000usize, 2000] {
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| black_box(run_trial(black_box(n), 20, 1996, LoadProfile::Moderate)));
        });
    }
    g.finish();
}

criterion_group!(benches, bench_fig5);
criterion_main!(benches);
