//! Criterion bench for the NWS forecaster suite: per-update cost of
//! each predictor and of the adaptive selector (NWS must run at sensor
//! rates, so per-update cost matters).

use apples_bench::nws_exp::{sample_signal, standard_signals};
use criterion::{criterion_group, criterion_main, Criterion};
use nws::forecast::standard_suite;
use nws::AdaptiveSelector;
use std::hint::black_box;

fn bench_forecasters(c: &mut Criterion) {
    let signal = &standard_signals()[0];
    let values = sample_signal(&signal.model, 10_000, 7);

    let mut g = c.benchmark_group("forecaster_stream");
    for f in standard_suite() {
        let name = f.name();
        g.bench_function(&name, |b| {
            b.iter_batched(
                || {
                    standard_suite()
                        .into_iter()
                        .find(|x| x.name() == name)
                        .expect("member")
                },
                |mut f| {
                    for &v in &values {
                        f.update(black_box(v));
                        black_box(f.forecast());
                    }
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    g.bench_function("adaptive_selector", |b| {
        b.iter_batched(
            AdaptiveSelector::new,
            |mut s| {
                for &v in &values {
                    s.update(black_box(v));
                    black_box(s.forecast());
                }
            },
            criterion::BatchSize::SmallInput,
        );
    });
    g.finish();
}

criterion_group!(benches, bench_forecasters);
criterion_main!(benches);
