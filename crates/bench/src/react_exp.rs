//! §2.3's 3D-REACT measurements: single-site vs distributed pipeline,
//! and the pipeline-size tradeoff.

use apples_apps::react3d::{
    casa_testbed, distributed_run, single_site_run, sweep_pipeline_sizes, CasaTestbed,
};
use metasim::SimTime;

/// The complete §2.3 experiment result.
#[derive(Debug, Clone)]
pub struct ReactResult {
    /// Single-site hours on the C90.
    pub c90_hours: f64,
    /// Single-site hours on the Paragon.
    pub paragon_hours: f64,
    /// Distributed hours at the best pipeline size.
    pub distributed_hours: f64,
    /// Best pipeline size (surface functions per subdomain).
    pub best_unit: usize,
    /// The full sweep: `(unit size, hours)`.
    pub sweep: Vec<(usize, f64)>,
    /// Speedup of the distributed run over the best single site.
    pub speedup: f64,
}

/// Unit sizes swept (the paper's subdomains held 5–20 surface
/// functions).
pub const UNIT_SIZES: &[usize] = &[1, 2, 5, 10, 20, 40, 65, 130, 260, 520];

/// Run the full experiment.
pub fn run(seed: u64) -> ReactResult {
    let tb: CasaTestbed = casa_testbed(seed).expect("casa testbed");
    const HOUR: f64 = 3600.0;

    let c90_hours = single_site_run(&tb, tb.c90).expect("c90").as_secs_f64() / HOUR;
    let paragon_hours = single_site_run(&tb, tb.paragon)
        .expect("paragon")
        .as_secs_f64()
        / HOUR;

    let sweep_secs = sweep_pipeline_sizes(&tb, UNIT_SIZES, 4).expect("sweep");
    let sweep: Vec<(usize, f64)> = sweep_secs.into_iter().map(|(u, s)| (u, s / HOUR)).collect();
    let &(best_unit, distributed_hours) = sweep
        .iter()
        .min_by(|a, b| a.1.total_cmp(&b.1))
        .expect("non-empty sweep");

    let best_single = c90_hours.min(paragon_hours);
    ReactResult {
        c90_hours,
        paragon_hours,
        distributed_hours,
        best_unit,
        sweep,
        speedup: best_single / distributed_hours,
    }
}

/// A single distributed run in seconds (for the Criterion bench).
pub fn distributed_seconds(seed: u64, unit: usize) -> f64 {
    let tb = casa_testbed(seed).expect("casa testbed");
    distributed_run(&tb, unit, 4)
        .expect("run")
        .makespan(SimTime::ZERO)
        .as_secs_f64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reproduces_the_papers_shape() {
        let r = run(0);
        assert!(r.c90_hours > 16.0, "C90: {:.1} h", r.c90_hours);
        assert!(r.paragon_hours > 16.0, "Paragon: {:.1} h", r.paragon_hours);
        assert!(
            r.distributed_hours < 5.0,
            "distributed: {:.2} h",
            r.distributed_hours
        );
        assert!(r.speedup > 3.0, "speedup {:.2}", r.speedup);
        assert!((2..=20).contains(&r.best_unit), "best unit {}", r.best_unit);
    }
}
