//! T-EST: predicted vs simulated execution time across random strip
//! schedules — a direct measurement of §3.6's "a schedule is only as
//! good as the accuracy of its underlying predictions".

use apples_bench::estimator_exp::run;
use apples_bench::table;

fn main() {
    let (samples, stats) = run(100, 2027);
    println!(
        "Performance Estimator calibration: {} random schedules on the\n\
         Figure 2 testbed, NWS-parameterized predictions vs simulation\n",
        samples.len()
    );
    println!("prediction/reality ratio distribution:");
    println!(
        "  median {:.3}   mean {:.3} ± {:.3}",
        stats.median, stats.mean, stats.std_dev
    );
    println!("  min    {:.3}   max  {:.3}\n", stats.min, stats.max);

    // A coarse histogram of the ratio.
    let buckets = [
        (0.0, 0.5),
        (0.5, 0.8),
        (0.8, 1.0),
        (1.0, 1.25),
        (1.25, 2.0),
        (2.0, f64::INFINITY),
    ];
    let rows: Vec<Vec<String>> = buckets
        .iter()
        .map(|&(lo, hi)| {
            let count = samples
                .iter()
                .filter(|s| s.ratio() >= lo && s.ratio() < hi)
                .count();
            let bar = "#".repeat(count.min(60));
            vec![
                if hi.is_infinite() {
                    format!(">= {lo}")
                } else {
                    format!("{lo} - {hi}")
                },
                format!("{count}"),
                bar,
            ]
        })
        .collect();
    println!("{}", table::render(&["ratio", "count", ""], &rows));
    println!(
        "Ratios above 1 are conservative predictions (model overestimates\n\
         cost); the §5 model charges each side of an exchange separately\n\
         while the simulator overlaps them, so a mild conservative bias\n\
         is expected and is harmless for *ranking* candidate schedules."
    );
}
