//! T-NWS: one-step-ahead forecast accuracy of the NWS predictor
//! battery and the adaptive selector, per signal class (§3.6: "a
//! schedule is only as good as the accuracy of its underlying
//! predictions").

use apples_bench::nws_exp::run;
use apples_bench::table;

fn main() {
    println!("NWS forecaster accuracy (one-step MAE, lower is better)\n");
    for row in run(100_000, 1996) {
        println!("signal: {}", row.signal);
        let best = row.scores[..row.scores.len() - 1]
            .iter()
            .map(|&(_, m)| m)
            .fold(f64::INFINITY, f64::min);
        let rows: Vec<Vec<String>> = row
            .scores
            .iter()
            .map(|(name, mae)| {
                let mark = if (*mae - best).abs() < 1e-12 {
                    "<- best individual"
                } else if name == "adaptive-selector" {
                    "<- selector"
                } else {
                    ""
                };
                vec![name.clone(), format!("{mae:.4}"), mark.into()]
            })
            .collect();
        println!("{}", table::render(&["predictor", "MAE", ""], &rows));
    }
    println!(
        "No single predictor wins every regime; the adaptive selector\n\
         tracks the best one per signal, which is the NWS design point."
    );
}
