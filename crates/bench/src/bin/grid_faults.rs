//! T-FAULT: "Figure 6 for a fleet" — aware-with-rescheduling vs blind
//! job streams under escalating host-crash rates.
//!
//! ```text
//! grid_faults [--arrival-rate R] [--duration SECS] [--seed N]
//!             [--rates C1,C2,...] [--mean-outage SECS] [--permanent F]
//!             [--max-attempts K] [--csv]
//! ```
//!
//! Each crash rate realizes one seeded fault schedule that both regimes
//! face unchanged; the aware regime detects revocations, retries with
//! backoff and reschedules remnant phases, while the blind regime gets
//! one attempt from its pre-fault snapshot. `--csv` emits one row per
//! (rate, regime). Same seed → same output, bit for bit.

use apples_bench::fault_exp::{fault_summary, fault_table, run_fault_sweep, FaultExpConfig};
use apples_grid::metrics::FleetMetrics;

fn usage() -> ! {
    eprintln!(
        "usage: grid_faults [--arrival-rate R] [--duration SECS] [--seed N]\n\
         \x20                  [--rates C1,C2,...] [--mean-outage SECS] [--permanent F]\n\
         \x20                  [--max-attempts K] [--csv]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = FaultExpConfig::default();
    let mut csv = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--arrival-rate" => cfg.rate_hz = parse(&take("--arrival-rate")),
            "--duration" => cfg.duration_secs = parse(&take("--duration")),
            "--seed" => cfg.seed = parse(&take("--seed")),
            "--rates" => {
                cfg.crash_rates = take("--rates")
                    .split(',')
                    .map(|s| parse::<f64>(s.trim()))
                    .collect();
            }
            "--mean-outage" => cfg.mean_outage_secs = parse(&take("--mean-outage")),
            "--permanent" => cfg.permanent_fraction = parse(&take("--permanent")),
            "--max-attempts" => cfg.max_attempts = parse(&take("--max-attempts")),
            "--csv" => csv = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    if cfg.rate_hz <= 0.0
        || cfg.duration_secs <= 0.0
        || cfg.crash_rates.is_empty()
        || cfg.crash_rates.iter().any(|r| !r.is_finite() || *r < 0.0)
        || cfg.mean_outage_secs <= 0.0
        || !(0.0..=1.0).contains(&cfg.permanent_fraction)
        || cfg.max_attempts == 0
    {
        eprintln!("arrival rate, duration, crash rates, outage and retry knobs must be sane");
        usage();
    }

    let trials = run_fault_sweep(&cfg);

    if csv {
        println!("{}", FleetMetrics::csv_header());
        for t in &trials {
            println!("{}", t.aware.csv_row(&format!("aware-{:.2}", t.crash_rate)));
            println!("{}", t.blind.csv_row(&format!("blind-{:.2}", t.crash_rate)));
        }
        return;
    }

    println!(
        "Poisson arrivals at {}/s for {} s, crashes escalating over {:?} per host-hour\n\
         (seed {}, mean outage {} s, {:.0}% permanent, aware retries up to {} attempts)\n",
        cfg.rate_hz,
        cfg.duration_secs,
        cfg.crash_rates,
        cfg.seed,
        cfg.mean_outage_secs,
        cfg.permanent_fraction * 100.0,
        cfg.max_attempts
    );
    println!("{}", fault_table(&trials));
    println!("{}", fault_summary(&trials));
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("could not parse {s:?}");
        usage()
    })
}
