//! T-FIXED: fixed-time (Gustafson) scaling — the largest Jacobi2D grid
//! each partitioning strategy finishes within a fixed wall-clock
//! budget on the non-dedicated testbed.

use apples_bench::fixed_time::{largest_grid_within, Strategy};
use apples_bench::table;

fn main() {
    let iterations = 60;
    println!(
        "Fixed-time scaling: largest grid finishing within the budget\n\
         ({iterations} iterations, moderate contention, seed 1996)\n"
    );
    let mut rows = Vec::new();
    for &budget in &[5.0f64, 15.0, 40.0] {
        let mut row = vec![format!("{budget:.0} s")];
        for strategy in [Strategy::Apples, Strategy::StaticStrip, Strategy::Blocked] {
            let n = largest_grid_within(strategy, budget, iterations, 1996);
            row.push(format!("{n}x{n}"));
        }
        rows.push(row);
    }
    println!(
        "{}",
        table::render(&["budget", "AppLeS", "static Strip", "HPF Blocked"], &rows)
    );
    println!(
        "Fixed-size speedup (Figure 5) and fixed-time scaling are two views\n\
         of the same gap: a ~2x throughput advantage buys a ~1.4x larger\n\
         grid edge in the same wall-clock budget (Gustafson, the paper's\n\
         reference [12])."
    );
}
