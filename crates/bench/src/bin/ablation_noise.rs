//! ABL-4: sensor-noise ablation — §3.6's "a schedule is only as good
//! as the accuracy of its underlying predictions", with measurement
//! noise as the control knob.

use apples_bench::ablation::noise_ablation;
use apples_bench::table;

fn main() {
    let (n, iters, trials) = (1400, 60, 5);
    println!(
        "Sensor-noise ablation: Jacobi2D {n}x{n}, {iters} iterations, {trials} trials;\n\
         uniform measurement error added to every CPU and link sample\n"
    );
    let rows = noise_ablation(n, iters, trials, 1996, &[0.0, 0.05, 0.1, 0.2, 0.4, 0.8]);
    let base = rows[0].1.mean;
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(noise, s)| {
            vec![
                format!("±{noise:.2}"),
                table::secs(s.mean),
                table::secs(s.std_dev),
                table::ratio(s.mean / base),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["noise", "mean s", "std s", "vs clean"], &table_rows)
    );
    println!(
        "Moderate noise is largely absorbed by the forecaster battery\n\
         (means and medians average it out); schedules only degrade\n\
         once the noise approaches the signal's own dynamic range."
    );
}
