//! Run every reproduction experiment at reduced size and print a
//! pass/fail checklist against the paper's claims — the one-command
//! smoke test of the whole repository.
//!
//! ```sh
//! cargo run --release -p apples-bench --bin reproduce_all
//! ```
//!
//! Full-size sweeps live in the individual figure binaries; this
//! driver trades precision for a few minutes of wall clock.

use apples_bench::{ablation, fig5, fig6, fixed_time, multi_agent, nile_exp, react_exp};
use metasim::testbed::LoadProfile;
use metasim::SimTime;

struct Check {
    name: &'static str,
    claim: &'static str,
    pass: bool,
    detail: String,
}

fn main() {
    let mut checks: Vec<Check> = Vec::new();

    // FIG5: AppLeS beats Strip and Blocked.
    {
        let r = fig5::run_trial(1200, 40, 1996, LoadProfile::Moderate);
        let strip_ratio = r.strip_s / r.apples_s;
        let blocked_ratio = r.blocked_s / r.apples_s;
        checks.push(Check {
            name: "FIG5",
            claim: "AppLeS beats Strip and Blocked by 2-8x",
            pass: strip_ratio > 1.5 && blocked_ratio > 2.0,
            detail: format!("strip {strip_ratio:.1}x, blocked {blocked_ratio:.1}x"),
        });
    }

    // FIG6: paging cliff past 3700^2; AppLeS smooth.
    {
        let below = fig6::run_trial(3000, 10, 1996);
        let above = fig6::run_trial(4200, 10, 1996);
        checks.push(Check {
            name: "FIG6",
            claim: "Blocked(SP-2) cliffs past 3700^2, AppLeS does not",
            pass: below.blocked_sp2_s < 2.0 * below.apples_s
                && above.blocked_sp2_s > 3.0 * above.apples_s,
            detail: format!(
                "ratio {:.2}x below, {:.2}x above",
                below.blocked_sp2_s / below.apples_s,
                above.blocked_sp2_s / above.apples_s
            ),
        });
    }

    // T-REACT: >16h single site, <5h distributed.
    {
        let r = react_exp::run(0);
        checks.push(Check {
            name: "T-REACT",
            claim: ">16 h on either machine alone, <5 h pipelined",
            pass: r.c90_hours > 16.0 && r.paragon_hours > 16.0 && r.distributed_hours < 5.0,
            detail: format!(
                "C90 {:.1} h, Paragon {:.1} h, distributed {:.1} h (unit {})",
                r.c90_hours, r.paragon_hours, r.distributed_hours, r.best_unit
            ),
        });
    }

    // T-NILE: skim decision crosses over with campaign length.
    {
        let rows = nile_exp::run(150_000, &[1, 16], 0);
        checks.push(Check {
            name: "T-NILE",
            claim: "remote for one run, skim for a long campaign",
            pass: !rows[0].skim && rows[1].skim,
            detail: format!(
                "1 run -> {}, 16 runs -> {}",
                if rows[0].skim { "skim" } else { "remote" },
                if rows[1].skim { "skim" } else { "remote" },
            ),
        });
    }

    // ABL-1: dynamic information beats static.
    {
        let rows = ablation::forecast_ablation(1000, 25, 3, 2024);
        let get = |name: &str| {
            rows.iter()
                .find(|(n, _)| *n == name)
                .map(|(_, s)| s.mean)
                .unwrap_or(f64::NAN)
        };
        let nws_t = get("nws");
        let static_t = get("static-nominal");
        checks.push(Check {
            name: "ABL-1",
            claim: "NWS-informed schedules beat static-nominal",
            pass: nws_t < static_t,
            detail: format!("nws {nws_t:.1}s vs static {static_t:.1}s"),
        });
    }

    // T-FIXED: AppLeS solves the largest fixed-time grid.
    {
        let a = fixed_time::largest_grid_within(fixed_time::Strategy::Apples, 8.0, 40, 1996);
        let s = fixed_time::largest_grid_within(fixed_time::Strategy::StaticStrip, 8.0, 40, 1996);
        checks.push(Check {
            name: "T-FIXED",
            claim: "largest fixed-time grid: AppLeS > static Strip",
            pass: a > s,
            detail: format!("AppLeS {a}^2 vs Strip {s}^2 in 8 s"),
        });
    }

    // T-MULTI: an aware probe beats a blind probe.
    {
        let gap = SimTime::from_secs(60);
        let mix: &[usize] = &[4000, 4000, 300];
        let aware = multi_agent::run_staged(1200, mix, 77, gap, multi_agent::Regime::Aware);
        let blind = multi_agent::run_staged(1200, mix, 77, gap, multi_agent::Regime::Blind);
        let (ap, bp) = (aware.last().unwrap().elapsed, blind.last().unwrap().elapsed);
        checks.push(Check {
            name: "T-MULTI",
            claim: "observing other agents' load pays off",
            pass: ap < bp,
            detail: format!("aware probe {ap:.0}s vs blind probe {bp:.0}s"),
        });
    }

    // Report.
    println!("Reproduction checklist (reduced sizes; see EXPERIMENTS.md for full runs)\n");
    let mut all = true;
    for c in &checks {
        all &= c.pass;
        println!(
            "[{}] {:8} {} — {}",
            if c.pass { "PASS" } else { "FAIL" },
            c.name,
            c.claim,
            c.detail
        );
    }
    println!(
        "\n{}",
        if all {
            "All reproduction checks passed."
        } else {
            "SOME CHECKS FAILED — see above."
        }
    );
    if !all {
        std::process::exit(1);
    }
}
