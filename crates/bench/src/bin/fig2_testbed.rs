//! FIG2: print the SDSC/PCL system configuration of Figure 2 —
//! hosts with nominal speeds, memories and sharing, and the shared
//! media joining them.

use apples_bench::table;
use metasim::testbed::{pcl_sdsc, TestbedConfig};
use metasim::SharingPolicy;

fn main() {
    let cfg = TestbedConfig {
        with_sp2: true,
        ..Default::default()
    };
    let tb = pcl_sdsc(&cfg).expect("testbed");

    println!("Figure 2: SDSC/PCL system configuration for Jacobi2D\n");

    let host_rows: Vec<Vec<String>> = tb
        .topo
        .hosts()
        .iter()
        .map(|h| {
            let sharing = match h.spec.sharing {
                SharingPolicy::TimeShared => "time-shared",
                SharingPolicy::SpaceShared { .. } => "dedicated",
            };
            let seg = tb
                .topo
                .segment_link(h.spec.segment)
                .and_then(|l| tb.topo.link(l).map(|l| l.spec.name.clone()))
                .unwrap_or_default();
            vec![
                h.spec.name.clone(),
                format!("{:.0}", h.spec.mflops),
                format!("{:.0}", h.spec.mem_mb),
                sharing.to_string(),
                seg,
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["host", "Mflop/s", "mem MB", "sharing", "segment"],
            &host_rows
        )
    );

    let link_rows: Vec<Vec<String>> = tb
        .topo
        .links()
        .iter()
        .map(|l| {
            vec![
                l.spec.name.clone(),
                format!("{:.2}", l.spec.bandwidth_mbps),
                format!("{:.1}", l.spec.latency.as_secs_f64() * 1e3),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["medium", "MB/s", "latency ms"], &link_rows)
    );
}
