//! FIG1: the organization of an AppLeS agent (the paper's Figure 1),
//! rendered from the *actual* types in this implementation so the
//! diagram cannot drift from the code. Each box names the Rust item
//! that realizes it.

fn main() {
    println!(
        r#"Figure 1: Organization of an AppLeS agent

                         +----------------------------+
                         |        Coordinator         |
                         |   apples::Coordinator      |
                         |  (decide = select > plan   |
                         |   > estimate > choose;     |
                         |   run = decide > actuate)  |
                         +-------------+--------------+
                                       |
        +---------------+--------------+--------------+----------------+
        |               |                             |                |
+-------+------+ +------+--------+           +--------+-------+ +------+-------+
|   Resource   | |    Planner    |           |  Performance   | |   Actuator   |
|   Selector   | | apples::      |           |   Estimator    | | apples::     |
| apples::     | |  planner      |           | apples::       | |  actuator    |
|  selector    | | (strip solve  |           |  estimator     | | (lowers the  |
| (filter +    | |  T_i=A_iP_i   |           | (cost models   | |  schedule    |
|  exhaustive/ | |  +C_i; pipe-  |           |  under the     | |  onto        |
|  greedy sets)| |  line sizing) |           |  user metric)  | |  metasim)    |
+------+-------+ +------+--------+           +--------+-------+ +------+-------+
       |                |                             |                |
       +----------------+--------------+--------------+----------------+
                                       |
                         +-------------+--------------+
                         |      Information Pool      |
                         |     apples::InfoPool       |
                         +-------------+--------------+
                                       |
       +---------------+---------------+---------------+---------------+
       |               |                               |               |
+------+-------+ +-----+---------+             +-------+------+ +------+-------+
|   Network    | | Heterogeneous |             |    Models    | |     User     |
|   Weather    | |  Application  |             | (estimator/  | |Specifications|
|   Service    | |   Template    |             |  planner     | | apples::     |
| nws::Weather | |  apples::Hat  |             |  cost models;|  |  UserSpec   |
|   Service    | | (stencil /    |             |  estimate_*  | | (metric,     |
| (sensors +   | |  pipeline /   |             |  functions)  | |  access,     |
|  adaptive    | |  task farm)   |             |              | |  preferences)|
|  forecasts)  | |               |             |              | |              |
+--------------+ +---------------+             +--------------+ +--------------+

Resource management substrate (the paper's Globus/Legion/PVM slot):
  metasim — hosts, shared networks, availability processes, executors.
"#
    );
}
