//! T-MULTI: several selfish AppLeS agents sharing the Figure 2
//! testbed — what §3's application-centric, uncoordinated scheduling
//! does when a short job arrives among long-running ones.

use apples_bench::multi_agent::{run_staged, Regime};
use apples_bench::table;
use metasim::SimTime;

fn main() {
    let n = 1400;
    // Three long jobs, then a short probe arriving mid-contention.
    let mix: &[usize] = &[6000, 6000, 6000, 400];
    let gap = SimTime::from_secs(60);
    println!(
        "3 long + 1 short Jacobi2D {n}x{n} jobs, submitted {} s apart\n",
        gap.as_secs_f64()
    );
    for (regime, label) in [(Regime::Blind, "blind"), (Regime::Aware, "aware")] {
        let outcomes = run_staged(n, mix, 1996, gap, regime);
        println!(
            "{label}: each agent decides {}",
            match regime {
                Regime::Blind => "from pristine pre-submission measurements",
                Regime::Aware => "from measurements that include earlier agents' load",
            }
        );
        let rows: Vec<Vec<String>> = outcomes
            .iter()
            .map(|o| {
                vec![
                    format!("{}", o.agent),
                    format!("{:.0}", o.start.as_secs_f64()),
                    table::secs(o.elapsed),
                    o.hosts.join(", "),
                ]
            })
            .collect();
        println!(
            "{}",
            table::render(&["agent", "t submit", "elapsed s", "hosts"], &rows)
        );
        println!(
            "probe (agent 3) elapsed: {:.2} s\n",
            outcomes.last().unwrap().elapsed
        );
    }
    println!(
        "No agent coordinates with any other; the aware probe's advantage\n\
         is purely from observation — \"other applications ... are\n\
         experienced by an individual application in terms of the\n\
         dynamically varying performance capability of ... resources\" (§3)."
    );
}
