//! FIG3: the AppLeS partitioning of Jacobi2D on the SDSC/PCL network —
//! the "non-intuitive" strip fractions the agent chooses once dynamic
//! load information is in play, for the paper's n = 2000 case.

use apples_bench::fig5::run_trial;
use apples_bench::table;
use metasim::testbed::LoadProfile;

fn main() {
    let n = 2000;
    println!("Figure 3: AppLeS partitioning of Jacobi2D (n = {n})\n");
    for seed in [1996u64, 1997, 1998] {
        let trial = run_trial(n, 50, seed, LoadProfile::Moderate);
        println!("load realization (seed {seed}):");
        let rows: Vec<Vec<String>> = trial
            .apples_fractions
            .iter()
            .map(|(name, frac)| {
                vec![
                    name.clone(),
                    format!("{:.1}%", frac * 100.0),
                    format!("{}", (frac * n as f64).round() as usize),
                ]
            })
            .collect();
        println!("{}", table::render(&["host", "fraction", "rows"], &rows));
    }
    println!(
        "Note how the fractions track *delivered* speed (nominal speed × \n\
         forecast availability), not nominal speed — and change with the\n\
         load realization. Compare Figure 4 (static fractions)."
    );
}
