//! T-WHATIF: application-centric capacity planning — which single
//! hardware upgrade most improves a Jacobi2D run on the Figure 2
//! testbed? (§1.2: adding technology to the pool should enhance the
//! performance of existing applications — this measures *which*
//! technology, for *this* application.)

use apples::whatif::{evaluate, standard_menu};
use apples_apps::jacobi2d::partition::jacobi_context;
use apples_bench::table;
use metasim::testbed::{pcl_sdsc, TestbedConfig};
use metasim::SimTime;
use nws::{WeatherService, WeatherServiceConfig};

fn main() {
    let tb = pcl_sdsc(&TestbedConfig::default()).expect("testbed");
    let now = SimTime::from_secs(600);
    let mut ws = WeatherService::for_topology(&tb.topo, WeatherServiceConfig::default());
    ws.advance(&tb.topo, now);
    let (hat, user) = jacobi_context(2000, 80);

    let menu = standard_menu(&tb.topo);
    let report = evaluate(&tb.topo, &ws, &hat, &user, now, &menu).expect("what-if");

    println!(
        "What-if: double one resource at a time (Jacobi2D 2000x2000, 80 iters)\n\
         baseline: {:.2} s\n",
        report.baseline_seconds
    );
    let rows: Vec<Vec<String>> = report
        .results
        .iter()
        .take(12)
        .map(|r| {
            vec![
                r.upgrade.describe(&tb.topo),
                table::secs(r.upgraded_seconds),
                table::ratio(r.speedup),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["upgrade", "new time", "speedup"], &rows)
    );
    println!(
        "The ranking is application-centric: it reflects where *this*\n\
         application's time actually goes under *current* contention,\n\
         not the hardware's nominal specs. Re-planning after each\n\
         hypothetical upgrade matters — a faster host earns a bigger\n\
         strip, it doesn't just run its old strip faster."
    );
}
