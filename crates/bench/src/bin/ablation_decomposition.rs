//! ABL-3: decomposition-shape ablation — the §5 user told the agent to
//! consider only strip decompositions; with a blocked cost model the
//! agent can search uniform block meshes too. This measures what the
//! strip restriction costs (or saves) on the paper's testbed.

use apples::info::InfoPool;
use apples_apps::jacobi2d::apples_stencil_schedule;
use apples_apps::jacobi2d::partition::{apples_blocked_decision, jacobi_context};
use apples_bench::table;
use metasim::exec::simulate_spmd;
use metasim::testbed::{pcl_sdsc, TestbedConfig};
use metasim::SimTime;
use nws::{WeatherService, WeatherServiceConfig};

fn main() {
    let warmup = SimTime::from_secs(600);
    println!("Decomposition-shape ablation: AppLeS strips vs AppLeS blocks\n");
    let mut rows = Vec::new();
    for &n in &[1000usize, 1500, 2000] {
        let mut strip_total = 0.0;
        let mut block_total = 0.0;
        let trials = 3;
        for trial in 0..trials {
            let tb = pcl_sdsc(&TestbedConfig {
                seed: 1996 + trial,
                ..Default::default()
            })
            .expect("testbed");
            let (hat, user) = jacobi_context(n, 60);
            let t = hat.as_stencil().expect("stencil");
            let mut ws = WeatherService::for_topology(&tb.topo, WeatherServiceConfig::default());
            ws.advance(&tb.topo, warmup);
            let pool = InfoPool::with_nws(&tb.topo, &ws, &hat, &user, warmup);

            let strip = apples_stencil_schedule(&pool).expect("strip plan");
            let strip_run =
                simulate_spmd(&tb.topo, &strip.to_spmd_job(t, warmup)).expect("strip run");
            strip_total += strip_run.makespan(warmup).as_secs_f64();

            let (blocked, _) = apples_blocked_decision(&pool).expect("blocked plan");
            let block_run =
                simulate_spmd(&tb.topo, &blocked.to_spmd_job(t, warmup)).expect("block run");
            block_total += block_run.makespan(warmup).as_secs_f64();
        }
        let strip_s = strip_total / trials as f64;
        let block_s = block_total / trials as f64;
        rows.push(vec![
            format!("{n}x{n}"),
            table::secs(strip_s),
            table::secs(block_s),
            table::ratio(block_s / strip_s),
        ]);
    }
    println!(
        "{}",
        table::render(
            &[
                "problem",
                "AppLeS strips s",
                "AppLeS blocks s",
                "blocks/strips"
            ],
            &rows
        )
    );
    println!(
        "Even with forecast-driven host selection, uniform blocks cannot\n\
         shape themselves to per-host speed — the shaped strips win,\n\
         which is why the paper's user preference for strips was sound\n\
         (though far less dramatic than the naive Blocked baseline of\n\
         Figure 5, which also ignored load in picking its hosts)."
    );
}
