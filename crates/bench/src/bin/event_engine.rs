//! T-SCALE: events/sec trajectory of the simulation core.
//!
//! ```text
//! event_engine [--hosts N[,N...]] [--topo SPEC]...
//!              [--jobs N[,N...]] [--seed N]
//!              [--out FILE] [--json] [--check FILE]
//! ```
//!
//! With no flags, runs the default decade sweep (10/10², 10²/10³,
//! 10³/10⁴ hosts/jobs) plus a generated 1024-host fat-tree point,
//! prints the table, and writes `BENCH_event_engine.json` to the
//! current directory. `--hosts` and `--jobs` take comma-separated
//! lists zipped into sweep points (a single `--jobs` value is reused
//! for every host count). `--topo` (repeatable — spec strings contain
//! commas) names a topology spec (`fat-tree:k=8`,
//! `clusters:clusters=16,segs=4,hosts=8`, ...) run on a generated
//! testbed instead of the synthetic fleet. `--json` prints the JSON
//! document to stdout instead of the table. `--check` validates an
//! existing results file and exits non-zero if it is missing or
//! malformed — the CI artifact gate.

use apples_bench::event_engine::{
    parse_results, run_sweep, run_topo_sweep, to_json, to_table, DEFAULT_SWEEP, DEFAULT_TOPO_SWEEP,
};

fn usage() -> ! {
    eprintln!(
        "usage: event_engine [--hosts N[,N...]] [--topo SPEC]... [--jobs N[,N...]]\n\
         \x20                   [--seed N] [--out FILE] [--json] [--check FILE]"
    );
    std::process::exit(2);
}

fn parse_list(s: &str, what: &str) -> Vec<usize> {
    s.split(',')
        .map(|p| {
            p.trim().parse().unwrap_or_else(|_| {
                eprintln!("bad {what} value: {p:?}");
                usage()
            })
        })
        .collect()
}

fn main() {
    let mut hosts: Vec<usize> = Vec::new();
    let mut topos: Vec<String> = Vec::new();
    let mut jobs: Vec<usize> = Vec::new();
    let mut seed: u64 = 42;
    let mut out = String::from("BENCH_event_engine.json");
    let mut json = false;
    let mut check: Option<String> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--hosts" => hosts = parse_list(&take("--hosts"), "host"),
            // Repeatable: spec strings contain commas themselves
            // (clusters:clusters=8,segs=4), so one flag per spec.
            "--topo" => topos.push(take("--topo")),
            "--jobs" => jobs = parse_list(&take("--jobs"), "job"),
            "--seed" => {
                seed = take("--seed").parse().unwrap_or_else(|_| {
                    eprintln!("bad seed");
                    usage()
                })
            }
            "--out" => out = take("--out"),
            "--json" => json = true,
            "--check" => check = Some(take("--check")),
            _ => usage(),
        }
    }

    if let Some(path) = check {
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("check failed: cannot read {path}: {e}");
                std::process::exit(1);
            }
        };
        match parse_results(&text) {
            Ok(points) => {
                eprintln!("{path}: {} valid sweep point(s)", points.len());
                return;
            }
            Err(e) => {
                eprintln!("check failed: {path}: {e}");
                std::process::exit(1);
            }
        }
    }

    // With no explicit selection, run the default fleet sweep plus the
    // default generated-topology points. Explicit --hosts/--topo run
    // exactly what was asked for.
    let defaults = hosts.is_empty() && topos.is_empty();
    let jobs_per_topo = jobs.first().copied().unwrap_or(10_000);
    let sweep: Vec<(usize, usize)> = if defaults {
        DEFAULT_SWEEP.to_vec()
    } else if hosts.is_empty() {
        Vec::new()
    } else {
        let jobs = if jobs.is_empty() {
            vec![1000; hosts.len()]
        } else if jobs.len() == 1 {
            vec![jobs[0]; hosts.len()]
        } else if jobs.len() == hosts.len() {
            jobs
        } else {
            eprintln!("--jobs must have 1 value or as many as --hosts");
            usage()
        };
        hosts.into_iter().zip(jobs).collect()
    };
    let topo_sweep: Vec<(&str, usize)> = if defaults {
        DEFAULT_TOPO_SWEEP.to_vec()
    } else {
        topos.iter().map(|s| (s.as_str(), jobs_per_topo)).collect()
    };

    let mut points = match run_sweep(&sweep, seed) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            std::process::exit(1);
        }
    };
    match run_topo_sweep(&topo_sweep, seed) {
        Ok(p) => points.extend(p),
        Err(e) => {
            eprintln!("topology sweep failed: {e}");
            std::process::exit(1);
        }
    }

    let doc = to_json(&points);
    if json {
        print!("{doc}");
    } else {
        print!("{}", to_table(&points));
    }
    if let Err(e) = std::fs::write(&out, &doc) {
        eprintln!("cannot write {out}: {e}");
        std::process::exit(1);
    }
    eprintln!("wrote {out}");
}
