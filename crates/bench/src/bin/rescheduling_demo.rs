//! RESCHED: §3.2's "redistribution of the application during
//! execution" — a one-shot AppLeS decision versus phase-wise
//! rescheduling, on a testbed whose load regime flips mid-run.

use apples::coordinator::Coordinator;
use apples::hat::jacobi2d_hat;
use apples::rescheduler::ReschedulingAgent;
use apples::user::UserSpec;
use apples_bench::table;
use metasim::host::HostSpec;
use metasim::load::LoadModel;
use metasim::net::{LinkSpec, TopologyBuilder};
use metasim::{SimTime, Topology};
use nws::{WeatherService, WeatherServiceConfig};

fn s(x: f64) -> SimTime {
    SimTime::from_secs_f64(x)
}

/// Four hosts; at t = 660 s the two that were idle become hammered and
/// vice versa.
fn regime_swap_topo() -> Topology {
    let mut b = TopologyBuilder::new();
    let seg = b.add_segment(LinkSpec::dedicated("seg", 12.5, SimTime::from_micros(500)));
    for i in 0..2 {
        b.add_host(HostSpec::workstation(
            &format!("early-idle-{i}"),
            30.0,
            1024.0,
            seg,
            LoadModel::Trace(vec![(s(0.0), 0.95), (s(660.0), 0.1)]),
        ));
    }
    for i in 0..2 {
        b.add_host(HostSpec::workstation(
            &format!("late-idle-{i}"),
            30.0,
            1024.0,
            seg,
            LoadModel::Trace(vec![(s(0.0), 0.1), (s(660.0), 0.95)]),
        ));
    }
    b.instantiate(s(1_000_000.0), 0).expect("topology")
}

fn main() {
    let n = 1600;
    let iterations = 600;
    let start = s(600.0);
    let topo = regime_swap_topo();
    let hat = jacobi2d_hat(n, iterations);
    let user = UserSpec::default();

    // One-shot: decide once at t=600 and ride it out.
    let mut ws1 = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
    ws1.advance(&topo, start);
    let one_shot = Coordinator::new(hat.clone(), user.clone());
    let (_, one_shot_report) = one_shot.run(&topo, &ws1, start).expect("one-shot run");

    // Adaptive: re-plan every 50 iterations, migrate when predicted
    // savings beat the data-movement cost.
    let mut ws2 = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
    let mut adaptive = ReschedulingAgent::new(Coordinator::new(hat, user));
    adaptive.policy.phase_iterations = 50;
    let report = adaptive
        .run_stencil(&topo, &mut ws2, start)
        .expect("adaptive run");

    println!(
        "Mid-execution rescheduling: Jacobi2D {n}x{n}, {iterations} iterations,\n\
         load regime flips at t = 660 s (run starts at t = 600 s)\n"
    );
    println!(
        "one-shot AppLeS:      {:>8.1} s",
        one_shot_report.elapsed_seconds
    );
    println!(
        "rescheduling AppLeS:  {:>8.1} s  ({} migration(s))\n",
        report.elapsed_seconds, report.migrations
    );

    let rows: Vec<Vec<String>> = report
        .phases
        .iter()
        .enumerate()
        .map(|(i, p)| {
            vec![
                format!("{i}"),
                format!("{:.0}", p.start.as_secs_f64()),
                format!("{}", p.iterations),
                table::secs(p.elapsed_seconds),
                if p.migrated {
                    format!("yes ({:.1} s)", p.migration_seconds)
                } else {
                    "".into()
                },
                format!("{}", p.hosts.len()),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "phase",
                "t start",
                "iters",
                "elapsed s",
                "migrated",
                "hosts"
            ],
            &rows
        )
    );
    println!(
        "speedup from rescheduling: {:.2}x",
        one_shot_report.elapsed_seconds / report.elapsed_seconds
    );
}
