//! FIG6: Jacobi2D execution-time averages with memory accounted for —
//! AppLeS over the full pool (two unloaded SP-2 nodes + loaded
//! workstations) versus an HPF Uniform/Blocked partition pinned to the
//! SP-2, which spills from memory beyond 3700×3700.
//!
//! Pass `--quick` for a reduced sweep.

use apples_bench::fig6::{run, Fig6Config};
use apples_bench::table;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let csv = std::env::args().any(|a| a == "--csv");
    let cfg = if quick {
        Fig6Config {
            sizes: vec![2000, 3500, 3800, 4500],
            iterations: 20,
            trials: 2,
            ..Default::default()
        }
    } else {
        Fig6Config::default()
    };

    let rows = run(&cfg);
    if csv {
        println!("n,apples_s,blocked_sp2_s,ratio,apples_hosts");
        for r in &rows {
            println!(
                "{},{:.4},{:.4},{:.4},{}",
                r.n,
                r.apples.mean,
                r.blocked_sp2.mean,
                r.blocked_sp2.mean / r.apples.mean,
                r.apples_hosts.len()
            );
        }
        return;
    }
    println!(
        "Figure 6: Jacobi2D with memory considered ({} trials/size, {} iterations)\n",
        cfg.trials, cfg.iterations
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{0}x{0}", r.n),
                table::secs(r.apples.mean),
                table::secs(r.blocked_sp2.mean),
                table::ratio(r.blocked_sp2.mean / r.apples.mean),
                format!("{}", r.apples_hosts.len()),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "problem",
                "AppLeS s",
                "Blocked(SP-2) s",
                "Blocked/AppLeS",
                "AppLeS hosts"
            ],
            &table_rows
        )
    );
    println!(
        "The SP-2 pair holds a 3700x3700 grid exactly; beyond that the\n\
         Blocked partition pages (\"a dramatic reduction in performance\")\n\
         while AppLeS \"locates available memory elsewhere in the resource\n\
         pool\" by widening the strip set."
    );
}
