//! ABL-2: resource-set search ablation — exhaustive subset enumeration
//! (the paper's §5 approach, feasible on 8 hosts) versus greedy
//! distance-ranked prefixes (what a larger pool requires).

use apples_bench::ablation::selection_trial;
use apples_bench::table;

fn main() {
    println!("Resource-set search ablation: Jacobi2D 1200x1200, 60 iterations\n");
    let mut rows = Vec::new();
    for seed in [1996u64, 1997, 1998, 1999, 2000] {
        let t = selection_trial(1200, 60, seed);
        rows.push(vec![
            format!("{seed}"),
            format!("{}", t.exhaustive_candidates),
            format!("{}", t.greedy_candidates),
            table::secs(t.exhaustive_s),
            table::secs(t.greedy_s),
            table::ratio(t.greedy_s / t.exhaustive_s),
        ]);
    }
    println!(
        "{}",
        table::render(
            &[
                "seed",
                "exh. sets",
                "greedy sets",
                "exh. s",
                "greedy s",
                "greedy/exh."
            ],
            &rows
        )
    );
    println!(
        "Greedy evaluates ~30x fewer candidate sets; the chosen schedule\n\
         is usually competitive because the ranking already encodes the\n\
         application's logical distance (3.3)."
    );
}
