//! T-NILE: the §2.1 skim-vs-remote tradeoff — the Site Manager
//! "compares the cost of skimming with a prediction of the reduction
//! in cost of event analysis when the data is local", and the right
//! answer flips as the analysis campaign lengthens.

use apples_bench::nile_exp::run;
use apples_bench::table;

fn main() {
    let events = 150_000;
    println!("CLEO/NILE event analysis: skim vs remote access ({events} events)\n");
    let rows = run(events, &[1, 2, 4, 8, 16, 32], 0);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{}", r.runs),
                if r.skim { "skim" } else { "remote" }.into(),
                table::secs(r.predicted_s),
                table::secs(r.alternative_s),
                table::secs(r.measured_s),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["runs", "decision", "predicted s", "alt s", "measured s"],
            &table_rows
        )
    );
    println!(
        "A single pass stays remote (skimming copies ~3x the bytes one\n\
         analysis reads); repeated passes amortize the skim and the Site\n\
         Manager switches to building a private local data set."
    );
}
