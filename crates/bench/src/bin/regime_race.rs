//! T-RACE: selfish AppLeS agents vs centralized EASY batch vs dynamic
//! fractional sharing, on identical seeded job streams.
//!
//! ```text
//! regime_race [--arrival-rate R] [--duration SECS] [--seed N]
//!             [--topos SPEC1,SPEC2,...] [--crash-rate C]
//!             [--mean-outage SECS] [--max-attempts K]
//! ```
//!
//! `--topos` takes comma-separated topogen specs; the empty entry (or
//! the word `figure-2`) means the paper's Figure-2 SDSC/PCL testbed.
//! Every regime on a row faces the same realized arrivals and the same
//! seeded fault schedule. Same seed → same report, bit for bit.

use apples_bench::regime_race::{render, run_race, split_topo_list, RaceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: regime_race [--arrival-rate R] [--duration SECS] [--seed N]\n\
         \x20                  [--topos SPEC1,SPEC2,...] [--crash-rate C]\n\
         \x20                  [--mean-outage SECS] [--max-attempts K]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = RaceConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--arrival-rate" => cfg.rate_hz = parse(&take("--arrival-rate")),
            "--duration" => cfg.duration_secs = parse(&take("--duration")),
            "--seed" => cfg.seed = parse(&take("--seed")),
            "--topos" => cfg.topos = split_topo_list(&take("--topos")),
            "--crash-rate" => cfg.crash_rate = parse(&take("--crash-rate")),
            "--mean-outage" => cfg.mean_outage_secs = parse(&take("--mean-outage")),
            "--max-attempts" => cfg.max_attempts = parse(&take("--max-attempts")),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    if cfg.rate_hz <= 0.0
        || cfg.duration_secs <= 0.0
        || cfg.topos.is_empty()
        || cfg.crash_rate < 0.0
        || cfg.mean_outage_secs <= 0.0
        || cfg.max_attempts == 0
    {
        eprintln!("arrival rate, duration, topologies, fault and retry knobs must be sane");
        usage();
    }

    println!(
        "T-RACE: Poisson arrivals at {}/s for {} s, seed {}, crashes {}/host-hour\n\
         (every regime faces the same realized stream and fault schedule)\n",
        cfg.rate_hz, cfg.duration_secs, cfg.seed, cfg.crash_rate
    );
    match run_race(&cfg) {
        Ok(trials) => println!("{}", render(&trials)),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("could not parse {s:?}");
        usage()
    })
}
