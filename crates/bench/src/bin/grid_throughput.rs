//! T-GRID: stream a multi-tenant workload through the shared testbed
//! and report fleet metrics.
//!
//! ```text
//! grid_throughput [--arrival-rate R] [--duration SECS] [--seed N]
//!                 [--trials T] [--max-in-flight K] [--csv] [--json]
//!                 [--trace FILE] [--metrics FILE]
//! ```
//!
//! `--csv` emits one machine-parseable row per trial (plus per-job
//! rows for single-trial runs); `--json` emits the fleet metrics of
//! each trial as one JSON object per line. Same seed → same output,
//! bit for bit. `--trace` re-runs the first trial with a [`WriterSink`]
//! attached and writes every structured event to FILE as JSONL;
//! `--metrics` does the same with a [`MetricsSink`] and writes a
//! Prometheus text-format snapshot.
//!
//! [`WriterSink`]: metasim::simtrace::WriterSink
//! [`MetricsSink`]: obsv::MetricsSink

use apples_bench::grid_exp::{
    fleet_table, run_trials, sweep_summary, utilization_table, GridExpConfig,
};
use apples_grid::metrics::{FleetMetrics, JobRecord};
use apples_grid::workload::{ArrivalProcess, JobMix, WorkloadConfig};
use apples_grid::{run, run_with_sink, GridConfig};
use metasim::simtrace::WriterSink;
use metasim::SimTime;

fn usage() -> ! {
    eprintln!(
        "usage: grid_throughput [--arrival-rate R] [--duration SECS] [--seed N]\n\
         \x20                      [--trials T] [--max-in-flight K] [--csv] [--json]\n\
         \x20                      [--trace FILE] [--metrics FILE]"
    );
    std::process::exit(2);
}

fn main() {
    let mut cfg = GridExpConfig::default();
    let mut csv = false;
    let mut json = false;
    let mut trace_path = String::new();
    let mut metrics_path = String::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--arrival-rate" => cfg.rate_hz = parse(&take("--arrival-rate")),
            "--duration" => cfg.duration_secs = parse(&take("--duration")),
            "--seed" => cfg.seed = parse(&take("--seed")),
            "--trials" => cfg.trials = parse(&take("--trials")),
            "--max-in-flight" => cfg.max_in_flight = parse(&take("--max-in-flight")),
            "--csv" => csv = true,
            "--trace" => trace_path = take("--trace"),
            "--metrics" => metrics_path = take("--metrics"),
            "--json" => json = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }
    if cfg.rate_hz <= 0.0 || cfg.duration_secs <= 0.0 || cfg.trials == 0 {
        eprintln!("arrival rate, duration and trials must be positive");
        usage();
    }

    let trials = run_trials(&cfg);

    if !trace_path.is_empty() {
        write_trace(&cfg, &trace_path);
    }
    if !metrics_path.is_empty() {
        write_metrics(&cfg, &metrics_path);
    }

    if json {
        for t in &trials {
            println!("{}", t.fleet.to_json());
        }
        return;
    }
    if csv {
        println!("{}", FleetMetrics::csv_header());
        for t in &trials {
            println!("{}", t.fleet.csv_row(&format!("seed-{}", t.seed)));
        }
        if cfg.trials == 1 {
            // Single trial: append the per-job records too.
            println!();
            println!("{}", JobRecord::csv_header());
            for r in single_trial_records(&cfg) {
                println!("{}", r.csv_row());
            }
        }
        return;
    }

    println!(
        "Poisson arrivals at {}/s for {} s on the Figure 2 testbed (seed {}, {} trial(s))\n",
        cfg.rate_hz, cfg.duration_secs, cfg.seed, cfg.trials
    );
    for t in &trials {
        println!("seed {}:", t.seed);
        println!("{}", fleet_table(&t.fleet));
        println!("{}", utilization_table(&t.fleet));
    }
    println!("{}", sweep_summary(&trials));
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("could not parse {s:?}");
        usage()
    })
}

/// Re-run the first trial to get its per-job records (the sweep only
/// keeps fleet metrics; determinism makes the re-run free of surprise).
fn single_trial_records(cfg: &GridExpConfig) -> Vec<JobRecord> {
    let (grid, workload) = first_trial_config(cfg);
    run(&grid, &workload).expect("grid stream").records
}

/// The service and workload configuration of the first trial.
fn first_trial_config(cfg: &GridExpConfig) -> (GridConfig, WorkloadConfig) {
    let grid = GridConfig {
        seed: cfg.seed,
        max_in_flight: cfg.max_in_flight,
        ..GridConfig::default()
    };
    let workload = WorkloadConfig {
        arrivals: ArrivalProcess::Poisson {
            rate_hz: cfg.rate_hz,
        },
        mix: JobMix::default_mix(),
        duration: SimTime::from_secs_f64(cfg.duration_secs),
        seed: cfg.seed,
        ..WorkloadConfig::default()
    };
    (grid, workload)
}

/// Re-run the first trial with a JSONL sink attached and write the
/// event stream to `path`.
fn write_trace(cfg: &GridExpConfig, path: &str) {
    let (grid, workload) = first_trial_config(cfg);
    let file = std::fs::File::create(path).unwrap_or_else(|e| {
        eprintln!("cannot create {path}: {e}");
        std::process::exit(2);
    });
    let mut sink = WriterSink::new(std::io::BufWriter::new(file));
    let result = run_with_sink(&grid, &workload, &mut sink);
    if let Some(e) = sink.take_error() {
        eprintln!("writing {path}: {e}");
        std::process::exit(2);
    }
    if let Err(e) = std::io::Write::flush(&mut sink.into_inner()) {
        eprintln!("flushing {path}: {e}");
        std::process::exit(2);
    }
    result.expect("grid stream");
    eprintln!("trace written to {path}");
}

/// Re-run the first trial with a metrics sink attached and write the
/// Prometheus exposition to `path`.
fn write_metrics(cfg: &GridExpConfig, path: &str) {
    let (grid, workload) = first_trial_config(cfg);
    let mut sink = obsv::MetricsSink::new();
    run_with_sink(&grid, &workload, &mut sink).expect("grid stream");
    if let Err(e) = std::fs::write(path, sink.registry().expose()) {
        eprintln!("cannot write {path}: {e}");
        std::process::exit(2);
    }
    eprintln!("metrics written to {path}");
}
