//! T-PRED: prediction (AppLeS static farm with NWS forecasts) versus
//! reaction (dynamic self-scheduling work queue) on the same
//! bag-of-events job, across network latencies and load volatilities.

use apples_bench::predict_react::{run_sweep, Volatility};
use apples_bench::table;

fn main() {
    let events = 100_000;
    let chunks = 2000;
    println!(
        "Prediction vs reaction: {events} events, 4 workers;\n\
         predictive = NWS-forecast one-shot allocation,\n\
         reactive   = {chunks}-chunk self-scheduling work queue\n"
    );
    let rows = run_sweep(events, chunks, 1996);
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            let winner = if r.predictive_s < r.reactive_s {
                "prediction"
            } else {
                "reaction"
            };
            vec![
                format!("{} ms", r.latency_ms),
                match r.volatility {
                    Volatility::Stable => "stable",
                    Volatility::Volatile => "volatile",
                }
                .into(),
                table::secs(r.predictive_s),
                table::secs(r.reactive_s),
                winner.into(),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["latency", "load", "predictive s", "reactive s", "winner"],
            &table_rows
        )
    );
    println!(
        "Reaction needs no forecasts but pays a round-trip per chunk and\n\
         only works for independent tasks; prediction pays nothing per\n\
         chunk but rides on forecast accuracy. AppLeS's niche (§3.3) is\n\
         exactly the left column's losses: wide-area, \"far\" resources\n\
         where chattiness is ruinous — plus every coupled application\n\
         (stencils, pipelines) where self-scheduling does not apply."
    );
}
