//! ABL-1: forecast-source ablation — the same AppLeS blueprint fed by
//! a perfect oracle, NWS forecasts, raw last measurements, and static
//! nominal speeds. Quantifies §3.6: prediction quality bounds schedule
//! quality.

use apples_bench::ablation::forecast_ablation;
use apples_bench::table;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let (n, iters, trials) = if quick { (1000, 30, 3) } else { (1600, 80, 5) };
    println!("Forecast-source ablation: Jacobi2D {n}x{n}, {iters} iterations, {trials} trials\n");
    let rows = forecast_ablation(n, iters, trials, 1996);
    let base = rows
        .iter()
        .find(|(name, _)| *name == "oracle")
        .map(|(_, s)| s.mean)
        .expect("oracle row");
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|(name, s)| {
            vec![
                name.to_string(),
                table::secs(s.mean),
                table::secs(s.std_dev),
                table::ratio(s.mean / base),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["source", "mean s", "std s", "vs oracle"], &table_rows)
    );
    println!(
        "static-nominal pays the full price of ignoring contention; the\n\
         oracle, NWS and last-value sources are within noise of each\n\
         other on slowly-drifting loads — §3.6's point in reverse: the\n\
         value is in having *any* accurate dynamic information, and the\n\
         forecaster only needs to beat the signal's drift rate."
    );
}
