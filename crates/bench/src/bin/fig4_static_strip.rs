//! FIG4: the non-uniform static strip partitioning of Jacobi2D —
//! computed at compile time from nominal CPU speeds alone, identical
//! for every load realization.

use apples_apps::jacobi2d::static_strip;
use apples_bench::table;
use metasim::testbed::{pcl_sdsc, TestbedConfig};

fn main() {
    let n = 2000;
    let tb = pcl_sdsc(&TestbedConfig::default()).expect("testbed");
    let sched = static_strip(&tb.topo, n, 1, &tb.workstations());

    println!("Figure 4: non-uniform static strip partitioning (n = {n})\n");
    let rows: Vec<Vec<String>> = sched
        .parts
        .iter()
        .map(|p| {
            let h = tb.topo.host(p.host).expect("host");
            vec![
                h.spec.name.clone(),
                format!("{:.0}", h.spec.mflops),
                format!("{:.1}%", p.rows as f64 / n as f64 * 100.0),
                format!("{}", p.rows),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(&["host", "nominal Mflop/s", "fraction", "rows"], &rows)
    );
    println!(
        "The fractions are proportional to nominal speed: the partition\n\
         is blind to contention, which Figure 5 shows costs 2-8x."
    );
}
