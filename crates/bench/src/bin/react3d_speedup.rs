//! T-REACT: the §2.3 3D-REACT measurements — ≥16 h on either machine
//! alone, <5 h distributed across the C90 + Paragon pipeline, and the
//! pipeline-size tradeoff.

use apples_bench::react_exp::run;
use apples_bench::table;

fn main() {
    let r = run(0);
    println!("3D-REACT (quantum reactive scattering, H + D2 => HD + D)\n");
    println!("single-site C90:      {:>7.2} h", r.c90_hours);
    println!("single-site Paragon:  {:>7.2} h", r.paragon_hours);
    println!(
        "distributed pipeline: {:>7.2} h  (pipeline size {} SF, speedup {:.1}x)\n",
        r.distributed_hours, r.best_unit, r.speedup
    );

    let depths = apples_apps::react3d::sweep_pipeline_depths(
        &apples_apps::react3d::casa_testbed(0).expect("testbed"),
        r.best_unit,
        &[1, 2, 4, 8],
    )
    .expect("depth sweep");
    println!(
        "pipeline-depth sweep at the best unit size ({} SF):",
        r.best_unit
    );
    let depth_rows: Vec<Vec<String>> = depths
        .iter()
        .map(|d| {
            vec![
                format!("{}", d.depth),
                format!("{:.2}", d.makespan_s / 3600.0),
                format!("{:.0}", d.producer_block_s),
                format!("{:.0}", d.consumer_stall_s),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &["depth", "hours", "producer blocked s", "consumer stalled s"],
            &depth_rows
        )
    );
    println!();

    println!("pipeline-size sweep (surface functions per subdomain):");
    let rows: Vec<Vec<String>> = r
        .sweep
        .iter()
        .map(|&(u, h)| {
            vec![
                format!("{u}"),
                format!("{h:.2}"),
                if u == r.best_unit {
                    "<- best".into()
                } else {
                    String::new()
                },
            ]
        })
        .collect();
    println!("{}", table::render(&["unit SF", "hours", ""], &rows));
    println!(
        "Paper (§2.3): both machines alone exceed 16 h; the distributed\n\
         platform finishes in just under 5 h; subdomains of 5-20 surface\n\
         functions balance stall (too small) against lost overlap and\n\
         buffering cost (too large)."
    );
}
