//! FIG5: execution-time averages for Jacobi2D under the AppLeS,
//! static Strip and HPF Uniform/Blocked partitionings, problem sizes
//! 1000×1000 – 2000×2000 on the non-dedicated testbed.
//!
//! Pass `--quick` for a reduced sweep (CI-friendly).

use apples_bench::fig5::{run, Fig5Config};
use apples_bench::table;

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let csv = std::env::args().any(|a| a == "--csv");
    let cfg = if quick {
        Fig5Config {
            sizes: vec![1000, 1500, 2000],
            iterations: 40,
            trials: 3,
            ..Default::default()
        }
    } else {
        Fig5Config::default()
    };

    let rows = run(&cfg);
    if csv {
        println!("n,apples_s,strip_s,blocked_s,strip_ratio,blocked_ratio");
        for r in &rows {
            println!(
                "{},{:.4},{:.4},{:.4},{:.4},{:.4}",
                r.n,
                r.apples.mean,
                r.strip.mean,
                r.blocked.mean,
                r.strip_ratio(),
                r.blocked_ratio()
            );
        }
        return;
    }
    println!(
        "Figure 5: Jacobi2D execution-time averages ({} trials/size, {} iterations)\n",
        cfg.trials, cfg.iterations
    );
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                format!("{0}x{0}", r.n),
                table::secs(r.apples.mean),
                table::secs(r.strip.mean),
                table::secs(r.blocked.mean),
                table::ratio(r.strip_ratio()),
                table::ratio(r.blocked_ratio()),
            ]
        })
        .collect();
    println!(
        "{}",
        table::render(
            &[
                "problem",
                "AppLeS s",
                "Strip s",
                "Blocked s",
                "Strip/AppLeS",
                "Blocked/AppLeS"
            ],
            &table_rows
        )
    );
    println!(
        "Paper: \"The AppLeS partition outperforms the Strip and Blocked\n\
         partitions by factors of 2-8 for problem sizes 1000x1000 - 2000x2000.\""
    );
}
