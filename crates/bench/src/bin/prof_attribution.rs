//! T-PROF: where do the simulated seconds go under each partitioning
//! strategy of the Figure-5 scenario?
//!
//! ```text
//! prof_attribution [--n N] [--iterations K] [--seed S] [--folded DIR]
//! ```
//!
//! Runs the three Figure-5 partitions (AppLeS, static Strip, HPF
//! Blocked) on the same warmed testbed with an event sink attached,
//! folds each trace with simprof, and prints the per-strategy
//! execution-time attribution (compute / border-exchange /
//! contention-wait shares). The paper's Figure 5 says AppLeS wins;
//! this says *why* — the static partitions burn their extra seconds
//! waiting, not computing. `--folded DIR` additionally writes one
//! flamegraph-compatible folded-stack file per strategy.

use apples::info::InfoPool;
use apples_apps::jacobi2d::partition::jacobi_context;
use apples_apps::jacobi2d::{apples_stencil_schedule, blocked_uniform, static_strip};
use metasim::exec::simulate_spmd_with_sink;
use metasim::simtrace::VecSink;
use metasim::testbed::{pcl_sdsc, LoadProfile, TestbedConfig};
use metasim::SimTime;
use nws::{WeatherService, WeatherServiceConfig};
use obsv::Profile;

fn usage() -> ! {
    eprintln!("usage: prof_attribution [--n N] [--iterations K] [--seed S] [--folded DIR]");
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("could not parse {s:?}");
        usage()
    })
}

fn main() {
    let mut n = 1400usize;
    let mut iterations = 100usize;
    let mut seed = 1996u64;
    let mut folded_dir = String::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut take = |name: &str| -> String {
            args.next().unwrap_or_else(|| {
                eprintln!("missing value for {name}");
                usage()
            })
        };
        match arg.as_str() {
            "--n" => n = parse(&take("--n")),
            "--iterations" => iterations = parse(&take("--iterations")),
            "--seed" => seed = parse(&take("--seed")),
            "--folded" => folded_dir = take("--folded"),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag: {other}");
                usage();
            }
        }
    }

    let warmup = SimTime::from_secs(600);
    let tb = pcl_sdsc(&TestbedConfig {
        profile: LoadProfile::Moderate,
        horizon: SimTime::from_secs(400_000),
        seed,
        with_sp2: false,
    })
    .expect("testbed");
    let workstations = tb.workstations();
    let (hat, user) = jacobi_context(n, iterations);
    let t = hat.as_stencil().expect("stencil HAT");

    let mut ws = WeatherService::for_topology(&tb.topo, WeatherServiceConfig::default());
    ws.advance(&tb.topo, warmup);
    let pool = InfoPool::with_nws(&tb.topo, &ws, &hat, &user, warmup);

    let apples = apples_stencil_schedule(&pool).expect("apples plan");
    let strip = static_strip(&tb.topo, n, iterations, &workstations);
    let blocked = blocked_uniform(n, iterations, &workstations);
    let jobs = [
        ("AppLeS", apples.to_spmd_job(t, warmup)),
        ("static-strip", strip.to_spmd_job(t, warmup)),
        ("hpf-blocked", blocked.to_spmd_job(t, warmup)),
    ];

    println!("Jacobi2D {n}x{n}, {iterations} iterations, seed {seed} (moderate profile):\n");
    println!(
        "{:<14} {:>10} {:>10} {:>17} {:>17}",
        "strategy", "makespan", "compute", "border-exchange", "contention-wait"
    );
    for (name, job) in &jobs {
        let mut sink = VecSink::new();
        let out = simulate_spmd_with_sink(&tb.topo, job, &mut sink).expect("spmd run");
        let profile = Profile::from_events(&sink.events);
        let shares = profile.exec_shares().expect("nonempty trace");
        println!(
            "{:<14} {:>9.2}s {:>9.1}% {:>16.1}% {:>16.1}%",
            name,
            out.makespan(warmup).as_secs_f64(),
            shares.compute * 100.0,
            shares.border_exchange * 100.0,
            shares.contention_wait * 100.0,
        );
        if !folded_dir.is_empty() {
            let path = format!("{folded_dir}/{name}.folded");
            if let Err(e) = std::fs::write(&path, profile.folded()) {
                eprintln!("cannot write {path}: {e}");
                std::process::exit(2);
            }
        }
    }
    if !folded_dir.is_empty() {
        eprintln!("folded stacks written to {folded_dir}/<strategy>.folded");
    }
}
