//! Plain-text table rendering for the figure binaries.

/// Render rows as a fixed-width table with a header and a rule.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), cols, "row width mismatch");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .zip(widths)
            .map(|(c, w)| format!("{c:>w$}"))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format seconds with 2 decimals.
pub fn secs(x: f64) -> String {
    format!("{x:.2}")
}

/// Format a ratio with 2 decimals and an `x` suffix.
pub fn ratio(x: f64) -> String {
    format!("{x:.2}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let t = render(
            &["n", "time"],
            &[
                vec!["1000".into(), "1.25".into()],
                vec!["20".into(), "333.00".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n') && lines[0].contains("time"));
        assert!(lines[2].ends_with("1.25"));
        assert!(lines[3].ends_with("333.00"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn mismatched_rows_panic() {
        render(&["a"], &[vec!["1".into(), "2".into()]]);
    }

    #[test]
    fn formatters() {
        assert_eq!(secs(1.234), "1.23");
        assert_eq!(ratio(7.891), "7.89x");
    }
}
