//! Prediction versus reaction.
//!
//! AppLeS bets on *prediction*: allocate once, guided by forecasts.
//! The classic alternative for independent-task work is *reaction*:
//! dynamic self-scheduling from a work queue, which needs no forecasts
//! but pays a request round-trip per chunk and cannot be used at all
//! for coupled computations (a stencil's strips are not a bag of
//! tasks). This experiment stages the two on the same bag-of-events
//! job across network latencies and load volatilities, mapping out
//! where each approach wins — the quantitative version of §3.3's
//! "close" and "far" resources.

use apples::actuator::actuate;
use apples::info::InfoPool;
use apples::user::UserSpec;
use apples::Schedule;
use apples_apps::nile::{cleo_analysis_hat, plan_farm};
use metasim::exec::{simulate_workqueue, WorkQueueJob};
use metasim::host::HostSpec;
use metasim::load::LoadModel;
use metasim::net::{LinkSpec, TopologyBuilder};
use metasim::{HostId, SimTime, Topology};
use nws::{WeatherService, WeatherServiceConfig};

/// Load volatility of the worker pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Volatility {
    /// Constant per-host availabilities: forecasts are near-perfect.
    Stable,
    /// Fast Markov on/off flapping: forecasts go stale quickly.
    Volatile,
}

/// One comparison point.
#[derive(Debug, Clone)]
pub struct PredictReactRow {
    /// One-way network latency between master and workers, ms.
    pub latency_ms: u64,
    /// Worker-load volatility.
    pub volatility: Volatility,
    /// Elapsed seconds for the AppLeS-style predictive static farm.
    pub predictive_s: f64,
    /// Elapsed seconds for the reactive self-scheduling work queue.
    pub reactive_s: f64,
}

fn build_topo(latency_ms: u64, volatility: Volatility, seed: u64) -> Topology {
    let mut b = TopologyBuilder::new();
    let seg = b.add_segment(LinkSpec::dedicated(
        "seg",
        12.5,
        SimTime::from_millis(latency_ms),
    ));
    b.add_host(HostSpec::dedicated("master", 25.0, 2048.0, seg));
    for i in 0..4 {
        let load = match volatility {
            Volatility::Stable => LoadModel::Constant([0.9, 0.6, 0.4, 0.8][i]),
            Volatility::Volatile => LoadModel::MarkovOnOff {
                idle_avail: 0.95,
                busy_avail: 0.1,
                mean_idle: SimTime::from_secs(40),
                mean_busy: SimTime::from_secs(40),
            },
        };
        b.add_host(HostSpec::workstation(
            &format!("w{i}"),
            30.0,
            512.0,
            seg,
            load,
        ));
    }
    b.instantiate(SimTime::from_secs(1_000_000), seed)
        .expect("topo")
}

/// Run one comparison point. `events` are analyzed either as an
/// AppLeS-planned static farm (forecast allocation, NWS-warmed) or as
/// a `chunks`-chunk self-scheduled work queue with identical totals.
pub fn run_point(
    latency_ms: u64,
    volatility: Volatility,
    events: u64,
    chunks: usize,
    seed: u64,
) -> PredictReactRow {
    let topo = build_topo(latency_ms, volatility, seed);
    let warmup = SimTime::from_secs(600);
    let workers: Vec<HostId> = (1..=4).map(HostId).collect();
    let master = HostId(0);
    let hat = cleo_analysis_hat(events);
    let user = UserSpec::default();
    let t = hat.as_task_farm().expect("farm");

    // Predictive: NWS-informed one-shot allocation.
    let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
    ws.advance(&topo, warmup);
    let pool = InfoPool::with_nws(&topo, &ws, &hat, &user, warmup);
    let farm = plan_farm(&pool, &workers, master, master).expect("farm plan");
    let predictive = actuate(&topo, &hat, &Schedule::Farm(farm), warmup)
        .expect("farm run")
        .elapsed_seconds;

    // Reactive: the same bytes and flops as a self-scheduled bag.
    let per_chunk_events = events as f64 / chunks as f64;
    let job = WorkQueueJob {
        master,
        workers: workers.clone(),
        n_chunks: chunks,
        mflop_per_chunk: per_chunk_events * t.mflop_per_event,
        mb_per_chunk: per_chunk_events * t.mb_per_event,
        result_mb_per_chunk: per_chunk_events * t.result_mb_per_event,
        resident_mb: per_chunk_events * t.mb_per_event,
        start: warmup,
    };
    let reactive = simulate_workqueue(&topo, &job)
        .expect("workqueue run")
        .makespan(warmup)
        .as_secs_f64();

    PredictReactRow {
        latency_ms,
        volatility,
        predictive_s: predictive,
        reactive_s: reactive,
    }
}

/// The full sweep used by the `predict_vs_react` binary.
pub fn run_sweep(events: u64, chunks: usize, seed: u64) -> Vec<PredictReactRow> {
    let mut rows = Vec::new();
    for &latency in &[1u64, 50, 300] {
        for &vol in &[Volatility::Stable, Volatility::Volatile] {
            rows.push(run_point(latency, vol, events, chunks, seed));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reaction_wins_under_volatile_load_on_a_lan() {
        let r = run_point(1, Volatility::Volatile, 100_000, 200, 11);
        assert!(
            r.reactive_s < r.predictive_s,
            "reactive {:.1}s vs predictive {:.1}s",
            r.reactive_s,
            r.predictive_s
        );
    }

    #[test]
    fn prediction_wins_when_round_trips_are_dear_and_load_is_stable() {
        let r = run_point(300, Volatility::Stable, 100_000, 200, 11);
        assert!(
            r.predictive_s < r.reactive_s,
            "predictive {:.1}s vs reactive {:.1}s",
            r.predictive_s,
            r.reactive_s
        );
    }

    #[test]
    fn sweep_covers_all_points() {
        let rows = run_sweep(20_000, 50, 3);
        assert_eq!(rows.len(), 6);
        for r in rows {
            assert!(r.predictive_s > 0.0 && r.reactive_s > 0.0);
        }
    }
}
