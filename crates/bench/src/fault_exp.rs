//! T-FAULT: "Figure 6 for a fleet" — fault-tolerant job streams under
//! escalating host-crash rates.
//!
//! The paper's Figure 6 shows the aware schedule surviving conditions
//! that break the blind one. Here the same contrast is run at fleet
//! scale: one seeded fault schedule crashes hosts mid-stream, and the
//! same workload is streamed twice —
//!
//! * **aware + rescheduling**: agents decide from live NWS forecasts,
//!   revoked placements retry with exponential backoff, and stencil
//!   jobs re-plan remnant phases on the survivors;
//! * **blind**: agents decide from the pristine pre-fault snapshot and
//!   each job gets a single attempt.
//!
//! Both regimes face the *identical* fault schedule (same grid seed),
//! so every completed-job gap is attributable to failure detection and
//! recovery, not luck.

use crate::table;
use apples_grid::metrics::FleetMetrics;
use apples_grid::workload::{ArrivalProcess, JobMix, RetryPolicy, WorkloadConfig};
use apples_grid::{run, FaultInjection, GridConfig, Regime};
use metasim::{FaultModel, SimTime};

/// Parameters of the fault sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultExpConfig {
    /// Mean Poisson arrival rate, jobs per second.
    pub rate_hz: f64,
    /// Submission-window length, seconds.
    pub duration_secs: f64,
    /// Seed for workload, testbed and fault realization.
    pub seed: u64,
    /// Host-crash rates to sweep, in crashes per host-hour.
    pub crash_rates: Vec<f64>,
    /// Mean recoverable-outage length, seconds.
    pub mean_outage_secs: f64,
    /// Fraction of crashes that are permanent.
    pub permanent_fraction: f64,
    /// Retry budget of the aware regime (the blind baseline always
    /// gets a single attempt).
    pub max_attempts: u32,
}

impl Default for FaultExpConfig {
    fn default() -> Self {
        FaultExpConfig {
            rate_hz: 0.01,
            duration_secs: 1800.0,
            seed: 1996,
            crash_rates: vec![0.0, 0.5, 1.0, 2.0, 4.0],
            mean_outage_secs: 600.0,
            permanent_fraction: 0.25,
            max_attempts: 4,
        }
    }
}

/// Both regimes' fleet metrics at one crash rate.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultTrial {
    /// Host crashes per host-hour.
    pub crash_rate: f64,
    /// Aware regime with rescheduling and retries.
    pub aware: FleetMetrics,
    /// Blind regime, single attempt per job.
    pub blind: FleetMetrics,
}

/// Stream the same workload through both regimes at each crash rate.
pub fn run_fault_sweep(cfg: &FaultExpConfig) -> Vec<FaultTrial> {
    cfg.crash_rates
        .iter()
        .map(|&crash_rate| {
            let faults = if crash_rate > 0.0 {
                FaultInjection::Random(FaultModel {
                    host_crashes_per_hour: crash_rate,
                    link_outages_per_hour: 0.0,
                    mean_outage: SimTime::from_secs_f64(cfg.mean_outage_secs),
                    permanent_fraction: cfg.permanent_fraction,
                })
            } else {
                FaultInjection::None
            };
            let grid = GridConfig {
                seed: cfg.seed,
                faults,
                ..GridConfig::default()
            };
            let workload = WorkloadConfig {
                arrivals: ArrivalProcess::Poisson {
                    rate_hz: cfg.rate_hz,
                },
                mix: JobMix::default_mix(),
                duration: SimTime::from_secs_f64(cfg.duration_secs),
                seed: cfg.seed,
                retry: RetryPolicy::with_attempts(cfg.max_attempts),
            };
            let aware = run(
                &GridConfig {
                    regime: Regime::Aware,
                    ..grid.clone()
                },
                &workload,
            )
            .expect("aware stream");
            let blind = run(
                &GridConfig {
                    regime: Regime::Blind,
                    ..grid.clone()
                },
                &WorkloadConfig {
                    retry: RetryPolicy::with_attempts(1),
                    ..workload.clone()
                },
            )
            .expect("blind stream");
            FaultTrial {
                crash_rate,
                aware: aware.fleet,
                blind: blind.fleet,
            }
        })
        .collect()
}

/// The sweep as a table: completions, failures and goodput per regime.
pub fn fault_table(trials: &[FaultTrial]) -> String {
    let rows: Vec<Vec<String>> = trials
        .iter()
        .map(|t| {
            vec![
                format!("{:.1}", t.crash_rate),
                format!("{}", t.aware.jobs),
                format!("{}", t.aware.jobs_completed),
                format!("{}", t.aware.jobs_failed),
                format!("{}", t.aware.jobs_rescheduled),
                format!("{:.3}", t.aware.goodput),
                format!("{}", t.blind.jobs_completed),
                format!("{}", t.blind.jobs_failed),
                format!("{:.3}", t.blind.goodput),
            ]
        })
        .collect();
    table::render(
        &[
            "crash/host-h",
            "jobs",
            "aware done",
            "aware fail",
            "aware resched",
            "aware goodput",
            "blind done",
            "blind fail",
            "blind goodput",
        ],
        &rows,
    )
}

/// One-line verdict for the sweep's highest crash rate.
pub fn fault_summary(trials: &[FaultTrial]) -> String {
    match trials.last() {
        Some(t) => format!(
            "at {:.1} crashes/host-hour: aware completes {}/{} (goodput {:.3}), \
             blind completes {}/{} (goodput {:.3})",
            t.crash_rate,
            t.aware.jobs_completed,
            t.aware.jobs,
            t.aware.goodput,
            t.blind.jobs_completed,
            t.blind.jobs,
            t.blind.goodput,
        ),
        None => "no trials".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aware_with_rescheduling_beats_blind_under_faults() {
        let cfg = FaultExpConfig {
            rate_hz: 0.008,
            duration_secs: 1500.0,
            crash_rates: vec![3.0],
            ..FaultExpConfig::default()
        };
        let trials = run_fault_sweep(&cfg);
        let t = &trials[0];
        assert_eq!(t.aware.jobs, t.blind.jobs, "same admitted stream");
        assert!(
            t.aware.jobs_completed > t.blind.jobs_completed,
            "aware {} vs blind {} completed: {}",
            t.aware.jobs_completed,
            t.blind.jobs_completed,
            fault_table(&trials),
        );
        assert!(t.aware.goodput >= t.blind.goodput);
        assert!(fault_table(&trials).contains("aware done"));
        assert!(fault_summary(&trials).contains("aware completes"));
    }

    #[test]
    fn no_faults_means_no_failures_in_either_regime() {
        let cfg = FaultExpConfig {
            rate_hz: 0.005,
            duration_secs: 900.0,
            crash_rates: vec![0.0],
            ..FaultExpConfig::default()
        };
        let t = &run_fault_sweep(&cfg)[0];
        assert_eq!(t.aware.jobs_failed, 0, "{:?}", t.aware);
        assert_eq!(t.blind.jobs_failed, 0, "{:?}", t.blind);
    }
}
