//! Multiple AppLeS agents sharing one system (§3).
//!
//! "Each user and/or application-developer schedules their application
//! so as to optimize their own performance criteria without regard to
//! the performance goals of other applications which share the system.
//! However, other applications create contention for shared resources,
//! and are experienced by an individual application in terms of the
//! dynamically varying performance capability of metacomputing system
//! resources."
//!
//! This experiment stages selfish agents submitting Jacobi2D jobs of
//! configurable lengths a minute apart, in two information regimes:
//!
//! * **aware** — each agent's Weather Service has observed the system
//!   *including the load imposed by the agents already running*, so
//!   later agents see busy hosts as slow and route around them;
//! * **blind** — every agent decides from the same pristine
//!   measurements (as if all submitted simultaneously), so they pile
//!   onto the same fast hosts and contend.
//!
//! The canonical scenario is a short *probe* job arriving while
//! long-running jobs occupy the fast hosts: the aware probe routes
//! around them; the blind probe piles on and crawls. (When contention
//! is *transient* relative to the arriving job, awareness can even
//! mislead — the NWS forecasts persistence — which is exactly the
//! §3.6 point that schedules are only as good as their predictions.)
//!
//! No coordination happens in either regime — the paper's point is
//! that accurate *observation* alone yields decent system behaviour
//! from purely application-centric decisions.
//!
//! The staging itself (admit → decide → actuate → impose) is the
//! general job-stream service of `apples-grid`; this module is a thin
//! wrapper fixing the workload shape to staged same-size Jacobi jobs.

use apples_grid::service::{run_jobs, GridConfig};
use apples_grid::workload::{JobKind, JobSpec};
use metasim::SimTime;

pub use apples_grid::service::Regime;

/// How one staged agent fared.
#[derive(Debug, Clone)]
pub struct AgentOutcome {
    /// Agent index (submission order).
    pub agent: usize,
    /// Submission time.
    pub start: SimTime,
    /// Host names the agent's schedule used.
    pub hosts: Vec<String>,
    /// Wall-clock seconds of the agent's run.
    pub elapsed: f64,
}

/// Stage one Jacobi2D job per entry of `iterations_per_agent`, `gap`
/// seconds apart, under the given information regime. Returns one
/// outcome per agent, in submission order.
pub fn run_staged(
    n: usize,
    iterations_per_agent: &[usize],
    seed: u64,
    gap: SimTime,
    regime: Regime,
) -> Vec<AgentOutcome> {
    let jobs: Vec<JobSpec> = iterations_per_agent
        .iter()
        .enumerate()
        .map(|(agent, &iterations)| JobSpec {
            id: agent,
            submit: SimTime::from_micros(gap.as_micros() * agent as u64),
            kind: JobKind::Jacobi { n, iterations },
        })
        .collect();
    let cfg = GridConfig {
        seed,
        regime,
        ..GridConfig::default()
    };
    let duration = SimTime::from_micros(gap.as_micros() * iterations_per_agent.len() as u64);
    let outcome = run_jobs(&cfg, &jobs, duration).expect("staged stream");
    outcome
        .records
        .into_iter()
        .map(|r| AgentOutcome {
            agent: r.id,
            start: r.start,
            hosts: r.hosts,
            elapsed: r.exec_seconds,
        })
        .collect()
}

/// Mean elapsed seconds across the staged agents.
pub fn mean_elapsed(outcomes: &[AgentOutcome]) -> f64 {
    outcomes.iter().map(|o| o.elapsed).sum::<f64>() / outcomes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three long jobs occupy the fast hosts; a short probe arrives.
    const PROBE_MIX: &[usize] = &[6000, 6000, 6000, 400];

    #[test]
    fn aware_probe_beats_blind_probe() {
        let gap = SimTime::from_secs(60);
        let aware = run_staged(1200, PROBE_MIX, 77, gap, Regime::Aware);
        let blind = run_staged(1200, PROBE_MIX, 77, gap, Regime::Blind);
        // The first agent is identical either way.
        assert!((aware[0].elapsed - blind[0].elapsed).abs() < 1e-6);
        // The probe (last agent) lands mid-contention: awareness must
        // pay off clearly.
        let aware_probe = aware.last().unwrap().elapsed;
        let blind_probe = blind.last().unwrap().elapsed;
        assert!(
            aware_probe < blind_probe,
            "aware probe {aware_probe:.1}s vs blind probe {blind_probe:.1}s"
        );
    }

    #[test]
    fn aware_probe_routes_around_the_long_jobs() {
        let gap = SimTime::from_secs(60);
        let aware = run_staged(1200, PROBE_MIX, 78, gap, Regime::Aware);
        let set = |hosts: &[String]| {
            let mut v = hosts.to_vec();
            v.sort();
            v
        };
        // The probe's host set must differ from the first long job's.
        assert_ne!(
            set(&aware[0].hosts),
            set(&aware.last().unwrap().hosts),
            "probe piled onto the long jobs' hosts"
        );
    }

    #[test]
    fn staging_is_deterministic() {
        let gap = SimTime::from_secs(300);
        let a = run_staged(1000, &[30, 30], 9, gap, Regime::Aware);
        let b = run_staged(1000, &[30, 30], 9, gap, Regime::Aware);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.elapsed, y.elapsed);
            assert_eq!(x.hosts, y.hosts);
        }
    }
}
