//! Multiple AppLeS agents sharing one system (§3).
//!
//! "Each user and/or application-developer schedules their application
//! so as to optimize their own performance criteria without regard to
//! the performance goals of other applications which share the system.
//! However, other applications create contention for shared resources,
//! and are experienced by an individual application in terms of the
//! dynamically varying performance capability of metacomputing system
//! resources."
//!
//! This experiment stages selfish agents submitting Jacobi2D jobs of
//! configurable lengths a minute apart, in two information regimes:
//!
//! * **aware** — each agent's Weather Service has observed the system
//!   *including the load imposed by the agents already running*, so
//!   later agents see busy hosts as slow and route around them;
//! * **blind** — every agent decides from the same pristine
//!   measurements (as if all submitted simultaneously), so they pile
//!   onto the same fast hosts and contend.
//!
//! The canonical scenario is a short *probe* job arriving while
//! long-running jobs occupy the fast hosts: the aware probe routes
//! around them; the blind probe piles on and crawls. (When contention
//! is *transient* relative to the arriving job, awareness can even
//! mislead — the NWS forecasts persistence — which is exactly the
//! §3.6 point that schedules are only as good as their predictions.)
//!
//! No coordination happens in either regime — the paper's point is
//! that accurate *observation* alone yields decent system behaviour
//! from purely application-centric decisions.

use apples::info::InfoPool;
use apples_apps::jacobi2d::apples_stencil_schedule;
use apples_apps::jacobi2d::partition::jacobi_context;
use apples::schedule::StencilSchedule;
use metasim::exec::simulate_spmd;
use metasim::testbed::{pcl_sdsc, LoadProfile, Testbed, TestbedConfig};
use metasim::{SimTime, Topology};
use nws::{WeatherService, WeatherServiceConfig};

/// How one staged agent fared.
#[derive(Debug, Clone)]
pub struct AgentOutcome {
    /// Agent index (submission order).
    pub agent: usize,
    /// Submission time.
    pub start: SimTime,
    /// Host names the agent's schedule used.
    pub hosts: Vec<String>,
    /// Wall-clock seconds of the agent's run.
    pub elapsed: f64,
}

/// Information regime for the staged agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Each agent observes the system as it is when it submits
    /// (including earlier agents' imposed load).
    Aware,
    /// Every agent decides from pristine pre-submission measurements.
    Blind,
}

/// Impose a finished run's CPU usage onto the topology: each used
/// host's availability is scaled by `(1 - utilization)` for the run's
/// duration, so later observers experience the contention.
fn impose_load(
    topo: &mut Topology,
    sched: &StencilSchedule,
    outcome: &metasim::exec::SpmdOutcome,
    start: SimTime,
) {
    let elapsed = outcome.finish.saturating_sub(start).as_secs_f64();
    if elapsed <= 0.0 {
        return;
    }
    for (w, part) in sched.parts.iter().enumerate() {
        let utilization = (outcome.compute_seconds[w] / elapsed).clamp(0.0, 1.0);
        let host = topo.host_mut(part.host).expect("host");
        let scaled = host
            .availability()
            .scaled_in_window(start, outcome.finish, 1.0 - utilization);
        host.set_availability(scaled);
    }
}

/// Stage one Jacobi2D job per entry of `iterations_per_agent`, `gap`
/// seconds apart, under the given information regime. Returns one
/// outcome per agent, in submission order.
pub fn run_staged(
    n: usize,
    iterations_per_agent: &[usize],
    seed: u64,
    gap: SimTime,
    regime: Regime,
) -> Vec<AgentOutcome> {
    let warmup = SimTime::from_secs(600);
    let tb: Testbed = pcl_sdsc(&TestbedConfig {
        profile: LoadProfile::Light,
        horizon: SimTime::from_secs(400_000),
        seed,
        with_sp2: false,
    })
    .expect("testbed");
    let mut topo = tb.topo.clone();

    // The blind regime's information snapshot is taken once, pristine.
    let mut pristine_ws = None;
    if regime == Regime::Blind {
        let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        ws.advance(&topo, warmup);
        pristine_ws = Some(ws);
    }

    let mut outcomes = Vec::with_capacity(iterations_per_agent.len());
    for (agent, &iterations) in iterations_per_agent.iter().enumerate() {
        let start = warmup + SimTime::from_micros(gap.as_micros() * agent as u64);
        let (hat, user) = jacobi_context(n, iterations);
        let t = hat.as_stencil().expect("stencil");
        let sched = match (&pristine_ws, regime) {
            (Some(ws), Regime::Blind) => {
                // Blind: decide from the pristine pre-submission view.
                let pool = InfoPool::with_nws(&tb.topo, ws, &hat, &user, warmup);
                apples_stencil_schedule(&pool).expect("blind plan")
            }
            _ => {
                // Aware: observe the *current* topology (with earlier
                // agents' load) up to this agent's submission time.
                let mut ws =
                    WeatherService::for_topology(&topo, WeatherServiceConfig::default());
                ws.advance(&topo, start);
                let pool = InfoPool::with_nws(&topo, &ws, &hat, &user, start);
                apples_stencil_schedule(&pool).expect("aware plan")
            }
        };
        let outcome =
            simulate_spmd(&topo, &sched.to_spmd_job(t, start)).expect("agent run");
        let hosts = sched
            .parts
            .iter()
            .map(|p| topo.host(p.host).expect("host").spec.name.clone())
            .collect();
        let elapsed = outcome.makespan(start).as_secs_f64();
        impose_load(&mut topo, &sched, &outcome, start);
        outcomes.push(AgentOutcome {
            agent,
            start,
            hosts,
            elapsed,
        });
    }
    outcomes
}

/// Mean elapsed seconds across the staged agents.
pub fn mean_elapsed(outcomes: &[AgentOutcome]) -> f64 {
    outcomes.iter().map(|o| o.elapsed).sum::<f64>() / outcomes.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Three long jobs occupy the fast hosts; a short probe arrives.
    const PROBE_MIX: &[usize] = &[6000, 6000, 6000, 400];

    #[test]
    fn aware_probe_beats_blind_probe() {
        let gap = SimTime::from_secs(60);
        let aware = run_staged(1200, PROBE_MIX, 77, gap, Regime::Aware);
        let blind = run_staged(1200, PROBE_MIX, 77, gap, Regime::Blind);
        // The first agent is identical either way.
        assert!((aware[0].elapsed - blind[0].elapsed).abs() < 1e-6);
        // The probe (last agent) lands mid-contention: awareness must
        // pay off clearly.
        let aware_probe = aware.last().unwrap().elapsed;
        let blind_probe = blind.last().unwrap().elapsed;
        assert!(
            aware_probe < blind_probe,
            "aware probe {aware_probe:.1}s vs blind probe {blind_probe:.1}s"
        );
    }

    #[test]
    fn aware_probe_routes_around_the_long_jobs() {
        let gap = SimTime::from_secs(60);
        let aware = run_staged(1200, PROBE_MIX, 78, gap, Regime::Aware);
        let set = |hosts: &[String]| {
            let mut v = hosts.to_vec();
            v.sort();
            v
        };
        // The probe's host set must differ from the first long job's.
        assert_ne!(
            set(&aware[0].hosts),
            set(&aware.last().unwrap().hosts),
            "probe piled onto the long jobs' hosts"
        );
    }

    #[test]
    fn staging_is_deterministic() {
        let gap = SimTime::from_secs(300);
        let a = run_staged(1000, &[30, 30], 9, gap, Regime::Aware);
        let b = run_staged(1000, &[30, 30], 9, gap, Regime::Aware);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.elapsed, y.elapsed);
            assert_eq!(x.hosts, y.hosts);
        }
    }
}
