//! T-RACE: three scheduling regimes race on identical seeded streams.
//!
//! The paper argues for application-level (selfish) scheduling; the
//! obvious rebuttals are a centralized batch queue and egalitarian
//! processor sharing. This harness races all three —
//! [`SchedRegime::Selfish`], [`SchedRegime::Batch`] (FCFS + EASY
//! backfilling on the AppLeS estimator's predictions) and
//! [`SchedRegime::Fractional`] (dynamic fractional sharing) — over
//! the *same* realized job stream, the same topology and the same
//! seeded fault schedule, across a set of generated topology
//! families.
//!
//! Reported per (topology, regime):
//!
//! * **stretch** — `(finish − submit) / dedicated_exec`, where the
//!   denominator is the job kind's execution time alone on the same
//!   (fault-free) topology. Stretch folds queue wait *and* contention
//!   into one application-centric number: 1.0 means "as if I had the
//!   system to myself".
//! * **slowdown** — the classic `(wait + exec) / exec` from the job
//!   records.
//! * **goodput** — completed jobs per hour under fault injection
//!   (failed jobs don't count), plus retry and backfill counts pulled
//!   from the `obsv` metrics families (`apples_job_retries_total`,
//!   `apples_backfills_total`).
//!
//! Everything is seeded: the same [`RaceConfig`] renders a
//! byte-identical report, which is what the CI determinism gate
//! checks.

use crate::table;
use apples_grid::workload::{
    ArrivalProcess, JobKind, JobMix, JobSpec, RetryPolicy, WorkloadConfig,
};
use apples_grid::{
    percentile, run_regime_jobs_with_sink, FaultInjection, GridConfig, GridError, SchedRegime,
};
use metasim::simtrace::NoopSink;
use metasim::topogen::TopoSpec;
use metasim::{FaultModel, SimTime};

/// Parameters of one race.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceConfig {
    /// Topology specs to race on (`""` means the Figure-2 SDSC/PCL
    /// testbed; anything else is parsed by [`TopoSpec::parse`]).
    pub topos: Vec<String>,
    /// Mean Poisson arrival rate, jobs per second.
    pub rate_hz: f64,
    /// Submission-window length, seconds.
    pub duration_secs: f64,
    /// Seed for workload, testbed and fault realization.
    pub seed: u64,
    /// Host crashes per host-hour (0 disables fault injection).
    pub crash_rate: f64,
    /// Mean recoverable-outage length, seconds.
    pub mean_outage_secs: f64,
    /// Retry budget shared by every regime.
    pub max_attempts: u32,
}

impl Default for RaceConfig {
    fn default() -> Self {
        RaceConfig {
            topos: vec![
                String::new(),
                "tree:hosts=16,arity=2,per_seg=4".into(),
                "clusters:clusters=2,segs=2,hosts=4".into(),
            ],
            rate_hz: 0.01,
            duration_secs: 1800.0,
            seed: 1996,
            crash_rate: 1.0,
            mean_outage_secs: 600.0,
            max_attempts: 3,
        }
    }
}

/// One regime's results on one topology.
#[derive(Debug, Clone, PartialEq)]
pub struct RegimeCell {
    /// Which policy ran.
    pub regime: SchedRegime,
    /// Jobs submitted (identical across the row's regimes).
    pub jobs: usize,
    /// Jobs that finished their work.
    pub completed: usize,
    /// Jobs that exhausted their retry budget.
    pub failed: usize,
    /// Median stretch over completed jobs.
    pub stretch_p50: f64,
    /// 99th-percentile stretch over completed jobs.
    pub stretch_p99: f64,
    /// Median slowdown over completed jobs.
    pub slowdown_p50: f64,
    /// 99th-percentile slowdown over completed jobs.
    pub slowdown_p99: f64,
    /// Completed jobs per hour of submission window.
    pub goodput_per_hour: f64,
    /// `apples_job_retries_total` — retry events observed.
    pub retries: u64,
    /// `apples_backfills_total` — EASY backfills (batch regime only).
    pub backfills: u64,
}

/// All regimes' results on one topology.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceTrial {
    /// Topology label (`figure-2` for the default testbed).
    pub topo: String,
    /// One cell per regime, in [`SchedRegime::ALL`] order.
    pub cells: Vec<RegimeCell>,
}

/// Split a comma-separated topology list into individual specs.
///
/// Topology specs themselves contain commas
/// (`clusters:clusters=2,segs=2,hosts=4`), so a naive split would
/// shred them. A comma starts a *new* spec only when the next segment
/// is not a `key=value` parameter — i.e. it names a family
/// (`tree:...`, `star`) or the `figure-2` testbed. `figure-2` maps to
/// the empty string [`RaceConfig::topos`] uses for the default
/// testbed.
pub fn split_topo_list(raw: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for seg in raw.split(',') {
        let seg = seg.trim();
        if seg.is_empty() {
            continue;
        }
        let is_param = seg.contains('=') && !seg.contains(':');
        match out.last_mut() {
            Some(prev) if is_param && !prev.is_empty() => {
                prev.push(',');
                prev.push_str(seg);
            }
            _ => out.push(if seg == "figure-2" {
                String::new()
            } else {
                seg.to_string()
            }),
        }
    }
    out
}

/// Dedicated-execution reference per job kind: the kind streamed alone
/// through a fault-free copy of the topology. Shared by every regime
/// on the row, so stretch is comparable across them.
fn reference_execs(
    cfg: &GridConfig,
    jobs: &[JobSpec],
    retry: RetryPolicy,
) -> Result<Vec<(JobKind, f64)>, GridError> {
    let mut refs: Vec<(JobKind, f64)> = Vec::new();
    let quiet = GridConfig {
        faults: FaultInjection::None,
        ..cfg.clone()
    };
    for job in jobs {
        if refs.iter().any(|(k, _)| *k == job.kind) {
            continue;
        }
        let solo = [JobSpec {
            id: 0,
            submit: SimTime::ZERO,
            kind: job.kind,
        }];
        let out = run_regime_jobs_with_sink(
            &quiet,
            SchedRegime::Selfish,
            &solo,
            SimTime::from_secs(3600),
            retry,
            &mut NoopSink,
        )?;
        let exec = out
            .records
            .first()
            .map(|r| r.exec_seconds)
            .unwrap_or(f64::NAN);
        refs.push((job.kind, exec));
    }
    Ok(refs)
}

/// Race every regime over every topology in `cfg`.
pub fn run_race(cfg: &RaceConfig) -> Result<Vec<RaceTrial>, GridError> {
    let retry = RetryPolicy {
        max_attempts: cfg.max_attempts,
        ..RetryPolicy::default()
    };
    let duration = SimTime::from_secs_f64(cfg.duration_secs);
    let faults = if cfg.crash_rate > 0.0 {
        FaultInjection::Random(FaultModel {
            host_crashes_per_hour: cfg.crash_rate,
            link_outages_per_hour: 0.0,
            mean_outage: SimTime::from_secs_f64(cfg.mean_outage_secs),
            permanent_fraction: 0.25,
        })
    } else {
        FaultInjection::None
    };

    let mut trials = Vec::with_capacity(cfg.topos.len());
    for spec_raw in &cfg.topos {
        let (label, topo) = if spec_raw.is_empty() {
            ("figure-2".to_string(), None)
        } else {
            let spec = TopoSpec::parse(spec_raw).map_err(GridError::Sim)?;
            (spec_raw.clone(), Some(spec))
        };
        let grid = GridConfig {
            topo,
            seed: cfg.seed,
            faults: faults.clone(),
            ..GridConfig::default()
        };
        let workload = WorkloadConfig {
            arrivals: ArrivalProcess::Poisson {
                rate_hz: cfg.rate_hz,
            },
            mix: JobMix::default_mix(),
            duration,
            seed: cfg.seed,
            retry,
        };
        // One realization per topology: every regime consumes the
        // exact same job stream and the exact same fault schedule
        // (both keyed by cfg.seed).
        let jobs = workload.realize();
        let refs = reference_execs(&grid, &jobs, retry)?;

        let mut cells = Vec::with_capacity(SchedRegime::ALL.len());
        for regime in SchedRegime::ALL {
            let mut sink = obsv::MetricsSink::new();
            let out = run_regime_jobs_with_sink(&grid, regime, &jobs, duration, retry, &mut sink)?;
            let reg = sink.registry();
            let retries = reg
                .counter_value("apples_job_retries_total", &[])
                .unwrap_or(0.0) as u64;
            let backfills = reg
                .counter_value("apples_backfills_total", &[])
                .unwrap_or(0.0) as u64;

            let completed: Vec<&apples_grid::JobRecord> =
                out.records.iter().filter(|r| r.completed).collect();
            let mut stretches: Vec<f64> = Vec::with_capacity(completed.len());
            for r in &completed {
                let response = r.finish.saturating_sub(r.submit).as_secs_f64();
                let dedicated = refs
                    .iter()
                    .find(|(k, _)| k.name() == r.kind)
                    .map(|(_, e)| *e)
                    .unwrap_or(f64::NAN);
                if dedicated.is_finite() && dedicated > 0.0 {
                    stretches.push((response / dedicated).max(1.0));
                }
            }
            let slowdowns: Vec<f64> = completed.iter().map(|r| r.slowdown).collect();
            cells.push(RegimeCell {
                regime,
                jobs: jobs.len(),
                completed: completed.len(),
                failed: out.records.len() - completed.len(),
                stretch_p50: percentile(&stretches, 50.0),
                stretch_p99: percentile(&stretches, 99.0),
                slowdown_p50: percentile(&slowdowns, 50.0),
                slowdown_p99: percentile(&slowdowns, 99.0),
                goodput_per_hour: completed.len() as f64 / (cfg.duration_secs / 3600.0),
                retries,
                backfills,
            });
        }
        trials.push(RaceTrial { topo: label, cells });
    }
    Ok(trials)
}

/// Render the race as one table, regimes grouped under each topology.
pub fn render(trials: &[RaceTrial]) -> String {
    let headers = [
        "topology",
        "regime",
        "jobs",
        "done",
        "failed",
        "stretch p50",
        "stretch p99",
        "slowdown p50",
        "slowdown p99",
        "goodput/h",
        "retries",
        "backfills",
    ];
    let mut rows = Vec::new();
    for t in trials {
        for c in &t.cells {
            rows.push(vec![
                t.topo.clone(),
                c.regime.name().to_string(),
                c.jobs.to_string(),
                c.completed.to_string(),
                c.failed.to_string(),
                format!("{:.2}", c.stretch_p50),
                format!("{:.2}", c.stretch_p99),
                format!("{:.2}", c.slowdown_p50),
                format!("{:.2}", c.slowdown_p99),
                format!("{:.1}", c.goodput_per_hour),
                c.retries.to_string(),
                c.backfills.to_string(),
            ]);
        }
    }
    table::render(&headers, &rows)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RaceConfig {
        RaceConfig {
            topos: vec![String::new()],
            rate_hz: 0.005,
            duration_secs: 1200.0,
            crash_rate: 0.5,
            ..RaceConfig::default()
        }
    }

    #[test]
    fn topo_list_splitting_respects_spec_internal_commas() {
        assert_eq!(
            split_topo_list("figure-2,clusters:clusters=2,segs=2,hosts=4,star:hosts=6,per_seg=3"),
            vec![
                String::new(),
                "clusters:clusters=2,segs=2,hosts=4".to_string(),
                "star:hosts=6,per_seg=3".to_string(),
            ]
        );
        assert_eq!(split_topo_list("star"), vec!["star".to_string()]);
        assert_eq!(split_topo_list(""), Vec::<String>::new());
        // A stray leading parameter cannot attach to anything — it
        // stands alone and will fail topology parsing loudly later.
        assert_eq!(split_topo_list("hosts=4"), vec!["hosts=4".to_string()]);
    }

    #[test]
    fn race_is_deterministic_and_loses_no_jobs() {
        let cfg = tiny();
        let a = run_race(&cfg).unwrap();
        let b = run_race(&cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(render(&a), render(&b));
        for t in &a {
            let jobs = t.cells[0].jobs;
            for c in &t.cells {
                assert_eq!(c.jobs, jobs, "regimes saw different streams");
                assert_eq!(c.completed + c.failed, jobs, "{} lost jobs", c.regime);
            }
        }
    }

    #[test]
    fn only_batch_backfills() {
        let trials = run_race(&tiny()).unwrap();
        for t in &trials {
            for c in &t.cells {
                if c.regime != SchedRegime::Batch {
                    assert_eq!(c.backfills, 0, "{} reported backfills", c.regime);
                }
            }
        }
    }

    #[test]
    fn generated_topologies_race_too() {
        let cfg = RaceConfig {
            topos: vec!["star:hosts=6".into()],
            rate_hz: 0.004,
            duration_secs: 1000.0,
            crash_rate: 0.0,
            ..RaceConfig::default()
        };
        let trials = run_race(&cfg).unwrap();
        assert_eq!(trials.len(), 1);
        assert_eq!(trials[0].topo, "star:hosts=6");
        assert_eq!(trials[0].cells.len(), 3);
        for c in &trials[0].cells {
            assert!(c.completed > 0, "{} completed nothing", c.regime);
        }
    }
}
