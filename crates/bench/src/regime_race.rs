//! T-RACE: three scheduling regimes race on identical seeded streams.
//!
//! The paper argues for application-level (selfish) scheduling; the
//! obvious rebuttals are a centralized batch queue and egalitarian
//! processor sharing. This harness races all three —
//! [`SchedRegime::Selfish`], [`SchedRegime::Batch`] (FCFS + EASY
//! backfilling on the AppLeS estimator's predictions) and
//! [`SchedRegime::Fractional`] (dynamic fractional sharing) — over
//! the *same* realized job stream, the same topology and the same
//! seeded fault schedule, across a set of generated topology
//! families.
//!
//! Reported per (topology, regime):
//!
//! * **stretch** — `(finish − submit) / dedicated_exec`, where the
//!   denominator is the job kind's execution time alone on the same
//!   (fault-free) topology. Stretch folds queue wait *and* contention
//!   into one application-centric number: 1.0 means "as if I had the
//!   system to myself".
//! * **slowdown** — the classic `(wait + exec) / exec` from the job
//!   records.
//! * **goodput** — completed jobs per hour under fault injection
//!   (failed jobs don't count), plus retry and backfill counts pulled
//!   from the `obsv` metrics families (`apples_job_retries_total`,
//!   `apples_backfills_total`).
//!
//! Everything is seeded: the same [`RaceConfig`] renders a
//! byte-identical report, which is what the CI determinism gate
//! checks.

use std::fmt::Write as _;

use crate::table;
use apples_grid::workload::{
    ArrivalProcess, JobKind, JobMix, JobSpec, RetryPolicy, WorkloadConfig,
};
use apples_grid::{
    percentile, run_regime_jobs_with_sink, FaultInjection, GridConfig, GridError, SchedRegime,
};
use metasim::simtrace::{NoopSink, VecSink};
use metasim::topogen::TopoSpec;
use metasim::{FaultModel, SimTime};
use obsv::{Composition, FanoutSink, MetricsSink, SpanTree, TimeSeries, TimeSeriesSink, PHASES};

/// Window width of the per-regime report timeline, seconds.
pub const REPORT_WINDOW_SECS: f64 = 300.0;

/// Parameters of one race.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceConfig {
    /// Topology specs to race on (`""` means the Figure-2 SDSC/PCL
    /// testbed; anything else is parsed by [`TopoSpec::parse`]).
    pub topos: Vec<String>,
    /// Mean Poisson arrival rate, jobs per second.
    pub rate_hz: f64,
    /// Submission-window length, seconds.
    pub duration_secs: f64,
    /// Seed for workload, testbed and fault realization.
    pub seed: u64,
    /// Host crashes per host-hour (0 disables fault injection).
    pub crash_rate: f64,
    /// Mean recoverable-outage length, seconds.
    pub mean_outage_secs: f64,
    /// Retry budget shared by every regime.
    pub max_attempts: u32,
}

impl Default for RaceConfig {
    fn default() -> Self {
        RaceConfig {
            topos: vec![
                String::new(),
                "tree:hosts=16,arity=2,per_seg=4".into(),
                "clusters:clusters=2,segs=2,hosts=4".into(),
            ],
            rate_hz: 0.01,
            duration_secs: 1800.0,
            seed: 1996,
            crash_rate: 1.0,
            mean_outage_secs: 600.0,
            max_attempts: 3,
        }
    }
}

/// One regime's results on one topology.
#[derive(Debug, Clone, PartialEq)]
pub struct RegimeCell {
    /// Which policy ran.
    pub regime: SchedRegime,
    /// Jobs submitted (identical across the row's regimes).
    pub jobs: usize,
    /// Jobs that finished their work.
    pub completed: usize,
    /// Jobs that exhausted their retry budget.
    pub failed: usize,
    /// Median stretch over completed jobs.
    pub stretch_p50: f64,
    /// 99th-percentile stretch over completed jobs.
    pub stretch_p99: f64,
    /// Median slowdown over completed jobs.
    pub slowdown_p50: f64,
    /// 99th-percentile slowdown over completed jobs.
    pub slowdown_p99: f64,
    /// Completed jobs per hour of submission window.
    pub goodput_per_hour: f64,
    /// `apples_job_retries_total` — retry events observed.
    pub retries: u64,
    /// `apples_backfills_total` — EASY backfills (batch regime only).
    pub backfills: u64,
    /// Critical-path composition of the regime's span trees.
    pub composition: Composition,
    /// Timeline rows, [`REPORT_WINDOW_SECS`]-wide windows.
    pub series: TimeSeries,
}

/// All regimes' results on one topology.
#[derive(Debug, Clone, PartialEq)]
pub struct RaceTrial {
    /// Topology label (`figure-2` for the default testbed).
    pub topo: String,
    /// One cell per regime, in [`SchedRegime::ALL`] order.
    pub cells: Vec<RegimeCell>,
}

/// Split a comma-separated topology list into individual specs.
///
/// Topology specs themselves contain commas
/// (`clusters:clusters=2,segs=2,hosts=4`), so a naive split would
/// shred them. A comma starts a *new* spec only when the next segment
/// is not a `key=value` parameter — i.e. it names a family
/// (`tree:...`, `star`) or the `figure-2` testbed. `figure-2` maps to
/// the empty string [`RaceConfig::topos`] uses for the default
/// testbed.
pub fn split_topo_list(raw: &str) -> Vec<String> {
    let mut out: Vec<String> = Vec::new();
    for seg in raw.split(',') {
        let seg = seg.trim();
        if seg.is_empty() {
            continue;
        }
        let is_param = seg.contains('=') && !seg.contains(':');
        match out.last_mut() {
            Some(prev) if is_param && !prev.is_empty() => {
                prev.push(',');
                prev.push_str(seg);
            }
            _ => out.push(if seg == "figure-2" {
                String::new()
            } else {
                seg.to_string()
            }),
        }
    }
    out
}

/// Dedicated-execution reference per job kind: the kind streamed alone
/// through a fault-free copy of the topology. Shared by every regime
/// on the row, so stretch is comparable across them.
fn reference_execs(
    cfg: &GridConfig,
    jobs: &[JobSpec],
    retry: RetryPolicy,
) -> Result<Vec<(JobKind, f64)>, GridError> {
    let mut refs: Vec<(JobKind, f64)> = Vec::new();
    let quiet = GridConfig {
        faults: FaultInjection::None,
        ..cfg.clone()
    };
    for job in jobs {
        if refs.iter().any(|(k, _)| *k == job.kind) {
            continue;
        }
        let solo = [JobSpec {
            id: 0,
            submit: SimTime::ZERO,
            kind: job.kind,
        }];
        let out = run_regime_jobs_with_sink(
            &quiet,
            SchedRegime::Selfish,
            &solo,
            SimTime::from_secs(3600),
            retry,
            &mut NoopSink,
        )?;
        let exec = out
            .records
            .first()
            .map(|r| r.exec_seconds)
            .unwrap_or(f64::NAN);
        refs.push((job.kind, exec));
    }
    Ok(refs)
}

/// Race every regime over every topology in `cfg`.
pub fn run_race(cfg: &RaceConfig) -> Result<Vec<RaceTrial>, GridError> {
    run_race_with(cfg, &mut |_, _| {})
}

/// [`run_race`] with a progress callback, invoked once per
/// (topology, regime) pair just before that leg starts. A full race
/// is minutes of wall clock with no output; the CLI points this at
/// stderr so the user can see which leg is running.
pub fn run_race_with(
    cfg: &RaceConfig,
    progress: &mut dyn FnMut(&str, SchedRegime),
) -> Result<Vec<RaceTrial>, GridError> {
    let retry = RetryPolicy {
        max_attempts: cfg.max_attempts,
        ..RetryPolicy::default()
    };
    let duration = SimTime::from_secs_f64(cfg.duration_secs);
    let faults = if cfg.crash_rate > 0.0 {
        FaultInjection::Random(FaultModel {
            host_crashes_per_hour: cfg.crash_rate,
            link_outages_per_hour: 0.0,
            mean_outage: SimTime::from_secs_f64(cfg.mean_outage_secs),
            permanent_fraction: 0.25,
        })
    } else {
        FaultInjection::None
    };

    let mut trials = Vec::with_capacity(cfg.topos.len());
    for spec_raw in &cfg.topos {
        let (label, topo) = if spec_raw.is_empty() {
            ("figure-2".to_string(), None)
        } else {
            let spec = TopoSpec::parse(spec_raw).map_err(GridError::Sim)?;
            (spec_raw.clone(), Some(spec))
        };
        let grid = GridConfig {
            topo,
            seed: cfg.seed,
            faults: faults.clone(),
            ..GridConfig::default()
        };
        let workload = WorkloadConfig {
            arrivals: ArrivalProcess::Poisson {
                rate_hz: cfg.rate_hz,
            },
            mix: JobMix::default_mix(),
            duration,
            seed: cfg.seed,
            retry,
        };
        // One realization per topology: every regime consumes the
        // exact same job stream and the exact same fault schedule
        // (both keyed by cfg.seed).
        let jobs = workload.realize();
        let refs = reference_execs(&grid, &jobs, retry)?;

        let mut cells = Vec::with_capacity(SchedRegime::ALL.len());
        for regime in SchedRegime::ALL {
            progress(&label, regime);
            let mut sink = MetricsSink::new();
            let mut trace = VecSink::new();
            let mut series_sink = TimeSeriesSink::fixed_seconds(REPORT_WINDOW_SECS);
            let out = {
                let mut fan = FanoutSink::new();
                fan.push(&mut sink);
                fan.push(&mut series_sink);
                fan.push(&mut trace);
                run_regime_jobs_with_sink(&grid, regime, &jobs, duration, retry, &mut fan)?
            };
            let composition = SpanTree::from_events(&trace.events).composition();
            let series = series_sink.finalize();
            let reg = sink.registry();
            let retries = reg
                .counter_value("apples_job_retries_total", &[])
                .unwrap_or(0.0) as u64;
            let backfills = reg
                .counter_value("apples_backfills_total", &[])
                .unwrap_or(0.0) as u64;

            let completed: Vec<&apples_grid::JobRecord> =
                out.records.iter().filter(|r| r.completed).collect();
            let mut stretches: Vec<f64> = Vec::with_capacity(completed.len());
            for r in &completed {
                let response = r.finish.saturating_sub(r.submit).as_secs_f64();
                let dedicated = refs
                    .iter()
                    .find(|(k, _)| k.name() == r.kind)
                    .map(|(_, e)| *e)
                    .unwrap_or(f64::NAN);
                if dedicated.is_finite() && dedicated > 0.0 {
                    stretches.push((response / dedicated).max(1.0));
                }
            }
            let slowdowns: Vec<f64> = completed.iter().map(|r| r.slowdown).collect();
            cells.push(RegimeCell {
                regime,
                jobs: jobs.len(),
                completed: completed.len(),
                failed: out.records.len() - completed.len(),
                stretch_p50: percentile(&stretches, 50.0),
                stretch_p99: percentile(&stretches, 99.0),
                slowdown_p50: percentile(&slowdowns, 50.0),
                slowdown_p99: percentile(&slowdowns, 99.0),
                goodput_per_hour: completed.len() as f64 / (cfg.duration_secs / 3600.0),
                retries,
                backfills,
                composition,
                series,
            });
        }
        trials.push(RaceTrial { topo: label, cells });
    }
    Ok(trials)
}

/// Render the race as one table, regimes grouped under each topology.
pub fn render(trials: &[RaceTrial]) -> String {
    let headers = [
        "topology",
        "regime",
        "jobs",
        "done",
        "failed",
        "stretch p50",
        "stretch p99",
        "slowdown p50",
        "slowdown p99",
        "goodput/h",
        "retries",
        "backfills",
    ];
    let mut rows = Vec::new();
    for t in trials {
        for c in &t.cells {
            rows.push(vec![
                t.topo.clone(),
                c.regime.name().to_string(),
                c.jobs.to_string(),
                c.completed.to_string(),
                c.failed.to_string(),
                format!("{:.2}", c.stretch_p50),
                format!("{:.2}", c.stretch_p99),
                format!("{:.2}", c.slowdown_p50),
                format!("{:.2}", c.slowdown_p99),
                format!("{:.1}", c.goodput_per_hour),
                c.retries.to_string(),
                c.backfills.to_string(),
            ]);
        }
    }
    table::render(&headers, &rows)
}

/// Timeline ramp glyphs, lowest to highest.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Map `vals` onto the ramp, scaled so `max` hits the last glyph.
fn sparkline(vals: &[f64], max: f64) -> String {
    vals.iter()
        .map(|v| {
            let f = if max > 0.0 {
                (v / max).clamp(0.0, 1.0)
            } else {
                0.0
            };
            let i = (f * (RAMP.len() - 1) as f64).round() as usize;
            RAMP[i.min(RAMP.len() - 1)] as char
        })
        .collect()
}

/// Render the race as a markdown report: the summary table, then per
/// topology a critical-path composition table, the composition diff
/// against the selfish baseline, and per-regime utilization /
/// queue-depth timelines over [`REPORT_WINDOW_SECS`] windows.
///
/// Everything is derived from the seeded race, so the report is
/// byte-identical across reruns — CI regenerates and diffs it.
pub fn render_report(cfg: &RaceConfig, trials: &[RaceTrial]) -> String {
    let mut out = String::new();
    out.push_str("# T-RACE report\n\n");
    let _ = writeln!(
        out,
        "Three scheduling regimes race over identical seeded job streams \
         and fault schedules. Seed {}, arrival rate {:.4} jobs/s, \
         submission window {:.0} s, {:.2} crashes/host-hour, retry \
         budget {}.",
        cfg.seed, cfg.rate_hz, cfg.duration_secs, cfg.crash_rate, cfg.max_attempts
    );
    out.push_str("\n## Summary\n\n```text\n");
    out.push_str(&render(trials));
    out.push_str("```\n");

    for t in trials {
        let _ = writeln!(out, "\n## {}\n", t.topo);

        out.push_str("### Critical-path composition\n\n| regime |");
        for p in PHASES {
            let _ = write!(out, " {} |", p.name());
        }
        out.push_str(" dominates (jobs) | revocations | transfers |\n|---|");
        for _ in PHASES {
            out.push_str("---|");
        }
        out.push_str("---|---|---|\n");
        for c in &t.cells {
            let _ = write!(out, "| {} |", c.regime.name());
            for p in PHASES {
                let _ = write!(out, " {:.2}% |", 100.0 * c.composition.share(p));
            }
            let dom: Vec<String> = c
                .composition
                .dominant_jobs
                .iter()
                .map(|d| d.to_string())
                .collect();
            let _ = writeln!(
                out,
                " {} | {} | {} |",
                dom.join("/"),
                c.composition.revocations,
                c.composition.transfers
            );
        }
        let _ = writeln!(
            out,
            "\nShares are fractions of the summed per-job critical-path \
             makespan; `dominates` counts jobs whose critical path each \
             phase dominates, in {} order.",
            PHASES.map(|p| p.name()).join("/")
        );

        if let Some(base) = t.cells.iter().find(|c| c.regime == SchedRegime::Selfish) {
            out.push_str("\n### Composition vs. selfish (percentage points)\n\n| regime |");
            for p in PHASES {
                let _ = write!(out, " Δ {} |", p.name());
            }
            out.push_str("\n|---|");
            for _ in PHASES {
                out.push_str("---|");
            }
            out.push('\n');
            for c in &t.cells {
                if c.regime == SchedRegime::Selfish {
                    continue;
                }
                let _ = write!(out, "| {} |", c.regime.name());
                for p in PHASES {
                    let delta = 100.0 * (c.composition.share(p) - base.composition.share(p));
                    let _ = write!(out, " {delta:+.2} |");
                }
                out.push('\n');
            }
        }

        // Timeline sparklines on a window grid shared by the row's
        // regimes, so columns line up across them.
        let width = SimTime::from_secs_f64(REPORT_WINDOW_SECS).0.max(1);
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for c in &t.cells {
            for r in &c.series.rows {
                lo = lo.min(r.start.0);
                hi = hi.max(r.start.0);
            }
        }
        if lo <= hi {
            let starts: Vec<u64> = (lo..=hi).step_by(width as usize).collect();
            let _ = writeln!(
                out,
                "\n### Timeline ({:.0} s windows, one glyph per window)\n\n```text",
                REPORT_WINDOW_SECS
            );
            let util_max = t
                .cells
                .iter()
                .flat_map(|c| c.series.rows.iter().map(|r| r.utilization))
                .fold(0.0f64, f64::max);
            let queue_max = t
                .cells
                .iter()
                .flat_map(|c| c.series.rows.iter().map(|r| r.queue_depth as f64))
                .fold(0.0f64, f64::max);
            for c in &t.cells {
                let rows: std::collections::BTreeMap<u64, &obsv::Row> =
                    c.series.rows.iter().map(|r| (r.start.0, r)).collect();
                let util: Vec<f64> = starts
                    .iter()
                    .map(|s| rows.get(s).map_or(0.0, |r| r.utilization))
                    .collect();
                let peak = util.iter().copied().fold(0.0f64, f64::max);
                let _ = writeln!(
                    out,
                    "{:<10} util  |{}| peak {:.2} busy hosts",
                    c.regime.name(),
                    sparkline(&util, util_max),
                    peak
                );
            }
            // Fractional (processor-sharing) regimes realize work as
            // occupancy write-back (LoadImposed), not discrete compute
            // events, so a separate "load" lane keeps them visible.
            let load_max = t
                .cells
                .iter()
                .flat_map(|c| {
                    c.series
                        .rows
                        .iter()
                        .map(|r| r.imposed_load_seconds / REPORT_WINDOW_SECS)
                })
                .fold(0.0f64, f64::max);
            for c in &t.cells {
                let rows: std::collections::BTreeMap<u64, &obsv::Row> =
                    c.series.rows.iter().map(|r| (r.start.0, r)).collect();
                let load: Vec<f64> = starts
                    .iter()
                    .map(|s| {
                        rows.get(s)
                            .map_or(0.0, |r| r.imposed_load_seconds / REPORT_WINDOW_SECS)
                    })
                    .collect();
                let peak = load.iter().copied().fold(0.0f64, f64::max);
                let _ = writeln!(
                    out,
                    "{:<10} load  |{}| peak {:.2} occupied hosts",
                    c.regime.name(),
                    sparkline(&load, load_max),
                    peak
                );
            }
            for c in &t.cells {
                let rows: std::collections::BTreeMap<u64, &obsv::Row> =
                    c.series.rows.iter().map(|r| (r.start.0, r)).collect();
                let queue: Vec<f64> = starts
                    .iter()
                    .map(|s| rows.get(s).map_or(0.0, |r| r.queue_depth as f64))
                    .collect();
                let peak = queue.iter().copied().fold(0.0f64, f64::max);
                let _ = writeln!(
                    out,
                    "{:<10} queue |{}| peak {:.0} waiting",
                    c.regime.name(),
                    sparkline(&queue, queue_max),
                    peak
                );
            }
            out.push_str("```\n");
            out.push_str(
                "\n`util` counts hosts busy with discrete compute events; `load` \
                 counts hosts occupied by imposed background load — fractional \
                 (processor-sharing) runs realize all work as occupancy \
                 write-back, so they appear in the `load` lane, not `util`.\n",
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> RaceConfig {
        RaceConfig {
            topos: vec![String::new()],
            rate_hz: 0.005,
            duration_secs: 1200.0,
            crash_rate: 0.5,
            ..RaceConfig::default()
        }
    }

    #[test]
    fn topo_list_splitting_respects_spec_internal_commas() {
        assert_eq!(
            split_topo_list("figure-2,clusters:clusters=2,segs=2,hosts=4,star:hosts=6,per_seg=3"),
            vec![
                String::new(),
                "clusters:clusters=2,segs=2,hosts=4".to_string(),
                "star:hosts=6,per_seg=3".to_string(),
            ]
        );
        assert_eq!(split_topo_list("star"), vec!["star".to_string()]);
        assert_eq!(split_topo_list(""), Vec::<String>::new());
        // A stray leading parameter cannot attach to anything — it
        // stands alone and will fail topology parsing loudly later.
        assert_eq!(split_topo_list("hosts=4"), vec!["hosts=4".to_string()]);
    }

    #[test]
    fn race_is_deterministic_and_loses_no_jobs() {
        let cfg = tiny();
        let a = run_race(&cfg).unwrap();
        let b = run_race(&cfg).unwrap();
        assert_eq!(a, b);
        assert_eq!(render(&a), render(&b));
        for t in &a {
            let jobs = t.cells[0].jobs;
            for c in &t.cells {
                assert_eq!(c.jobs, jobs, "regimes saw different streams");
                assert_eq!(c.completed + c.failed, jobs, "{} lost jobs", c.regime);
            }
        }
    }

    #[test]
    fn only_batch_backfills() {
        let trials = run_race(&tiny()).unwrap();
        for t in &trials {
            for c in &t.cells {
                if c.regime != SchedRegime::Batch {
                    assert_eq!(c.backfills, 0, "{} reported backfills", c.regime);
                }
            }
        }
    }

    #[test]
    fn report_is_deterministic_and_compositions_partition() {
        let cfg = tiny();
        let a = run_race(&cfg).unwrap();
        let b = run_race(&cfg).unwrap();
        let report = render_report(&cfg, &a);
        assert_eq!(report, render_report(&cfg, &b));
        assert!(report.contains("## Summary"));
        assert!(report.contains("### Critical-path composition"));
        assert!(report.contains("### Composition vs. selfish"));
        assert!(report.contains("### Timeline"));
        for t in &a {
            for c in &t.cells {
                // Every closed job folded, and the phase microseconds
                // partition the summed makespan exactly.
                assert_eq!(c.composition.jobs, c.completed + c.failed, "{}", c.regime);
                assert_eq!(
                    c.composition.phase_us.iter().sum::<u64>(),
                    c.composition.total_us,
                    "{} composition does not partition",
                    c.regime
                );
                assert!(!c.series.rows.is_empty(), "{} has no timeline", c.regime);
            }
        }
    }

    #[test]
    fn progress_callback_sees_every_leg_in_order() {
        let cfg = RaceConfig {
            topos: vec!["star:hosts=6".into()],
            rate_hz: 0.004,
            duration_secs: 1000.0,
            crash_rate: 0.0,
            ..RaceConfig::default()
        };
        let mut legs: Vec<(String, SchedRegime)> = Vec::new();
        run_race_with(&cfg, &mut |topo, regime| {
            legs.push((topo.to_string(), regime));
        })
        .unwrap();
        let expect: Vec<(String, SchedRegime)> = SchedRegime::ALL
            .iter()
            .map(|r| ("star:hosts=6".to_string(), *r))
            .collect();
        assert_eq!(legs, expect);
    }

    #[test]
    fn generated_topologies_race_too() {
        let cfg = RaceConfig {
            topos: vec!["star:hosts=6".into()],
            rate_hz: 0.004,
            duration_secs: 1000.0,
            crash_rate: 0.0,
            ..RaceConfig::default()
        };
        let trials = run_race(&cfg).unwrap();
        assert_eq!(trials.len(), 1);
        assert_eq!(trials[0].topo, "star:hosts=6");
        assert_eq!(trials[0].cells.len(), 3);
        for c in &trials[0].cells {
            assert!(c.completed > 0, "{} completed nothing", c.regime);
        }
    }
}
