//! Figure 6: Jacobi2D with memory accounted for.
//!
//! "We added two unloaded SP-2 processors to the resource pool ... Due
//! to the lack of contention for the SP-2 resources, the best partition
//! in this environment uses only SP-2 resources until their real memory
//! is exceeded. As shown in Figure 6, AppLeS identifies the SP-2
//! resources as the best partition until problem size 3700×3700 is
//! reached. At this point, the AppLeS scheduler locates available
//! memory elsewhere in the resource pool ... In contrast, the HPF
//! Uniform/Blocked partition performs well up to 3700×3700 but then
//! spills from memory causing a dramatic reduction in performance."

use apples::info::InfoPool;
use apples_apps::jacobi2d::partition::jacobi_context;
use apples_apps::jacobi2d::{apples_stencil_schedule, blocked_uniform};
use metasim::exec::simulate_spmd;
use metasim::testbed::{pcl_sdsc, LoadProfile, TestbedConfig};
use metasim::trace::Stats;
use metasim::SimTime;
use nws::{WeatherService, WeatherServiceConfig};

/// NWS warm-up before the scheduling decision.
pub const WARMUP: SimTime = SimTime::from_secs(600);

/// Configuration of the Figure 6 experiment.
#[derive(Debug, Clone)]
pub struct Fig6Config {
    /// Grid sizes to sweep, straddling the 3700 spill point.
    pub sizes: Vec<usize>,
    /// Jacobi iterations per run.
    pub iterations: usize,
    /// Independent trials per size.
    pub trials: usize,
    /// Base seed.
    pub base_seed: u64,
}

impl Default for Fig6Config {
    fn default() -> Self {
        Fig6Config {
            sizes: vec![1000, 2000, 3000, 3500, 3700, 3800, 4000, 4500, 5000],
            iterations: 50,
            trials: 3,
            base_seed: 1996,
        }
    }
}

/// Measured seconds for one trial.
#[derive(Debug, Clone, PartialEq)]
pub struct Fig6Trial {
    /// AppLeS over the full pool (SP-2 + workstations), spill-aware.
    pub apples_s: f64,
    /// HPF blocked partition pinned to the two SP-2 nodes.
    pub blocked_sp2_s: f64,
    /// Hosts the AppLeS schedule used, by name.
    pub apples_hosts: Vec<String>,
}

/// Run one trial at grid size `n`.
pub fn run_trial(n: usize, iterations: usize, seed: u64) -> Fig6Trial {
    // Heavy workstation contention: the SP-2 nodes are the only quiet
    // resources, matching the Figure 6 setup.
    let tb = pcl_sdsc(&TestbedConfig {
        profile: LoadProfile::Heavy,
        horizon: SimTime::from_secs(400_000),
        seed,
        with_sp2: true,
    })
    .expect("testbed");
    let sp2 = tb.sp2.expect("sp2 nodes");
    let (hat, user) = jacobi_context(n, iterations);
    let t = hat.as_stencil().expect("stencil HAT");

    let mut ws = WeatherService::for_topology(&tb.topo, WeatherServiceConfig::default());
    ws.advance(&tb.topo, WARMUP);

    // AppLeS over the whole pool.
    let pool = InfoPool::with_nws(&tb.topo, &ws, &hat, &user, WARMUP);
    let apples_sched = apples_stencil_schedule(&pool).expect("apples plan");
    let apples_out =
        simulate_spmd(&tb.topo, &apples_sched.to_spmd_job(t, WARMUP)).expect("apples run");

    // Blocked on the SP-2 alone: the natural compile-time choice for a
    // user who knows the SP-2 is fast and idle.
    let blocked = blocked_uniform(n, iterations, &sp2);
    let blocked_out =
        simulate_spmd(&tb.topo, &blocked.to_spmd_job(t, WARMUP)).expect("blocked run");

    let apples_hosts = apples_sched
        .parts
        .iter()
        .map(|p| tb.topo.host(p.host).expect("host").spec.name.clone())
        .collect();

    Fig6Trial {
        apples_s: apples_out.makespan(WARMUP).as_secs_f64(),
        blocked_sp2_s: blocked_out.makespan(WARMUP).as_secs_f64(),
        apples_hosts,
    }
}

/// One averaged row of Figure 6.
#[derive(Debug, Clone)]
pub struct Fig6Row {
    /// Grid edge length.
    pub n: usize,
    /// AppLeS statistics.
    pub apples: Stats,
    /// Blocked-on-SP-2 statistics.
    pub blocked_sp2: Stats,
    /// Hosts AppLeS used in the first trial (representative).
    pub apples_hosts: Vec<String>,
}

/// Run the full Figure 6 sweep. Trials fan out across threads.
pub fn run(cfg: &Fig6Config) -> Vec<Fig6Row> {
    cfg.sizes
        .iter()
        .map(|&n| {
            let trials: Vec<Fig6Trial> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..cfg.trials)
                    .map(|i| {
                        let seed = cfg.base_seed + i as u64;
                        scope.spawn(move |_| run_trial(n, cfg.iterations, seed))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("trial thread"))
                    .collect()
            })
            .expect("trial scope");
            let apples: Vec<f64> = trials.iter().map(|r| r.apples_s).collect();
            let blocked: Vec<f64> = trials.iter().map(|r| r.blocked_sp2_s).collect();
            Fig6Row {
                n,
                apples: Stats::from_samples(&apples).expect("trials"),
                blocked_sp2: Stats::from_samples(&blocked).expect("trials"),
                apples_hosts: trials[0].apples_hosts.clone(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn below_spill_point_both_behave() {
        let r = run_trial(2000, 10, 3);
        // Below 3700 the blocked SP-2 partition fits in memory and is
        // competitive: AppLeS must not be dramatically slower.
        assert!(
            r.apples_s < 2.0 * r.blocked_sp2_s,
            "apples {} vs blocked {}",
            r.apples_s,
            r.blocked_sp2_s
        );
    }

    #[test]
    fn beyond_spill_point_blocked_falls_off_a_cliff() {
        let r = run_trial(4500, 10, 3);
        assert!(
            r.blocked_sp2_s > 3.0 * r.apples_s,
            "expected a paging cliff: apples {} vs blocked {}",
            r.apples_s,
            r.blocked_sp2_s
        );
    }

    #[test]
    fn apples_recruits_extra_memory_beyond_the_spill_point() {
        let small = run_trial(2000, 5, 3);
        let large = run_trial(4500, 5, 3);
        // Below the spill point the SP-2 pair suffices; beyond it the
        // schedule must widen beyond two hosts.
        assert!(small.apples_hosts.len() <= large.apples_hosts.len());
        assert!(
            large.apples_hosts.len() > 2,
            "large run should recruit beyond the SP-2: {:?}",
            large.apples_hosts
        );
    }
}
