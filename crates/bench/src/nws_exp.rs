//! §3.6 / T-NWS: prediction accuracy of the forecaster suite.
//!
//! "A schedule is only as good as the accuracy of its underlying
//! predictions." This experiment scores every predictor in the battery
//! — and the adaptive selector over all of them — on one-step-ahead
//! mean absolute error, across the kinds of availability signals the
//! testbed's load generators produce.

use metasim::load::LoadModel;
use metasim::SimTime;
use nws::forecast::{standard_suite, Forecaster};
use nws::AdaptiveSelector;

/// A named test signal.
pub struct Signal {
    /// Label for the report.
    pub name: &'static str,
    /// The generating model.
    pub model: LoadModel,
}

/// The standard battery of test signals.
pub fn standard_signals() -> Vec<Signal> {
    vec![
        Signal {
            name: "random-walk",
            model: LoadModel::RandomWalk {
                start: 0.5,
                step: 0.08,
                interval: SimTime::from_secs(5),
                floor: 0.1,
                ceil: 0.9,
            },
        },
        Signal {
            name: "markov-on-off",
            model: LoadModel::MarkovOnOff {
                idle_avail: 0.9,
                busy_avail: 0.2,
                mean_idle: SimTime::from_secs(60),
                mean_busy: SimTime::from_secs(25),
            },
        },
        Signal {
            name: "periodic",
            model: LoadModel::Periodic {
                high: 0.85,
                low: 0.25,
                half_period: SimTime::from_secs(40),
                phase: SimTime::ZERO,
            },
        },
        Signal {
            name: "constant",
            model: LoadModel::Constant(0.6),
        },
    ]
}

/// Sample a model's availability at 5-second cadence.
pub fn sample_signal(model: &LoadModel, horizon_s: u64, seed: u64) -> Vec<f64> {
    let series = model.realize(SimTime::from_secs(horizon_s), seed);
    series
        .sample(SimTime::from_secs(5), SimTime::from_secs(horizon_s))
        .into_iter()
        .map(|(_, v)| v)
        .collect()
}

/// One-step-ahead MAE of a forecaster on a value stream (the first
/// `skip` postcasts are ignored as warm-up).
pub fn score_forecaster(f: &mut dyn Forecaster, values: &[f64], skip: usize) -> f64 {
    let mut err = 0.0;
    let mut n = 0usize;
    for (i, &v) in values.iter().enumerate() {
        if let Some(p) = f.forecast() {
            if i >= skip {
                err += (p - v).abs();
                n += 1;
            }
        }
        f.update(v);
    }
    if n == 0 {
        f64::INFINITY
    } else {
        err / n as f64
    }
}

/// One-step-ahead MAE of the adaptive selector on a value stream.
pub fn score_selector(values: &[f64], skip: usize) -> f64 {
    let mut s = AdaptiveSelector::new();
    let mut err = 0.0;
    let mut n = 0usize;
    for (i, &v) in values.iter().enumerate() {
        if let Some(p) = s.forecast() {
            if i >= skip {
                err += (p - v).abs();
                n += 1;
            }
        }
        s.update(v);
    }
    if n == 0 {
        f64::INFINITY
    } else {
        err / n as f64
    }
}

/// Accuracy table: per signal, the MAE of every suite member plus the
/// adaptive selector (last entry, named `"adaptive-selector"`).
pub struct AccuracyRow {
    /// The signal scored.
    pub signal: &'static str,
    /// `(predictor name, MAE)` pairs; the selector comes last.
    pub scores: Vec<(String, f64)>,
}

/// Run the accuracy experiment over the standard signals.
pub fn run(horizon_s: u64, seed: u64) -> Vec<AccuracyRow> {
    const SKIP: usize = 64;
    standard_signals()
        .into_iter()
        .map(|sig| {
            let values = sample_signal(&sig.model, horizon_s, seed);
            let mut scores: Vec<(String, f64)> = standard_suite()
                .into_iter()
                .map(|mut f| {
                    let mae = score_forecaster(f.as_mut(), &values, SKIP);
                    (f.name(), mae)
                })
                .collect();
            scores.push(("adaptive-selector".into(), score_selector(&values, SKIP)));
            AccuracyRow {
                signal: sig.name,
                scores,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn selector_is_near_the_best_individual_on_every_signal() {
        for row in run(30_000, 17) {
            let best_individual = row.scores[..row.scores.len() - 1]
                .iter()
                .map(|&(_, m)| m)
                .fold(f64::INFINITY, f64::min);
            let selector = row.scores.last().unwrap().1;
            assert!(
                selector <= best_individual * 1.5 + 1e-9,
                "{}: selector {selector} vs best individual {best_individual}",
                row.signal
            );
        }
    }

    #[test]
    fn constant_signal_is_trivially_predictable() {
        let rows = run(10_000, 3);
        let constant = rows.iter().find(|r| r.signal == "constant").unwrap();
        let selector = constant.scores.last().unwrap().1;
        assert!(selector < 1e-9);
    }

    #[test]
    fn scoring_handles_short_streams() {
        let mut f = nws::forecast::LastValue::new();
        let mae = score_forecaster(&mut f, &[0.5], 0);
        assert!(mae.is_infinite()); // no postcast possible
    }
}
