#![warn(missing_docs)]

//! # apples-bench — the experiment harness
//!
//! One module per paper artifact; each figure binary under `src/bin/`
//! is a thin `main` around these functions, and the Criterion benches
//! under `benches/` time the same entry points. See DESIGN.md for the
//! experiment ↔ module index and EXPERIMENTS.md for recorded results.

pub mod ablation;
pub mod estimator_exp;
pub mod event_engine;
pub mod fault_exp;
pub mod fig5;
pub mod fig6;
pub mod fixed_time;
pub mod grid_exp;
pub mod multi_agent;
pub mod nile_exp;
pub mod nws_exp;
pub mod predict_react;
pub mod react_exp;
pub mod regime_race;
pub mod table;
