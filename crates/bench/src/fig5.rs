//! Figure 5: execution-time averages for Jacobi2D under the AppLeS
//! partitioning, the static non-uniform Strip partitioning, and the
//! HPF Uniform/Blocked partitioning, on the non-dedicated SDSC/PCL
//! testbed of Figure 2.
//!
//! The paper reports AppLeS beating both static partitions "by factors
//! of 2-8 for problem sizes 1000×1000 – 2000×2000 ... because AppLeS
//! is able to consider the dynamically changing performance
//! capabilities of the resources due to contention". Each trial here
//! runs all three partitions back-to-back against the *same* realized
//! load traces, and rows average over independent trials (seeds).

use apples::info::InfoPool;
use apples_apps::jacobi2d::partition::jacobi_context;
use apples_apps::jacobi2d::{apples_stencil_schedule, blocked_uniform, static_strip};
use metasim::exec::simulate_spmd;
use metasim::testbed::{pcl_sdsc, LoadProfile, TestbedConfig};
use metasim::trace::Stats;
use metasim::SimTime;
use nws::{WeatherService, WeatherServiceConfig};

/// Time the Weather Service warms up before the scheduling decision.
pub const WARMUP: SimTime = SimTime::from_secs(600);

/// Configuration of the Figure 5 experiment.
#[derive(Debug, Clone)]
pub struct Fig5Config {
    /// Grid sizes to sweep (the paper uses 1000–2000).
    pub sizes: Vec<usize>,
    /// Jacobi iterations per run.
    pub iterations: usize,
    /// Independent trials (distinct load realizations) per size.
    pub trials: usize,
    /// Base seed; trial `i` uses `base_seed + i`.
    pub base_seed: u64,
    /// Background-load intensity.
    pub profile: LoadProfile,
}

impl Default for Fig5Config {
    fn default() -> Self {
        Fig5Config {
            sizes: vec![1000, 1200, 1400, 1600, 1800, 2000],
            iterations: 100,
            trials: 5,
            base_seed: 1996,
            profile: LoadProfile::Moderate,
        }
    }
}

/// Measured seconds for the three partitions in one trial.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// AppLeS (NWS-driven) partition.
    pub apples_s: f64,
    /// Static non-uniform strip partition (nominal speeds only).
    pub strip_s: f64,
    /// HPF uniform blocked partition.
    pub blocked_s: f64,
    /// The strip fractions AppLeS chose, as `(host name, fraction)`.
    pub apples_fractions: Vec<(String, f64)>,
}

/// Run one back-to-back trial at grid size `n`.
pub fn run_trial(n: usize, iterations: usize, seed: u64, profile: LoadProfile) -> TrialResult {
    let tb = pcl_sdsc(&TestbedConfig {
        profile,
        horizon: SimTime::from_secs(400_000),
        seed,
        with_sp2: false,
    })
    .expect("testbed");
    let workstations = tb.workstations();
    let (hat, user) = jacobi_context(n, iterations);

    // Warm the Weather Service, then schedule.
    let mut ws = WeatherService::for_topology(&tb.topo, WeatherServiceConfig::default());
    ws.advance(&tb.topo, WARMUP);

    // AppLeS: the full blueprint over NWS forecasts.
    let pool = InfoPool::with_nws(&tb.topo, &ws, &hat, &user, WARMUP);
    let apples_sched = apples_stencil_schedule(&pool).expect("apples plan");
    let t = hat.as_stencil().expect("stencil HAT");
    let apples_out =
        simulate_spmd(&tb.topo, &apples_sched.to_spmd_job(t, WARMUP)).expect("apples run");

    // Static non-uniform strips over every workstation (Figure 4's
    // compile-time partition).
    let strip_sched = static_strip(&tb.topo, n, iterations, &workstations);
    let strip_out =
        simulate_spmd(&tb.topo, &strip_sched.to_spmd_job(t, WARMUP)).expect("strip run");

    // HPF uniform blocked over every workstation.
    let blocked_sched = blocked_uniform(n, iterations, &workstations);
    let blocked_out =
        simulate_spmd(&tb.topo, &blocked_sched.to_spmd_job(t, WARMUP)).expect("blocked run");

    let apples_fractions = apples_sched
        .parts
        .iter()
        .map(|p| {
            let name = tb.topo.host(p.host).expect("host").spec.name.clone();
            (name, p.rows as f64 / n as f64)
        })
        .collect();

    TrialResult {
        apples_s: apples_out.makespan(WARMUP).as_secs_f64(),
        strip_s: strip_out.makespan(WARMUP).as_secs_f64(),
        blocked_s: blocked_out.makespan(WARMUP).as_secs_f64(),
        apples_fractions,
    }
}

/// One averaged row of Figure 5.
#[derive(Debug, Clone)]
pub struct Fig5Row {
    /// Grid edge length.
    pub n: usize,
    /// AppLeS execution-time statistics over the trials.
    pub apples: Stats,
    /// Static strip statistics.
    pub strip: Stats,
    /// Blocked statistics.
    pub blocked: Stats,
}

impl Fig5Row {
    /// Mean speedup of AppLeS over the static strip partition.
    pub fn strip_ratio(&self) -> f64 {
        self.strip.mean / self.apples.mean
    }

    /// Mean speedup of AppLeS over the blocked partition.
    pub fn blocked_ratio(&self) -> f64 {
        self.blocked.mean / self.apples.mean
    }
}

/// Run the full Figure 5 sweep. Trials are independent (each has its
/// own testbed realization), so they fan out across threads.
pub fn run(cfg: &Fig5Config) -> Vec<Fig5Row> {
    cfg.sizes
        .iter()
        .map(|&n| {
            let trials: Vec<TrialResult> = crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = (0..cfg.trials)
                    .map(|i| {
                        let seed = cfg.base_seed + i as u64;
                        scope.spawn(move |_| run_trial(n, cfg.iterations, seed, cfg.profile))
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("trial thread"))
                    .collect()
            })
            .expect("trial scope");
            let apples: Vec<f64> = trials.iter().map(|r| r.apples_s).collect();
            let strip: Vec<f64> = trials.iter().map(|r| r.strip_s).collect();
            let blocked: Vec<f64> = trials.iter().map(|r| r.blocked_s).collect();
            Fig5Row {
                n,
                apples: Stats::from_samples(&apples).expect("trials"),
                strip: Stats::from_samples(&strip).expect("trials"),
                blocked: Stats::from_samples(&blocked).expect("trials"),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apples_beats_both_static_partitions() {
        // A reduced-size trial (fewer iterations, one seed) must still
        // show the Figure 5 ordering.
        let r = run_trial(1000, 30, 42, LoadProfile::Moderate);
        assert!(
            r.apples_s < r.strip_s,
            "apples {} vs strip {}",
            r.apples_s,
            r.strip_s
        );
        assert!(
            r.apples_s < r.blocked_s,
            "apples {} vs blocked {}",
            r.apples_s,
            r.blocked_s
        );
    }

    #[test]
    fn apples_fractions_are_a_partition() {
        let r = run_trial(1000, 10, 7, LoadProfile::Moderate);
        let total: f64 = r.apples_fractions.iter().map(|&(_, f)| f).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn trials_are_deterministic_per_seed() {
        let a = run_trial(1000, 10, 9, LoadProfile::Moderate);
        let b = run_trial(1000, 10, 9, LoadProfile::Moderate);
        assert_eq!(a, b);
    }
}
