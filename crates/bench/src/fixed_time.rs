//! Fixed-time (Gustafson) scaling — the paper's §3.1 notes that users
//! optimize "execution time, speedup (fixed-size or fixed-time \[12\])";
//! this experiment measures the *fixed-time* view: given a wall-clock
//! budget, what is the largest Jacobi2D grid each partitioning
//! strategy can finish on the non-dedicated testbed?
//!
//! The answer tracks Figure 5 from a different angle: a scheduler that
//! wrings 2× more throughput from the same resources solves a √2-times
//! larger grid edge in the same time.

use apples::info::InfoPool;
use apples_apps::jacobi2d::partition::jacobi_context;
use apples_apps::jacobi2d::{apples_stencil_schedule, blocked_uniform, static_strip};
use metasim::exec::simulate_spmd;
use metasim::testbed::{pcl_sdsc, LoadProfile, Testbed, TestbedConfig};
use metasim::SimTime;
use nws::{WeatherService, WeatherServiceConfig};

/// The strategies compared.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// The AppLeS agent (NWS-informed strips).
    Apples,
    /// Static non-uniform strips from nominal speeds.
    StaticStrip,
    /// HPF uniform blocked over all workstations.
    Blocked,
}

impl Strategy {
    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            Strategy::Apples => "AppLeS",
            Strategy::StaticStrip => "static Strip",
            Strategy::Blocked => "HPF Blocked",
        }
    }
}

/// Simulated seconds for one strategy at grid size `n` on a fresh
/// testbed realization.
pub fn measure(strategy: Strategy, n: usize, iterations: usize, seed: u64) -> f64 {
    let warmup = SimTime::from_secs(600);
    let tb: Testbed = pcl_sdsc(&TestbedConfig {
        profile: LoadProfile::Moderate,
        horizon: SimTime::from_secs(400_000),
        seed,
        with_sp2: false,
    })
    .expect("testbed");
    let (hat, user) = jacobi_context(n, iterations);
    let t = hat.as_stencil().expect("stencil");
    let hosts = tb.workstations();
    let job = match strategy {
        Strategy::Apples => {
            let mut ws = WeatherService::for_topology(&tb.topo, WeatherServiceConfig::default());
            ws.advance(&tb.topo, warmup);
            let pool = InfoPool::with_nws(&tb.topo, &ws, &hat, &user, warmup);
            apples_stencil_schedule(&pool)
                .expect("plan")
                .to_spmd_job(t, warmup)
        }
        Strategy::StaticStrip => {
            static_strip(&tb.topo, n, iterations, &hosts).to_spmd_job(t, warmup)
        }
        Strategy::Blocked => blocked_uniform(n, iterations, &hosts).to_spmd_job(t, warmup),
    };
    simulate_spmd(&tb.topo, &job)
        .expect("run")
        .makespan(warmup)
        .as_secs_f64()
}

/// Largest grid edge the strategy finishes within `budget_seconds`
/// (bisection over n, verified by simulation at every probe).
pub fn largest_grid_within(
    strategy: Strategy,
    budget_seconds: f64,
    iterations: usize,
    seed: u64,
) -> usize {
    let fits = |n: usize| measure(strategy, n, iterations, seed) <= budget_seconds;
    // Exponential search for an upper bound.
    let mut lo = 100usize;
    if !fits(lo) {
        return 0;
    }
    let mut hi = lo * 2;
    while fits(hi) {
        lo = hi;
        hi *= 2;
        if hi > 64_000 {
            return lo;
        }
    }
    // Bisect (grid sizes rounded to multiples of 50 to bound probes).
    while hi - lo > 50 {
        let mid = (lo + hi) / 2 / 50 * 50;
        if mid == lo {
            break;
        }
        if fits(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    lo
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn apples_solves_the_largest_grid_in_fixed_time() {
        let budget = 10.0;
        let iters = 40;
        let apples = largest_grid_within(Strategy::Apples, budget, iters, 1996);
        let strip = largest_grid_within(Strategy::StaticStrip, budget, iters, 1996);
        let blocked = largest_grid_within(Strategy::Blocked, budget, iters, 1996);
        assert!(
            apples > strip && strip > blocked,
            "fixed-time sizes: apples {apples}, strip {strip}, blocked {blocked}"
        );
        // Figure 5's ~2x strip gap implies ~sqrt(2) in grid edge.
        assert!(
            (apples as f64) > 1.2 * strip as f64,
            "apples {apples} vs strip {strip}"
        );
    }

    #[test]
    fn measurement_grows_with_problem_size() {
        let small = measure(Strategy::StaticStrip, 600, 20, 7);
        let large = measure(Strategy::StaticStrip, 1200, 20, 7);
        assert!(large > 2.0 * small);
    }

    #[test]
    fn impossible_budget_returns_zero() {
        assert_eq!(largest_grid_within(Strategy::Blocked, 1e-6, 40, 7), 0);
    }
}
