//! T-EST: how well the Performance Estimator's closed-form §5 model
//! predicts the simulator's ground truth, across many random schedules
//! and load realizations.
//!
//! "It is important to recognize that a schedule is only as good as
//! the accuracy of its underlying predictions" (§3.6) — this
//! experiment measures those predictions directly: predicted vs
//! simulated execution time, summarized as a ratio distribution.

use apples::estimator::estimate_stencil;
use apples::info::{ForecastSource, InfoPool};
use apples::schedule::{StencilPart, StencilSchedule};
use apples_apps::jacobi2d::partition::jacobi_context;
use metasim::exec::simulate_spmd;
use metasim::testbed::{pcl_sdsc, LoadProfile, TestbedConfig};
use metasim::trace::Stats;
use metasim::{HostId, SimTime};
use nws::{WeatherService, WeatherServiceConfig};
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One prediction-vs-reality sample.
#[derive(Debug, Clone)]
pub struct EstimatorSample {
    /// Number of hosts in the random schedule.
    pub hosts: usize,
    /// Predicted seconds (NWS-parameterized §5 model).
    pub predicted: f64,
    /// Simulated seconds (ground truth).
    pub simulated: f64,
}

impl EstimatorSample {
    /// predicted / simulated.
    pub fn ratio(&self) -> f64 {
        self.predicted / self.simulated
    }
}

/// Generate a random valid strip schedule over a subset of hosts.
fn random_schedule(
    rng: &mut ChaCha8Rng,
    all_hosts: &[HostId],
    n: usize,
    iterations: usize,
) -> StencilSchedule {
    let k = rng.gen_range(1..=all_hosts.len().min(6));
    let mut hosts = all_hosts.to_vec();
    hosts.shuffle(rng);
    hosts.truncate(k);
    // Random positive rows summing to n.
    let mut cuts: Vec<usize> = (0..k - 1).map(|_| rng.gen_range(1..n)).collect();
    cuts.sort_unstable();
    cuts.dedup();
    while cuts.len() < k - 1 {
        let c = rng.gen_range(1..n);
        if !cuts.contains(&c) {
            cuts.push(c);
            cuts.sort_unstable();
        }
    }
    let mut parts = Vec::with_capacity(k);
    let mut prev = 0;
    for (i, &host) in hosts.iter().enumerate() {
        let end = if i + 1 == k { n } else { cuts[i] };
        parts.push(StencilPart {
            host,
            rows: end - prev,
        });
        prev = end;
    }
    StencilSchedule {
        n,
        iterations,
        parts,
    }
}

/// Run the accuracy sweep: `samples` random schedules on the Figure 2
/// testbed, predicted with NWS information and simulated for real.
pub fn run(samples: usize, seed: u64) -> (Vec<EstimatorSample>, Stats) {
    let warmup = SimTime::from_secs(600);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut out = Vec::with_capacity(samples);

    for i in 0..samples {
        let tb = pcl_sdsc(&TestbedConfig {
            profile: LoadProfile::Moderate,
            horizon: SimTime::from_secs(400_000),
            seed: seed.wrapping_add(i as u64 * 7919),
            with_sp2: false,
        })
        .expect("testbed");
        let n = *[800usize, 1200, 1600, 2000]
            .choose(&mut rng)
            .expect("sizes");
        let (hat, user) = jacobi_context(n, 40);
        let t = hat.as_stencil().expect("stencil");
        let mut ws = WeatherService::for_topology(&tb.topo, WeatherServiceConfig::default());
        ws.advance(&tb.topo, warmup);
        let mut pool = InfoPool::with_nws(&tb.topo, &ws, &hat, &user, warmup);
        pool.source = ForecastSource::Nws;

        let sched = random_schedule(&mut rng, &tb.workstations(), n, 40);
        let Ok(predicted) = estimate_stencil(&pool, &sched) else {
            continue;
        };
        let Ok(outcome) = simulate_spmd(&tb.topo, &sched.to_spmd_job(t, warmup)) else {
            continue;
        };
        out.push(EstimatorSample {
            hosts: sched.parts.len(),
            predicted,
            simulated: outcome.makespan(warmup).as_secs_f64(),
        });
    }
    let ratios: Vec<f64> = out.iter().map(|s| s.ratio()).collect();
    let stats = Stats::from_samples(&ratios).expect("samples");
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_is_calibrated_on_random_schedules() {
        let (samples, stats) = run(30, 2027);
        assert!(samples.len() >= 25, "too many failed samples");
        // Median prediction within a factor of two of reality, and the
        // bulk of the distribution reasonably tight.
        assert!(
            (0.5..2.0).contains(&stats.median),
            "median ratio {} out of band",
            stats.median
        );
        assert!(
            stats.min > 0.2 && stats.max < 5.0,
            "ratio tails too wide: [{}, {}]",
            stats.min,
            stats.max
        );
    }

    #[test]
    fn random_schedules_are_valid() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        let hosts: Vec<HostId> = (0..8).map(HostId).collect();
        for _ in 0..200 {
            let s = random_schedule(&mut rng, &hosts, 500, 10);
            assert!(s.validate().is_ok());
        }
    }
}
