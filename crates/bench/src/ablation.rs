//! Ablations over the design choices DESIGN.md calls out.
//!
//! * **Forecast source** (§3.6): the same AppLeS blueprint driven by
//!   NWS forecasts, raw last measurements, a perfect oracle, and
//!   static nominal speeds. The gap between Oracle and NWS is the cost
//!   of imperfect prediction; the gap between NWS and StaticNominal is
//!   the value of dynamic information — the paper's core claim.
//! * **Resource-set search** (§4.2): exhaustive subset enumeration
//!   versus greedy distance-ranked prefixes.

use apples::coordinator::Coordinator;
use apples::info::{ForecastSource, InfoPool};
use apples::schedule::Schedule;
use apples::selector::{CandidateStrategy, ResourceSelector};
use apples_apps::jacobi2d::partition::jacobi_context;
use metasim::exec::simulate_spmd;
use metasim::testbed::{pcl_sdsc, LoadProfile, TestbedConfig};
use metasim::trace::Stats;
use metasim::SimTime;
use nws::{WeatherService, WeatherServiceConfig};

/// NWS warm-up before scheduling.
pub const WARMUP: SimTime = SimTime::from_secs(600);

/// The forecast sources compared, with display names.
pub const SOURCES: &[(ForecastSource, &str)] = &[
    (ForecastSource::Oracle, "oracle"),
    (ForecastSource::Nws, "nws"),
    (ForecastSource::LastValue, "last-value"),
    (ForecastSource::StaticNominal, "static-nominal"),
];

/// Execution time of the blueprint's chosen schedule when the pool is
/// fed from `source`, on the standard testbed.
pub fn forecast_trial(n: usize, iterations: usize, seed: u64, source: ForecastSource) -> f64 {
    let tb = pcl_sdsc(&TestbedConfig {
        profile: LoadProfile::Moderate,
        horizon: SimTime::from_secs(400_000),
        seed,
        with_sp2: false,
    })
    .expect("testbed");
    let (hat, user) = jacobi_context(n, iterations);
    let t = hat.as_stencil().expect("stencil");

    let mut ws = WeatherService::for_topology(&tb.topo, WeatherServiceConfig::default());
    ws.advance(&tb.topo, WARMUP);

    let mut pool = InfoPool::with_nws(&tb.topo, &ws, &hat, &user, WARMUP);
    pool.source = source;
    // The oracle averages the true availability over the window the
    // run will actually occupy; a window far longer than the run
    // would smear out exactly the fluctuations that matter.
    pool.oracle_window = SimTime::from_secs(60);
    let agent = Coordinator::new(hat.clone(), user.clone());
    let decision = agent.decide(&pool).expect("decision");
    let sched = match decision.schedule() {
        Schedule::Stencil(s) => s.clone(),
        other => panic!("unexpected schedule {other:?}"),
    };
    simulate_spmd(&tb.topo, &sched.to_spmd_job(t, WARMUP))
        .expect("run")
        .makespan(WARMUP)
        .as_secs_f64()
}

/// Averaged forecast-source ablation: `(name, execution-time stats)`.
pub fn forecast_ablation(
    n: usize,
    iterations: usize,
    trials: usize,
    base_seed: u64,
) -> Vec<(&'static str, Stats)> {
    SOURCES
        .iter()
        .map(|&(source, name)| {
            let samples: Vec<f64> = (0..trials)
                .map(|i| forecast_trial(n, iterations, base_seed + i as u64, source))
                .collect();
            (name, Stats::from_samples(&samples).expect("trials"))
        })
        .collect()
}

/// §3.6 with a knob: degrade the NWS sensors with measurement noise
/// and watch schedule quality respond. Returns `(noise amplitude,
/// execution-time stats)` per level.
pub fn noise_ablation(
    n: usize,
    iterations: usize,
    trials: usize,
    base_seed: u64,
    levels: &[f64],
) -> Vec<(f64, Stats)> {
    levels
        .iter()
        .map(|&noise| {
            let samples: Vec<f64> = (0..trials)
                .map(|i| noise_trial(n, iterations, base_seed + i as u64, noise))
                .collect();
            (noise, Stats::from_samples(&samples).expect("trials"))
        })
        .collect()
}

/// One trial with the given sensor-noise amplitude.
pub fn noise_trial(n: usize, iterations: usize, seed: u64, noise: f64) -> f64 {
    let tb = pcl_sdsc(&TestbedConfig {
        profile: LoadProfile::Moderate,
        horizon: SimTime::from_secs(400_000),
        seed,
        with_sp2: false,
    })
    .expect("testbed");
    let (hat, user) = jacobi_context(n, iterations);
    let t = hat.as_stencil().expect("stencil");

    let cfg = nws::WeatherServiceConfig {
        cpu_noise: noise,
        link_noise: noise,
        noise_seed: seed,
        ..Default::default()
    };
    let mut ws = WeatherService::for_topology(&tb.topo, cfg);
    ws.advance(&tb.topo, WARMUP);

    let pool = InfoPool::with_nws(&tb.topo, &ws, &hat, &user, WARMUP);
    let agent = Coordinator::new(hat.clone(), user.clone());
    let decision = agent.decide(&pool).expect("decision");
    let sched = match decision.schedule() {
        Schedule::Stencil(s) => s.clone(),
        other => panic!("unexpected schedule {other:?}"),
    };
    simulate_spmd(&tb.topo, &sched.to_spmd_job(t, WARMUP))
        .expect("run")
        .makespan(WARMUP)
        .as_secs_f64()
}

/// Result of one selection-strategy comparison.
#[derive(Debug, Clone)]
pub struct SelectionTrial {
    /// Candidates the exhaustive search evaluated.
    pub exhaustive_candidates: usize,
    /// Candidates the greedy search evaluated.
    pub greedy_candidates: usize,
    /// Actuated seconds of the exhaustive winner.
    pub exhaustive_s: f64,
    /// Actuated seconds of the greedy winner.
    pub greedy_s: f64,
}

/// Compare exhaustive vs greedy candidate generation on one trial.
pub fn selection_trial(n: usize, iterations: usize, seed: u64) -> SelectionTrial {
    let tb = pcl_sdsc(&TestbedConfig {
        profile: LoadProfile::Moderate,
        horizon: SimTime::from_secs(400_000),
        seed,
        with_sp2: false,
    })
    .expect("testbed");
    let (hat, user) = jacobi_context(n, iterations);
    let t = hat.as_stencil().expect("stencil");
    let mut ws = WeatherService::for_topology(&tb.topo, WeatherServiceConfig::default());
    ws.advance(&tb.topo, WARMUP);
    let pool = InfoPool::with_nws(&tb.topo, &ws, &hat, &user, WARMUP);

    let run_with = |strategy: CandidateStrategy| {
        let mut agent = Coordinator::new(hat.clone(), user.clone());
        agent.selector = ResourceSelector { strategy };
        let d = agent.decide(&pool).expect("decision");
        let sched = match d.schedule() {
            Schedule::Stencil(s) => s.clone(),
            other => panic!("unexpected schedule {other:?}"),
        };
        let secs = simulate_spmd(&tb.topo, &sched.to_spmd_job(t, WARMUP))
            .expect("run")
            .makespan(WARMUP)
            .as_secs_f64();
        (d.considered.len() + d.rejected, secs)
    };

    let (exhaustive_candidates, exhaustive_s) = run_with(CandidateStrategy::Exhaustive);
    let (greedy_candidates, greedy_s) = run_with(CandidateStrategy::GreedyPrefixes);
    SelectionTrial {
        exhaustive_candidates,
        greedy_candidates,
        exhaustive_s,
        greedy_s,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_information_beats_static() {
        // Average a few seeds: NWS-informed schedules must beat
        // static-nominal ones clearly on a loaded testbed.
        let trials = 3;
        let rows = forecast_ablation(1000, 30, trials, 11);
        let get = |name: &str| {
            rows.iter()
                .find(|(n, _)| *n == name)
                .map(|(_, s)| s.mean)
                .expect("row")
        };
        assert!(
            get("nws") < get("static-nominal"),
            "nws {} vs static {}",
            get("nws"),
            get("static-nominal")
        );
        // The oracle can't be (meaningfully) worse than static either.
        assert!(get("oracle") < get("static-nominal"));
    }

    #[test]
    fn extreme_sensor_noise_degrades_schedules() {
        let rows = noise_ablation(1000, 30, 3, 13, &[0.0, 0.8]);
        let clean = rows[0].1.mean;
        let noisy = rows[1].1.mean;
        assert!(
            noisy > clean,
            "noise 0.8 ({noisy:.2}s) should hurt vs clean ({clean:.2}s)"
        );
    }

    #[test]
    fn greedy_search_considers_far_fewer_candidates() {
        let t = selection_trial(1000, 20, 5);
        assert!(t.exhaustive_candidates > 100); // 2^8 - 1 = 255 sets
        assert!(t.greedy_candidates <= 8);
        // The greedy winner should be within ~2.5x of exhaustive.
        assert!(
            t.greedy_s < 2.5 * t.exhaustive_s,
            "greedy {} vs exhaustive {}",
            t.greedy_s,
            t.exhaustive_s
        );
    }
}
