//! T-SCALE: events/sec of the simulation core — the incremental
//! dirty-set engine (`simulate_transfers_counting`) against the naive
//! full-recompute baseline (`simulate_transfers_reference`) on a seeded
//! synthetic fleet, swept over host and job counts.
//!
//! The scenario is a star of shared Ethernet-class segments (~8 hosts
//! each) hung off a backbone segment, every link carrying a periodic
//! background load so availability-change events fire throughout the
//! run. Transfers are mostly segment-local (the locality that makes
//! dirty sets small) with a cross-segment minority that exercises
//! multi-hop routes. Both engines consume the identical request batch
//! and their delivered times are cross-checked before any timing is
//! reported — a benchmark of a wrong answer is worthless.
//!
//! Beyond the synthetic fleet, `run_topo_point` runs the same
//! cross-checked comparison on any [`topogen`] family
//! (`fat-tree:k=8`, `clusters:clusters=16`, ...) — the default sweep
//! includes a 1024-host generated fat-tree.
//!
//! `run_sweep` produces the `BENCH_event_engine.json` trajectory file
//! at the repo root; `parse_results` validates it (the CI gate and
//! `apples-cli bench --check` both call it): event counts must agree
//! within [`EVENT_COUNT_TOLERANCE`] and the incremental engine must be
//! faster at or above [`SPEEDUP_CROSSOVER_HOSTS`] hosts.

use metasim::host::HostSpec;
use metasim::load::LoadModel;
use metasim::net::{simulate_transfers_counting, simulate_transfers_reference, TransferReq};
use metasim::net::{LinkSpec, Topology, TopologyBuilder};
use metasim::simtrace::NoopSink;
use metasim::topogen::{self, TopoGenConfig, TopoSpec};
use metasim::{HostId, SimTime};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Hosts attached to each shared segment.
const HOSTS_PER_SEGMENT: usize = 8;
/// Fraction of transfers whose endpoints share a segment.
const LOCALITY: f64 = 0.85;

/// Both engines implement the same event metric (arrivals + finishes +
/// availability changes on loaded links). Since the counting was
/// unified behind one shared walker, the two engines agree exactly at
/// every recorded bench point, so the gate is zero: any disagreement
/// at all is a real counting bug, and a nonzero tolerance would let a
/// regression hide inside it.
pub const EVENT_COUNT_TOLERANCE: u64 = 0;

/// Below ~this many hosts the incremental engine's dirty-set
/// bookkeeping costs more than the recompute it avoids; speedup < 1 is
/// expected and recorded, not an error (see EXPERIMENTS.md T-SCALE).
/// At or above it the incremental engine must win.
pub const SPEEDUP_CROSSOVER_HOSTS: usize = 100;

/// One (hosts, jobs) sweep point's measurements.
#[derive(Debug, Clone, PartialEq)]
pub struct EnginePoint {
    /// Topology the point ran on: `"fleet"` for the synthetic star, or
    /// a [`TopoSpec`] label like `fat-tree:l2=8,l1=128,hosts=8`.
    pub topo: String,
    /// Host count of the synthetic fleet.
    pub hosts: usize,
    /// Transfer (job) count pushed through it.
    pub jobs: usize,
    /// Workload seed.
    pub seed: u64,
    /// Events processed and wall-clock seconds, incremental engine.
    pub inc_events: u64,
    /// Wall-clock seconds of the incremental run.
    pub inc_secs: f64,
    /// Events processed by the full-recompute baseline.
    pub ref_events: u64,
    /// Wall-clock seconds of the baseline run.
    pub ref_secs: f64,
}

impl EnginePoint {
    /// Incremental events per second.
    pub fn inc_events_per_sec(&self) -> f64 {
        per_sec(self.inc_events as f64, self.inc_secs)
    }

    /// Baseline events per second.
    pub fn ref_events_per_sec(&self) -> f64 {
        per_sec(self.ref_events as f64, self.ref_secs)
    }

    /// Incremental jobs (transfers) per second.
    pub fn inc_jobs_per_sec(&self) -> f64 {
        per_sec(self.jobs as f64, self.inc_secs)
    }

    /// events/sec advantage of the incremental engine over the baseline.
    pub fn speedup(&self) -> f64 {
        let r = self.ref_events_per_sec();
        if r > 0.0 {
            self.inc_events_per_sec() / r
        } else {
            f64::INFINITY
        }
    }

    /// Absolute difference between the engines' event counts.
    pub fn events_delta(&self) -> u64 {
        self.inc_events.abs_diff(self.ref_events)
    }
}

fn per_sec(n: f64, secs: f64) -> f64 {
    if secs > 0.0 {
        n / secs
    } else {
        f64::INFINITY
    }
}

/// Build the synthetic fleet: `ceil(hosts/8)` shared segments in a star
/// around a backbone segment, periodic background load everywhere.
pub fn build_fleet(hosts: usize, horizon: SimTime, seed: u64) -> Topology {
    let hosts = hosts.max(2);
    let n_seg = hosts.div_ceil(HOSTS_PER_SEGMENT);
    let mut b = TopologyBuilder::new();
    let backbone = b.add_segment(LinkSpec::shared(
        "backbone",
        120.0,
        SimTime::from_millis(2),
        LoadModel::Periodic {
            high: 1.0,
            low: 0.7,
            half_period: SimTime::from_secs(30),
            phase: SimTime::ZERO,
        },
    ));
    let mut segs = Vec::with_capacity(n_seg);
    for i in 0..n_seg {
        let seg = b.add_segment(LinkSpec::shared(
            &format!("seg{i}"),
            12.5,
            SimTime::from_millis(1),
            LoadModel::Periodic {
                high: 1.0,
                low: 0.6,
                // Staggered phases so segment events don't all
                // coincide at the same timestamps.
                half_period: SimTime::from_secs(20),
                phase: SimTime::from_millis(1700 * i as u64 % 20_000),
            },
        ));
        b.connect(
            backbone,
            seg,
            LinkSpec::dedicated(&format!("up{i}"), 40.0, SimTime::from_millis(1)),
        );
        segs.push(seg);
    }
    for h in 0..hosts {
        b.add_host(HostSpec::dedicated(
            &format!("h{h}"),
            10.0,
            256.0,
            segs[h / HOSTS_PER_SEGMENT],
        ));
    }
    b.instantiate(horizon, seed)
        // simlint does not police bench crates, but stay graceful: the
        // builder only fails on invalid specs, which are constants here.
        .unwrap_or_else(|e| panic!("fleet build failed: {e}"))
}

/// Generate the seeded transfer batch: `LOCALITY` of the flows stay on
/// their source segment, the rest cross the wider topology. Locality
/// groups come from each host's actual segment, so the same generator
/// drives the synthetic fleet and any [`topogen`] family.
pub fn build_workload(topo: &Topology, jobs: usize, seed: u64) -> Vec<TransferReq> {
    let hosts = topo.hosts().len();
    // Hosts sharing a segment, in host-id order, and each host's index
    // within its group.
    let mut seg_hosts: Vec<Vec<usize>> = vec![Vec::new(); topo.segment_count()];
    let mut seg_of = Vec::with_capacity(hosts);
    let mut pos_in_seg = Vec::with_capacity(hosts);
    for h in topo.hosts() {
        let s = h.spec.segment.0;
        seg_of.push(s);
        pos_in_seg.push(seg_hosts[s].len());
        seg_hosts[s].push(h.id.0);
    }
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xBE7C_11E5);
    // Submission window scales with per-host pressure so concurrency
    // stays in a realistic band across the sweep.
    let window_secs = (jobs as f64 / hosts as f64 * 12.0).max(60.0);
    let mut reqs = Vec::with_capacity(jobs);
    for tag in 0..jobs {
        let from = rng.gen_range(0..hosts);
        let peers = &seg_hosts[seg_of[from]];
        let local = rng.gen_range(0.0..1.0) < LOCALITY && peers.len() > 1;
        let to = if local {
            let mut t = peers[rng.gen_range(0..peers.len())];
            if t == from {
                t = peers[(pos_in_seg[from] + 1) % peers.len()];
            }
            t
        } else {
            let mut t = rng.gen_range(0..hosts);
            if t == from {
                t = (t + 1) % hosts;
            }
            t
        };
        reqs.push(TransferReq {
            from: HostId(from),
            to: HostId(to),
            mb: 0.5 + rng.gen_range(0.0..7.5),
            start: SimTime::from_secs_f64(rng.gen_range(0.0..window_secs)),
            tag,
        });
    }
    reqs
}

fn submission_window_secs(hosts: usize, jobs: usize) -> f64 {
    (jobs as f64 / hosts.max(2) as f64 * 12.0).max(60.0)
}

/// Run both engines over `jobs` seeded transfers on an already-built
/// topology and time them. The engines' delivered times are
/// cross-checked (±2 µs, the lazy-integration quantization slack) and
/// their event counts must agree within [`EVENT_COUNT_TOLERANCE`]
/// before timings are accepted.
pub fn run_point_on(
    topo_label: &str,
    topo: &Topology,
    jobs: usize,
    seed: u64,
) -> Result<EnginePoint, String> {
    let hosts = topo.hosts().len();
    let reqs = build_workload(topo, jobs, seed);

    let t0 = std::time::Instant::now();
    let (inc_results, inc_events) = simulate_transfers_counting(topo, &reqs, &mut NoopSink)
        .map_err(|e| format!("incremental engine failed: {e}"))?;
    let inc_secs = t0.elapsed().as_secs_f64();

    let t1 = std::time::Instant::now();
    let (ref_results, ref_events) = simulate_transfers_reference(topo, &reqs, &mut NoopSink)
        .map_err(|e| format!("reference engine failed: {e}"))?;
    let ref_secs = t1.elapsed().as_secs_f64();

    for (a, b) in inc_results.iter().zip(&ref_results) {
        let (x, y) = (a.delivered.as_micros(), b.delivered.as_micros());
        if a.tag != b.tag || x.abs_diff(y) > 2 {
            return Err(format!(
                "engines disagree on tag {}: incremental {:?} vs reference {:?}",
                a.tag, a.delivered, b.delivered
            ));
        }
    }
    if inc_events.abs_diff(ref_events) > EVENT_COUNT_TOLERANCE {
        return Err(format!(
            "event counts diverge on {topo_label}: incremental {inc_events} vs reference \
             {ref_events} (tolerance {EVENT_COUNT_TOLERANCE}) — the engines no longer \
             implement the same event metric"
        ));
    }

    Ok(EnginePoint {
        topo: topo_label.to_string(),
        hosts,
        jobs,
        seed,
        inc_events,
        inc_secs,
        ref_events,
        ref_secs,
    })
}

/// Run one synthetic-fleet sweep point.
pub fn run_point(hosts: usize, jobs: usize, seed: u64) -> Result<EnginePoint, String> {
    let window_secs = submission_window_secs(hosts, jobs);
    // Generous horizon: the window plus room for the slowest flows.
    let horizon = SimTime::from_secs_f64(window_secs * 4.0 + 3600.0);
    let topo = build_fleet(hosts, horizon, seed);
    run_point_on("fleet", &topo, jobs, seed)
}

/// Run one sweep point on a generated [`topogen`] topology named by a
/// spec string (`fat-tree:k=8`, `clusters:clusters=16`, ...).
pub fn run_topo_point(spec: &str, jobs: usize, seed: u64) -> Result<EnginePoint, String> {
    let spec = TopoSpec::parse(spec).map_err(|e| e.to_string())?;
    let hosts = spec.host_count();
    let window_secs = submission_window_secs(hosts, jobs);
    let cfg = TopoGenConfig {
        horizon: SimTime::from_secs_f64(window_secs * 4.0 + 3600.0),
        seed,
        ..TopoGenConfig::default()
    };
    let topo = topogen::generate(&spec, &cfg).map_err(|e| e.to_string())?;
    run_point_on(&spec.label(), &topo, jobs, seed)
}

/// Run the full sweep: synthetic-fleet points first, then generated
/// topology points. Points that fail cross-checking abort the sweep:
/// no numbers are better than wrong numbers.
pub fn run_sweep(points: &[(usize, usize)], seed: u64) -> Result<Vec<EnginePoint>, String> {
    points
        .iter()
        .map(|&(hosts, jobs)| run_point(hosts, jobs, seed))
        .collect()
}

/// Run a sweep of generated topologies, `(spec, jobs)` per point.
pub fn run_topo_sweep(points: &[(&str, usize)], seed: u64) -> Result<Vec<EnginePoint>, String> {
    points
        .iter()
        .map(|&(spec, jobs)| run_topo_point(spec, jobs, seed))
        .collect()
}

/// The default trajectory sweep: one decade of hosts per point.
pub const DEFAULT_SWEEP: [(usize, usize); 3] = [(10, 100), (100, 1_000), (1_000, 10_000)];

/// The default generated-topology sweep: a 1024-host k=8 fat-tree, the
/// fleet-scale point the hand-built testbeds could never reach.
pub const DEFAULT_TOPO_SWEEP: [(&str, usize); 1] = [("fat-tree:k=8", 10_000)];

/// Render the sweep as the `BENCH_event_engine.json` document.
pub fn to_json(points: &[EnginePoint]) -> String {
    let mut out = String::from("{\n  \"bench\": \"event_engine\",\n  \"points\": [\n");
    for (i, p) in points.iter().enumerate() {
        let sep = if i + 1 == points.len() { "" } else { "," };
        out.push_str(&format!(
            "    {{\"topo\": \"{}\", \"hosts\": {}, \"jobs\": {}, \"seed\": {}, \
             \"inc_events\": {}, \"inc_secs\": {:.6}, \
             \"ref_events\": {}, \"ref_secs\": {:.6}, \"events_delta\": {}, \
             \"inc_events_per_sec\": {:.1}, \"ref_events_per_sec\": {:.1}, \
             \"inc_jobs_per_sec\": {:.1}, \"speedup\": {:.2}}}{sep}\n",
            p.topo,
            p.hosts,
            p.jobs,
            p.seed,
            p.inc_events,
            p.inc_secs,
            p.ref_events,
            p.ref_secs,
            p.events_delta(),
            p.inc_events_per_sec(),
            p.ref_events_per_sec(),
            p.inc_jobs_per_sec(),
            p.speedup(),
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Render the sweep as an aligned table for terminals.
pub fn to_table(points: &[EnginePoint]) -> String {
    let header = format!(
        "{:<28} {:>6} {:>7} {:>12} {:>12} {:>14} {:>14} {:>8}\n",
        "topo", "hosts", "jobs", "inc ev/s", "ref ev/s", "inc jobs/s", "inc events", "speedup"
    );
    let mut out = header;
    for p in points {
        out.push_str(&format!(
            "{:<28} {:>6} {:>7} {:>12.0} {:>12.0} {:>14.0} {:>14} {:>7.2}x\n",
            p.topo,
            p.hosts,
            p.jobs,
            p.inc_events_per_sec(),
            p.ref_events_per_sec(),
            p.inc_jobs_per_sec(),
            p.inc_events,
            p.speedup(),
        ));
    }
    out
}

fn field_f64(obj: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\": ");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || c == '.' || c == '-' || c == 'e' || c == 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_str<'a>(obj: &'a str, key: &str) -> Option<&'a str> {
    let pat = format!("\"{key}\": \"");
    let start = obj.find(&pat)? + pat.len();
    let rest = &obj[start..];
    rest.split('"').next()
}

/// Parse and validate a `BENCH_event_engine.json` document, returning
/// its sweep points. Errors describe what is malformed or missing —
/// this is the CI artifact gate.
pub fn parse_results(text: &str) -> Result<Vec<EnginePoint>, String> {
    if !text.contains("\"bench\": \"event_engine\"") {
        return Err("not an event_engine bench document".into());
    }
    let arr_start = text
        .find("\"points\": [")
        .ok_or_else(|| "missing points array".to_string())?;
    let body = &text[arr_start..];
    let mut points = Vec::new();
    for obj in body.split('{').skip(1) {
        let obj = obj.split('}').next().unwrap_or("");
        let want = |key: &str| {
            field_f64(obj, key).ok_or_else(|| format!("point missing numeric field {key:?}"))
        };
        points.push(EnginePoint {
            topo: field_str(obj, "topo").unwrap_or("fleet").to_string(),
            hosts: want("hosts")? as usize,
            jobs: want("jobs")? as usize,
            seed: want("seed")? as u64,
            inc_events: want("inc_events")? as u64,
            inc_secs: want("inc_secs")?,
            ref_events: want("ref_events")? as u64,
            ref_secs: want("ref_secs")?,
        });
    }
    if points.is_empty() {
        return Err("points array is empty".into());
    }
    for p in &points {
        if p.hosts == 0 || p.jobs == 0 {
            return Err(format!("degenerate point: {p:?}"));
        }
        if !(p.inc_secs.is_finite() && p.ref_secs.is_finite()) {
            return Err(format!("non-finite timing in point: {p:?}"));
        }
        if p.inc_events == 0 || p.ref_events == 0 {
            return Err(format!("zero event count in point: {p:?}"));
        }
        if p.events_delta() > EVENT_COUNT_TOLERANCE {
            return Err(format!(
                "event counts diverge beyond tolerance {EVENT_COUNT_TOLERANCE} in point: {p:?}"
            ));
        }
        if p.hosts >= SPEEDUP_CROSSOVER_HOSTS && p.speedup() < 1.0 {
            return Err(format!(
                "incremental engine slower than baseline at {} hosts (speedup {:.2}, \
                 crossover is {} hosts): {p:?}",
                p.hosts,
                p.speedup(),
                SPEEDUP_CROSSOVER_HOSTS
            ));
        }
    }
    Ok(points)
}

/// One remembered sweep point from the history trajectory — the
/// structural identity of the point plus the two rates worth
/// trending. Wall-clock rates drift run to run; identity must not.
#[derive(Debug, Clone, PartialEq)]
pub struct HistoryPoint {
    /// Topology label of the point.
    pub topo: String,
    /// Host count.
    pub hosts: usize,
    /// Transfer count.
    pub jobs: usize,
    /// Workload seed.
    pub seed: u64,
    /// events/sec advantage of the incremental engine at record time.
    pub speedup: f64,
    /// Incremental events per second at record time.
    pub inc_events_per_sec: f64,
}

/// Render one run's sweep as a `BENCH_event_engine.history.jsonl`
/// line (no trailing newline). Every `bench` run appends one, so the
/// file is the machine's performance trajectory over time.
pub fn history_line(points: &[EnginePoint]) -> String {
    let mut out = String::from("{\"bench\": \"event_engine\", \"points\": [");
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!(
            "{{\"topo\": \"{}\", \"hosts\": {}, \"jobs\": {}, \"seed\": {}, \
             \"speedup\": {:.2}, \"inc_events_per_sec\": {:.1}}}",
            p.topo,
            p.hosts,
            p.jobs,
            p.seed,
            p.speedup(),
            p.inc_events_per_sec(),
        ));
    }
    out.push_str("]}");
    out
}

/// Parse a history file into one point-vector per recorded run
/// (malformed lines are errors — the file is machine-written).
pub fn parse_history(text: &str) -> Result<Vec<Vec<HistoryPoint>>, String> {
    let mut runs = Vec::new();
    for (n, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        if !line.contains("\"bench\": \"event_engine\"") {
            return Err(format!(
                "history line {}: not an event_engine record",
                n + 1
            ));
        }
        let mut points = Vec::new();
        let body = line
            .find("\"points\": [")
            .map(|i| &line[i..])
            .ok_or_else(|| format!("history line {}: missing points array", n + 1))?;
        for obj in body.split('{').skip(1) {
            let obj = obj.split('}').next().unwrap_or("");
            let want = |key: &str| {
                field_f64(obj, key)
                    .ok_or_else(|| format!("history line {}: missing field {key:?}", n + 1))
            };
            points.push(HistoryPoint {
                topo: field_str(obj, "topo").unwrap_or("fleet").to_string(),
                hosts: want("hosts")? as usize,
                jobs: want("jobs")? as usize,
                seed: want("seed")? as u64,
                speedup: want("speedup")?,
                inc_events_per_sec: want("inc_events_per_sec")?,
            });
        }
        if points.is_empty() {
            return Err(format!("history line {}: empty points array", n + 1));
        }
        runs.push(points);
    }
    Ok(runs)
}

/// Compare a sweep against the last history run. Structural mismatch
/// (different point set or seed) is an error; rate drift is returned
/// as human-readable lines for reporting, because wall-clock rates
/// legitimately move between machines and runs.
pub fn compare_with_history(
    points: &[EnginePoint],
    last: &[HistoryPoint],
) -> Result<Vec<String>, String> {
    if points.len() != last.len() {
        return Err(format!(
            "sweep has {} point(s) but the last history run has {}",
            points.len(),
            last.len()
        ));
    }
    let mut lines = Vec::with_capacity(points.len());
    for (p, h) in points.iter().zip(last) {
        if p.topo != h.topo || p.hosts != h.hosts || p.jobs != h.jobs || p.seed != h.seed {
            return Err(format!(
                "point mismatch vs. history: now {}/{} hosts/{} jobs seed {}, \
                 last {}/{} hosts/{} jobs seed {}",
                p.topo, p.hosts, p.jobs, p.seed, h.topo, h.hosts, h.jobs, h.seed
            ));
        }
        let now = p.speedup();
        let drift = if h.speedup > 0.0 {
            100.0 * (now - h.speedup) / h.speedup
        } else {
            0.0
        };
        lines.push(format!(
            "{:<28} {:>6} hosts: speedup {:.2}x vs {:.2}x last ({:+.1}%)",
            p.topo, p.hosts, now, h.speedup, drift
        ));
    }
    Ok(lines)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engines_agree_on_a_small_fleet() {
        let p = run_point(10, 100, 7).expect("cross-check");
        assert!(p.inc_events > 0 && p.ref_events > 0);
        assert_eq!(p.events_delta(), EVENT_COUNT_TOLERANCE);
    }

    #[test]
    fn engines_agree_on_a_generated_fat_tree() {
        let p = run_topo_point("fat-tree:l2=3,l1=8,hosts=4", 200, 7).expect("cross-check");
        assert_eq!(p.hosts, 32);
        assert_eq!(p.topo, "fat-tree:l2=3,l1=8,hosts=4");
    }

    #[test]
    fn engines_agree_on_generated_clusters() {
        let p = run_topo_point("clusters:clusters=3,segs=2,hosts=4", 200, 7).expect("cross-check");
        assert_eq!(p.hosts, 24);
    }

    #[test]
    fn workload_is_deterministic_per_seed() {
        let topo = build_fleet(16, SimTime::from_secs(10_000), 3);
        assert_eq!(build_workload(&topo, 50, 3), build_workload(&topo, 50, 3));
        assert_ne!(build_workload(&topo, 50, 3), build_workload(&topo, 50, 4));
    }

    #[test]
    fn json_round_trips_through_the_validator() {
        let pts = vec![
            EnginePoint {
                topo: "fleet".into(),
                hosts: 10,
                jobs: 100,
                seed: 42,
                inc_events: 1234,
                inc_secs: 0.0125,
                ref_events: 1234,
                ref_secs: 0.05,
            },
            EnginePoint {
                topo: "fat-tree:l2=8,l1=128,hosts=8".into(),
                hosts: 1024,
                jobs: 10_000,
                seed: 42,
                inc_events: 60_000,
                inc_secs: 0.5,
                ref_events: 60_000,
                ref_secs: 9.5,
            },
        ];
        let parsed = parse_results(&to_json(&pts)).expect("valid");
        assert_eq!(parsed, pts);
    }

    #[test]
    fn validator_rejects_garbage() {
        assert!(parse_results("").is_err());
        assert!(parse_results("{}").is_err());
        assert!(parse_results("{\"bench\": \"event_engine\", \"points\": []}").is_err());
        let truncated = "{\"bench\": \"event_engine\", \"points\": [{\"hosts\": 10}]}";
        assert!(parse_results(truncated).is_err());
    }

    #[test]
    fn history_round_trips_and_compares() {
        let pts = vec![
            EnginePoint {
                topo: "fleet".into(),
                hosts: 10,
                jobs: 100,
                seed: 42,
                inc_events: 1234,
                inc_secs: 0.0125,
                ref_events: 1234,
                ref_secs: 0.05,
            },
            EnginePoint {
                topo: "fat-tree:k=8".into(),
                hosts: 1024,
                jobs: 10_000,
                seed: 42,
                inc_events: 60_000,
                inc_secs: 0.5,
                ref_events: 60_000,
                ref_secs: 9.5,
            },
        ];
        let file = format!("{}\n{}\n", history_line(&pts), history_line(&pts));
        let runs = parse_history(&file).expect("valid history");
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[0][1].hosts, 1024);
        let drift = compare_with_history(&pts, &runs[1]).expect("same shape");
        assert_eq!(drift.len(), 2);
        assert!(drift[0].contains("+0.0%"), "{}", drift[0]);

        // A different point set is a structural error, not drift.
        let mut other = pts.clone();
        other[1].hosts = 512;
        assert!(compare_with_history(&other, &runs[1]).is_err());
        assert!(compare_with_history(&pts[..1], &runs[1]).is_err());
        // Malformed lines are loud.
        assert!(parse_history("{\"bench\": \"other\"}").is_err());
        assert!(parse_history("{\"bench\": \"event_engine\", \"points\": []}").is_err());
    }

    #[test]
    fn validator_rejects_diverged_event_counts_and_late_slowdowns() {
        let base = EnginePoint {
            topo: "fleet".into(),
            hosts: 1000,
            jobs: 10_000,
            seed: 42,
            inc_events: 60_000,
            inc_secs: 0.5,
            ref_events: 60_000,
            ref_secs: 9.5,
        };
        // Event counts differing beyond the tolerance are a counting
        // bug, not timing noise.
        let mut diverged = base.clone();
        diverged.ref_events = base.inc_events - EVENT_COUNT_TOLERANCE - 1;
        assert!(parse_results(&to_json(&[diverged])).is_err());
        // Past the crossover the incremental engine must actually win.
        let mut slow = base.clone();
        slow.inc_secs = 10.0;
        slow.ref_secs = 0.5;
        assert!(parse_results(&to_json(&[slow])).is_err());
        // Below the crossover a slowdown is recorded, not rejected.
        let mut small_slow = base;
        small_slow.hosts = 10;
        small_slow.inc_secs = 0.05;
        small_slow.ref_secs = 0.04;
        assert!(parse_results(&to_json(&[small_slow])).is_ok());
    }
}
