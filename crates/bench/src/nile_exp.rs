//! §2.1's CLEO/NILE skim-vs-remote tradeoff: the Site Manager's
//! decision as a function of how many times the analysis re-runs.

use apples::info::InfoPool;
use apples::user::UserSpec;
use apples_apps::nile::{cleo_analysis_hat, SiteManager};
use metasim::host::HostSpec;
use metasim::load::LoadModel;
use metasim::net::{LinkSpec, TopologyBuilder};
use metasim::{HostId, SimTime, Topology};

/// The NILE experiment testbed: a storage server at the experiment
/// site (Cornell-like) behind a WAN, and a DEC Alpha farm plus two
/// shared workstations at the analysis site — heterogeneous execution
/// and data sites, as in §2.1.
#[derive(Debug, Clone)]
pub struct NileTestbed {
    /// The instantiated system.
    pub topo: Topology,
    /// Storage server holding the event data.
    pub server: HostId,
    /// Analysis-site compute hosts.
    pub compute: Vec<HostId>,
    /// The analysis site's local data host (skim target).
    pub local_site: HostId,
}

/// Build the testbed.
pub fn nile_testbed(seed: u64) -> NileTestbed {
    let mut b = TopologyBuilder::new();
    let exp_site = b.add_segment(LinkSpec::dedicated(
        "experiment-fddi",
        12.5,
        SimTime::from_micros(500),
    ));
    let analysis = b.add_segment(LinkSpec::dedicated(
        "analysis-fddi",
        12.5,
        SimTime::from_micros(500),
    ));
    let wan = b.add_link(LinkSpec::shared(
        "wan",
        0.6,
        SimTime::from_millis(35),
        LoadModel::MarkovOnOff {
            idle_avail: 0.9,
            busy_avail: 0.4,
            mean_idle: SimTime::from_secs(60),
            mean_busy: SimTime::from_secs(20),
        },
    ));
    b.add_route(exp_site, analysis, vec![wan])
        .expect("fresh builder accepts the wan route");

    let server = b.add_host(HostSpec::dedicated("event-store", 25.0, 4096.0, exp_site));
    let mut compute = Vec::new();
    // A dedicated Alpha farm...
    for i in 0..3 {
        compute.push(b.add_host(HostSpec::dedicated(
            &format!("alpha-farm-{i}"),
            40.0,
            256.0,
            analysis,
        )));
    }
    // ...and two non-dedicated workstations.
    for i in 0..2 {
        compute.push(b.add_host(HostSpec::workstation(
            &format!("ws-{i}"),
            25.0,
            128.0,
            analysis,
            LoadModel::RandomWalk {
                start: 0.5,
                step: 0.1,
                interval: SimTime::from_secs(10),
                floor: 0.2,
                ceil: 0.9,
            },
        )));
    }
    let local_site = compute[0];
    NileTestbed {
        topo: b
            .instantiate(SimTime::from_secs(1_000_000), seed)
            .expect("testbed"),
        server,
        compute,
        local_site,
    }
}

/// One row of the skim-tradeoff table.
#[derive(Debug, Clone)]
pub struct NileRow {
    /// Number of analysis runs in the campaign.
    pub runs: usize,
    /// Did the Site Manager choose to skim?
    pub skim: bool,
    /// Predicted seconds for the chosen strategy.
    pub predicted_s: f64,
    /// Predicted seconds for the rejected strategy.
    pub alternative_s: f64,
    /// Actuated (simulated) seconds for the chosen strategy.
    pub measured_s: f64,
}

/// Sweep campaign lengths and record the Site Manager's decisions.
pub fn run(events: u64, runs_sweep: &[usize], seed: u64) -> Vec<NileRow> {
    let tb = nile_testbed(seed);
    let hat = cleo_analysis_hat(events);
    let user = UserSpec::default();
    let pool = InfoPool::static_nominal(&tb.topo, &hat, &user, SimTime::ZERO);

    runs_sweep
        .iter()
        .map(|&runs| {
            let sm = SiteManager {
                runs,
                skim_mb_factor: 3.0,
            };
            let plan = sm
                .plan_campaign(&pool, &tb.compute, tb.server, tb.local_site)
                .expect("campaign plan");
            let measured = sm
                .run_campaign(
                    &tb.topo,
                    &hat,
                    &plan,
                    tb.server,
                    tb.local_site,
                    SimTime::ZERO,
                )
                .expect("campaign run");
            NileRow {
                runs,
                skim: plan.skim,
                predicted_s: plan.predicted_seconds,
                alternative_s: plan.predicted_alternative_seconds,
                measured_s: measured,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decision_crosses_over_with_campaign_length() {
        let rows = run(150_000, &[1, 2, 4, 8, 16], 0);
        assert!(!rows[0].skim, "a single run should stay remote");
        assert!(
            rows.last().unwrap().skim,
            "a long campaign should skim: {rows:?}"
        );
        // Monotone: once skimming wins it keeps winning.
        let first_skim = rows.iter().position(|r| r.skim).expect("some skim");
        assert!(rows[first_skim..].iter().all(|r| r.skim));
    }

    #[test]
    fn measured_times_are_positive_and_ordered() {
        let rows = run(50_000, &[1, 8], 0);
        for r in &rows {
            assert!(r.measured_s > 0.0);
            assert!(r.predicted_s <= r.alternative_s);
        }
        // More runs take longer.
        assert!(rows[1].measured_s > rows[0].measured_s);
    }
}
