//! T-GRID: the multi-tenant job-stream service under an open arrival
//! process — fleet throughput, latency percentiles and per-host
//! utilization when many selfish AppLeS agents share the Figure 2
//! testbed, each observing (or not) the load imposed by the others.

use crate::table;
use apples_grid::metrics::FleetMetrics;
use apples_grid::sweep::{mean_of, sweep_seeds, TrialResult};
use apples_grid::workload::{ArrivalProcess, JobMix, WorkloadConfig};
use apples_grid::GridConfig;
use metasim::SimTime;

/// Parameters of the throughput experiment.
#[derive(Debug, Clone, PartialEq)]
pub struct GridExpConfig {
    /// Mean Poisson arrival rate, jobs per second.
    pub rate_hz: f64,
    /// Submission-window length, seconds.
    pub duration_secs: f64,
    /// Base seed; trial `i` uses `seed + i`.
    pub seed: u64,
    /// Number of independent trials.
    pub trials: usize,
    /// FCFS admission bound.
    pub max_in_flight: usize,
}

impl Default for GridExpConfig {
    fn default() -> Self {
        GridExpConfig {
            rate_hz: 0.02,
            duration_secs: 3600.0,
            seed: 1,
            trials: 1,
            max_in_flight: usize::MAX,
        }
    }
}

/// Run the experiment: `trials` independent streams, in parallel.
pub fn run_trials(cfg: &GridExpConfig) -> Vec<TrialResult> {
    let grid = GridConfig {
        seed: cfg.seed,
        max_in_flight: cfg.max_in_flight,
        ..GridConfig::default()
    };
    let workload = WorkloadConfig {
        arrivals: ArrivalProcess::Poisson {
            rate_hz: cfg.rate_hz,
        },
        mix: JobMix::default_mix(),
        duration: SimTime::from_secs_f64(cfg.duration_secs),
        seed: cfg.seed,
        ..WorkloadConfig::default()
    };
    let seeds: Vec<u64> = (0..cfg.trials as u64).map(|i| cfg.seed + i).collect();
    sweep_seeds(&grid, &workload, &seeds).expect("grid sweep")
}

/// The fleet metrics of one trial as a two-column table.
pub fn fleet_table(fleet: &FleetMetrics) -> String {
    let rows = vec![
        vec!["jobs completed".into(), format!("{}", fleet.jobs_completed)],
        vec![
            "throughput /h".into(),
            format!("{:.2}", fleet.throughput_per_hour),
        ],
        vec!["mean wait s".into(), table::secs(fleet.mean_wait_seconds)],
        vec!["mean exec s".into(), table::secs(fleet.mean_exec_seconds)],
        vec![
            "mean slowdown".into(),
            format!("{:.3}", fleet.mean_slowdown),
        ],
        vec!["latency p50 s".into(), table::secs(fleet.latency_p50)],
        vec!["latency p95 s".into(), table::secs(fleet.latency_p95)],
        vec!["latency p99 s".into(), table::secs(fleet.latency_p99)],
    ];
    table::render(&["fleet metric", "value"], &rows)
}

/// Per-host demand utilization as a table.
pub fn utilization_table(fleet: &FleetMetrics) -> String {
    let rows: Vec<Vec<String>> = fleet
        .host_utilization
        .iter()
        .map(|(name, u)| vec![name.clone(), format!("{:.3}", u)])
        .collect();
    table::render(&["host", "utilization"], &rows)
}

/// Cross-trial summary line.
pub fn sweep_summary(trials: &[TrialResult]) -> String {
    format!(
        "{} trial(s): mean throughput {:.2}/h, mean slowdown {:.3}, mean p95 latency {:.1} s",
        trials.len(),
        mean_of(trials, |m| m.throughput_per_hour),
        mean_of(trials, |m| m.mean_slowdown),
        mean_of(trials, |m| m.latency_p95),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn experiment_runs_and_renders() {
        let cfg = GridExpConfig {
            rate_hz: 0.005,
            duration_secs: 1200.0,
            trials: 2,
            ..GridExpConfig::default()
        };
        let trials = run_trials(&cfg);
        assert_eq!(trials.len(), 2);
        let t = fleet_table(&trials[0].fleet);
        assert!(t.contains("throughput /h"));
        assert!(utilization_table(&trials[0].fleet).contains("utilization"));
        assert!(sweep_summary(&trials).contains("2 trial(s)"));
    }
}
