//! Scheduling regimes: the same seeded job stream under three policies.
//!
//! The paper's thesis is that applications schedule *themselves*
//! ("everything in the system is evaluated in terms of its impact on
//! the application") — the selfish-agent stream in [`crate::service`]
//! is that world. This module puts the alternative worlds next to it,
//! over the *identical* realized workload and fault schedule, so the
//! tradeoff is measurable rather than rhetorical:
//!
//! * [`SchedRegime::Selfish`] — first-decider-wins AppLeS agents, one
//!   per job, each optimizing its own completion time against live
//!   (or blind) forecasts. Exactly [`run_jobs_with_retry_sink`].
//! * [`SchedRegime::Batch`] — a centralized space-shared batch queue:
//!   FCFS with EASY backfilling. The reservation oracle is the same
//!   application-level runtime prediction the selfish agents act on
//!   ([`decide_with_prediction`]), handed to a resource-level policy:
//!   the head of the queue gets a reservation at the earliest
//!   predicted drain of its hosts, and a later job may jump it only
//!   if it starts on free hosts *now* and cannot delay that
//!   reservation. Backfill candidates are moldable — a blocked
//!   candidate is replanned against the currently-free hosts before
//!   the EASY check, because an AppLeS job requests performance, not
//!   named hosts.
//! * [`SchedRegime::Fractional`] — dynamic fractional sharing
//!   (processor-sharing): every job is admitted immediately and the
//!   running jobs on each host split it evenly, shares resized on
//!   every arrival and departure. A job's rate is the minimum share
//!   across its hosts; its dedicated-equivalent work (measured by a
//!   what-if actuation on the pristine testbed) drains at that rate.
//!   The realized per-host occupancy is written back onto the live
//!   topology as one batched [`StepSeries::with_impositions`] rebuild
//!   per host at the end of the run.
//!
//! ## Comparability contract
//!
//! All three regimes consume the same `Vec<JobSpec>` (same seed →
//! same arrivals, same kinds) and the same realized [`FaultSpec`]
//! (via [`realize_faults`], keyed by the grid seed). Every submitted
//! job appears exactly once in the outcome records, completed or
//! failed — no regime may lose or duplicate work. Stretch, slowdown
//! and goodput comparisons ride on that invariant; the regime-race
//! bench (`bench::regime_race`) and the property tests below enforce
//! it.
//!
//! ## Modeling simplifications
//!
//! The batch queue is space-shared: host exclusivity comes from the
//! queue itself, so completed batch jobs do not write load back into
//! the topology, and link contention between co-running batch jobs is
//! not modeled (background load from the testbed profile still is).
//! Failed attempts tear down instantly, as in the selfish stream.
//! The fractional regime is host-centric: link faults are ignored,
//! `max_in_flight` does not apply (processor sharing has no queue),
//! and a host crash revokes its residents entirely — a restarted job
//! loses its progress (no checkpointing across PS restarts).
//!
//! [`StepSeries::with_impositions`]: metasim::load::StepSeries::with_impositions

use crate::metrics::{slowdown_of, FleetMetrics, JobRecord};
use crate::service::{
    build_topology, decide_with_prediction, host_names_of, realize_faults, retryable,
    run_jobs_with_retry_sink, validate_config, GridConfig, GridError, GridOutcome, GridService,
};
use crate::workload::{JobKind, JobSpec, RetryPolicy, WorkloadConfig};
use apples::actuator::actuate_with_sink;
use apples::hat::Hat;
use apples::info::InfoPool;
use apples::schedule::Schedule;
use apples::ApplesError;
use metasim::load::Imposition;
use metasim::simtrace::{EventSink, NoopSink, TraceEvent};
use metasim::{apply_faults_with_sink, HostId, SimTime, Topology};
use simcore::EventQueue;
use std::collections::BTreeMap;
use std::collections::BTreeSet;

/// Which scheduling policy governs the stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SchedRegime {
    /// First-decider-wins selfish AppLeS agents (the paper's world).
    Selfish,
    /// Centralized FCFS batch queue with EASY backfilling, using the
    /// AppLeS estimator's predictions as the reservation oracle.
    Batch,
    /// Dynamic fractional sharing: running jobs hold CPU *fractions*,
    /// resized on every arrival and departure.
    Fractional,
}

impl SchedRegime {
    /// Every regime, in canonical race order.
    pub const ALL: [SchedRegime; 3] = [
        SchedRegime::Selfish,
        SchedRegime::Batch,
        SchedRegime::Fractional,
    ];

    /// Stable kebab-case name (CLI flag value, metrics label).
    pub fn name(self) -> &'static str {
        match self {
            SchedRegime::Selfish => "selfish",
            SchedRegime::Batch => "batch",
            SchedRegime::Fractional => "fractional",
        }
    }

    /// Parse a CLI flag value. Accepts the canonical names only.
    pub fn parse(s: &str) -> Option<SchedRegime> {
        match s {
            "selfish" => Some(SchedRegime::Selfish),
            "batch" => Some(SchedRegime::Batch),
            "fractional" => Some(SchedRegime::Fractional),
            _ => None,
        }
    }
}

impl std::fmt::Display for SchedRegime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Realize `workload` and stream it under `regime`.
pub fn run_regime(
    cfg: &GridConfig,
    regime: SchedRegime,
    workload: &WorkloadConfig,
) -> Result<GridOutcome, GridError> {
    run_regime_with_sink(cfg, regime, workload, &mut NoopSink)
}

/// [`run_regime`], streaming trace events into `sink`.
pub fn run_regime_with_sink(
    cfg: &GridConfig,
    regime: SchedRegime,
    workload: &WorkloadConfig,
    sink: &mut dyn EventSink,
) -> Result<GridOutcome, GridError> {
    workload.validate()?;
    run_regime_jobs_with_sink(
        cfg,
        regime,
        &workload.realize(),
        workload.duration,
        workload.retry,
        sink,
    )
}

/// Stream an explicit job list under `regime`. The selfish arm is
/// exactly [`run_jobs_with_retry_sink`]; batch and fractional are the
/// centralized engines below, over the same realized fault schedule.
pub fn run_regime_jobs_with_sink(
    cfg: &GridConfig,
    regime: SchedRegime,
    jobs: &[JobSpec],
    duration: SimTime,
    retry: RetryPolicy,
    sink: &mut dyn EventSink,
) -> Result<GridOutcome, GridError> {
    match regime {
        SchedRegime::Selfish => run_jobs_with_retry_sink(cfg, jobs, duration, retry, sink),
        SchedRegime::Batch => run_batch_with_log(cfg, jobs, duration, retry, sink).map(|(o, _)| o),
        SchedRegime::Fractional => {
            run_fractional_with_log(cfg, jobs, duration, retry, sink).map(|(o, _)| o)
        }
    }
}

impl GridService {
    /// Validate `workload` against this service's testbed, then stream
    /// it under `regime`.
    pub fn run_regime(
        &self,
        regime: SchedRegime,
        workload: &WorkloadConfig,
    ) -> Result<GridOutcome, GridError> {
        self.run_regime_with_sink(regime, workload, &mut NoopSink)
    }

    /// [`Self::run_regime`], streaming trace events into `sink`.
    pub fn run_regime_with_sink(
        &self,
        regime: SchedRegime,
        workload: &WorkloadConfig,
        sink: &mut dyn EventSink,
    ) -> Result<GridOutcome, GridError> {
        let diags = validate_config(self.config(), Some(workload));
        if !diags.is_empty() {
            return Err(GridError::InvalidConfig(
                diags
                    .iter()
                    .map(|d| d.to_string())
                    .collect::<Vec<_>>()
                    .join("; "),
            ));
        }
        run_regime_with_sink(self.config(), regime, workload, sink)
    }
}

/// One job's static plan, made once on the pristine testbed.
///
/// The centralized regimes plan without NWS forecasts: a batch system
/// knows the machines it owns, not the weather between them, and the
/// pristine pool keeps planning independent of queue state — the
/// prediction depends only on (kind, excluded hosts), which is what
/// makes it usable as a reservation oracle.
#[derive(Clone)]
struct Planned {
    hat: Hat,
    schedule: Schedule,
    predicted_seconds: f64,
    hosts: Vec<HostId>,
}

/// Plan `kind` on the pristine testbed with `excluded` hosts removed
/// from consideration, surfacing the estimator's runtime prediction.
fn plan_static(
    topo: &Topology,
    kind: &JobKind,
    excluded: &[HostId],
    now: SimTime,
    sink: &mut dyn EventSink,
) -> Result<Planned, ApplesError> {
    let (hat, mut user) = kind.hat_and_user();
    user.excluded_hosts.extend(excluded.iter().copied());
    let (schedule, predicted_seconds) = {
        let pool = InfoPool::static_nominal(topo, &hat, &user, now);
        decide_with_prediction(kind, &pool, sink)?
    };
    let hosts = schedule.hosts();
    Ok(Planned {
        hat,
        schedule,
        predicted_seconds,
        hosts,
    })
}

// ---------------------------------------------------------------------
// Batch: FCFS + EASY backfilling
// ---------------------------------------------------------------------

/// One backfill decision, for auditing the EASY invariant: starting a
/// job out of order must never push the head-of-queue reservation
/// later.
#[derive(Debug, Clone, PartialEq)]
pub struct BackfillEntry {
    /// Submission-order id of the backfilled job.
    pub job: usize,
    /// When it was started out of order.
    pub at: SimTime,
    /// Head-of-queue reservation before the backfill started.
    pub reservation_before: SimTime,
    /// Head-of-queue reservation after — must be `<= reservation_before`.
    pub reservation_after: SimTime,
}

/// Audit log of the batch scheduler's out-of-order decisions.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BatchLog {
    /// Every backfill, in decision order.
    pub backfills: Vec<BackfillEntry>,
}

/// Event classes at equal times: completions free hosts before
/// (re-)enqueues observe the queue.
const EV_COMPLETED: u8 = 0;
const EV_ENQUEUE: u8 = 1;

enum BatchEvent {
    /// A running job's hosts drain (its actuation already finished;
    /// this frees them for the queue).
    Completed { idx: usize },
    /// A job (first arrival or retry) asks to be queued.
    Enqueue { idx: usize },
}

struct BatchState<'a> {
    spec: &'a JobSpec,
    submit: SimTime,
    attempts: u32,
    dead_hosts: Vec<HostId>,
    planned: Option<Planned>,
    announced: bool,
}

struct Running {
    idx: usize,
    hosts: Vec<HostId>,
    /// Predicted drain time from the estimator — the reservation
    /// oracle. Actual completion may differ; EASY only promises the
    /// head is never delayed *relative to the predictions*.
    predicted_end: SimTime,
}

struct BatchRun<'a> {
    cfg: &'a GridConfig,
    retry: RetryPolicy,
    duration: SimTime,
    /// Fault-free snapshot used for planning and prediction.
    pristine: Topology,
    /// Live (fault-injected) topology used for actuation.
    topo: Topology,
    states: Vec<BatchState<'a>>,
    /// FCFS queue of state indices, ordered by (enqueue time, id).
    queue: Vec<(SimTime, usize, usize)>,
    running: Vec<Running>,
    events: EventQueue<(SimTime, u8), BatchEvent>,
    records: Vec<JobRecord>,
    log: BatchLog,
    sink: &'a mut dyn EventSink,
}

/// Run the centralized batch queue, returning the outcome and the
/// backfill audit log.
pub fn run_batch_with_log(
    cfg: &GridConfig,
    jobs: &[JobSpec],
    duration: SimTime,
    retry: RetryPolicy,
    sink: &mut dyn EventSink,
) -> Result<(GridOutcome, BatchLog), GridError> {
    retry.validate()?;
    if cfg.max_in_flight == 0 {
        return Err(GridError::InvalidConfig(
            "max_in_flight must be at least 1".into(),
        ));
    }
    let pristine = build_topology(cfg)?;
    let mut topo = pristine.clone();
    let fault_spec = realize_faults(cfg, &topo, duration)?;
    if !fault_spec.is_empty() {
        apply_faults_with_sink(&mut topo, &fault_spec, sink)?;
    }

    let mut ordered: Vec<&JobSpec> = jobs.iter().collect();
    ordered.sort_by_key(|j| (j.submit, j.id));
    let states: Vec<BatchState<'_>> = ordered
        .iter()
        .map(|j| BatchState {
            spec: j,
            submit: cfg.warmup + j.submit,
            attempts: 0,
            dead_hosts: Vec::new(),
            planned: None,
            announced: false,
        })
        .collect();

    let mut run = BatchRun {
        cfg,
        retry,
        duration,
        pristine,
        topo,
        states,
        queue: Vec::new(),
        running: Vec::new(),
        events: EventQueue::new(),
        records: Vec::new(),
        log: BatchLog::default(),
        sink,
    };
    for idx in 0..run.states.len() {
        let at = run.states[idx].submit;
        run.events
            .schedule((at, EV_ENQUEUE), BatchEvent::Enqueue { idx });
    }
    run.run()
}

impl BatchRun<'_> {
    fn run(mut self) -> Result<(GridOutcome, BatchLog), GridError> {
        while let Some(((now, _), _, ev)) = self.events.pop() {
            match ev {
                BatchEvent::Completed { idx } => self.running.retain(|r| r.idx != idx),
                BatchEvent::Enqueue { idx } => self.process_enqueue(idx, now)?,
            }
            self.try_start_queued(now)?;
        }
        self.records.sort_by_key(|r| r.id);
        let host_names: Vec<String> = self
            .topo
            .hosts()
            .iter()
            .map(|h| h.spec.name.clone())
            .collect();
        let fleet =
            FleetMetrics::from_records(&self.records, self.duration.as_secs_f64(), &host_names);
        Ok((
            GridOutcome {
                records: self.records,
                fleet,
            },
            self.log,
        ))
    }

    fn process_enqueue(&mut self, idx: usize, now: SimTime) -> Result<(), GridError> {
        let id = self.states[idx].spec.id;
        if !self.states[idx].announced {
            self.states[idx].announced = true;
            if self.sink.enabled() {
                self.sink.record(TraceEvent::JobSubmitted {
                    job: id,
                    kind: self.states[idx].spec.kind.name().to_string(),
                    at: now,
                });
            }
        }
        match plan_static(
            &self.pristine,
            &self.states[idx].spec.kind,
            &self.states[idx].dead_hosts,
            now,
            self.sink,
        ) {
            Ok(p) => {
                self.states[idx].planned = Some(p);
                let key = (now, id);
                let pos = self.queue.partition_point(|&(t, i, _)| (t, i) < key);
                self.queue.insert(pos, (now, id, idx));
            }
            Err(err) => {
                // A planning failure consumes an attempt, mirroring the
                // selfish stream's accounting.
                self.states[idx].attempts += 1;
                if self.sink.enabled() {
                    self.sink.record(TraceEvent::JobDispatched {
                        job: id,
                        at: now,
                        attempt: self.states[idx].attempts,
                    });
                }
                self.handle_attempt_failure(idx, now, err)?;
            }
        }
        Ok(())
    }

    fn hosts_free(&self, hosts: &[HostId]) -> bool {
        hosts
            .iter()
            .all(|h| !self.running.iter().any(|r| r.hosts.contains(h)))
    }

    /// Earliest time the queue head's hosts are all predicted free:
    /// the latest predicted end among running jobs it overlaps.
    fn reservation_for(&self, hosts: &[HostId], now: SimTime) -> SimTime {
        self.running
            .iter()
            .filter(|r| r.hosts.iter().any(|h| hosts.contains(h)))
            .map(|r| r.predicted_end)
            .max()
            .unwrap_or(now)
    }

    fn try_start_queued(&mut self, now: SimTime) -> Result<(), GridError> {
        loop {
            let Some(&(_, _, head)) = self.queue.first() else {
                return Ok(());
            };
            if self.running.len() >= self.cfg.max_in_flight {
                return Ok(());
            }
            let head_hosts = self.states[head]
                .planned
                .as_ref()
                .map(|p| p.hosts.clone())
                .ok_or_else(|| GridError::Internal("queued job has no plan".into()))?;
            if self.hosts_free(&head_hosts) {
                self.queue.remove(0);
                self.start_job(head, now)?;
                continue;
            }
            // EASY: the head holds a reservation at the predicted drain
            // of its hosts. A later job may start out of order only if
            // its hosts are free *now* and it cannot delay that
            // reservation — either it touches none of the head's hosts,
            // or its own predicted end fits before the reservation.
            //
            // Candidates are *moldable*: an AppLeS job is a request for
            // performance, not for named hosts, so when a candidate's
            // enqueue-time plan is blocked the scan replans it against
            // the hosts that are free right now. Without this, every
            // plan converges on the same fastest hosts and EASY never
            // finds a startable candidate.
            let resv = self.reservation_for(&head_hosts, now);
            let busy: Vec<HostId> = self
                .running
                .iter()
                .flat_map(|r| r.hosts.iter().copied())
                .collect();
            let mut chosen = None;
            for qi in 1..self.queue.len() {
                let (_, _, idx) = self.queue[qi];
                let Some(p) = self.states[idx].planned.as_ref() else {
                    continue;
                };
                let candidate = if self.hosts_free(&p.hosts) {
                    Some(p.clone())
                } else {
                    let mut excluded = self.states[idx].dead_hosts.clone();
                    excluded.extend(busy.iter().copied());
                    plan_static(
                        &self.pristine,
                        &self.states[idx].spec.kind,
                        &excluded,
                        now,
                        &mut NoopSink,
                    )
                    .ok()
                };
                let Some(p) = candidate else {
                    continue;
                };
                let disjoint = p.hosts.iter().all(|h| !head_hosts.contains(h));
                let predicted_end = now
                    .checked_add(SimTime::from_secs_f64(p.predicted_seconds.max(0.0)))
                    .unwrap_or(SimTime::MAX);
                if disjoint || predicted_end <= resv {
                    self.states[idx].planned = Some(p);
                    chosen = Some(qi);
                    break;
                }
            }
            let Some(qi) = chosen else {
                return Ok(());
            };
            let (_, _, idx) = self.queue.remove(qi);
            let id = self.states[idx].spec.id;
            if self.sink.enabled() {
                self.sink.record(TraceEvent::JobBackfilled {
                    job: id,
                    at: now,
                    reservation: resv,
                });
            }
            self.start_job(idx, now)?;
            let after = self.reservation_for(&head_hosts, now);
            self.log.backfills.push(BackfillEntry {
                job: id,
                at: now,
                reservation_before: resv,
                reservation_after: after,
            });
        }
    }

    fn start_job(&mut self, idx: usize, now: SimTime) -> Result<(), GridError> {
        let id = self.states[idx].spec.id;
        let submit = self.states[idx].submit;
        self.states[idx].attempts += 1;
        let attempts = self.states[idx].attempts;
        let planned = self.states[idx]
            .planned
            .clone()
            .ok_or_else(|| GridError::Internal("started job has no plan".into()))?;
        if self.sink.enabled() {
            self.sink.record(TraceEvent::JobDispatched {
                job: id,
                at: now,
                attempt: attempts,
            });
        }
        match actuate_with_sink(&self.topo, &planned.hat, &planned.schedule, now, self.sink) {
            Ok(report) => {
                let hosts = host_names_of(&self.topo, &planned.hosts)?;
                let wait_seconds = now.saturating_sub(submit).as_secs_f64();
                if self.sink.enabled() {
                    self.sink.record(TraceEvent::JobCompleted {
                        job: id,
                        at: report.finish,
                        exec_seconds: report.elapsed_seconds,
                    });
                }
                let predicted_end = now
                    .checked_add(SimTime::from_secs_f64(planned.predicted_seconds.max(0.0)))
                    .unwrap_or(SimTime::MAX);
                self.running.push(Running {
                    idx,
                    hosts: planned.hosts,
                    predicted_end,
                });
                self.events
                    .schedule((report.finish, EV_COMPLETED), BatchEvent::Completed { idx });
                self.records.push(JobRecord {
                    id,
                    kind: self.states[idx].spec.kind.name().to_string(),
                    submit,
                    start: now,
                    finish: report.finish,
                    hosts,
                    wait_seconds,
                    exec_seconds: report.elapsed_seconds,
                    slowdown: slowdown_of(wait_seconds, report.elapsed_seconds),
                    attempts,
                    reschedules: 0,
                    completed: true,
                });
            }
            Err(err) => self.handle_attempt_failure(idx, now, err)?,
        }
        Ok(())
    }

    fn handle_attempt_failure(
        &mut self,
        idx: usize,
        now: SimTime,
        err: ApplesError,
    ) -> Result<(), GridError> {
        let id = self.states[idx].spec.id;
        let Some((lost_host, lost_at)) = retryable(&err) else {
            return Err(GridError::Job {
                id,
                message: err.to_string(),
            });
        };
        if let Some(h) = lost_host {
            if !self.states[idx].dead_hosts.contains(&h) {
                self.states[idx].dead_hosts.push(h);
            }
        }
        let attempts = self.states[idx].attempts;
        let give_up = lost_at.unwrap_or(now).max(now);
        if attempts >= self.retry.max_attempts {
            let submit = self.states[idx].submit;
            let wait_seconds = give_up.saturating_sub(submit).as_secs_f64();
            if self.sink.enabled() {
                self.sink.record(TraceEvent::JobFailed {
                    job: id,
                    at: give_up,
                    attempts,
                });
            }
            self.records.push(JobRecord {
                id,
                kind: self.states[idx].spec.kind.name().to_string(),
                submit,
                start: now,
                finish: give_up,
                hosts: Vec::new(),
                wait_seconds,
                exec_seconds: 0.0,
                slowdown: slowdown_of(wait_seconds, 0.0),
                attempts,
                reschedules: 0,
                completed: false,
            });
            return Ok(());
        }
        let retry_at = give_up
            + self
                .retry
                .backoff_jittered(attempts, self.cfg.seed ^ id as u64);
        if self.sink.enabled() {
            self.sink.record(TraceEvent::JobRetried {
                job: id,
                at: retry_at,
                attempt: attempts,
            });
        }
        self.events
            .schedule((retry_at, EV_ENQUEUE), BatchEvent::Enqueue { idx });
        Ok(())
    }
}

// ---------------------------------------------------------------------
// Fractional: dynamic fractional sharing (processor sharing)
// ---------------------------------------------------------------------

/// Residual work below this many dedicated-equivalent seconds counts
/// as done. The event loop advances time in integer microseconds
/// (rounding gaps up), so the residual after a predicted departure is
/// at most `share × 1 µs` — comfortably under this bound, which is
/// what guarantees every predicted departure actually completes a job.
const WORK_EPS: f64 = 1e-6;

/// One constant-share interval on one host: between two consecutive
/// scheduling events the resident set is fixed, so the summed share is
/// too. `total_share` over a host never exceeds 1.0 — the property the
/// share-conservation test pins down.
#[derive(Debug, Clone, PartialEq)]
pub struct ShareSample {
    /// The host whose capacity is being split.
    pub host: HostId,
    /// Interval start (inclusive).
    pub from: SimTime,
    /// Interval end (exclusive).
    pub to: SimTime,
    /// Sum of resident jobs' shares on this host over the interval.
    pub total_share: f64,
}

/// Audit log of the fractional scheduler's share assignments.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct FractionalLog {
    /// Every constant-share interval, in simulation order.
    pub samples: Vec<ShareSample>,
}

/// Event classes at equal times: recoveries first (a re-queued job may
/// use the recovered host), then crashes (an arrival must not plan
/// onto a host dying this instant), then enqueues.
const EV_HOST_UP: u8 = 0;
const EV_HOST_DOWN: u8 = 1;
const EV_FRAC_ENQUEUE: u8 = 2;

enum FracEvent {
    HostUp(HostId),
    HostDown(HostId),
    Enqueue { idx: usize },
}

struct FracState<'a> {
    spec: &'a JobSpec,
    submit: SimTime,
    attempts: u32,
    dead_hosts: Vec<HostId>,
    announced: bool,
}

struct ActiveJob {
    idx: usize,
    id: usize,
    start: SimTime,
    /// Dedicated-equivalent work left, in seconds. Work, not a
    /// timestamp: it drains at the job's fractional rate.
    remaining: f64,
    hosts: Vec<HostId>,
}

struct FracRun<'a> {
    cfg: &'a GridConfig,
    retry: RetryPolicy,
    duration: SimTime,
    /// Fault-free snapshot used for planning and dedicated what-if
    /// actuation.
    pristine: Topology,
    /// Live topology: faults applied up front, realized occupancy
    /// written back at the end.
    live: Topology,
    states: Vec<FracState<'a>>,
    active: Vec<ActiveJob>,
    down: BTreeSet<HostId>,
    events: EventQueue<(SimTime, u8), FracEvent>,
    records: Vec<JobRecord>,
    samples: Vec<ShareSample>,
    impositions: BTreeMap<HostId, Vec<Imposition>>,
    sink: &'a mut dyn EventSink,
}

/// Run the dynamic fractional-sharing scheduler, returning the outcome
/// and the share audit log.
pub fn run_fractional_with_log(
    cfg: &GridConfig,
    jobs: &[JobSpec],
    duration: SimTime,
    retry: RetryPolicy,
    sink: &mut dyn EventSink,
) -> Result<(GridOutcome, FractionalLog), GridError> {
    retry.validate()?;
    let pristine = build_topology(cfg)?;
    let mut live = pristine.clone();
    let fault_spec = realize_faults(cfg, &live, duration)?;
    if !fault_spec.is_empty() {
        apply_faults_with_sink(&mut live, &fault_spec, sink)?;
    }

    let mut ordered: Vec<&JobSpec> = jobs.iter().collect();
    ordered.sort_by_key(|j| (j.submit, j.id));
    let states: Vec<FracState<'_>> = ordered
        .iter()
        .map(|j| FracState {
            spec: j,
            submit: cfg.warmup + j.submit,
            attempts: 0,
            dead_hosts: Vec::new(),
            announced: false,
        })
        .collect();

    let mut run = FracRun {
        cfg,
        retry,
        duration,
        pristine,
        live,
        states,
        active: Vec::new(),
        down: BTreeSet::new(),
        events: EventQueue::new(),
        records: Vec::new(),
        samples: Vec::new(),
        impositions: BTreeMap::new(),
        sink,
    };
    for idx in 0..run.states.len() {
        let at = run.states[idx].submit;
        run.events
            .schedule((at, EV_FRAC_ENQUEUE), FracEvent::Enqueue { idx });
    }
    for f in &fault_spec.host_faults {
        run.events
            .schedule((f.at, EV_HOST_DOWN), FracEvent::HostDown(f.host));
        if let Some(r) = f.recover {
            run.events
                .schedule((r, EV_HOST_UP), FracEvent::HostUp(f.host));
        }
    }
    run.run()
}

impl FracRun<'_> {
    fn run(mut self) -> Result<(GridOutcome, FractionalLog), GridError> {
        let mut now = SimTime::ZERO;
        loop {
            let dep = self.next_departure(now);
            let stat = self.events.peek_time();
            match (dep, stat) {
                (None, None) => break,
                // Departures win ties: a finished job must release its
                // shares before a simultaneous arrival sees the pool.
                (Some((t, _)), stat) if stat.is_none_or(|s| t <= s.0) => {
                    self.advance_to(now, t);
                    now = t;
                    self.complete_ready(now)?;
                }
                _ => {
                    let Some(((t, _), _, ev)) = self.events.pop() else {
                        break;
                    };
                    self.advance_to(now, t);
                    now = t;
                    match ev {
                        FracEvent::HostUp(h) => {
                            self.down.remove(&h);
                        }
                        FracEvent::HostDown(h) => self.host_down(h, now)?,
                        FracEvent::Enqueue { idx } => self.process_enqueue(idx, now)?,
                    }
                }
            }
        }
        self.finish()
    }

    /// A job's fractional rate: the minimum over its hosts of an even
    /// split among that host's residents.
    fn share_of(&self, job: &ActiveJob) -> f64 {
        let mut share = 1.0f64;
        for &h in &job.hosts {
            let residents = self.active.iter().filter(|o| o.hosts.contains(&h)).count();
            share = share.min(1.0 / residents.max(1) as f64);
        }
        share
    }

    /// Earliest predicted departure given current shares; ties broken
    /// by job id for determinism.
    fn next_departure(&self, now: SimTime) -> Option<(SimTime, usize)> {
        let mut best: Option<(SimTime, usize)> = None;
        for j in &self.active {
            let share = self.share_of(j);
            if share <= 0.0 {
                continue;
            }
            let dt_secs = (j.remaining / share).max(0.0);
            let t = now
                .checked_add(SimTime::from_secs_f64(dt_secs))
                .unwrap_or(SimTime::MAX);
            let key = (t, j.id);
            match best {
                None => best = Some(key),
                Some(b) if key < b => best = Some(key),
                _ => {}
            }
        }
        best
    }

    /// Drain every active job's work over `[now, until)` at the shares
    /// in force (no event fires inside the interval, so shares are
    /// constant), and record the per-host occupancy for the final
    /// write-back.
    fn advance_to(&mut self, now: SimTime, until: SimTime) {
        if until <= now || self.active.is_empty() {
            return;
        }
        let dt = until.saturating_sub(now).as_secs_f64();
        let shares: Vec<f64> = self.active.iter().map(|j| self.share_of(j)).collect();
        let mut per_host: BTreeMap<HostId, f64> = BTreeMap::new();
        for (j, s) in self.active.iter().zip(shares.iter()) {
            for &h in &j.hosts {
                *per_host.entry(h).or_insert(0.0) += *s;
            }
        }
        for (h, total) in per_host {
            self.samples.push(ShareSample {
                host: h,
                from: now,
                to: until,
                total_share: total,
            });
            let factor = (1.0 - total).max(0.0);
            let imps = self.impositions.entry(h).or_default();
            match imps.last_mut() {
                // Extend the previous window when the factor is
                // bit-identical — adjacent equal steps collapse into
                // one imposition.
                Some(last)
                    if last.to == now
                        && last.factor.total_cmp(&factor) == std::cmp::Ordering::Equal =>
                {
                    last.to = until;
                }
                _ => imps.push(Imposition::new(now, until, factor)),
            }
        }
        for (j, s) in self.active.iter_mut().zip(shares.iter()) {
            j.remaining -= dt * *s;
        }
    }

    /// Complete every active job whose work has drained, in id order.
    fn complete_ready(&mut self, now: SimTime) -> Result<(), GridError> {
        let mut ready: Vec<usize> = self
            .active
            .iter()
            .filter(|j| j.remaining <= WORK_EPS)
            .map(|j| j.id)
            .collect();
        ready.sort_unstable();
        for id in ready {
            let Some(pos) = self.active.iter().position(|j| j.id == id) else {
                continue;
            };
            let j = self.active.remove(pos);
            let st = &self.states[j.idx];
            let exec_seconds = now.saturating_sub(j.start).as_secs_f64();
            let wait_seconds = j.start.saturating_sub(st.submit).as_secs_f64();
            let hosts = host_names_of(&self.pristine, &j.hosts)?;
            if self.sink.enabled() {
                self.sink.record(TraceEvent::JobCompleted {
                    job: j.id,
                    at: now,
                    exec_seconds,
                });
            }
            self.records.push(JobRecord {
                id: j.id,
                kind: st.spec.kind.name().to_string(),
                submit: st.submit,
                start: j.start,
                finish: now,
                hosts,
                wait_seconds,
                exec_seconds,
                slowdown: slowdown_of(wait_seconds, exec_seconds),
                attempts: st.attempts,
                reschedules: 0,
                completed: true,
            });
        }
        Ok(())
    }

    /// A host crash revokes every resident: the job restarts from
    /// scratch (no PS checkpointing) under the retry policy.
    fn host_down(&mut self, h: HostId, now: SimTime) -> Result<(), GridError> {
        self.down.insert(h);
        let victims: Vec<usize> = self
            .active
            .iter()
            .filter(|j| j.hosts.contains(&h))
            .map(|j| j.id)
            .collect();
        for id in victims {
            let Some(pos) = self.active.iter().position(|j| j.id == id) else {
                continue;
            };
            let j = self.active.remove(pos);
            if self.sink.enabled() {
                self.sink
                    .record(TraceEvent::PlacementRevoked { host: h, at: now });
            }
            let idx = j.idx;
            if !self.states[idx].dead_hosts.contains(&h) {
                self.states[idx].dead_hosts.push(h);
            }
            let attempts = self.states[idx].attempts;
            if attempts >= self.retry.max_attempts {
                let st = &self.states[idx];
                let wait_seconds = now.saturating_sub(st.submit).as_secs_f64();
                if self.sink.enabled() {
                    self.sink.record(TraceEvent::JobFailed {
                        job: id,
                        at: now,
                        attempts,
                    });
                }
                self.records.push(JobRecord {
                    id,
                    kind: st.spec.kind.name().to_string(),
                    submit: st.submit,
                    start: j.start,
                    finish: now,
                    hosts: Vec::new(),
                    wait_seconds,
                    exec_seconds: 0.0,
                    slowdown: slowdown_of(wait_seconds, 0.0),
                    attempts,
                    reschedules: 0,
                    completed: false,
                });
            } else {
                let retry_at = now
                    + self
                        .retry
                        .backoff_jittered(attempts, self.cfg.seed ^ id as u64);
                if self.sink.enabled() {
                    self.sink.record(TraceEvent::JobRetried {
                        job: id,
                        at: retry_at,
                        attempt: attempts,
                    });
                }
                self.events
                    .schedule((retry_at, EV_FRAC_ENQUEUE), FracEvent::Enqueue { idx });
            }
        }
        Ok(())
    }

    fn process_enqueue(&mut self, idx: usize, now: SimTime) -> Result<(), GridError> {
        let id = self.states[idx].spec.id;
        if !self.states[idx].announced {
            self.states[idx].announced = true;
            if self.sink.enabled() {
                self.sink.record(TraceEvent::JobSubmitted {
                    job: id,
                    kind: self.states[idx].spec.kind.name().to_string(),
                    at: now,
                });
            }
        }
        self.states[idx].attempts += 1;
        let attempts = self.states[idx].attempts;
        if self.sink.enabled() {
            self.sink.record(TraceEvent::JobDispatched {
                job: id,
                at: now,
                attempt: attempts,
            });
        }
        // A central PS scheduler sees the whole system: exclude both
        // hosts this job has watched die and hosts currently down.
        let mut excluded = self.states[idx].dead_hosts.clone();
        excluded.extend(self.down.iter().copied());
        let outcome = plan_static(
            &self.pristine,
            &self.states[idx].spec.kind,
            &excluded,
            now,
            self.sink,
        )
        .and_then(|p| {
            // What-if actuation on the pristine testbed measures the
            // job's dedicated-equivalent work; the executor events are
            // hypothetical, so they go to a noop sink.
            actuate_with_sink(&self.pristine, &p.hat, &p.schedule, now, &mut NoopSink)
                .map(|report| (p, report))
        });
        match outcome {
            Ok((p, report)) => {
                // The what-if run above is the only place the dedicated
                // execution time of this attempt is known; publish it so
                // profilers can split the PS window into compute vs.
                // dilution (the executor trace has no events for it).
                if self.sink.enabled() {
                    self.sink.record(TraceEvent::JobWorkMeasured {
                        job: id,
                        at: now,
                        dedicated_seconds: report.elapsed_seconds.max(0.0),
                    });
                }
                self.active.push(ActiveJob {
                    idx,
                    id,
                    start: now,
                    remaining: report.elapsed_seconds.max(0.0),
                    hosts: p.hosts,
                });
            }
            Err(err) => self.handle_failure(idx, now, err)?,
        }
        Ok(())
    }

    fn handle_failure(
        &mut self,
        idx: usize,
        now: SimTime,
        err: ApplesError,
    ) -> Result<(), GridError> {
        let id = self.states[idx].spec.id;
        let Some((lost_host, lost_at)) = retryable(&err) else {
            return Err(GridError::Job {
                id,
                message: err.to_string(),
            });
        };
        if let Some(h) = lost_host {
            if !self.states[idx].dead_hosts.contains(&h) {
                self.states[idx].dead_hosts.push(h);
            }
        }
        let attempts = self.states[idx].attempts;
        let give_up = lost_at.unwrap_or(now).max(now);
        if attempts >= self.retry.max_attempts {
            let st = &self.states[idx];
            let wait_seconds = give_up.saturating_sub(st.submit).as_secs_f64();
            if self.sink.enabled() {
                self.sink.record(TraceEvent::JobFailed {
                    job: id,
                    at: give_up,
                    attempts,
                });
            }
            self.records.push(JobRecord {
                id,
                kind: st.spec.kind.name().to_string(),
                submit: st.submit,
                start: now,
                finish: give_up,
                hosts: Vec::new(),
                wait_seconds,
                exec_seconds: 0.0,
                slowdown: slowdown_of(wait_seconds, 0.0),
                attempts,
                reschedules: 0,
                completed: false,
            });
            return Ok(());
        }
        let retry_at = give_up
            + self
                .retry
                .backoff_jittered(attempts, self.cfg.seed ^ id as u64);
        if self.sink.enabled() {
            self.sink.record(TraceEvent::JobRetried {
                job: id,
                at: retry_at,
                attempt: attempts,
            });
        }
        self.events
            .schedule((retry_at, EV_FRAC_ENQUEUE), FracEvent::Enqueue { idx });
        Ok(())
    }

    /// Write the realized per-host occupancy back onto the live
    /// topology: one batched [`with_impositions`] rebuild per host —
    /// the high-rate path the incremental sweep in `metasim::load` was
    /// built for.
    ///
    /// [`with_impositions`]: metasim::load::StepSeries::with_impositions
    fn finish(mut self) -> Result<(GridOutcome, FractionalLog), GridError> {
        let impositions = std::mem::take(&mut self.impositions);
        for (h, imps) in &impositions {
            let hm = self.live.host_mut(*h)?;
            let scaled = hm.availability().with_impositions(imps);
            hm.set_availability(scaled);
            if self.sink.enabled() {
                for imp in imps {
                    self.sink.record(TraceEvent::LoadImposed {
                        host: *h,
                        at: imp.from,
                        until: imp.to,
                        factor: imp.factor,
                    });
                }
            }
        }
        self.records.sort_by_key(|r| r.id);
        let host_names: Vec<String> = self
            .live
            .hosts()
            .iter()
            .map(|h| h.spec.name.clone())
            .collect();
        let fleet =
            FleetMetrics::from_records(&self.records, self.duration.as_secs_f64(), &host_names);
        Ok((
            GridOutcome {
                records: self.records,
                fleet,
            },
            FractionalLog {
                samples: self.samples,
            },
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ArrivalProcess, JobMix};
    use metasim::{FaultSpec, HostFault};

    fn small_workload(seed: u64) -> WorkloadConfig {
        WorkloadConfig {
            arrivals: ArrivalProcess::Uniform {
                gap: SimTime::from_secs(500),
            },
            mix: JobMix::default_mix(),
            duration: SimTime::from_secs(4000),
            seed,
            retry: RetryPolicy::default(),
        }
    }

    fn cfg() -> GridConfig {
        GridConfig::default()
    }

    #[test]
    fn regime_names_round_trip() {
        for r in SchedRegime::ALL {
            assert_eq!(SchedRegime::parse(r.name()), Some(r));
            assert_eq!(format!("{r}"), r.name());
        }
        assert_eq!(SchedRegime::parse("gang"), None);
    }

    #[test]
    fn all_regimes_schedule_the_same_job_set() {
        let cfg = cfg();
        let w = small_workload(42);
        let jobs = w.realize();
        let ids: Vec<usize> = jobs.iter().map(|j| j.id).collect();
        for regime in SchedRegime::ALL {
            let out = run_regime(&cfg, regime, &w).unwrap();
            let mut got: Vec<usize> = out.records.iter().map(|r| r.id).collect();
            got.sort_unstable();
            let mut want = ids.clone();
            want.sort_unstable();
            assert_eq!(got, want, "regime {regime} lost or duplicated jobs");
        }
    }

    #[test]
    fn regimes_are_deterministic_per_seed() {
        let cfg = cfg();
        let w = small_workload(7);
        for regime in SchedRegime::ALL {
            let a = run_regime(&cfg, regime, &w).unwrap();
            let b = run_regime(&cfg, regime, &w).unwrap();
            assert_eq!(a.records, b.records, "regime {regime} not deterministic");
            assert_eq!(a.fleet, b.fleet);
        }
    }

    #[test]
    fn batch_backfills_never_delay_the_head_reservation() {
        let cfg = cfg();
        // Dense stream to force queueing and give EASY room to work.
        let w = WorkloadConfig {
            arrivals: ArrivalProcess::Uniform {
                gap: SimTime::from_secs(80),
            },
            duration: SimTime::from_secs(2000),
            ..small_workload(11)
        };
        let jobs = w.realize();
        let (out, log) =
            run_batch_with_log(&cfg, &jobs, w.duration, w.retry, &mut NoopSink).unwrap();
        assert_eq!(out.records.len(), jobs.len());
        assert!(
            !log.backfills.is_empty(),
            "a dense stream must exercise EASY backfilling, or this test is vacuous"
        );
        for b in &log.backfills {
            assert!(
                b.reservation_after <= b.reservation_before,
                "backfill of job {} delayed the head reservation: {:?} -> {:?}",
                b.job,
                b.reservation_before,
                b.reservation_after
            );
        }
    }

    #[test]
    fn fractional_shares_never_oversubscribe_a_host() {
        let cfg = cfg();
        let w = WorkloadConfig {
            arrivals: ArrivalProcess::Uniform {
                gap: SimTime::from_secs(120),
            },
            duration: SimTime::from_secs(2000),
            ..small_workload(13)
        };
        let jobs = w.realize();
        let (out, log) =
            run_fractional_with_log(&cfg, &jobs, w.duration, w.retry, &mut NoopSink).unwrap();
        assert_eq!(out.records.len(), jobs.len());
        assert!(
            !log.samples.is_empty(),
            "a busy stream must produce samples"
        );
        for s in &log.samples {
            assert!(
                s.total_share <= 1.0 + 1e-9,
                "host {:?} oversubscribed: total share {} on [{:?}, {:?})",
                s.host,
                s.total_share,
                s.from,
                s.to
            );
            assert!(s.total_share > 0.0);
            assert!(s.from < s.to);
        }
    }

    #[test]
    fn fractional_single_job_runs_at_full_speed() {
        let cfg = cfg();
        let jobs = vec![JobSpec {
            id: 0,
            submit: SimTime::ZERO,
            kind: JobKind::Jacobi {
                n: 800,
                iterations: 60,
            },
        }];
        let (out, log) = run_fractional_with_log(
            &cfg,
            &jobs,
            SimTime::from_secs(100),
            RetryPolicy::default(),
            &mut NoopSink,
        )
        .unwrap();
        let r = &out.records[0];
        assert!(r.completed);
        // Alone in the system: share is 1.0 everywhere, so the PS
        // finish equals the dedicated what-if duration (up to the
        // microsecond rounding of the departure event).
        for s in &log.samples {
            assert!((s.total_share - 1.0).abs() < 1e-12);
        }
        assert!(r.exec_seconds > 0.0);
    }

    #[test]
    fn regimes_survive_fault_injection_without_losing_jobs() {
        let mut cfg = cfg();
        cfg.faults = crate::service::FaultInjection::Spec(FaultSpec {
            host_faults: vec![HostFault {
                host: HostId(0),
                at: SimTime::from_secs(900),
                recover: Some(SimTime::from_secs(2500)),
            }],
            link_faults: Vec::new(),
        });
        let mut w = small_workload(5);
        w.retry = RetryPolicy {
            max_attempts: 3,
            ..RetryPolicy::default()
        };
        let jobs = w.realize();
        for regime in SchedRegime::ALL {
            let out = run_regime(&cfg, regime, &w).unwrap();
            assert_eq!(
                out.records.len(),
                jobs.len(),
                "regime {regime} lost jobs under faults"
            );
        }
    }

    #[test]
    fn grid_service_runs_regimes_after_validation() {
        let svc = GridService::new(cfg()).unwrap();
        let w = small_workload(3);
        for regime in SchedRegime::ALL {
            let out = svc.run_regime(regime, &w).unwrap();
            assert!(!out.records.is_empty());
        }
    }
}
