//! Workload description: who arrives when, asking for what.
//!
//! A workload is an [`ArrivalProcess`] (when jobs show up) crossed with
//! a [`JobMix`] (what each arriving job is). Realizing a
//! [`WorkloadConfig`] is deterministic per seed, so the same job stream
//! can be replayed against different service policies — the paper's §5
//! "back-to-back under similar conditions" methodology, lifted from a
//! single application to a whole population.

use crate::service::GridError;
use apples::hat::{ArchEfficiency, Hat, PipelineTemplate};
use apples::user::UserSpec;
use apples_apps::jacobi2d::partition::jacobi_context;
use apples_apps::nile::cleo_analysis_hat;
use metasim::SimTime;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// When jobs arrive, as offsets from the start of the stream.
#[derive(Debug, Clone, PartialEq)]
pub enum ArrivalProcess {
    /// Memoryless arrivals at `rate_hz` jobs per second (exponential
    /// inter-arrival times) — the classic open-system model.
    Poisson {
        /// Mean arrival rate in jobs per second.
        rate_hz: f64,
    },
    /// One job every `gap`, starting at `gap` — a staged submission
    /// like the bench multi-agent experiment.
    Uniform {
        /// Fixed inter-arrival gap.
        gap: SimTime,
    },
    /// Replay explicit arrival offsets (need not be sorted).
    Trace(Vec<SimTime>),
}

impl ArrivalProcess {
    /// Reject parameters that would make [`ArrivalProcess::realize`]
    /// panic — the typed counterpart of its internal assertions, for
    /// input that arrives from a CLI or another service.
    pub fn validate(&self) -> Result<(), GridError> {
        match self {
            ArrivalProcess::Poisson { rate_hz } => {
                if !(rate_hz.is_finite() && *rate_hz > 0.0) {
                    return Err(GridError::InvalidConfig(format!(
                        "Poisson arrival rate must be a positive finite number, got {rate_hz}"
                    )));
                }
            }
            ArrivalProcess::Uniform { gap } => {
                if *gap == SimTime::ZERO {
                    return Err(GridError::InvalidConfig(
                        "uniform arrivals need a positive gap".into(),
                    ));
                }
            }
            ArrivalProcess::Trace(_) => {}
        }
        Ok(())
    }

    /// Arrival offsets within `[0, duration]`, sorted ascending,
    /// deterministic per `seed`.
    pub fn realize(&self, duration: SimTime, seed: u64) -> Vec<SimTime> {
        let mut out = match self {
            ArrivalProcess::Poisson { rate_hz } => {
                // simlint: allow(panic-in-lib): ArrivalProcess::validate rejects non-positive rates before any stream is realized
                assert!(
                    *rate_hz > 0.0 && rate_hz.is_finite(),
                    "Poisson arrivals need a positive rate"
                );
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xA11E5_u64);
                // Accumulate in integer µs with one conversion per
                // draw. Summing f64 seconds and converting at the end
                // drifts: the float clock and the SimTime clock
                // disagree after enough draws, and the boundary test
                // below would use the wrong clock. `from_secs_f64`
                // rounds up, so every gap is at least 1 µs and the
                // loop always terminates.
                let mut t = SimTime::ZERO;
                let mut arrivals = Vec::new();
                loop {
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let gap = SimTime::from_secs_f64(-u.ln() / rate_hz);
                    t = match t.checked_add(gap) {
                        Some(next) => next,
                        None => break,
                    };
                    // Inclusive bound, matching the Uniform arm: an
                    // arrival landing exactly at `duration` is kept.
                    if t > duration {
                        break;
                    }
                    arrivals.push(t);
                }
                arrivals
            }
            ArrivalProcess::Uniform { gap } => {
                // simlint: allow(panic-in-lib): ArrivalProcess::validate rejects non-positive gaps before any stream is realized
                assert!(*gap > SimTime::ZERO, "uniform arrivals need a positive gap");
                let mut arrivals = Vec::new();
                let mut t = *gap;
                while t <= duration {
                    arrivals.push(t);
                    t += *gap;
                }
                arrivals
            }
            ArrivalProcess::Trace(ts) => ts.iter().copied().filter(|&t| t <= duration).collect(),
        };
        out.sort_unstable();
        out
    }
}

/// What an arriving job is: one of the paper's three application
/// classes, parameterized by size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JobKind {
    /// A Jacobi2D stencil solve (§5): `n × n` grid, `iterations` sweeps.
    Jacobi {
        /// Grid edge length.
        n: usize,
        /// Number of sweeps.
        iterations: usize,
    },
    /// A producer→consumer pipeline in the 3D-REACT shape (§2.2),
    /// downsized from CASA supercomputers to the Figure 2 workstation
    /// pool: `units` surface-function batches streamed between two
    /// hosts.
    ReactPipeline {
        /// Total work units to stream.
        units: usize,
    },
    /// A NILE/CLEO event-analysis farm (§2.1): `events` independent
    /// records fanned out from a data home and collected back.
    NileFarm {
        /// Number of events to analyze.
        events: u64,
    },
}

impl JobKind {
    /// Short class name for records and tables.
    pub fn name(&self) -> &'static str {
        match self {
            JobKind::Jacobi { .. } => "jacobi2d",
            JobKind::ReactPipeline { .. } => "react-pipe",
            JobKind::NileFarm { .. } => "nile-farm",
        }
    }

    /// The HAT and user spec an AppLeS agent for this job would carry.
    pub fn hat_and_user(&self) -> (Hat, UserSpec) {
        match *self {
            JobKind::Jacobi { n, iterations } => jacobi_context(n, iterations),
            JobKind::ReactPipeline { units } => {
                (workstation_pipeline_hat(units), UserSpec::default())
            }
            JobKind::NileFarm { events } => (cleo_analysis_hat(events), UserSpec::default()),
        }
    }
}

/// A 3D-REACT-shaped pipeline sized for the Figure 2 workstation pool
/// (the real CASA template assumes a C90 and a Paragon; 4–110 Mflop/s
/// workstations would take days on it). Producer-heavy, a modest
/// per-unit transfer, and no architecture-specific efficiencies.
pub fn workstation_pipeline_hat(units: usize) -> Hat {
    Hat::pipeline(
        "react-pipe-ws",
        PipelineTemplate {
            total_units: units,
            producer_mflop_per_unit: 120.0,
            consumer_mflop_per_unit: 60.0,
            mb_per_unit: 0.4,
            producer_resident_mb: 24.0,
            consumer_base_mb: 16.0,
            consumer_mb_per_buffered_unit: 0.4,
            convert_mflop_per_message: 5.0,
            producer_efficiency: ArchEfficiency {
                rules: vec![],
                default_efficiency: 1.0,
            },
            consumer_efficiency: ArchEfficiency {
                rules: vec![],
                default_efficiency: 1.0,
            },
        },
    )
}

/// A weighted mix of job kinds; each arrival samples one kind.
#[derive(Debug, Clone, PartialEq)]
pub struct JobMix {
    /// `(kind, weight)` entries; weights need not sum to one.
    pub entries: Vec<(JobKind, f64)>,
}

impl JobMix {
    /// A mix of a single kind.
    pub fn only(kind: JobKind) -> Self {
        JobMix {
            entries: vec![(kind, 1.0)],
        }
    }

    /// The default service mix: mostly small and medium Jacobi solves,
    /// with occasional long solves, pipelines and event farms — short
    /// jobs arriving among long ones is exactly the regime where
    /// application-level information pays (§3).
    pub fn default_mix() -> Self {
        JobMix {
            entries: vec![
                (
                    JobKind::Jacobi {
                        n: 800,
                        iterations: 60,
                    },
                    4.0,
                ),
                (
                    JobKind::Jacobi {
                        n: 1200,
                        iterations: 300,
                    },
                    2.0,
                ),
                (
                    JobKind::Jacobi {
                        n: 1200,
                        iterations: 1500,
                    },
                    1.0,
                ),
                (JobKind::ReactPipeline { units: 30 }, 1.0),
                (JobKind::NileFarm { events: 20_000 }, 1.0),
            ],
        }
    }

    /// Reject a mix [`JobMix::sample`] would panic on.
    pub fn validate(&self) -> Result<(), GridError> {
        if self.entries.is_empty() {
            return Err(GridError::InvalidConfig("empty job mix".into()));
        }
        let total: f64 = self.entries.iter().map(|&(_, w)| w.max(0.0)).sum();
        if !(total.is_finite() && total > 0.0) {
            return Err(GridError::InvalidConfig(
                "job mix weights must sum to a positive finite value".into(),
            ));
        }
        Ok(())
    }

    /// Sample one kind, deterministically from `rng`.
    pub fn sample(&self, rng: &mut ChaCha8Rng) -> JobKind {
        // simlint: allow(panic-in-lib): JobMix::validate rejects empty mixes before any stream is realized
        assert!(!self.entries.is_empty(), "empty job mix");
        let total: f64 = self.entries.iter().map(|&(_, w)| w.max(0.0)).sum();
        // simlint: allow(panic-in-lib): JobMix::validate rejects non-positive weight sums before any stream is realized
        assert!(total > 0.0, "job mix weights must sum to a positive value");
        let mut x = rng.gen_range(0.0..total);
        for &(kind, w) in &self.entries {
            let w = w.max(0.0);
            if x < w {
                return kind;
            }
            x -= w;
        }
        // simlint: allow(panic-in-lib): JobMix::validate rejects empty mixes before any stream is realized
        self.entries.last().unwrap().0
    }
}

/// One job in a realized stream.
#[derive(Debug, Clone, PartialEq)]
pub struct JobSpec {
    /// Submission order index.
    pub id: usize,
    /// Submission time as an offset from the stream start.
    pub submit: SimTime,
    /// What the job is.
    pub kind: JobKind,
}

/// Bounded retry with exponential backoff, applied when a placement is
/// revoked mid-run (host crash) or no feasible resources exist at
/// decision time. The delay before attempt `k + 1` is
/// `base_backoff × factor^(k-1)`, capped at [`RetryPolicy::MAX_BACKOFF`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts a job may make, first try included (≥ 1). With
    /// `max_attempts = 1` a revoked job fails immediately — the blind
    /// baseline.
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_backoff: SimTime,
    /// Multiplier applied to the delay on each subsequent retry.
    /// Values below 1.0 are treated as 1.0 so backoff never shrinks.
    pub factor: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: SimTime::from_secs(30),
            factor: 2.0,
        }
    }
}

impl RetryPolicy {
    /// Ceiling on any single backoff delay: one hour.
    pub const MAX_BACKOFF: SimTime = SimTime::from_secs(3600);

    /// A policy allowing `max_attempts` total attempts with the default
    /// 30 s base delay doubling per retry.
    pub fn with_attempts(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            ..RetryPolicy::default()
        }
    }

    /// Largest jitter [`RetryPolicy::backoff_jittered`] adds on top of
    /// the deterministic base delay, as a fraction of that delay.
    pub const MAX_JITTER: f64 = 0.25;

    /// Delay before the next attempt after `attempts` tries have
    /// already failed (`attempts ≥ 1`). Monotone non-decreasing in
    /// `attempts` and bounded by [`RetryPolicy::MAX_BACKOFF`].
    pub fn backoff(&self, attempts: u32) -> SimTime {
        let factor = if self.factor.is_finite() {
            self.factor.max(1.0)
        } else {
            1.0
        };
        let exp = attempts.saturating_sub(1).min(256) as i32;
        let secs = self.base_backoff.as_secs_f64() * factor.powi(exp);
        if !secs.is_finite() {
            return Self::MAX_BACKOFF;
        }
        SimTime::from_secs_f64(secs).min(Self::MAX_BACKOFF)
    }

    /// [`RetryPolicy::backoff`] plus seeded, deterministic jitter.
    ///
    /// Without jitter, every job revoked by the same host fault retries
    /// at the same instant — a deterministic thundering herd that the
    /// first decider then wins for no reason related to the schedule.
    /// The jittered delay is `base × (1 + MAX_JITTER × frac)` with
    /// `frac ∈ [0, 1)` hashed from `(salt, attempts)`, so the same
    /// `salt` (callers pass `stream_seed ^ job_id`) always reproduces
    /// the same schedule while distinct jobs decorrelate. Still bounded
    /// by [`RetryPolicy::MAX_BACKOFF`] and never below the base delay.
    pub fn backoff_jittered(&self, attempts: u32, salt: u64) -> SimTime {
        let base = self.backoff(attempts);
        if base >= Self::MAX_BACKOFF {
            return Self::MAX_BACKOFF;
        }
        let frac = jitter_fraction(salt, attempts);
        let secs = base.as_secs_f64() * (1.0 + Self::MAX_JITTER * frac);
        SimTime::from_secs_f64(secs)
            .min(Self::MAX_BACKOFF)
            .max(base)
    }

    /// Reject degenerate policies.
    pub fn validate(&self) -> Result<(), GridError> {
        if self.max_attempts == 0 {
            return Err(GridError::InvalidConfig(
                "retry max_attempts must be at least 1".into(),
            ));
        }
        if !self.factor.is_finite() || self.factor < 0.0 {
            return Err(GridError::InvalidConfig(format!(
                "retry backoff factor must be finite and non-negative, got {}",
                self.factor
            )));
        }
        Ok(())
    }
}

/// Stateless splitmix64 finalizer over the `(salt, attempts)` pair,
/// mapped to `[0, 1)` with 53 bits of precision. Fully determined by
/// its inputs, so a same-seed replay reproduces the exact backoff
/// schedule — no RNG state is threaded through the retry path.
fn jitter_fraction(salt: u64, attempts: u32) -> f64 {
    let mut z = salt
        .wrapping_add(u64::from(attempts).wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 / (1u64 << 53) as f64
}

/// A complete workload description: arrivals × mix over a duration.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadConfig {
    /// When jobs arrive.
    pub arrivals: ArrivalProcess,
    /// What each arrival asks for.
    pub mix: JobMix,
    /// Length of the submission window; arrivals beyond it are dropped
    /// (admitted jobs still run to completion).
    pub duration: SimTime,
    /// Seed for arrival times and mix sampling.
    pub seed: u64,
    /// How the service retries jobs whose placements are revoked.
    pub retry: RetryPolicy,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            arrivals: ArrivalProcess::Poisson { rate_hz: 0.02 },
            mix: JobMix::default_mix(),
            duration: SimTime::from_secs(3600),
            seed: 1996,
            retry: RetryPolicy::default(),
        }
    }
}

impl WorkloadConfig {
    /// Typed validation of every knob the CLI or a caller can set.
    pub fn validate(&self) -> Result<(), GridError> {
        self.arrivals.validate()?;
        self.mix.validate()?;
        self.retry.validate()
    }

    /// Realize the workload into a concrete job stream, sorted by
    /// submission time. Deterministic: same config → same jobs.
    pub fn realize(&self) -> Vec<JobSpec> {
        let times = self.arrivals.realize(self.duration, self.seed);
        let mut mix_rng = ChaCha8Rng::seed_from_u64(self.seed ^ 0x9B5E_u64);
        times
            .into_iter()
            .enumerate()
            .map(|(id, submit)| JobSpec {
                id,
                submit,
                kind: self.mix.sample(&mut mix_rng),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    #[test]
    fn poisson_is_deterministic_and_sorted() {
        let p = ArrivalProcess::Poisson { rate_hz: 0.05 };
        let a = p.realize(s(10_000.0), 7);
        let b = p.realize(s(10_000.0), 7);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0] <= w[1]));
        assert!(a.iter().all(|&t| t <= s(10_000.0)));
        assert!(
            a.iter().all(|&t| t > SimTime::ZERO),
            "every gap rounds up to at least 1 µs, so no arrival lands at 0"
        );
        let c = p.realize(s(10_000.0), 8);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn poisson_boundary_is_inclusive_like_uniform() {
        // An arrival landing exactly on `duration` must be kept (the
        // Uniform arm keeps its `t == duration` arrival too). Realize
        // once over a long window, then truncate the window to an
        // arrival time: the arrival on the boundary survives.
        let p = ArrivalProcess::Poisson { rate_hz: 0.05 };
        let long = p.realize(s(10_000.0), 7);
        let boundary = long[long.len() / 2];
        let short = p.realize(boundary, 7);
        assert_eq!(
            short.last().copied(),
            Some(boundary),
            "arrival exactly at duration must be included"
        );
    }

    #[test]
    fn poisson_rate_is_roughly_right() {
        let p = ArrivalProcess::Poisson { rate_hz: 0.1 };
        let n = p.realize(s(100_000.0), 3).len() as f64;
        // Expect ~10 000 arrivals; 5% tolerance is generous.
        assert!((n - 10_000.0).abs() < 500.0, "got {n} arrivals");
    }

    #[test]
    fn uniform_arrivals_are_evenly_spaced() {
        let u = ArrivalProcess::Uniform { gap: s(60.0) };
        let a = u.realize(s(300.0), 0);
        assert_eq!(a, vec![s(60.0), s(120.0), s(180.0), s(240.0), s(300.0)]);
    }

    #[test]
    fn trace_arrivals_filter_and_sort() {
        let t = ArrivalProcess::Trace(vec![s(50.0), s(10.0), s(999.0)]);
        assert_eq!(t.realize(s(100.0), 0), vec![s(10.0), s(50.0)]);
    }

    #[test]
    fn mix_sampling_is_deterministic_and_covers_kinds() {
        let mix = JobMix::default_mix();
        let mut a = ChaCha8Rng::seed_from_u64(5);
        let mut b = ChaCha8Rng::seed_from_u64(5);
        let xs: Vec<JobKind> = (0..200).map(|_| mix.sample(&mut a)).collect();
        let ys: Vec<JobKind> = (0..200).map(|_| mix.sample(&mut b)).collect();
        assert_eq!(xs, ys);
        assert!(xs.iter().any(|k| matches!(k, JobKind::Jacobi { .. })));
        assert!(xs
            .iter()
            .any(|k| matches!(k, JobKind::ReactPipeline { .. })));
        assert!(xs.iter().any(|k| matches!(k, JobKind::NileFarm { .. })));
    }

    #[test]
    fn workload_realization_is_deterministic() {
        let cfg = WorkloadConfig::default();
        assert_eq!(cfg.realize(), cfg.realize());
        let other = WorkloadConfig {
            seed: cfg.seed + 1,
            ..cfg.clone()
        };
        assert_ne!(cfg.realize(), other.realize());
    }

    #[test]
    fn backoff_is_monotone_and_capped() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: s(30.0),
            factor: 2.0,
        };
        assert_eq!(p.backoff(1), s(30.0));
        assert_eq!(p.backoff(2), s(60.0));
        assert_eq!(p.backoff(3), s(120.0));
        let mut prev = SimTime::ZERO;
        for k in 1..100 {
            let b = p.backoff(k);
            assert!(b >= prev, "backoff must not shrink");
            assert!(b <= RetryPolicy::MAX_BACKOFF);
            prev = b;
        }
        assert_eq!(p.backoff(60), RetryPolicy::MAX_BACKOFF);
    }

    #[test]
    fn jittered_backoff_is_deterministic_bounded_and_decorrelated() {
        let p = RetryPolicy {
            max_attempts: 10,
            base_backoff: s(30.0),
            factor: 2.0,
        };
        for salt in [0u64, 1, 42, u64::MAX] {
            for k in 1..20 {
                let base = p.backoff(k);
                let j = p.backoff_jittered(k, salt);
                assert_eq!(j, p.backoff_jittered(k, salt), "same salt, same schedule");
                assert!(j >= base, "jitter never shrinks the base delay");
                assert!(j <= RetryPolicy::MAX_BACKOFF);
                let ceiling =
                    SimTime::from_secs_f64(base.as_secs_f64() * (1.0 + RetryPolicy::MAX_JITTER))
                        .min(RetryPolicy::MAX_BACKOFF);
                assert!(j <= ceiling, "jitter bounded by MAX_JITTER fraction");
            }
        }
        // Distinct salts (distinct jobs) must not all retry at the same
        // instant — that is the thundering herd the jitter breaks up.
        let delays: std::collections::BTreeSet<SimTime> =
            (0..16u64).map(|salt| p.backoff_jittered(1, salt)).collect();
        assert!(delays.len() > 1, "distinct salts should decorrelate");
        // At the cap there is no headroom left: jitter collapses to it.
        assert_eq!(p.backoff_jittered(60, 9), RetryPolicy::MAX_BACKOFF);
    }

    #[test]
    fn shrinking_factor_is_clamped_to_constant_backoff() {
        let p = RetryPolicy {
            max_attempts: 5,
            base_backoff: s(10.0),
            factor: 0.5,
        };
        assert_eq!(p.backoff(1), s(10.0));
        assert_eq!(p.backoff(4), s(10.0));
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        assert!(WorkloadConfig::default().validate().is_ok());
        let bad_rate = WorkloadConfig {
            arrivals: ArrivalProcess::Poisson { rate_hz: 0.0 },
            ..WorkloadConfig::default()
        };
        assert!(bad_rate.validate().is_err());
        let bad_gap = WorkloadConfig {
            arrivals: ArrivalProcess::Uniform { gap: SimTime::ZERO },
            ..WorkloadConfig::default()
        };
        assert!(bad_gap.validate().is_err());
        let bad_mix = WorkloadConfig {
            mix: JobMix { entries: vec![] },
            ..WorkloadConfig::default()
        };
        assert!(bad_mix.validate().is_err());
        let bad_retry = WorkloadConfig {
            retry: RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::default()
            },
            ..WorkloadConfig::default()
        };
        assert!(bad_retry.validate().is_err());
    }

    #[test]
    fn job_kinds_produce_matching_hats() {
        let (hat, _) = JobKind::Jacobi {
            n: 100,
            iterations: 5,
        }
        .hat_and_user();
        assert!(hat.as_stencil().is_some());
        let (hat, _) = JobKind::ReactPipeline { units: 10 }.hat_and_user();
        assert!(hat.as_pipeline().is_some());
        let (hat, _) = JobKind::NileFarm { events: 100 }.hat_and_user();
        assert!(hat.as_task_farm().is_some());
    }
}
