//! Per-job records and fleet-level reductions.
//!
//! The paper evaluates one application at a time (execution time,
//! Figures 5–6). A service sees a population, so the interesting
//! quantities are distributional: how long jobs waited for admission,
//! how much contention stretched them, and how evenly the pool was
//! used. Slowdown — (wait + execution) / execution — is the classic
//! metric for "how much worse than having the system to yourself".

use metasim::SimTime;

/// What happened to one job, in absolute simulation time.
#[derive(Debug, Clone, PartialEq)]
pub struct JobRecord {
    /// Submission-order index within the stream.
    pub id: usize,
    /// Job class name (`jacobi2d`, `react-pipe`, `nile-farm`).
    pub kind: String,
    /// Absolute submission time (warmup included).
    pub submit: SimTime,
    /// Absolute time the job was admitted and its agent decided.
    pub start: SimTime,
    /// Absolute completion time.
    pub finish: SimTime,
    /// Names of the hosts the chosen schedule used.
    pub hosts: Vec<String>,
    /// Seconds between submission and admission.
    pub wait_seconds: f64,
    /// Seconds between admission and completion.
    pub exec_seconds: f64,
    /// `(wait + exec) / exec` — 1.0 means no queueing penalty.
    pub slowdown: f64,
    /// Placement attempts made (1 = succeeded first try).
    pub attempts: u32,
    /// Mid-run phase revocations survived via rescheduling onto other
    /// hosts (stencil jobs under the aware regime only).
    pub reschedules: u32,
    /// Whether the job finished its work. `false` means every attempt
    /// was revoked and the retry budget ran out.
    pub completed: bool,
}

/// Slowdown `(wait + exec) / exec`, guarded against degenerate
/// execution times: zero, negative or non-finite `exec` (a job that
/// never ran, e.g. failed on every attempt) reports 1.0, and the result
/// is clamped to at least 1.0 so rounding noise can't report a job
/// running *faster* than unloaded.
pub fn slowdown_of(wait_seconds: f64, exec_seconds: f64) -> f64 {
    if !exec_seconds.is_finite() || exec_seconds <= 0.0 || !wait_seconds.is_finite() {
        return 1.0;
    }
    ((wait_seconds + exec_seconds) / exec_seconds).max(1.0)
}

impl JobRecord {
    /// Response time: submission to completion, seconds.
    pub fn latency_seconds(&self) -> f64 {
        self.wait_seconds + self.exec_seconds
    }

    /// CSV header for per-job rows.
    pub fn csv_header() -> &'static str {
        "job,kind,submit_s,start_s,finish_s,wait_s,exec_s,slowdown,attempts,reschedules,completed,hosts"
    }

    /// One CSV row (hosts are `+`-joined so the row stays one field).
    pub fn csv_row(&self) -> String {
        format!(
            "{},{},{:.3},{:.3},{:.3},{:.3},{:.3},{:.4},{},{},{},{}",
            self.id,
            self.kind,
            self.submit.as_secs_f64(),
            self.start.as_secs_f64(),
            self.finish.as_secs_f64(),
            self.wait_seconds,
            self.exec_seconds,
            self.slowdown,
            self.attempts,
            self.reschedules,
            self.completed,
            self.hosts.join("+"),
        )
    }
}

/// Nearest-rank percentile of an unsorted sample.
///
/// The one implementation lives in [`obsv::percentile`] (shared with
/// the histogram quantiles in the metrics registry); re-exported here
/// because fleet metrics are where grid callers reach for it. `p` is
/// clamped to `[0, 100]`, NaN samples are dropped, and an empty or
/// all-NaN sample yields `0.0` — never NaN, never a panic.
pub use obsv::percentile;

/// Aggregate view of a whole job stream.
#[derive(Debug, Clone, PartialEq)]
pub struct FleetMetrics {
    /// Jobs admitted (completed + failed).
    pub jobs: usize,
    /// Jobs that finished their work.
    pub jobs_completed: usize,
    /// Jobs that exhausted their retry budget.
    pub jobs_failed: usize,
    /// Jobs that needed more than one attempt or survived a mid-run
    /// rescheduling.
    pub jobs_rescheduled: usize,
    /// Total placement attempts across all jobs.
    pub total_attempts: u64,
    /// Length of the submission window, seconds.
    pub duration_seconds: f64,
    /// Completed jobs per hour of submission window.
    pub throughput_per_hour: f64,
    /// Completed execution seconds per second of submission window —
    /// work that actually finished, discounting everything thrown away
    /// on revoked placements.
    pub goodput: f64,
    /// Mean admission wait of completed jobs, seconds.
    pub mean_wait_seconds: f64,
    /// Mean execution time of completed jobs, seconds.
    pub mean_exec_seconds: f64,
    /// Mean slowdown of completed jobs.
    pub mean_slowdown: f64,
    /// Median response time (wait + exec) of completed jobs, seconds.
    pub latency_p50: f64,
    /// 95th-percentile response time, seconds.
    pub latency_p95: f64,
    /// 99th-percentile response time, seconds.
    pub latency_p99: f64,
    /// Per-host `(name, busy_seconds / duration)` — *demand*
    /// utilization: overlapping jobs on one host each count their full
    /// wall-clock, so a time-shared host can exceed 1.0.
    pub host_utilization: Vec<(String, f64)>,
}

impl FleetMetrics {
    /// Reduce `records` over a submission window of `duration_seconds`.
    /// `all_hosts` fixes the utilization table's rows (idle hosts show
    /// 0.0) and their order. Latency and slowdown statistics cover
    /// completed jobs only — a failed job has no meaningful response
    /// time, only its failure count.
    pub fn from_records(
        records: &[JobRecord],
        duration_seconds: f64,
        all_hosts: &[String],
    ) -> FleetMetrics {
        let done: Vec<&JobRecord> = records.iter().filter(|r| r.completed).collect();
        let n_done = done.len();
        let latencies: Vec<f64> = done.iter().map(|r| r.latency_seconds()).collect();
        let mean = |f: fn(&JobRecord) -> f64| {
            if n_done == 0 {
                0.0
            } else {
                done.iter().map(|r| f(r)).sum::<f64>() / n_done as f64
            }
        };
        let host_utilization = all_hosts
            .iter()
            .map(|name| {
                let busy: f64 = records
                    .iter()
                    .filter(|r| r.hosts.iter().any(|h| h == name))
                    .map(|r| r.exec_seconds)
                    .sum();
                // `.max(0.0)` also normalizes the -0.0 an empty
                // f64 sum can produce.
                let util = if duration_seconds > 0.0 {
                    busy.max(0.0) / duration_seconds
                } else {
                    0.0
                };
                (name.clone(), util)
            })
            .collect();
        let completed_exec: f64 = done.iter().map(|r| r.exec_seconds).sum::<f64>().max(0.0);
        FleetMetrics {
            jobs: records.len(),
            jobs_completed: n_done,
            jobs_failed: records.len() - n_done,
            jobs_rescheduled: records
                .iter()
                .filter(|r| r.attempts > 1 || r.reschedules > 0)
                .count(),
            total_attempts: records.iter().map(|r| r.attempts as u64).sum(),
            duration_seconds,
            throughput_per_hour: if duration_seconds > 0.0 {
                n_done as f64 / (duration_seconds / 3600.0)
            } else {
                0.0
            },
            goodput: if duration_seconds > 0.0 {
                completed_exec / duration_seconds
            } else {
                0.0
            },
            mean_wait_seconds: mean(|r| r.wait_seconds),
            mean_exec_seconds: mean(|r| r.exec_seconds),
            mean_slowdown: mean(|r| r.slowdown),
            latency_p50: percentile(&latencies, 50.0),
            latency_p95: percentile(&latencies, 95.0),
            latency_p99: percentile(&latencies, 99.0),
            host_utilization,
        }
    }

    /// CSV header matching [`FleetMetrics::csv_row`]. The `label`
    /// column lets sweeps stack rows from many trials in one file.
    pub fn csv_header() -> &'static str {
        "label,jobs,completed,failed,rescheduled,attempts,duration_s,throughput_per_hour,\
         goodput,mean_wait_s,mean_exec_s,mean_slowdown,latency_p50_s,latency_p95_s,latency_p99_s"
    }

    /// One CSV row of the scalar fleet metrics.
    pub fn csv_row(&self, label: &str) -> String {
        format!(
            "{},{},{},{},{},{},{:.1},{:.4},{:.4},{:.3},{:.3},{:.4},{:.3},{:.3},{:.3}",
            label,
            self.jobs,
            self.jobs_completed,
            self.jobs_failed,
            self.jobs_rescheduled,
            self.total_attempts,
            self.duration_seconds,
            self.throughput_per_hour,
            self.goodput,
            self.mean_wait_seconds,
            self.mean_exec_seconds,
            self.mean_slowdown,
            self.latency_p50,
            self.latency_p95,
            self.latency_p99,
        )
    }

    /// The fleet metrics as a JSON object (hand-rolled; no external
    /// dependencies in this workspace).
    pub fn to_json(&self) -> String {
        let hosts: Vec<String> = self
            .host_utilization
            .iter()
            .map(|(name, u)| format!("{{\"host\":\"{name}\",\"utilization\":{u:.4}}}"))
            .collect();
        format!(
            "{{\"jobs\":{},\"jobs_completed\":{},\"jobs_failed\":{},\"jobs_rescheduled\":{},\
             \"total_attempts\":{},\"duration_seconds\":{:.1},\"throughput_per_hour\":{:.4},\
             \"goodput\":{:.4},\
             \"mean_wait_seconds\":{:.3},\"mean_exec_seconds\":{:.3},\"mean_slowdown\":{:.4},\
             \"latency_p50\":{:.3},\"latency_p95\":{:.3},\"latency_p99\":{:.3},\
             \"host_utilization\":[{}]}}",
            self.jobs,
            self.jobs_completed,
            self.jobs_failed,
            self.jobs_rescheduled,
            self.total_attempts,
            self.duration_seconds,
            self.throughput_per_hour,
            self.goodput,
            self.mean_wait_seconds,
            self.mean_exec_seconds,
            self.mean_slowdown,
            self.latency_p50,
            self.latency_p95,
            self.latency_p99,
            hosts.join(","),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(id: usize, wait: f64, exec: f64, host: &str) -> JobRecord {
        JobRecord {
            id,
            kind: "jacobi2d".into(),
            submit: SimTime::from_secs_f64(600.0 + id as f64),
            start: SimTime::from_secs_f64(600.0 + id as f64 + wait),
            finish: SimTime::from_secs_f64(600.0 + id as f64 + wait + exec),
            hosts: vec![host.to_string()],
            wait_seconds: wait,
            exec_seconds: exec,
            slowdown: slowdown_of(wait, exec),
            attempts: 1,
            reschedules: 0,
            completed: true,
        }
    }

    #[test]
    fn percentile_nearest_rank() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        assert_eq!(percentile(&xs, 50.0), 50.0);
        assert_eq!(percentile(&xs, 95.0), 95.0);
        assert_eq!(percentile(&xs, 99.0), 99.0);
        assert_eq!(percentile(&xs, 100.0), 100.0);
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn percentile_clamps_out_of_range_p() {
        // Regression: p < 0 used to produce rank 0 via a saturating
        // float→usize cast, silently aliasing p0; p > 100 read past
        // the intended range. Both now clamp.
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(percentile(&xs, -25.0), 1.0);
        assert_eq!(percentile(&xs, 0.0), 1.0);
        assert_eq!(percentile(&xs, 400.0), 4.0);
        assert_eq!(percentile(&xs, f64::NAN), 1.0);
    }

    #[test]
    fn percentile_ignores_nans() {
        // NaN used to poison the sort (partial_cmp fell back to Equal,
        // leaving the vector un-ordered around NaN islands); now NaNs
        // are dropped before ranking.
        let xs = [f64::NAN, 3.0, 1.0, f64::NAN, 2.0];
        assert_eq!(percentile(&xs, 50.0), 2.0);
        assert_eq!(percentile(&xs, 100.0), 3.0);
        assert_eq!(percentile(&[f64::NAN, f64::NAN], 50.0), 0.0);
    }

    #[test]
    fn slowdown_guards_degenerate_exec_times() {
        // Regression: a zero-duration job used to divide by zero and
        // record slowdown = inf (or NaN for wait = 0 too).
        assert_eq!(slowdown_of(5.0, 0.0), 1.0);
        assert_eq!(slowdown_of(0.0, 0.0), 1.0);
        assert_eq!(slowdown_of(5.0, -1.0), 1.0);
        assert_eq!(slowdown_of(f64::NAN, 10.0), 1.0);
        assert_eq!(slowdown_of(5.0, f64::NAN), 1.0);
        // Clamped from below at 1.0.
        assert_eq!(slowdown_of(-0.5, 10.0), 1.0);
        // Ordinary case unchanged.
        assert!((slowdown_of(10.0, 10.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn failed_jobs_count_against_goodput_not_latency() {
        let hosts = vec!["a".to_string()];
        let mut failed = rec(1, 30.0, 0.0, "a");
        failed.completed = false;
        failed.attempts = 3;
        failed.slowdown = slowdown_of(30.0, 0.0);
        let records = vec![rec(0, 0.0, 100.0, "a"), failed];
        let m = FleetMetrics::from_records(&records, 1000.0, &hosts);
        assert_eq!(m.jobs, 2);
        assert_eq!(m.jobs_completed, 1);
        assert_eq!(m.jobs_failed, 1);
        assert_eq!(m.jobs_rescheduled, 1);
        assert_eq!(m.total_attempts, 4);
        // Latency stats cover the completed job only.
        assert!((m.latency_p99 - 100.0).abs() < 1e-9);
        assert!((m.mean_exec_seconds - 100.0).abs() < 1e-9);
        // Goodput counts only the completed 100 s of work.
        assert!((m.goodput - 0.1).abs() < 1e-9);
        // Throughput counts completed jobs only.
        assert!((m.throughput_per_hour - 3.6).abs() < 1e-9);
    }

    #[test]
    fn fleet_reduction_basic() {
        let hosts = vec!["a".to_string(), "b".to_string()];
        let records = vec![rec(0, 0.0, 100.0, "a"), rec(1, 50.0, 150.0, "a")];
        let m = FleetMetrics::from_records(&records, 3600.0, &hosts);
        assert_eq!(m.jobs, 2);
        assert!((m.throughput_per_hour - 2.0).abs() < 1e-9);
        assert!((m.mean_wait_seconds - 25.0).abs() < 1e-9);
        assert!((m.mean_exec_seconds - 125.0).abs() < 1e-9);
        assert!((m.latency_p50 - 100.0).abs() < 1e-9);
        assert!((m.latency_p99 - 200.0).abs() < 1e-9);
        // Host a was busy 250 s of 3600; host b idle.
        assert!((m.host_utilization[0].1 - 250.0 / 3600.0).abs() < 1e-9);
        assert_eq!(m.host_utilization[1].1, 0.0);
    }

    #[test]
    fn csv_and_json_are_stable() {
        let hosts = vec!["a".to_string()];
        let records = vec![rec(0, 1.0, 9.0, "a")];
        let m = FleetMetrics::from_records(&records, 100.0, &hosts);
        assert_eq!(m.csv_row("t"), m.csv_row("t"));
        assert!(m.to_json().contains("\"jobs\":1"));
        assert!(m.to_json().contains("\"host\":\"a\""));
        assert_eq!(
            JobRecord::csv_header().split(',').count(),
            records[0].csv_row().split(',').count()
        );
        assert_eq!(
            FleetMetrics::csv_header().split(',').count(),
            m.csv_row("t").split(',').count()
        );
    }

    #[test]
    fn empty_stream_is_all_zeros() {
        let m = FleetMetrics::from_records(&[], 3600.0, &[]);
        assert_eq!(m.jobs, 0);
        assert_eq!(m.throughput_per_hour, 0.0);
        assert_eq!(m.mean_slowdown, 0.0);
    }
}
