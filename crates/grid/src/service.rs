//! The job-stream service: admit, decide, actuate, impose, record.
//!
//! One shared Figure 2 testbed; each admitted job gets its own selfish
//! AppLeS agent deciding from Network Weather Service forecasts, then
//! the job's realized resource usage is written back into the topology
//! as foreground load (§3: "other applications create contention for
//! shared resources, and are experienced by an individual application
//! in terms of the dynamically varying performance capability of
//! metacomputing system resources"). Later agents' sensors observe
//! that contention and route around it.
//!
//! ## Information regimes
//!
//! * [`Regime::Aware`] — one shared Weather Service is advanced to
//!   each job's start over the *live* (load-imposed) topology. Because
//!   a job's imposition only alters availability from its own start
//!   time forward, and jobs are processed in admission order, the
//!   shared service's sample stream is identical to giving every agent
//!   a fresh service over the mutated topology — at a fraction of the
//!   cost for long streams.
//! * [`Regime::Blind`] — every agent decides from one pristine
//!   pre-stream snapshot, as if all jobs were submitted simultaneously;
//!   they pile onto the same fast hosts and contend.
//!
//! ## Approximations
//!
//! A running job does not feel load imposed by *later* arrivals
//! (first-decider-wins): each actuation simulates against the topology
//! as of its start. Host impositions are exact for SPMD jobs (measured
//! compute seconds); pipeline and farm impositions are busy-fraction
//! estimates. Link impositions smear a job's total transferred MB over
//! its run window.
//!
//! ## Faults and retries
//!
//! A [`FaultInjection`] schedule (explicit [`FaultSpec`] or a realized
//! [`FaultModel`]) is applied to the *live* topology before the stream
//! starts. The blind snapshot stays pre-fault: a blind agent has no
//! channel through which to learn about crashes, which is exactly the
//! baseline the paper's Figure 6 argues against. When an actuation is
//! revoked mid-run ([`metasim::SimError::PlacementLost`]) the service
//! discards the attempt without writing its load back (tear-down: a
//! placement that died never finished occupying its hosts for the
//! recorded window), excludes the dead host, and retries the job under
//! the workload's [`RetryPolicy`] with exponential backoff. Aware
//! stencil jobs additionally run under [`ReschedulingAgent`], which
//! checkpoints at phase boundaries and re-plans remnant iterations on
//! the survivors instead of restarting from scratch. Jobs that exhaust
//! their attempts are recorded with `completed = false`, never dropped.

use crate::metrics::{slowdown_of, FleetMetrics, JobRecord};
use crate::workload::{JobKind, JobSpec, RetryPolicy, WorkloadConfig};
use apples::actuator::{actuate_with_sink, ActuationDetail, ActuationReport};
use apples::hat::Hat;
use apples::info::InfoPool;
use apples::rescheduler::{RescheduleReport, ReschedulingAgent};
use apples::schedule::Schedule;
use apples::{ApplesError, Coordinator};
use apples_apps::nile::plan_farm;
use metasim::load::Imposition;
use metasim::simtrace::{EventSink, NoopSink, TraceEvent};
use metasim::testbed::{pcl_sdsc, LoadProfile, TestbedConfig};
use metasim::topogen::{self, TopoGenConfig, TopoSpec};
use metasim::{apply_faults_with_sink, FaultModel, FaultSpec, SimError};
use metasim::{HostId, SimTime, Topology};
use nws::{WeatherService, WeatherServiceConfig};
use simcore::EventQueue;

/// Information regime for the stream's agents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Regime {
    /// Each agent observes the system as it is when its job starts,
    /// including earlier jobs' imposed load.
    Aware,
    /// Every agent decides from pristine pre-stream measurements.
    Blind,
}

/// How (and whether) host and link faults are injected into the live
/// testbed for the duration of the stream.
#[derive(Debug, Clone, Default, PartialEq)]
pub enum FaultInjection {
    /// No injected faults; the seed behavior.
    #[default]
    None,
    /// Apply this exact fault schedule.
    Spec(FaultSpec),
    /// Realize a random schedule from this model over the submission
    /// window, seeded by the grid seed (deterministic per seed).
    Random(FaultModel),
}

impl FaultInjection {
    /// True when no faults will be injected.
    pub fn is_none(&self) -> bool {
        matches!(self, FaultInjection::None)
    }
}

/// Service-side configuration: the shared system and its policies.
#[derive(Debug, Clone, PartialEq)]
pub struct GridConfig {
    /// Background-load profile of the testbed.
    pub profile: LoadProfile,
    /// Include the two SP-2 nodes.
    pub with_sp2: bool,
    /// Run on a generated topology family instead of the Figure-2
    /// SDSC/PCL testbed (`with_sp2` is ignored when set). The profile,
    /// horizon and seed above drive the generation.
    pub topo: Option<TopoSpec>,
    /// Sensor warmup before the first submission: the NWS needs
    /// history to forecast from.
    pub warmup: SimTime,
    /// Availability-realization horizon of the testbed (series extend
    /// their last value beyond it).
    pub horizon: SimTime,
    /// Seed for the testbed's background-load realization.
    pub seed: u64,
    /// Information regime.
    pub regime: Regime,
    /// FCFS admission bound: at most this many jobs in flight; further
    /// submissions queue. `usize::MAX` disables admission control.
    pub max_in_flight: usize,
    /// Faults injected into the live testbed.
    pub faults: FaultInjection,
}

impl Default for GridConfig {
    fn default() -> Self {
        GridConfig {
            profile: LoadProfile::Light,
            with_sp2: false,
            topo: None,
            warmup: SimTime::from_secs(600),
            horizon: SimTime::from_secs(400_000),
            seed: 1996,
            regime: Regime::Aware,
            max_in_flight: usize::MAX,
            faults: FaultInjection::None,
        }
    }
}

/// A service failure.
#[derive(Debug, Clone, PartialEq)]
pub enum GridError {
    /// A configuration knob was rejected before the stream started.
    InvalidConfig(String),
    /// A job failed in a way the retry policy cannot absorb.
    Job {
        /// Submission-order id of the failing job.
        id: usize,
        /// What went wrong.
        message: String,
    },
    /// An agent-level failure outside any per-job retry path.
    Agent(ApplesError),
    /// A simulator-level failure (testbed construction, imposition,
    /// fault application).
    Sim(SimError),
    /// A service invariant was violated — a bug, not bad input.
    Internal(String),
}

impl std::fmt::Display for GridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GridError::InvalidConfig(m) => write!(f, "invalid grid configuration: {m}"),
            GridError::Job { id, message } => write!(f, "job {id}: {message}"),
            GridError::Agent(e) => write!(f, "agent failure: {e}"),
            GridError::Sim(e) => write!(f, "simulation failure: {e}"),
            GridError::Internal(m) => write!(f, "internal service error: {m}"),
        }
    }
}

impl std::error::Error for GridError {}

impl From<ApplesError> for GridError {
    fn from(e: ApplesError) -> Self {
        GridError::Agent(e)
    }
}

impl From<SimError> for GridError {
    fn from(e: SimError) -> Self {
        GridError::Sim(e)
    }
}

/// Everything a finished stream yields.
#[derive(Debug, Clone, PartialEq)]
pub struct GridOutcome {
    /// Per-job records in submission order.
    pub records: Vec<JobRecord>,
    /// Fleet-level reduction of the records.
    pub fleet: FleetMetrics,
}

/// Realize `workload` and stream it through the service under the
/// workload's retry policy.
pub fn run(cfg: &GridConfig, workload: &WorkloadConfig) -> Result<GridOutcome, GridError> {
    run_with_sink(cfg, workload, &mut NoopSink)
}

/// [`run`], streaming every job's lifecycle (submit → dispatch → retry
/// → complete/fail), the agents' decisions, forecasts, faults, imposed
/// load, and executor events into `sink`.
pub fn run_with_sink(
    cfg: &GridConfig,
    workload: &WorkloadConfig,
    sink: &mut dyn EventSink,
) -> Result<GridOutcome, GridError> {
    workload.validate()?;
    run_jobs_with_retry_sink(
        cfg,
        &workload.realize(),
        workload.duration,
        workload.retry,
        sink,
    )
}

/// Stream an explicit job list (offsets from stream start) through the
/// service with the default (single-attempt) retry policy. `duration`
/// is the submission-window length used for throughput and utilization
/// denominators.
pub fn run_jobs(
    cfg: &GridConfig,
    jobs: &[JobSpec],
    duration: SimTime,
) -> Result<GridOutcome, GridError> {
    run_jobs_with_retry(cfg, jobs, duration, RetryPolicy::default())
}

/// One pre-run diagnostic: a stable machine-readable code plus prose.
///
/// Codes for testbed/fault problems come from
/// [`metasim::ConfigIssue::code`]; service- and workload-level problems
/// use the codes documented on [`validate_config`].
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable kebab-case class of the problem (e.g. `unreachable-hosts`).
    pub code: String,
    /// Human-readable description.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "[{}] {}", self.code, self.message)
    }
}

impl From<&metasim::ConfigIssue> for Diagnostic {
    fn from(issue: &metasim::ConfigIssue) -> Self {
        Diagnostic {
            code: issue.code().to_owned(),
            message: issue.to_string(),
        }
    }
}

/// Best-case per-host resident demand of one job kind when spread over
/// `n_hosts`, for the static memory-fit check. `None` for kinds without
/// a static footprint model.
fn per_host_demand_mb(kind: &JobKind, n_hosts: usize) -> Option<(String, f64)> {
    let (hat, _) = kind.hat_and_user();
    if let Some(t) = hat.as_stencil() {
        let rows = t.n.div_ceil(n_hosts.max(1));
        Some((
            format!("{} ({n}x{n} stencil)", kind.name(), n = t.n),
            t.strip_resident_mb(rows),
        ))
    } else {
        hat.as_pipeline().map(|p| {
            (
                kind.name().to_owned(),
                p.producer_resident_mb.max(p.consumer_base_mb),
            )
        })
    }
}

/// Build the stream's shared topology: the Figure-2 SDSC/PCL testbed
/// by default, or a generated [`topogen`] family when `cfg.topo` names
/// one. The grid profile, horizon and seed drive the generation, so a
/// `--topo fat-tree:k=8` stream is exactly as reproducible as the
/// hand-built testbed.
pub(crate) fn build_topology(cfg: &GridConfig) -> Result<Topology, SimError> {
    match &cfg.topo {
        Some(spec) => topogen::generate(
            spec,
            &TopoGenConfig {
                profile: cfg.profile,
                horizon: cfg.horizon,
                seed: cfg.seed,
            },
        ),
        None => Ok(pcl_sdsc(&TestbedConfig {
            profile: cfg.profile,
            horizon: cfg.horizon,
            seed: cfg.seed,
            with_sp2: cfg.with_sp2,
        })?
        .topo),
    }
}

/// Statically validate a service configuration (and, when given, a
/// workload) without running anything.
///
/// Returns every problem found, not just the first. Testbed and fault
/// diagnostics carry [`metasim::ConfigIssue`] codes; the service adds:
///
/// * `admission` — `max_in_flight` is zero, the stream can never start;
/// * `testbed` — the testbed itself failed to build;
/// * `fault-model` — a random fault model with invalid rates;
/// * `arrivals` / `job-mix` / `retry` — the corresponding workload knob
///   was rejected;
/// * `memory-overcommit` — a job kind in the mix cannot fit on the
///   testbed's hosts even when spread perfectly.
pub fn validate_config(cfg: &GridConfig, workload: Option<&WorkloadConfig>) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut push = |code: &str, message: String| {
        out.push(Diagnostic {
            code: code.to_owned(),
            message,
        });
    };

    if cfg.max_in_flight == 0 {
        push("admission", "max_in_flight must be at least 1".into());
    }

    let topo = match build_topology(cfg) {
        Ok(t) => t,
        Err(e) => {
            push("testbed", format!("testbed failed to build: {e}"));
            return out;
        }
    };

    let mut report = metasim::validate_topology(&topo);
    match &cfg.faults {
        FaultInjection::None => {}
        FaultInjection::Spec(spec) => {
            report.merge(metasim::validate_faults(&topo, spec));
        }
        FaultInjection::Random(model) => {
            if let Err(e) = model.validate() {
                push("fault-model", e.to_string());
            }
        }
    }
    out.extend(report.issues.iter().map(Diagnostic::from));

    if let Some(w) = workload {
        if let Err(e) = w.arrivals.validate() {
            out.push(Diagnostic {
                code: "arrivals".into(),
                message: e.to_string(),
            });
        }
        if let Err(e) = w.mix.validate() {
            out.push(Diagnostic {
                code: "job-mix".into(),
                message: e.to_string(),
            });
        }
        if let Err(e) = w.retry.validate() {
            out.push(Diagnostic {
                code: "retry".into(),
                message: e.to_string(),
            });
        }
        let n_hosts = topo.hosts().len();
        for (kind, _) in &w.mix.entries {
            if let Some((what, needed)) = per_host_demand_mb(kind, n_hosts) {
                if let Some(issue) = metasim::validate::memory_fit(&topo, &what, needed) {
                    out.push(Diagnostic::from(&issue));
                }
            }
        }
    }

    out
}

/// A validated handle on the simulated grid: construction runs the full
/// static validation pass and refuses configurations that would panic
/// or hang a stream mid-run.
#[derive(Debug, Clone)]
pub struct GridService {
    cfg: GridConfig,
}

impl GridService {
    /// Validate `cfg` (service knobs, testbed topology, fault schedule)
    /// and wrap it. Every diagnostic is reported, joined into one
    /// [`GridError::InvalidConfig`].
    pub fn new(cfg: GridConfig) -> Result<GridService, GridError> {
        let diags = validate_config(&cfg, None);
        if !diags.is_empty() {
            return Err(GridError::InvalidConfig(
                diags
                    .iter()
                    .map(Diagnostic::to_string)
                    .collect::<Vec<_>>()
                    .join("; "),
            ));
        }
        Ok(GridService { cfg })
    }

    /// The validated configuration.
    pub fn config(&self) -> &GridConfig {
        &self.cfg
    }

    /// Validate `workload` against this service's testbed (including
    /// the static memory-fit check), then stream it.
    pub fn run(&self, workload: &WorkloadConfig) -> Result<GridOutcome, GridError> {
        let diags = validate_config(&self.cfg, Some(workload));
        if !diags.is_empty() {
            return Err(GridError::InvalidConfig(
                diags
                    .iter()
                    .map(Diagnostic::to_string)
                    .collect::<Vec<_>>()
                    .join("; "),
            ));
        }
        run(&self.cfg, workload)
    }

    /// [`Self::run`], streaming trace events into `sink`.
    pub fn run_with_sink(
        &self,
        workload: &WorkloadConfig,
        sink: &mut dyn EventSink,
    ) -> Result<GridOutcome, GridError> {
        let diags = validate_config(&self.cfg, Some(workload));
        if !diags.is_empty() {
            return Err(GridError::InvalidConfig(
                diags
                    .iter()
                    .map(Diagnostic::to_string)
                    .collect::<Vec<_>>()
                    .join("; "),
            ));
        }
        run_with_sink(&self.cfg, workload, sink)
    }

    /// Stream an explicit job list with the default retry policy.
    pub fn run_jobs(&self, jobs: &[JobSpec], duration: SimTime) -> Result<GridOutcome, GridError> {
        run_jobs(&self.cfg, jobs, duration)
    }

    /// Stream an explicit job list under `retry`.
    pub fn run_jobs_with_retry(
        &self,
        jobs: &[JobSpec],
        duration: SimTime,
        retry: RetryPolicy,
    ) -> Result<GridOutcome, GridError> {
        run_jobs_with_retry(&self.cfg, jobs, duration, retry)
    }
}

/// What one placement attempt produced.
enum AttemptOutcome {
    /// The job ran to completion in one actuation.
    OneShot(Schedule, ActuationReport),
    /// The job ran in phases under the rescheduling agent, surviving
    /// zero or more mid-run revocations.
    Phased(RescheduleReport),
}

/// A failure the retry policy may absorb: the revoked/unreachable host
/// (when the failure names one) and the simulated time the placement
/// was lost (when known).
pub(crate) fn retryable(err: &ApplesError) -> Option<(Option<HostId>, Option<SimTime>)> {
    match err {
        ApplesError::Sim(SimError::PlacementLost { host, at }) => {
            Some((Some(HostId(*host)), Some(*at)))
        }
        ApplesError::Sim(SimError::NeverCompletes { .. }) => Some((None, None)),
        ApplesError::NoFeasibleResources
        | ApplesError::PlanningFailed(_)
        | ApplesError::NoViableSchedule => Some((None, None)),
        _ => None,
    }
}

/// Realize the configured fault injection into a concrete schedule over
/// the submission window (deterministic per `cfg.seed`). Shared by the
/// selfish stream loop and the centralized regimes in [`crate::sched`]
/// so every regime faces the exact same faults.
pub(crate) fn realize_faults(
    cfg: &GridConfig,
    topo: &Topology,
    duration: SimTime,
) -> Result<FaultSpec, SimError> {
    match &cfg.faults {
        FaultInjection::None => Ok(FaultSpec::none()),
        FaultInjection::Spec(s) => Ok(s.clone()),
        FaultInjection::Random(m) => m.realize(topo, cfg.warmup, cfg.warmup + duration, cfg.seed),
    }
}

/// Stream an explicit job list through the service under `retry`.
pub fn run_jobs_with_retry(
    cfg: &GridConfig,
    jobs: &[JobSpec],
    duration: SimTime,
    retry: RetryPolicy,
) -> Result<GridOutcome, GridError> {
    run_jobs_with_retry_sink(cfg, jobs, duration, retry, &mut NoopSink)
}

/// [`run_jobs_with_retry`], streaming trace events into `sink`.
pub fn run_jobs_with_retry_sink(
    cfg: &GridConfig,
    jobs: &[JobSpec],
    duration: SimTime,
    retry: RetryPolicy,
    sink: &mut dyn EventSink,
) -> Result<GridOutcome, GridError> {
    retry.validate()?;
    if cfg.max_in_flight == 0 {
        return Err(GridError::InvalidConfig(
            "max_in_flight must be at least 1".into(),
        ));
    }
    let pristine = build_topology(cfg)?;
    let mut topo = pristine.clone();

    // Realize and apply the fault schedule to the live topology. The
    // `pristine` snapshot used by blind agents stays fault-free.
    let fault_spec = realize_faults(cfg, &topo, duration)?;
    if !fault_spec.is_empty() {
        apply_faults_with_sink(&mut topo, &fault_spec, sink)?;
    }
    let faults_on = !fault_spec.is_empty();

    let mut ordered: Vec<&JobSpec> = jobs.iter().collect();
    ordered.sort_by_key(|j| (j.submit, j.id));

    // Blind agents share one pre-stream snapshot; aware agents share
    // one service advanced in admission order over the live topology.
    let mut blind_ws = None;
    if cfg.regime == Regime::Blind {
        let mut ws = WeatherService::for_topology(&pristine, WeatherServiceConfig::default());
        ws.advance(&pristine, cfg.warmup);
        blind_ws = Some(ws);
    }
    let mut shared_ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());

    // Finish times of admitted jobs, for the FCFS in-flight bound.
    let mut in_flight: EventQueue<SimTime, ()> = EventQueue::new();
    let mut records = Vec::with_capacity(ordered.len());

    for job in ordered {
        let submit = cfg.warmup + job.submit;
        let mut start = submit;
        while in_flight.len() >= cfg.max_in_flight {
            let Some((freed, _, ())) = in_flight.pop() else {
                break;
            };
            start = start.max(freed);
        }
        if sink.enabled() {
            sink.record(TraceEvent::JobSubmitted {
                job: job.id,
                kind: job.kind.name().to_string(),
                at: submit,
            });
        }

        let (hat, base_user) = job.kind.hat_and_user();
        // Aware stencil jobs run phase-wise under faults so a mid-run
        // revocation costs only the failed phase, not the whole job.
        let phased =
            faults_on && cfg.regime == Regime::Aware && matches!(job.kind, JobKind::Jacobi { .. });

        let mut attempts: u32 = 0;
        let mut reschedules: u32 = 0;
        // Hosts the service has watched die under this job's
        // placements; excluded from subsequent attempts.
        let mut dead_hosts: Vec<HostId> = Vec::new();

        let record = loop {
            attempts += 1;
            if sink.enabled() {
                sink.record(TraceEvent::JobDispatched {
                    job: job.id,
                    at: start,
                    attempt: attempts,
                });
            }
            let mut user = base_user.clone();
            user.excluded_hosts.extend(dead_hosts.iter().copied());

            let outcome: Result<AttemptOutcome, ApplesError> = if phased {
                let mut agent = ReschedulingAgent::new(Coordinator::new(hat.clone(), user));
                if let JobKind::Jacobi { iterations, .. } = job.kind {
                    // Four checkpoints per job bounds lost work to a
                    // quarter of the solve without paying a replanning
                    // pass per handful of iterations.
                    agent.policy.phase_iterations = (iterations / 4).max(10);
                }
                // The rescheduler drives its own sampling clock past
                // this job's phases; give it a private service over the
                // live topology so the shared admission-order stream is
                // not advanced beyond the next job's start. (Sampling
                // is deterministic, so this is observationally the same
                // stream.)
                let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
                agent
                    .run_stencil_with_sink(&topo, &mut ws, start, sink)
                    .map(AttemptOutcome::Phased)
            } else {
                let schedule = match (&blind_ws, cfg.regime) {
                    (Some(ws), Regime::Blind) => {
                        let pool = InfoPool::with_nws(&pristine, ws, &hat, &user, cfg.warmup);
                        decide(&job.kind, &pool, sink)
                    }
                    _ => {
                        shared_ws.advance_with_sink(&topo, start, sink);
                        let pool = InfoPool::with_nws(&topo, &shared_ws, &hat, &user, start);
                        decide(&job.kind, &pool, sink)
                    }
                };
                schedule.and_then(|schedule| {
                    actuate_with_sink(&topo, &hat, &schedule, start, sink)
                        .map(|report| AttemptOutcome::OneShot(schedule, report))
                })
            };

            match outcome {
                Ok(AttemptOutcome::OneShot(schedule, report)) => {
                    impose_job_load(&mut topo, &hat, &schedule, &report, start, sink)?;
                    let hosts = host_names_of(&topo, &schedule.hosts())?;
                    let wait_seconds = start.saturating_sub(submit).as_secs_f64();
                    if sink.enabled() {
                        sink.record(TraceEvent::JobCompleted {
                            job: job.id,
                            at: report.finish,
                            exec_seconds: report.elapsed_seconds,
                        });
                    }
                    break JobRecord {
                        id: job.id,
                        kind: job.kind.name().to_string(),
                        submit,
                        start,
                        finish: report.finish,
                        hosts,
                        wait_seconds,
                        exec_seconds: report.elapsed_seconds,
                        slowdown: slowdown_of(wait_seconds, report.elapsed_seconds),
                        attempts,
                        reschedules,
                        completed: true,
                    };
                }
                Ok(AttemptOutcome::Phased(report)) => {
                    // Saturate rather than truncate: a `usize as u32`
                    // cast would silently wrap a pathological count.
                    reschedules = reschedules
                        .saturating_add(u32::try_from(report.revocations).unwrap_or(u32::MAX));
                    let mut used: Vec<HostId> = Vec::new();
                    // Collect each host's per-phase impositions and
                    // apply them in one batched series rebuild per host
                    // instead of one per (phase, worker). Phase windows
                    // on one host are disjoint in time, so the batched
                    // result equals sequential application; LoadImposed
                    // events keep the original per-phase order.
                    let mut batched: Vec<(HostId, Vec<Imposition>)> = Vec::new();
                    for ph in &report.phases {
                        let phase_end = ph.start + SimTime::from_secs_f64(ph.elapsed_seconds);
                        for (w, &h) in ph.hosts.iter().enumerate() {
                            let busy = ph.compute_seconds.get(w).copied().unwrap_or(0.0);
                            if ph.elapsed_seconds > 0.0 {
                                let utilization = (busy / ph.elapsed_seconds).clamp(0.0, 1.0);
                                let factor = 1.0 - utilization;
                                let imp = Imposition::new(ph.start, phase_end, factor);
                                match batched.iter_mut().find(|(bh, _)| *bh == h) {
                                    Some((_, imps)) => imps.push(imp),
                                    None => batched.push((h, vec![imp])),
                                }
                                if sink.enabled() {
                                    sink.record(TraceEvent::LoadImposed {
                                        host: h,
                                        at: ph.start,
                                        until: phase_end,
                                        factor,
                                    });
                                }
                            }
                            if !used.contains(&h) {
                                used.push(h);
                            }
                        }
                    }
                    for (h, imps) in &batched {
                        let hm = topo.host_mut(*h)?;
                        let scaled = hm.availability().with_impositions(imps);
                        hm.set_availability(scaled);
                    }
                    let hosts = host_names_of(&topo, &used)?;
                    let wait_seconds = start.saturating_sub(submit).as_secs_f64();
                    if sink.enabled() {
                        sink.record(TraceEvent::JobCompleted {
                            job: job.id,
                            at: report.finish,
                            exec_seconds: report.elapsed_seconds,
                        });
                    }
                    break JobRecord {
                        id: job.id,
                        kind: job.kind.name().to_string(),
                        submit,
                        start,
                        finish: report.finish,
                        hosts,
                        wait_seconds,
                        exec_seconds: report.elapsed_seconds,
                        slowdown: slowdown_of(wait_seconds, report.elapsed_seconds),
                        attempts,
                        reschedules,
                        completed: true,
                    };
                }
                Err(err) => {
                    let Some((lost_host, lost_at)) = retryable(&err) else {
                        return Err(GridError::Job {
                            id: job.id,
                            message: err.to_string(),
                        });
                    };
                    if let Some(h) = lost_host {
                        if !dead_hosts.contains(&h) {
                            dead_hosts.push(h);
                        }
                    }
                    if attempts >= retry.max_attempts {
                        // Out of budget: record the failure. Nothing
                        // was imposed for any failed attempt, so the
                        // topology carries no trace of the lost work.
                        let give_up = lost_at.unwrap_or(start).max(start);
                        let wait_seconds = give_up.saturating_sub(submit).as_secs_f64();
                        if sink.enabled() {
                            sink.record(TraceEvent::JobFailed {
                                job: job.id,
                                at: give_up,
                                attempts,
                            });
                        }
                        break JobRecord {
                            id: job.id,
                            kind: job.kind.name().to_string(),
                            submit,
                            start,
                            finish: give_up,
                            hosts: Vec::new(),
                            wait_seconds,
                            exec_seconds: 0.0,
                            slowdown: slowdown_of(wait_seconds, 0.0),
                            attempts,
                            reschedules,
                            completed: false,
                        };
                    }
                    // Jittered per (seed, job): jobs revoked by the
                    // same fault spread out instead of thundering back
                    // in lockstep, deterministically per seed.
                    start = lost_at.unwrap_or(start).max(start)
                        + retry.backoff_jittered(attempts, cfg.seed ^ job.id as u64);
                    if sink.enabled() {
                        sink.record(TraceEvent::JobRetried {
                            job: job.id,
                            at: start,
                            attempt: attempts,
                        });
                    }
                }
            }
        };
        in_flight.schedule(record.finish, ());
        records.push(record);
    }

    let host_names: Vec<String> = topo.hosts().iter().map(|h| h.spec.name.clone()).collect();
    let fleet = FleetMetrics::from_records(&records, duration.as_secs_f64(), &host_names);
    Ok(GridOutcome { records, fleet })
}

/// Resolve host ids to their testbed names.
pub(crate) fn host_names_of(topo: &Topology, hosts: &[HostId]) -> Result<Vec<String>, GridError> {
    hosts
        .iter()
        .map(|&h| {
            topo.host(h)
                .map(|x| x.spec.name.clone())
                .map_err(GridError::from)
        })
        .collect()
}

/// Plan one job: stencil and pipeline hats go through the Coordinator's
/// select → plan → estimate → choose loop; task farms are planned by
/// their Site Manager ([`plan_farm`]), as in the paper's NILE case
/// study, over every feasible host with the data and result home on
/// the fastest-forecast host.
fn decide(
    kind: &JobKind,
    pool: &InfoPool<'_>,
    sink: &mut dyn EventSink,
) -> Result<Schedule, ApplesError> {
    decide_with_prediction(kind, pool, sink).map(|(schedule, _)| schedule)
}

/// [`decide`], also surfacing the estimator's predicted runtime in
/// seconds. The centralized batch scheduler ([`crate::sched`]) uses
/// that prediction as its EASY-backfilling reservation oracle — the
/// same application-level estimate the selfish agents act on, handed
/// to a resource-level policy instead.
pub(crate) fn decide_with_prediction(
    kind: &JobKind,
    pool: &InfoPool<'_>,
    sink: &mut dyn EventSink,
) -> Result<(Schedule, f64), ApplesError> {
    match kind {
        JobKind::NileFarm { .. } => {
            let feasible: Vec<HostId> = apples::selector::ResourceSelector::feasible_hosts(pool);
            let home = feasible
                .iter()
                .copied()
                .max_by(|&a, &b| {
                    let fa = pool.effective_mflops(a).unwrap_or(0.0);
                    let fb = pool.effective_mflops(b).unwrap_or(0.0);
                    fa.total_cmp(&fb).then(b.cmp(&a))
                })
                .ok_or(ApplesError::NoFeasibleResources)?;
            let plan = plan_farm(pool, &feasible, home, home)?;
            let predicted = apples::estimator::estimate_farm(pool, &plan)?;
            Ok((Schedule::Farm(plan), predicted))
        }
        _ => {
            let coordinator = Coordinator::new(pool.hat.clone(), pool.user.clone());
            let decision = coordinator.decide_with_sink(pool, sink)?;
            let predicted = decision.chosen().predicted_seconds;
            Ok((decision.schedule().clone(), predicted))
        }
    }
}

/// Write a finished job's resource usage back into the topology so
/// later observers experience the contention.
fn impose_job_load(
    topo: &mut Topology,
    hat: &Hat,
    schedule: &Schedule,
    report: &ActuationReport,
    start: SimTime,
    sink: &mut dyn EventSink,
) -> Result<(), GridError> {
    let finish = report.finish;
    let elapsed = finish.saturating_sub(start).as_secs_f64();
    if elapsed <= 0.0 {
        return Ok(());
    }
    match (schedule, &report.detail) {
        (Schedule::Stencil(s), ActuationDetail::Spmd(out)) => {
            // Exact: the simulator reports each worker's compute time.
            for (w, part) in s.parts.iter().enumerate() {
                let utilization = (out.compute_seconds[w] / elapsed).clamp(0.0, 1.0);
                impose_host(topo, part.host, start, finish, 1.0 - utilization, sink)?;
            }
        }
        (Schedule::Pipeline(p), ActuationDetail::Pipeline(out)) => {
            let producer_busy = ((elapsed - out.producer_block_seconds) / elapsed).clamp(0.0, 1.0);
            let consumer_busy = ((elapsed - out.consumer_stall_seconds) / elapsed).clamp(0.0, 1.0);
            impose_host(topo, p.producer, start, finish, 1.0 - producer_busy, sink)?;
            if p.consumer != p.producer {
                impose_host(topo, p.consumer, start, finish, 1.0 - consumer_busy, sink)?;
            }
            if let Some(t) = hat.as_pipeline() {
                let mb = t.mb_per_unit * t.total_units as f64;
                impose_route(topo, p.producer, p.consumer, mb, start, finish)?;
            }
        }
        (Schedule::Farm(f), ActuationDetail::Farm(out)) => {
            let t = hat.as_task_farm().ok_or_else(|| {
                GridError::Internal("farm schedule paired with a non-farm hat".into())
            })?;
            for (&(host, events), &(_, done)) in f.assignments.iter().zip(&out.host_done) {
                let window = done.saturating_sub(start).as_secs_f64();
                if window <= 0.0 || events == 0 {
                    continue;
                }
                // Estimate: compute demand over delivered capability.
                let h = topo.host(host)?;
                let avail = h.mean_availability(start, done).max(1e-9);
                let est_compute = events as f64 * t.mflop_per_event / (h.spec.mflops * avail);
                let utilization = (est_compute / window).clamp(0.0, 1.0);
                impose_host(topo, host, start, done, 1.0 - utilization, sink)?;
                impose_route(
                    topo,
                    f.data_home,
                    host,
                    events as f64 * t.mb_per_event,
                    start,
                    done,
                )?;
                impose_route(
                    topo,
                    host,
                    f.result_home,
                    events as f64 * t.result_mb_per_event,
                    start,
                    done,
                )?;
            }
        }
        // Schedule/report shape mismatch cannot happen: `actuate`
        // produced the report from this same schedule.
        _ => {
            return Err(GridError::Internal(
                "actuation detail does not match schedule shape".into(),
            ))
        }
    }
    Ok(())
}

/// Scale one host's availability by `factor` over `[from, to)`.
fn impose_host(
    topo: &mut Topology,
    host: HostId,
    from: SimTime,
    to: SimTime,
    factor: f64,
    sink: &mut dyn EventSink,
) -> Result<(), GridError> {
    let h = topo.host_mut(host)?;
    let scaled = h
        .availability()
        .with_impositions(&[Imposition::new(from, to, factor)]);
    h.set_availability(scaled);
    if sink.enabled() {
        sink.record(TraceEvent::LoadImposed {
            host,
            at: from,
            until: to,
            factor,
        });
    }
    Ok(())
}

/// Smear `mb` of foreground traffic over every link on the route from
/// `from_host` to `to_host` across `[from, to)`: each link loses the
/// fraction of its nominal bandwidth the transfer consumed.
fn impose_route(
    topo: &mut Topology,
    from_host: HostId,
    to_host: HostId,
    mb: f64,
    from: SimTime,
    to: SimTime,
) -> Result<(), GridError> {
    let window = to.saturating_sub(from).as_secs_f64();
    if mb <= 0.0 || window <= 0.0 || from_host == to_host {
        return Ok(());
    }
    for link_id in topo.route(from_host, to_host)? {
        let scaled = {
            let l = topo.link(link_id)?;
            let fraction = (mb / (l.spec.bandwidth_mbps * window)).clamp(0.0, 1.0);
            l.availability()
                .with_impositions(&[Imposition::new(from, to, 1.0 - fraction)])
        };
        topo.link_mut(link_id)?.set_availability(scaled);
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::{ArrivalProcess, JobMix};

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    fn codes(diags: &[Diagnostic]) -> Vec<&str> {
        diags.iter().map(|d| d.code.as_str()).collect()
    }

    #[test]
    fn grid_service_accepts_the_default_config() {
        let svc = GridService::new(GridConfig::default()).expect("default config is valid");
        assert_eq!(svc.config().seed, 1996);
    }

    #[test]
    fn grid_service_refuses_zero_admission_bound() {
        let cfg = GridConfig {
            max_in_flight: 0,
            ..GridConfig::default()
        };
        let diags = validate_config(&cfg, None);
        assert!(codes(&diags).contains(&"admission"), "{diags:?}");
        let err = GridService::new(cfg).unwrap_err();
        assert!(matches!(err, GridError::InvalidConfig(_)));
    }

    #[test]
    fn grid_service_refuses_bad_fault_model() {
        let cfg = GridConfig {
            faults: FaultInjection::Random(FaultModel {
                host_crashes_per_hour: -1.0,
                link_outages_per_hour: 0.0,
                mean_outage: SimTime::from_secs(600),
                permanent_fraction: 0.0,
            }),
            ..GridConfig::default()
        };
        let diags = validate_config(&cfg, None);
        assert!(codes(&diags).contains(&"fault-model"), "{diags:?}");
        assert!(GridService::new(cfg).is_err());
    }

    #[test]
    fn grid_service_refuses_fault_windows_outside_horizon() {
        let cfg = GridConfig {
            faults: FaultInjection::Spec(FaultSpec {
                host_faults: vec![metasim::HostFault {
                    host: HostId(0),
                    at: SimTime::from_secs(500_000),
                    recover: None,
                }],
                link_faults: vec![],
            }),
            ..GridConfig::default()
        };
        let diags = validate_config(&cfg, None);
        assert!(codes(&diags).contains(&"fault-beyond-horizon"), "{diags:?}");
        assert!(GridService::new(cfg).is_err());
    }

    #[test]
    fn grid_service_refuses_fault_on_unknown_host() {
        let cfg = GridConfig {
            faults: FaultInjection::Spec(FaultSpec {
                host_faults: vec![metasim::HostFault {
                    host: HostId(999),
                    at: SimTime::from_secs(100),
                    recover: None,
                }],
                link_faults: vec![],
            }),
            ..GridConfig::default()
        };
        let diags = validate_config(&cfg, None);
        assert!(
            codes(&diags).contains(&"fault-on-unknown-host"),
            "{diags:?}"
        );
        assert!(GridService::new(cfg).is_err());
    }

    #[test]
    fn validate_config_rejects_workload_knobs() {
        let cfg = GridConfig::default();
        let w = WorkloadConfig {
            arrivals: ArrivalProcess::Poisson { rate_hz: 0.0 },
            mix: JobMix { entries: vec![] },
            retry: RetryPolicy {
                max_attempts: 0,
                ..RetryPolicy::default()
            },
            ..WorkloadConfig::default()
        };
        let diags = validate_config(&cfg, Some(&w));
        let c = codes(&diags);
        assert!(c.contains(&"arrivals"), "{c:?}");
        assert!(c.contains(&"job-mix"), "{c:?}");
        assert!(c.contains(&"retry"), "{c:?}");
    }

    #[test]
    fn validate_config_flags_memory_overcommit() {
        let cfg = GridConfig::default();
        // A 30000x30000 Jacobi grid is ~14 GB resident; even spread
        // across every Figure-2 host it cannot fit.
        let w = WorkloadConfig {
            mix: JobMix::only(JobKind::Jacobi {
                n: 30_000,
                iterations: 10,
            }),
            ..WorkloadConfig::default()
        };
        let diags = validate_config(&cfg, Some(&w));
        assert!(codes(&diags).contains(&"memory-overcommit"), "{diags:?}");
        // And the service refuses to run it.
        let svc = GridService::new(cfg).unwrap();
        assert!(matches!(svc.run(&w), Err(GridError::InvalidConfig(_))));
    }

    #[test]
    fn validate_config_is_clean_for_shipped_configs() {
        for with_sp2 in [false, true] {
            let cfg = GridConfig {
                with_sp2,
                ..GridConfig::default()
            };
            let diags = validate_config(&cfg, Some(&WorkloadConfig::default()));
            assert!(diags.is_empty(), "shipped config flagged: {diags:?}");
        }
    }

    fn probe_jobs(long_iters: usize, probe_iters: usize) -> Vec<JobSpec> {
        // Three long Jacobi solves occupy the fast hosts, then a short
        // probe arrives — the bench multi-agent scenario.
        let mut jobs: Vec<JobSpec> = (0..3)
            .map(|i| JobSpec {
                id: i,
                submit: s(60.0 * i as f64),
                kind: JobKind::Jacobi {
                    n: 1200,
                    iterations: long_iters,
                },
            })
            .collect();
        jobs.push(JobSpec {
            id: 3,
            submit: s(180.0),
            kind: JobKind::Jacobi {
                n: 1200,
                iterations: probe_iters,
            },
        });
        jobs
    }

    #[test]
    fn same_seed_streams_are_bit_identical() {
        let cfg = GridConfig::default();
        let workload = WorkloadConfig {
            arrivals: ArrivalProcess::Poisson { rate_hz: 0.01 },
            duration: s(1200.0),
            ..WorkloadConfig::default()
        };
        let a = run(&cfg, &workload).expect("stream a");
        let b = run(&cfg, &workload).expect("stream b");
        assert_eq!(a.records, b.records);
        assert_eq!(a.fleet, b.fleet);
        assert!(!a.records.is_empty(), "workload produced no jobs");
    }

    #[test]
    fn aware_probe_routes_around_and_beats_blind() {
        let cfg = GridConfig {
            seed: 77,
            ..GridConfig::default()
        };
        let jobs = probe_jobs(6000, 400);
        let aware = run_jobs(&cfg, &jobs, s(300.0)).expect("aware");
        let blind = run_jobs(
            &GridConfig {
                regime: Regime::Blind,
                ..cfg.clone()
            },
            &jobs,
            s(300.0),
        )
        .expect("blind");
        // The first job decides from identical information either way.
        assert!((aware.records[0].exec_seconds - blind.records[0].exec_seconds).abs() < 1e-6);
        // The probe lands mid-contention: its NWS forecasts reflect the
        // long jobs' imposed load, so it routes around the occupied
        // fast hosts and finishes sooner than the blind probe.
        let aware_probe = &aware.records[3];
        let blind_probe = &blind.records[3];
        assert_ne!(
            {
                let mut h = aware.records[0].hosts.clone();
                h.sort();
                h
            },
            {
                let mut h = aware_probe.hosts.clone();
                h.sort();
                h
            },
            "aware probe piled onto the long jobs' hosts"
        );
        assert!(
            aware_probe.exec_seconds < blind_probe.exec_seconds,
            "aware probe {:.1}s vs blind probe {:.1}s",
            aware_probe.exec_seconds,
            blind_probe.exec_seconds
        );
    }

    #[test]
    fn admission_bound_queues_jobs_fcfs() {
        let cfg = GridConfig {
            max_in_flight: 1,
            ..GridConfig::default()
        };
        let jobs: Vec<JobSpec> = (0..3)
            .map(|i| JobSpec {
                id: i,
                submit: s(1.0 + i as f64),
                kind: JobKind::Jacobi {
                    n: 800,
                    iterations: 120,
                },
            })
            .collect();
        let out = run_jobs(&cfg, &jobs, s(10.0)).expect("bounded stream");
        // With one slot, each job starts when its predecessor finishes.
        for pair in out.records.windows(2) {
            assert!(pair[1].start >= pair[0].finish);
        }
        assert!(out.records[1].wait_seconds > 0.0);
        assert!(out.records[2].wait_seconds > out.records[1].wait_seconds);
        // Unbounded admission: no waiting.
        let free = run_jobs(&GridConfig::default(), &jobs, s(10.0)).expect("free stream");
        assert!(free.records.iter().all(|r| r.wait_seconds == 0.0));
    }

    #[test]
    fn mixed_kinds_all_complete() {
        let cfg = GridConfig::default();
        let jobs = vec![
            JobSpec {
                id: 0,
                submit: s(10.0),
                kind: JobKind::Jacobi {
                    n: 800,
                    iterations: 60,
                },
            },
            JobSpec {
                id: 1,
                submit: s(20.0),
                kind: JobKind::ReactPipeline { units: 20 },
            },
            JobSpec {
                id: 2,
                submit: s(30.0),
                kind: JobKind::NileFarm { events: 10_000 },
            },
        ];
        let out = run_jobs(&cfg, &jobs, s(60.0)).expect("mixed stream");
        assert_eq!(out.records.len(), 3);
        for r in &out.records {
            assert!(r.exec_seconds > 0.0, "{} did not run", r.kind);
            assert!(!r.hosts.is_empty());
            assert!(r.slowdown >= 1.0);
        }
        assert_eq!(out.records[1].kind, "react-pipe");
        assert_eq!(out.records[2].kind, "nile-farm");
        // The farm fans out to more than one host.
        assert!(out.records[2].hosts.len() > 1);
    }

    #[test]
    fn degenerate_config_is_rejected_with_typed_errors() {
        let cfg = GridConfig {
            max_in_flight: 0,
            ..GridConfig::default()
        };
        assert!(matches!(
            run_jobs(&cfg, &[], s(10.0)),
            Err(GridError::InvalidConfig(_))
        ));
        let bad_retry = crate::workload::RetryPolicy {
            max_attempts: 0,
            ..Default::default()
        };
        assert!(matches!(
            run_jobs_with_retry(&GridConfig::default(), &[], s(10.0), bad_retry),
            Err(GridError::InvalidConfig(_))
        ));
    }

    #[test]
    fn transient_host_crash_is_survived_by_retry() {
        use metasim::{FaultSpec, HostFault};
        // One short job placed while its likely host crashes shortly
        // after the stream starts. With a single attempt the blind
        // regime records a failure; with retries the job completes
        // after the host recovers or elsewhere.
        let jobs = vec![JobSpec {
            id: 0,
            submit: s(10.0),
            kind: JobKind::Jacobi {
                n: 800,
                iterations: 120,
            },
        }];
        let faults = FaultSpec {
            host_faults: (0..8)
                .map(|h| HostFault {
                    host: metasim::HostId(h),
                    at: s(605.0),
                    recover: Some(s(2000.0)),
                })
                .collect(),
            link_faults: vec![],
        };
        let cfg = GridConfig {
            regime: Regime::Blind,
            faults: FaultInjection::Spec(faults),
            ..GridConfig::default()
        };
        let blind = run_jobs(&cfg, &jobs, s(60.0)).expect("blind stream");
        assert_eq!(blind.fleet.jobs_failed, 1, "{:?}", blind.records);
        assert!(!blind.records[0].completed);
        assert_eq!(blind.records[0].exec_seconds, 0.0);

        let retrying = run_jobs_with_retry(
            &GridConfig {
                regime: Regime::Aware,
                ..cfg.clone()
            },
            &jobs,
            s(60.0),
            crate::workload::RetryPolicy::with_attempts(8),
        )
        .expect("aware stream");
        assert_eq!(retrying.fleet.jobs_completed, 1, "{:?}", retrying.records);
        let r = &retrying.records[0];
        assert!(r.completed);
        assert!(
            r.attempts > 1 || r.reschedules > 0,
            "job should have needed the fault machinery: {r:?}"
        );
        assert!(retrying.fleet.goodput > 0.0);
    }

    #[test]
    fn faulted_streams_are_bit_identical_across_runs() {
        use metasim::FaultModel;
        let cfg = GridConfig {
            faults: FaultInjection::Random(FaultModel {
                host_crashes_per_hour: 2.0,
                ..FaultModel::default()
            }),
            ..GridConfig::default()
        };
        let workload = WorkloadConfig {
            arrivals: ArrivalProcess::Uniform { gap: s(90.0) },
            duration: s(600.0),
            retry: crate::workload::RetryPolicy::with_attempts(3),
            ..WorkloadConfig::default()
        };
        let a = run(&cfg, &workload).expect("stream a");
        let b = run(&cfg, &workload).expect("stream b");
        assert_eq!(a.records, b.records);
        assert_eq!(a.fleet, b.fleet);
    }

    #[test]
    fn traced_stream_narrates_every_layer() {
        use metasim::simtrace::VecSink;
        let cfg = GridConfig::default();
        let jobs = vec![
            JobSpec {
                id: 0,
                submit: s(10.0),
                kind: JobKind::Jacobi {
                    n: 800,
                    iterations: 60,
                },
            },
            JobSpec {
                id: 1,
                submit: s(30.0),
                kind: JobKind::NileFarm { events: 10_000 },
            },
        ];
        let mut sink = VecSink::default();
        let traced =
            run_jobs_with_retry_sink(&cfg, &jobs, s(60.0), RetryPolicy::default(), &mut sink)
                .expect("traced stream");
        // Tracing must not perturb the simulation.
        let plain = run_jobs(&cfg, &jobs, s(60.0)).expect("plain stream");
        assert_eq!(traced.records, plain.records);

        let kinds: std::collections::BTreeSet<&str> =
            sink.events.iter().map(|e| e.kind()).collect();
        // Events from every layer of the stack.
        for k in [
            "job_submitted",      // grid
            "job_dispatched",     // grid
            "job_completed",      // grid
            "load_imposed",       // grid → metasim
            "forecast_issued",    // nws
            "resource_selection", // core
            "candidate_considered",
            "schedule_chosen",
            "actuated",
            "compute_start", // metasim executors
            "compute_finish",
            "transfer_start",
            "transfer_finish",
        ] {
            assert!(kinds.contains(k), "missing {k}: have {kinds:?}");
        }
        // Timestamps never run backwards per job lifecycle: submit ≤
        // dispatch ≤ complete.
        let find = |want: &str, job: usize| {
            sink.events
                .iter()
                .find_map(|e| match e {
                    TraceEvent::JobSubmitted { job: j, at, .. }
                    | TraceEvent::JobDispatched { job: j, at, .. }
                    | TraceEvent::JobCompleted { job: j, at, .. }
                        if *j == job && e.kind() == want =>
                    {
                        Some(*at)
                    }
                    _ => None,
                })
                .expect("lifecycle event present")
        };
        for job in [0usize, 1] {
            let sub = find("job_submitted", job);
            let disp = find("job_dispatched", job);
            let done = find("job_completed", job);
            assert!(
                sub <= disp && disp <= done,
                "job {job} lifecycle out of order"
            );
        }
    }

    #[test]
    fn imposed_load_keeps_availability_in_unit_interval() {
        let cfg = GridConfig::default();
        let workload = WorkloadConfig {
            arrivals: ArrivalProcess::Uniform { gap: s(120.0) },
            mix: JobMix::default_mix(),
            duration: s(1200.0),
            seed: 5,
            ..WorkloadConfig::default()
        };
        // Re-run the stream, then inspect the mutated topology by
        // reproducing it here (run() does not expose the topology).
        let tb = pcl_sdsc(&TestbedConfig {
            profile: cfg.profile,
            horizon: cfg.horizon,
            seed: cfg.seed,
            with_sp2: cfg.with_sp2,
        })
        .expect("testbed");
        let mut topo = tb.topo.clone();
        let mut ws = WeatherService::for_topology(&topo, WeatherServiceConfig::default());
        for job in workload.realize() {
            let start = cfg.warmup + job.submit;
            let (hat, user) = job.kind.hat_and_user();
            ws.advance(&topo, start);
            let pool = InfoPool::with_nws(&topo, &ws, &hat, &user, start);
            let schedule = decide(&job.kind, &pool, &mut NoopSink).expect("plan");
            let report =
                actuate_with_sink(&topo, &hat, &schedule, start, &mut NoopSink).expect("run");
            impose_job_load(&mut topo, &hat, &schedule, &report, start, &mut NoopSink)
                .expect("impose");
        }
        for h in topo.hosts() {
            for &(_, v) in h.availability().points() {
                assert!((0.0..=1.0).contains(&v), "host availability {v} escaped");
            }
        }
        for l in topo.links() {
            for &(_, v) in l.availability().points() {
                assert!((0.0..=1.0).contains(&v), "link availability {v} escaped");
            }
        }
    }
}
