#![warn(missing_docs)]

//! # apples-grid — a multi-tenant job-stream service over `metasim`
//!
//! The paper's §3 setting, run as a service: *many* users submit jobs
//! to one shared metacomputer, each job gets its own selfish AppLeS
//! agent, and nobody coordinates. "Each user and/or
//! application-developer schedules their application so as to optimize
//! their own performance criteria without regard to the performance
//! goals of other applications which share the system."
//!
//! Where [`apples::Coordinator`] schedules one application once, this
//! crate streams a whole *workload* through the system:
//!
//! 1. [`workload`] describes who arrives when — Poisson, fixed-gap, or
//!    trace-replay arrivals over a mix of Jacobi2D stencils, 3D-REACT
//!    style pipelines and NILE event farms;
//! 2. [`service`] admits jobs FCFS (optionally bounded in-flight),
//!    spawns a Coordinator per job against the *live* system state,
//!    actuates the winning schedule, and feeds the job's realized
//!    resource usage back into the topology as foreground load — so
//!    later agents' NWS sensors observe earlier jobs and route around
//!    them;
//! 3. [`metrics`] reduces the per-job records (wait, execution,
//!    slowdown, attempts, goodput) to fleet metrics: throughput,
//!    latency percentiles, per-host utilization;
//! 4. [`sched`] replays the identical realized stream under rival
//!    policies — selfish agents, a centralized FCFS + EASY batch
//!    queue, dynamic fractional sharing ([`SchedRegime`]) — so regime
//!    comparisons are attributable to policy alone;
//! 5. [`sweep`] repeats the whole thing across seeds in parallel.
//!
//! The service is fault-tolerant: a [`service::FaultInjection`]
//! schedule can crash hosts and cut links mid-stream; revoked
//! placements are detected at actuation time and retried with bounded
//! exponential backoff ([`workload::RetryPolicy`]), with aware stencil
//! jobs rescheduling remnant work onto surviving hosts.
//!
//! Everything is deterministic per seed: same seed + same workload
//! config + same fault schedule → bit-identical records and fleet
//! metrics. The [`obsv`] crate (re-exported here) turns the service's
//! trace stream into metrics, profiles and Prometheus expositions.

pub mod metrics;
pub mod sched;
pub mod service;
pub mod sweep;
pub mod workload;

pub use obsv;

pub use metrics::{percentile, slowdown_of, FleetMetrics, JobRecord};
pub use sched::{
    run_batch_with_log, run_fractional_with_log, run_regime, run_regime_jobs_with_sink,
    run_regime_with_sink, BackfillEntry, BatchLog, FractionalLog, SchedRegime, ShareSample,
};
pub use service::{
    run, run_jobs, run_jobs_with_retry, run_jobs_with_retry_sink, run_with_sink, validate_config,
    Diagnostic, FaultInjection, GridConfig, GridError, GridOutcome, GridService, Regime,
};
pub use workload::{ArrivalProcess, JobKind, JobMix, JobSpec, RetryPolicy, WorkloadConfig};
