//! Multi-trial sweeps: the same service under many seeds, in parallel.
//!
//! Each trial realizes an independent background load *and* an
//! independent job stream from its seed, runs the full service loop,
//! and reduces to fleet metrics. Trials share nothing, so they run on
//! scoped threads; results come back in seed order regardless of
//! completion order, keeping sweep output deterministic.

use crate::metrics::FleetMetrics;
use crate::service::{run, GridConfig, GridError};
use crate::workload::WorkloadConfig;

/// One trial's summary.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialResult {
    /// The seed this trial used for both testbed and workload.
    pub seed: u64,
    /// The trial's fleet metrics.
    pub fleet: FleetMetrics,
}

/// Run one trial per seed in parallel, seeding both the testbed
/// realization and the workload from the same value.
pub fn sweep_seeds(
    cfg: &GridConfig,
    workload: &WorkloadConfig,
    seeds: &[u64],
) -> Result<Vec<TrialResult>, GridError> {
    let results: Vec<Result<TrialResult, GridError>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = seeds
            .iter()
            .map(|&seed| {
                let trial_cfg = GridConfig {
                    seed,
                    ..cfg.clone()
                };
                let trial_workload = WorkloadConfig {
                    seed,
                    ..workload.clone()
                };
                scope.spawn(move |_| {
                    run(&trial_cfg, &trial_workload).map(|out| TrialResult {
                        seed,
                        fleet: out.fleet,
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            // simlint: allow(panic-in-lib): re-raises a panic from a trial thread; swallowing it would fabricate results
            .map(|h| h.join().expect("trial thread"))
            .collect()
    })
    // simlint: allow(panic-in-lib): crossbeam scope fails only when a child thread panicked; propagate it
    .expect("trial scope");
    results.into_iter().collect()
}

/// Mean of a per-trial scalar across sweep results.
pub fn mean_of(trials: &[TrialResult], f: impl Fn(&FleetMetrics) -> f64) -> f64 {
    if trials.is_empty() {
        return 0.0;
    }
    trials.iter().map(|t| f(&t.fleet)).sum::<f64>() / trials.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::ArrivalProcess;
    use metasim::SimTime;

    #[test]
    fn sweep_is_deterministic_and_seed_ordered() {
        let cfg = GridConfig::default();
        let workload = WorkloadConfig {
            arrivals: ArrivalProcess::Poisson { rate_hz: 0.005 },
            duration: SimTime::from_secs(1200),
            ..WorkloadConfig::default()
        };
        let seeds = [3, 1, 2];
        let a = sweep_seeds(&cfg, &workload, &seeds).expect("sweep a");
        let b = sweep_seeds(&cfg, &workload, &seeds).expect("sweep b");
        assert_eq!(a, b);
        let got: Vec<u64> = a.iter().map(|t| t.seed).collect();
        assert_eq!(got, seeds, "results must come back in input order");
        // Different seeds make different streams.
        assert_ne!(a[0].fleet, a[1].fleet);
        assert!(mean_of(&a, |m| m.jobs as f64) > 0.0);
    }
}
