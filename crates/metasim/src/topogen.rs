//! Parametric topology generators.
//!
//! The paper's hand-built Figure-2 testbed tops out at ~10 hosts, so
//! nothing downstream of it can exercise the fleet scale the event
//! core was built for. This module generates whole topology *families*
//! — star, balanced tree, two-level fat-tree, clusters-of-clusters —
//! deterministically from a seed, with heterogeneous host mixes drawn
//! from the same nominal machine classes as the shipped testbed and
//! background load wired through [`LoadProfile`]. A [`TopoSpec`] parses
//! from a compact CLI string (`fat-tree:k=8`, `clusters:clusters=16`),
//! so the bench harness, the grid service and `apples-cli` can all run
//! the same experiments across families (dslab-network's
//! `make_*_topology` generators are the reference model).
//!
//! Every generator is pure: the same spec, profile, horizon and seed
//! produce a byte-identical [`Topology`]. Clusters-of-clusters builds
//! tag segments with cluster hints so instantiation uses the
//! hierarchical route cache (cluster-level routes stored once).

use crate::error::SimError;
use crate::host::HostSpec;
use crate::net::{LinkSpec, SegmentId, Topology, TopologyBuilder};
use crate::testbed::{nominal, LoadProfile};
use crate::time::SimTime;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// A parametric topology family with its size parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TopoSpec {
    /// Leaf Ethernet segments around one backbone segment.
    Star {
        /// Total hosts, spread over `ceil(hosts / per_seg)` leaves.
        hosts: usize,
        /// Hosts per leaf segment.
        per_seg: usize,
    },
    /// Balanced tree of segments; hosts attach to leaf segments,
    /// interior segments only forward.
    Tree {
        /// Total hosts.
        hosts: usize,
        /// Children per interior segment (>= 2).
        arity: usize,
        /// Hosts per leaf segment.
        per_seg: usize,
    },
    /// Two-level fat-tree: `l1` edge segments each wired to every one
    /// of `l2` aggregation switches, with explicit per-pair routes
    /// spread across the aggregation layer (dslab's
    /// `make_fat_tree_topology` shape).
    FatTree {
        /// Aggregation (top-level) switches.
        l2: usize,
        /// Edge segments hosts attach to.
        l1: usize,
        /// Hosts per edge segment.
        hosts_per_l1: usize,
    },
    /// Clusters-of-clusters: each cluster is a root segment with leaf
    /// segments below it; cluster roots meet at a backbone segment.
    /// Built with hierarchical routing hints.
    Clusters {
        /// Number of clusters.
        clusters: usize,
        /// Leaf segments per cluster.
        segs: usize,
        /// Hosts per leaf segment.
        hosts_per_seg: usize,
    },
}

fn bad(spec: &str, why: &str) -> SimError {
    SimError::Invalid(format!("topology spec `{spec}`: {why}"))
}

impl TopoSpec {
    /// Parse a compact spec string: `family[:key=value,...]`.
    ///
    /// Families and keys (all values positive integers):
    /// * `star:hosts=64,per_seg=8`
    /// * `tree:hosts=64,arity=4,per_seg=8`
    /// * `fat-tree:l2=4,l1=32,hosts=8` (`hosts` = hosts per edge
    ///   segment), or the shorthand `fat-tree:k=K` for `l2=K,
    ///   l1=2*K*K, hosts=K` — `fat-tree:k=8` is a 1024-host testbed
    /// * `clusters:clusters=8,segs=4,hosts=8`
    ///
    /// Omitted keys take the defaults shown above.
    pub fn parse(s: &str) -> Result<TopoSpec, SimError> {
        let (family, rest) = match s.split_once(':') {
            Some((f, r)) => (f, r),
            None => (s, ""),
        };
        let mut kv: Vec<(&str, usize)> = Vec::new();
        for pair in rest.split(',').filter(|p| !p.is_empty()) {
            let (k, v) = pair
                .split_once('=')
                .ok_or_else(|| bad(s, &format!("expected key=value, got `{pair}`")))?;
            let v: usize = v
                .parse()
                .map_err(|_| bad(s, &format!("`{k}` wants a positive integer, got `{v}`")))?;
            if v == 0 {
                return Err(bad(s, &format!("`{k}` must be positive")));
            }
            kv.push((k, v));
        }
        let get = |key: &str, default: usize| -> usize {
            kv.iter()
                .find(|&&(k, _)| k == key)
                .map(|&(_, v)| v)
                .unwrap_or(default)
        };
        let known = |allowed: &[&str]| -> Result<(), SimError> {
            for &(k, _) in &kv {
                if !allowed.contains(&k) {
                    return Err(bad(s, &format!("unknown key `{k}`")));
                }
            }
            Ok(())
        };
        let spec = match family {
            "star" => {
                let spec = TopoSpec::Star {
                    hosts: get("hosts", 64),
                    per_seg: get("per_seg", 8),
                };
                known(&["hosts", "per_seg"])?;
                spec
            }
            "tree" => {
                let spec = TopoSpec::Tree {
                    hosts: get("hosts", 64),
                    arity: get("arity", 4),
                    per_seg: get("per_seg", 8),
                };
                known(&["hosts", "arity", "per_seg"])?;
                if let TopoSpec::Tree { arity, .. } = spec {
                    if arity < 2 {
                        return Err(bad(s, "`arity` must be at least 2"));
                    }
                }
                spec
            }
            "fat-tree" | "fattree" => {
                known(&["k", "l1", "l2", "hosts"])?;
                if let Some(&(_, k)) = kv.iter().find(|&&(key, _)| key == "k") {
                    TopoSpec::FatTree {
                        l2: k,
                        l1: 2 * k * k,
                        hosts_per_l1: k,
                    }
                } else {
                    TopoSpec::FatTree {
                        l2: get("l2", 4),
                        l1: get("l1", 32),
                        hosts_per_l1: get("hosts", 8),
                    }
                }
            }
            "clusters" => {
                let spec = TopoSpec::Clusters {
                    clusters: get("clusters", 8),
                    segs: get("segs", 4),
                    hosts_per_seg: get("hosts", 8),
                };
                known(&["clusters", "segs", "hosts"])?;
                spec
            }
            other => {
                return Err(bad(
                    s,
                    &format!("unknown family `{other}` (star, tree, fat-tree, clusters)"),
                ))
            }
        };
        Ok(spec)
    }

    /// Canonical spec string (round-trips through [`TopoSpec::parse`]).
    pub fn label(&self) -> String {
        match self {
            TopoSpec::Star { hosts, per_seg } => format!("star:hosts={hosts},per_seg={per_seg}"),
            TopoSpec::Tree {
                hosts,
                arity,
                per_seg,
            } => format!("tree:hosts={hosts},arity={arity},per_seg={per_seg}"),
            TopoSpec::FatTree {
                l2,
                l1,
                hosts_per_l1,
            } => format!("fat-tree:l2={l2},l1={l1},hosts={hosts_per_l1}"),
            TopoSpec::Clusters {
                clusters,
                segs,
                hosts_per_seg,
            } => format!("clusters:clusters={clusters},segs={segs},hosts={hosts_per_seg}"),
        }
    }

    /// Number of hosts the generated topology will have.
    pub fn host_count(&self) -> usize {
        match *self {
            TopoSpec::Star { hosts, .. } => hosts,
            TopoSpec::Tree { hosts, .. } => hosts,
            TopoSpec::FatTree {
                l1, hosts_per_l1, ..
            } => l1 * hosts_per_l1,
            TopoSpec::Clusters {
                clusters,
                segs,
                hosts_per_seg,
            } => clusters * segs * hosts_per_seg,
        }
    }
}

/// Generation knobs shared by every family.
#[derive(Debug, Clone)]
pub struct TopoGenConfig {
    /// Background-load intensity wired onto shared media and hosts.
    pub profile: LoadProfile,
    /// Horizon over which load processes are realized.
    pub horizon: SimTime,
    /// Seed controlling host-mix draws, skews and every realized
    /// availability process.
    pub seed: u64,
}

impl Default for TopoGenConfig {
    fn default() -> Self {
        TopoGenConfig {
            profile: LoadProfile::Moderate,
            horizon: SimTime::from_secs(200_000),
            seed: 1996,
        }
    }
}

/// The nominal machine classes hosts are drawn from, with a short tag
/// for host names.
const HOST_CLASSES: &[(&str, f64, f64)] = &[
    ("sparc2", nominal::SPARC2_MFLOPS, nominal::SPARC2_MEM_MB),
    ("sparc10", nominal::SPARC10_MFLOPS, nominal::SPARC10_MEM_MB),
    ("rs6000", nominal::RS6000_MFLOPS, nominal::RS6000_MEM_MB),
    ("alpha", nominal::ALPHA_MFLOPS, nominal::ALPHA_MEM_MB),
    ("sp2", nominal::SP2_MFLOPS, nominal::SP2_MEM_MB),
];

/// Fat-trees model machine-room fabrics: only the two fastest classes.
const HPC_CLASSES: &[(&str, f64, f64)] = &[
    ("alpha", nominal::ALPHA_MFLOPS, nominal::ALPHA_MEM_MB),
    ("sp2", nominal::SP2_MFLOPS, nominal::SP2_MEM_MB),
];

/// Draw one heterogeneous host: a machine class, an mflops jitter of
/// +/-15% around the class nominal, and a CPU-load skew in [-1, 1].
fn draw_host(
    rng: &mut ChaCha8Rng,
    classes: &[(&str, f64, f64)],
    name_prefix: &str,
    idx: usize,
    seg: SegmentId,
    profile: LoadProfile,
) -> HostSpec {
    let (tag, mflops, mem) = classes[rng.gen_range(0..classes.len())];
    let mflops = mflops * rng.gen_range(0.85..=1.15);
    let skew = rng.gen_range(-1.0..=1.0);
    HostSpec::workstation(
        &format!("{name_prefix}-h{idx:04}-{tag}"),
        mflops,
        mem,
        seg,
        profile.cpu_load(skew),
    )
}

/// Shared-medium spec under the profile, with a per-link skew draw.
fn shared_link(
    rng: &mut ChaCha8Rng,
    name: &str,
    mbps: f64,
    latency: SimTime,
    profile: LoadProfile,
) -> LinkSpec {
    let skew = rng.gen_range(-1.0..=1.0);
    LinkSpec::shared(name, mbps, latency, profile.net_load(skew))
}

/// Build (but do not instantiate) the topology for a spec. Exposed so
/// differential tests can tweak the builder — e.g. strip the cluster
/// hints off a `clusters` build — before instantiation; most callers
/// want [`generate`].
pub fn build(spec: &TopoSpec, cfg: &TopoGenConfig) -> Result<TopologyBuilder, SimError> {
    // Independent streams for the wiring draws and the host draws, so
    // adding a link never shifts every later host's class.
    let mut net_rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x70_70_67_65_6E_00_01);
    let mut host_rng = ChaCha8Rng::seed_from_u64(cfg.seed ^ 0x70_70_67_65_6E_00_02);
    let p = cfg.profile;
    let mut b = TopologyBuilder::new();

    match *spec {
        TopoSpec::Star { hosts, per_seg } => {
            let backbone = b.add_segment(shared_link(
                &mut net_rng,
                "star-backbone",
                nominal::FDDI_MBPS,
                SimTime::from_micros(500),
                p,
            ));
            let n_seg = hosts.div_ceil(per_seg);
            for s in 0..n_seg {
                let seg = b.add_segment(shared_link(
                    &mut net_rng,
                    &format!("star-seg{s:03}"),
                    nominal::ETHERNET_MBPS,
                    SimTime::from_millis(1),
                    p,
                ));
                b.connect(
                    seg,
                    backbone,
                    LinkSpec::dedicated(
                        &format!("star-up{s:03}"),
                        2.0 * nominal::ETHERNET_MBPS,
                        SimTime::from_millis(1),
                    ),
                );
                let lo = s * per_seg;
                let hi = ((s + 1) * per_seg).min(hosts);
                for h in lo..hi {
                    let spec = draw_host(&mut host_rng, HOST_CLASSES, "star", h, seg, p);
                    b.add_host(spec);
                }
            }
        }
        TopoSpec::Tree {
            hosts,
            arity,
            per_seg,
        } => {
            // Leaf segments first, then interior levels bottom-up
            // until a single root remains.
            let n_leaf = hosts.div_ceil(per_seg);
            let mut level: Vec<SegmentId> = Vec::with_capacity(n_leaf);
            for s in 0..n_leaf {
                let seg = b.add_segment(shared_link(
                    &mut net_rng,
                    &format!("tree-leaf{s:03}"),
                    nominal::ETHERNET_MBPS,
                    SimTime::from_millis(1),
                    p,
                ));
                level.push(seg);
                let lo = s * per_seg;
                let hi = ((s + 1) * per_seg).min(hosts);
                for h in lo..hi {
                    let spec = draw_host(&mut host_rng, HOST_CLASSES, "tree", h, seg, p);
                    b.add_host(spec);
                }
            }
            let mut depth = 0usize;
            while level.len() > 1 {
                let n_up = level.len().div_ceil(arity);
                let mut next = Vec::with_capacity(n_up);
                for u in 0..n_up {
                    let seg = b.add_segment(shared_link(
                        &mut net_rng,
                        &format!("tree-d{depth}-n{u:03}"),
                        nominal::FDDI_MBPS,
                        SimTime::from_micros(500),
                        p,
                    ));
                    next.push(seg);
                }
                for (c, &child) in level.iter().enumerate() {
                    b.connect(
                        child,
                        next[c / arity],
                        LinkSpec::dedicated(
                            &format!("tree-d{depth}-e{c:03}"),
                            2.0 * nominal::ETHERNET_MBPS,
                            SimTime::from_millis(1),
                        ),
                    );
                }
                level = next;
                depth += 1;
            }
        }
        TopoSpec::FatTree {
            l2,
            l1,
            hosts_per_l1,
        } => {
            // Edge segments (SP-2-switch class fabric, microsecond
            // latencies), each wired to every aggregation switch by a
            // dedicated uplink; per-pair routes spread round-robin
            // across the aggregation layer.
            let mut segs = Vec::with_capacity(l1);
            for s in 0..l1 {
                let seg = b.add_segment(shared_link(
                    &mut net_rng,
                    &format!("ft-edge{s:03}"),
                    nominal::SP2_SWITCH_MBPS,
                    SimTime::from_micros(50),
                    p,
                ));
                segs.push(seg);
                for h in 0..hosts_per_l1 {
                    let spec = draw_host(
                        &mut host_rng,
                        HPC_CLASSES,
                        "ft",
                        s * hosts_per_l1 + h,
                        seg,
                        p,
                    );
                    b.add_host(spec);
                }
            }
            let mut up = Vec::with_capacity(l1);
            for (s, _) in segs.iter().enumerate() {
                let mut links = Vec::with_capacity(l2);
                for c in 0..l2 {
                    links.push(b.add_link(LinkSpec::dedicated(
                        &format!("ft-up{s:03}x{c:02}"),
                        nominal::SP2_SWITCH_MBPS,
                        SimTime::from_micros(20),
                    )));
                }
                up.push(links);
            }
            for i in 0..l1 {
                for j in (i + 1)..l1 {
                    let c = (i + j) % l2;
                    b.add_route(segs[i], segs[j], vec![up[i][c], up[j][c]])?;
                }
            }
        }
        TopoSpec::Clusters {
            clusters,
            segs,
            hosts_per_seg,
        } => {
            let backbone = b.add_segment(shared_link(
                &mut net_rng,
                "cc-backbone",
                4.0 * nominal::FDDI_MBPS,
                SimTime::from_micros(200),
                p,
            ));
            b.set_segment_cluster(backbone, 0);
            b.set_cluster_root(0, backbone);
            let mut host_idx = 0usize;
            for c in 0..clusters {
                let root = b.add_segment(shared_link(
                    &mut net_rng,
                    &format!("cc-c{c:02}-root"),
                    nominal::FDDI_MBPS,
                    SimTime::from_micros(500),
                    p,
                ));
                b.set_segment_cluster(root, c + 1);
                b.set_cluster_root(c + 1, root);
                b.connect(
                    root,
                    backbone,
                    shared_link(
                        &mut net_rng,
                        &format!("cc-c{c:02}-gw"),
                        nominal::GATEWAY_MBPS * 4.0,
                        SimTime::from_millis(3),
                        p,
                    ),
                );
                for s in 0..segs {
                    let leaf = b.add_segment(shared_link(
                        &mut net_rng,
                        &format!("cc-c{c:02}-s{s:02}"),
                        nominal::ETHERNET_MBPS,
                        SimTime::from_millis(1),
                        p,
                    ));
                    b.set_segment_cluster(leaf, c + 1);
                    b.connect(
                        leaf,
                        root,
                        LinkSpec::dedicated(
                            &format!("cc-c{c:02}-e{s:02}"),
                            2.0 * nominal::ETHERNET_MBPS,
                            SimTime::from_millis(1),
                        ),
                    );
                    for _ in 0..hosts_per_seg {
                        let spec = draw_host(&mut host_rng, HOST_CLASSES, "cc", host_idx, leaf, p);
                        b.add_host(spec);
                        host_idx += 1;
                    }
                }
            }
        }
    }
    Ok(b)
}

/// Generate and instantiate a topology: same spec + config, same
/// topology, byte for byte.
pub fn generate(spec: &TopoSpec, cfg: &TopoGenConfig) -> Result<Topology, SimError> {
    build(spec, cfg)?.instantiate(cfg.horizon, cfg.seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostId;

    fn cfg(seed: u64) -> TopoGenConfig {
        TopoGenConfig {
            profile: LoadProfile::Light,
            horizon: SimTime::from_secs(10_000),
            seed,
        }
    }

    #[test]
    fn parse_round_trips_through_label() {
        for s in [
            "star:hosts=64,per_seg=8",
            "tree:hosts=64,arity=4,per_seg=8",
            "fat-tree:l2=8,l1=128,hosts=8",
            "clusters:clusters=8,segs=4,hosts=8",
        ] {
            let spec = TopoSpec::parse(s).unwrap();
            assert_eq!(spec.label(), s);
            assert_eq!(TopoSpec::parse(&spec.label()).unwrap(), spec);
        }
    }

    #[test]
    fn defaults_and_shorthand() {
        assert_eq!(
            TopoSpec::parse("star").unwrap(),
            TopoSpec::Star {
                hosts: 64,
                per_seg: 8
            }
        );
        let k8 = TopoSpec::parse("fat-tree:k=8").unwrap();
        assert_eq!(
            k8,
            TopoSpec::FatTree {
                l2: 8,
                l1: 128,
                hosts_per_l1: 8
            }
        );
        assert_eq!(k8.host_count(), 1024);
    }

    #[test]
    fn bad_specs_are_rejected() {
        for s in [
            "ring",
            "star:hosts=0",
            "star:bogus=3",
            "tree:arity=1",
            "fat-tree:k=oops",
            "star:hosts",
        ] {
            assert!(TopoSpec::parse(s).is_err(), "`{s}` should not parse");
        }
    }

    #[test]
    fn every_family_generates_and_routes() {
        for s in [
            "star:hosts=20,per_seg=4",
            "tree:hosts=24,arity=3,per_seg=4",
            "fat-tree:l2=3,l1=6,hosts=4",
            "clusters:clusters=3,segs=2,hosts=3",
        ] {
            let spec = TopoSpec::parse(s).unwrap();
            let topo = generate(&spec, &cfg(11)).unwrap();
            assert_eq!(topo.hosts().len(), spec.host_count(), "{s}");
            // Every host pair routes.
            let n = topo.hosts().len();
            for a in 0..n {
                for b in 0..n {
                    assert!(
                        topo.route_ref(HostId(a), HostId(b)).is_ok(),
                        "{s}: no route {a}->{b}"
                    );
                }
            }
        }
    }

    #[test]
    fn same_seed_is_byte_identical_and_seeds_differ() {
        let spec = TopoSpec::parse("clusters:clusters=2,segs=2,hosts=2").unwrap();
        let a = generate(&spec, &cfg(5)).unwrap();
        let b = generate(&spec, &cfg(5)).unwrap();
        let c = generate(&spec, &cfg(6)).unwrap();
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        assert_ne!(format!("{a:?}"), format!("{c:?}"));
    }

    #[test]
    fn fat_tree_pairs_spread_across_aggregation() {
        let spec = TopoSpec::parse("fat-tree:l2=2,l1=4,hosts=1").unwrap();
        let topo = generate(&spec, &cfg(3)).unwrap();
        // Hosts 0..4 sit on edge segments 0..4; cross-edge routes are
        // 4 links: edge, up, up, edge.
        let r = topo.route(HostId(0), HostId(3)).unwrap();
        assert_eq!(r.len(), 4);
    }
}
