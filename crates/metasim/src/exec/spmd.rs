//! Bulk-synchronous SPMD execution.
//!
//! Models the execution structure of Jacobi2D and similar iterative
//! stencil codes: on each iteration every worker computes over its
//! region, then exchanges borders with its neighbours, and no worker
//! begins iteration `k+1` until all of iteration `k`'s exchanges have
//! been delivered. This barriered (BSP) structure matches the cost
//! model the paper's AppLeS prototype plans against (§5):
//! `T_i = A_i * P_i + C_i`, with the iteration taking `max_i T_i`.
//!
//! Border transfers within one iteration are simulated with full
//! bandwidth contention — concurrent exchanges crossing the same shared
//! Ethernet segment slow each other down, which is exactly the effect
//! that makes naive partitions underperform on the paper's testbed.

use crate::error::SimError;
use crate::host::HostId;
use crate::net::{simulate_transfers_with_sink, Topology, TransferReq};
use crate::simtrace::{EventSink, NoopSink, TraceEvent};
use crate::time::SimTime;

/// One worker's placement and per-iteration behaviour.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmdPlacement {
    /// Host executing this worker.
    pub host: HostId,
    /// Compute per iteration, in Mflop.
    pub work_mflop: f64,
    /// Resident memory footprint, in MB (drives the paging penalty).
    pub resident_mb: f64,
    /// Border messages sent each iteration: `(destination worker index,
    /// payload MB)`.
    pub sends: Vec<(usize, f64)>,
}

/// A complete SPMD job.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmdJob {
    /// Worker placements; worker indices are positions in this vector.
    pub placements: Vec<SpmdPlacement>,
    /// Number of iterations to run.
    pub iterations: usize,
    /// Job submission time.
    pub start: SimTime,
}

/// Results of simulating an SPMD job.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmdOutcome {
    /// Time the final iteration's last exchange was delivered.
    pub finish: SimTime,
    /// Barrier time after each iteration.
    pub iteration_ends: Vec<SimTime>,
    /// Total per-worker compute time (seconds of wall-clock spent in
    /// the compute phase, including slowdown from load and paging).
    pub compute_seconds: Vec<f64>,
    /// Total per-worker time between finishing compute and the
    /// iteration barrier (communication + waiting for stragglers).
    pub sync_seconds: Vec<f64>,
}

impl SpmdOutcome {
    /// Elapsed wall-clock time from job start to finish.
    pub fn makespan(&self, job_start: SimTime) -> SimTime {
        self.finish.saturating_sub(job_start)
    }
}

/// Per-iteration detail of an SPMD run, for straggler analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct SpmdTrace {
    /// `compute_done[iteration][worker]`: when each worker finished its
    /// compute phase.
    pub compute_done: Vec<Vec<SimTime>>,
}

impl SpmdTrace {
    /// The worker that finished its compute phase last in `iteration`
    /// (the iteration's straggler), if the iteration exists.
    pub fn straggler(&self, iteration: usize) -> Option<usize> {
        self.compute_done.get(iteration).and_then(|row| {
            row.iter()
                .enumerate()
                .max_by_key(|&(_, &t)| t)
                .map(|(w, _)| w)
        })
    }

    /// How many iterations each worker was the straggler for.
    pub fn straggler_counts(&self) -> Vec<usize> {
        let workers = self.compute_done.first().map(|r| r.len()).unwrap_or(0);
        let mut counts = vec![0usize; workers];
        for it in 0..self.compute_done.len() {
            if let Some(w) = self.straggler(it) {
                counts[w] += 1;
            }
        }
        counts
    }
}

/// Simulate a bulk-synchronous SPMD job on the topology.
///
/// Execution begins once every worker's host is ready (the maximum
/// startup wait across the placements — a co-allocation of space-shared
/// resources). Sends that name an out-of-range worker index are an
/// error, as is an empty placement list.
pub fn simulate_spmd(topo: &Topology, job: &SpmdJob) -> Result<SpmdOutcome, SimError> {
    simulate_spmd_traced(topo, job).map(|(o, _)| o)
}

/// [`simulate_spmd`] plus the per-iteration compute-completion trace.
pub fn simulate_spmd_traced(
    topo: &Topology,
    job: &SpmdJob,
) -> Result<(SpmdOutcome, SpmdTrace), SimError> {
    simulate_spmd_full(topo, job, &mut NoopSink)
}

/// [`simulate_spmd`], emitting one [`TraceEvent::ComputeStart`] /
/// [`TraceEvent::ComputeFinish`] pair per worker (covering all
/// iterations) plus border-exchange transfer events into `sink`.
pub fn simulate_spmd_with_sink(
    topo: &Topology,
    job: &SpmdJob,
    sink: &mut dyn EventSink,
) -> Result<SpmdOutcome, SimError> {
    simulate_spmd_full(topo, job, sink).map(|(o, _)| o)
}

fn simulate_spmd_full(
    topo: &Topology,
    job: &SpmdJob,
    sink: &mut dyn EventSink,
) -> Result<(SpmdOutcome, SpmdTrace), SimError> {
    if job.placements.is_empty() {
        return Err(SimError::EmptySchedule);
    }
    let n = job.placements.len();
    for p in &job.placements {
        topo.host(p.host)?;
        for &(dst, mb) in &p.sends {
            if dst >= n {
                return Err(SimError::Invalid(format!(
                    "send targets worker {dst} but there are only {n} workers"
                )));
            }
            if mb < 0.0 {
                return Err(SimError::NonPositive {
                    what: "send payload",
                    value: mb,
                });
            }
        }
        if p.work_mflop < 0.0 {
            return Err(SimError::NonPositive {
                what: "work_mflop",
                value: p.work_mflop,
            });
        }
    }

    // Co-allocation: wait for the slowest host acquisition.
    let mut barrier = job.start;
    for p in &job.placements {
        let ready = job.start + topo.host(p.host)?.startup_wait();
        barrier = barrier.max(ready);
    }

    if sink.enabled() {
        for p in &job.placements {
            sink.record(TraceEvent::ComputeStart {
                host: p.host,
                at: barrier,
                work_mflop: p.work_mflop * job.iterations as f64,
            });
        }
    }

    let mut iteration_ends = Vec::with_capacity(job.iterations);
    let mut compute_time = vec![SimTime::ZERO; n];
    let mut sync_time = vec![SimTime::ZERO; n];
    let mut trace = SpmdTrace {
        compute_done: Vec::with_capacity(job.iterations),
    };

    for _ in 0..job.iterations {
        // Compute phase.
        let mut compute_done = Vec::with_capacity(n);
        for (w, p) in job.placements.iter().enumerate() {
            let host = topo.host(p.host)?;
            let done = host.compute_finish_checked(barrier, p.work_mflop, p.resident_mb)?;
            compute_time[w] += done - barrier;
            compute_done.push(done);
        }

        // Exchange phase: all sends enter the network together.
        let mut reqs = Vec::new();
        for (w, p) in job.placements.iter().enumerate() {
            for &(dst, mb) in &p.sends {
                reqs.push(TransferReq {
                    from: p.host,
                    to: job.placements[dst].host,
                    mb,
                    start: compute_done[w],
                    tag: w,
                });
            }
        }
        let mut next_barrier = compute_done.iter().copied().fold(barrier, SimTime::max);
        if !reqs.is_empty() {
            for r in simulate_transfers_with_sink(topo, &reqs, sink)? {
                next_barrier = next_barrier.max(r.delivered);
            }
        }

        for (w, &done) in compute_done.iter().enumerate() {
            sync_time[w] += next_barrier - done;
        }
        trace.compute_done.push(compute_done);
        barrier = next_barrier;
        iteration_ends.push(barrier);
    }

    // Integer-microsecond accumulation above; one f64 conversion here
    // at the reporting boundary.
    let compute_seconds: Vec<f64> = compute_time.iter().map(|t| t.as_secs_f64()).collect();
    let sync_seconds: Vec<f64> = sync_time.iter().map(|t| t.as_secs_f64()).collect();

    if sink.enabled() {
        for (w, p) in job.placements.iter().enumerate() {
            let last_done = trace
                .compute_done
                .last()
                .and_then(|row| row.get(w).copied())
                .unwrap_or(barrier);
            sink.record(TraceEvent::ComputeFinish {
                host: p.host,
                at: last_done,
                elapsed_seconds: compute_seconds[w],
            });
        }
    }

    Ok((
        SpmdOutcome {
            finish: barrier,
            iteration_ends,
            compute_seconds,
            sync_seconds,
        },
        trace,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostSpec;
    use crate::load::LoadModel;
    use crate::net::{LinkSpec, TopologyBuilder};

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    /// Two dedicated 10 Mflop/s hosts on a dedicated 10 MB/s segment.
    fn topo2() -> Topology {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::ZERO));
        b.add_host(HostSpec::dedicated("a", 10.0, 1024.0, seg));
        b.add_host(HostSpec::dedicated("b", 10.0, 1024.0, seg));
        b.instantiate(s(100_000.0), 0).unwrap()
    }

    fn placement(host: usize, work: f64, sends: Vec<(usize, f64)>) -> SpmdPlacement {
        SpmdPlacement {
            host: HostId(host),
            work_mflop: work,
            resident_mb: 1.0,
            sends,
        }
    }

    #[test]
    fn single_worker_no_comm() {
        let topo = topo2();
        let job = SpmdJob {
            placements: vec![placement(0, 100.0, vec![])],
            iterations: 3,
            start: SimTime::ZERO,
        };
        let out = simulate_spmd(&topo, &job).unwrap();
        // 100 Mflop at 10 Mflop/s = 10 s per iteration.
        assert_eq!(out.finish, s(30.0));
        assert_eq!(out.iteration_ends, vec![s(10.0), s(20.0), s(30.0)]);
        assert!((out.compute_seconds[0] - 30.0).abs() < 1e-6);
        assert!(out.sync_seconds[0].abs() < 1e-6);
    }

    #[test]
    fn barrier_waits_for_slowest_worker() {
        let topo = topo2();
        let job = SpmdJob {
            placements: vec![
                placement(0, 100.0, vec![]), // 10 s
                placement(1, 50.0, vec![]),  // 5 s
            ],
            iterations: 1,
            start: SimTime::ZERO,
        };
        let out = simulate_spmd(&topo, &job).unwrap();
        assert_eq!(out.finish, s(10.0));
        // The fast worker idles 5 s at the barrier.
        assert!((out.sync_seconds[1] - 5.0).abs() < 1e-6);
    }

    #[test]
    fn exchange_extends_the_iteration() {
        let topo = topo2();
        let job = SpmdJob {
            placements: vec![
                placement(0, 100.0, vec![(1, 10.0)]), // 10 s compute + 1 s send
                placement(1, 100.0, vec![(0, 10.0)]),
            ],
            iterations: 2,
            start: SimTime::ZERO,
        };
        let out = simulate_spmd(&topo, &job).unwrap();
        // Both sends start at t=10 and share the 10 MB/s segment: each
        // runs at 5 MB/s, finishing 10 MB at t=12. Iteration = 12 s.
        assert_eq!(out.iteration_ends[0], s(12.0));
        assert_eq!(out.finish, s(24.0));
    }

    #[test]
    fn contention_on_shared_segment_slows_exchange() {
        // Same job but with 4 workers all exchanging on one segment.
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::ZERO));
        for i in 0..4 {
            b.add_host(HostSpec::dedicated(&format!("h{i}"), 10.0, 1024.0, seg));
        }
        let topo = b.instantiate(s(100_000.0), 0).unwrap();
        let ring: Vec<SpmdPlacement> = (0..4)
            .map(|w| placement(w, 100.0, vec![((w + 1) % 4, 10.0)]))
            .collect();
        let out = simulate_spmd(
            &topo,
            &SpmdJob {
                placements: ring,
                iterations: 1,
                start: SimTime::ZERO,
            },
        )
        .unwrap();
        // 4 concurrent 10 MB flows share 10 MB/s: 2.5 MB/s each ⇒ 4 s.
        assert_eq!(out.finish, s(14.0));
    }

    #[test]
    fn loaded_host_stretches_compute() {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::ZERO));
        b.add_host(HostSpec::workstation(
            "busy",
            10.0,
            1024.0,
            seg,
            LoadModel::Constant(0.25),
        ));
        let topo = b.instantiate(s(100_000.0), 0).unwrap();
        let out = simulate_spmd(
            &topo,
            &SpmdJob {
                placements: vec![placement(0, 100.0, vec![])],
                iterations: 1,
                start: SimTime::ZERO,
            },
        )
        .unwrap();
        // Only 25% of 10 Mflop/s available ⇒ 40 s.
        assert_eq!(out.finish, s(40.0));
    }

    #[test]
    fn space_shared_startup_wait_delays_everyone() {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::ZERO));
        b.add_host(HostSpec::dedicated("fast", 10.0, 1024.0, seg));
        let mut queued = HostSpec::dedicated("queued", 10.0, 1024.0, seg);
        queued.sharing = crate::host::SharingPolicy::SpaceShared { wait: s(100.0) };
        b.add_host(queued);
        let topo = b.instantiate(s(100_000.0), 0).unwrap();
        let out = simulate_spmd(
            &topo,
            &SpmdJob {
                placements: vec![placement(0, 100.0, vec![]), placement(1, 100.0, vec![])],
                iterations: 1,
                start: SimTime::ZERO,
            },
        )
        .unwrap();
        // Co-allocation waits out the 100 s queue, then 10 s compute.
        assert_eq!(out.finish, s(110.0));
    }

    #[test]
    fn empty_job_is_an_error() {
        let topo = topo2();
        let job = SpmdJob {
            placements: vec![],
            iterations: 1,
            start: SimTime::ZERO,
        };
        assert!(matches!(
            simulate_spmd(&topo, &job),
            Err(SimError::EmptySchedule)
        ));
    }

    #[test]
    fn out_of_range_send_is_an_error() {
        let topo = topo2();
        let job = SpmdJob {
            placements: vec![placement(0, 1.0, vec![(5, 1.0)])],
            iterations: 1,
            start: SimTime::ZERO,
        };
        assert!(matches!(
            simulate_spmd(&topo, &job),
            Err(SimError::Invalid(_))
        ));
    }

    #[test]
    fn zero_iterations_finishes_immediately() {
        let topo = topo2();
        let job = SpmdJob {
            placements: vec![placement(0, 100.0, vec![])],
            iterations: 0,
            start: s(7.0),
        };
        let out = simulate_spmd(&topo, &job).unwrap();
        assert_eq!(out.finish, s(7.0));
        assert!(out.iteration_ends.is_empty());
    }

    #[test]
    fn trace_identifies_the_straggler() {
        let topo = topo2();
        let job = SpmdJob {
            placements: vec![
                placement(0, 200.0, vec![]), // 20 s/iter — the straggler
                placement(1, 50.0, vec![]),  // 5 s/iter
            ],
            iterations: 4,
            start: SimTime::ZERO,
        };
        let (out, trace) = simulate_spmd_traced(&topo, &job).unwrap();
        assert_eq!(trace.compute_done.len(), 4);
        assert_eq!(trace.compute_done[0].len(), 2);
        for it in 0..4 {
            assert_eq!(trace.straggler(it), Some(0));
        }
        assert_eq!(trace.straggler_counts(), vec![4, 0]);
        assert!(trace.straggler(99).is_none());
        // The traced outcome matches the untraced entry point.
        let plain = simulate_spmd(&topo, &job).unwrap();
        assert_eq!(out, plain);
    }

    #[test]
    fn sink_variant_matches_plain_and_emits_events() {
        use crate::simtrace::VecSink;
        let topo = topo2();
        let job = SpmdJob {
            placements: vec![
                placement(0, 100.0, vec![(1, 10.0)]),
                placement(1, 100.0, vec![(0, 10.0)]),
            ],
            iterations: 2,
            start: SimTime::ZERO,
        };
        let mut sink = VecSink::new();
        let traced = simulate_spmd_with_sink(&topo, &job, &mut sink).unwrap();
        let plain = simulate_spmd(&topo, &job).unwrap();
        assert_eq!(traced, plain, "tracing must not perturb the simulation");
        // 2 workers: one start + one finish each, plus 2 transfers per
        // iteration over 2 iterations = 8 transfer events.
        let kinds: Vec<&str> = sink.events.iter().map(|e| e.kind()).collect();
        assert_eq!(kinds.iter().filter(|k| **k == "compute_start").count(), 2);
        assert_eq!(kinds.iter().filter(|k| **k == "compute_finish").count(), 2);
        assert_eq!(kinds.iter().filter(|k| **k == "transfer_start").count(), 4);
        assert_eq!(kinds.iter().filter(|k| **k == "transfer_finish").count(), 4);
        // Both sends share the segment: contention share is 1/2.
        for e in &sink.events {
            if let crate::simtrace::TraceEvent::TransferFinish {
                contention_share, ..
            } = e
            {
                assert!((contention_share - 0.5).abs() < 1e-9, "{contention_share}");
            }
        }
    }

    #[test]
    fn memory_spill_dominates_runtime() {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 10.0, SimTime::ZERO));
        b.add_host(HostSpec::dedicated("small", 10.0, 10.0, seg));
        let topo = b.instantiate(s(1e7), 0).unwrap();
        let fits = simulate_spmd(
            &topo,
            &SpmdJob {
                placements: vec![SpmdPlacement {
                    host: HostId(0),
                    work_mflop: 100.0,
                    resident_mb: 5.0,
                    sends: vec![],
                }],
                iterations: 1,
                start: SimTime::ZERO,
            },
        )
        .unwrap();
        let spills = simulate_spmd(
            &topo,
            &SpmdJob {
                placements: vec![SpmdPlacement {
                    host: HostId(0),
                    work_mflop: 100.0,
                    resident_mb: 20.0,
                    sends: vec![],
                }],
                iterations: 1,
                start: SimTime::ZERO,
            },
        )
        .unwrap();
        assert!(spills.finish.as_secs_f64() > 10.0 * fits.finish.as_secs_f64());
    }
}
