//! Executors: drive application shapes through the simulated system.
//!
//! The paper studies two application shapes, and each gets an executor:
//!
//! * [`spmd`] — bulk-synchronous iterative data-parallel codes (the
//!   Jacobi2D study of §5): per iteration, every worker computes its
//!   region, exchanges borders with neighbours, and synchronizes.
//! * [`pipeline`] — two-stage task-parallel pipelines (the 3D-REACT
//!   study of §2.2–2.3): a producer task streams units of work across a
//!   link to a consumer task, bounded by a pipeline depth.
//!
//! Executors are the simulator's ground truth; the scheduler's
//! Performance Estimator (in the `apples` crate) predicts what these
//! executors will measure.

pub mod pipeline;
pub mod spmd;
pub mod workqueue;

pub use pipeline::{simulate_pipeline, simulate_single_site, PipelineJob, PipelineOutcome};
pub use spmd::{
    simulate_spmd, simulate_spmd_traced, simulate_spmd_with_sink, SpmdJob, SpmdOutcome,
    SpmdPlacement, SpmdTrace,
};
pub use workqueue::{simulate_workqueue, WorkQueueJob, WorkQueueOutcome};
