//! Dynamic self-scheduling (work-queue) execution.
//!
//! The reactive alternative to predictive scheduling: a master holds a
//! bag of independent work chunks; each worker repeatedly requests a
//! chunk, computes it, and returns the result. Fast or idle workers
//! naturally take more chunks — no forecasts required — at the price
//! of one request/response round-trip per chunk and a serialization
//! point at the master.
//!
//! The AppLeS paper bets on *prediction*; self-scheduling bets on
//! *reaction*. The `predict_vs_react` experiment in `apples-bench`
//! stages the two against each other: prediction wins when round-trips
//! are expensive (WAN latencies, §3.3's "far" resources) or work is
//! coupled (stencils can't self-schedule); reaction wins when the
//! forecast horizon is shorter than the load's volatility.

use crate::error::SimError;
use crate::host::HostId;
use crate::net::Topology;
use crate::time::SimTime;
use simcore::EventQueue;

/// A self-scheduled bag-of-tasks job.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkQueueJob {
    /// Host running the master (chunk dispenser / result collector).
    pub master: HostId,
    /// Worker hosts (a worker may be the master's host).
    pub workers: Vec<HostId>,
    /// Total chunks in the bag.
    pub n_chunks: usize,
    /// Compute per chunk, in Mflop.
    pub mflop_per_chunk: f64,
    /// Input payload per chunk, MB (master → worker).
    pub mb_per_chunk: f64,
    /// Result payload per chunk, MB (worker → master).
    pub result_mb_per_chunk: f64,
    /// Worker resident set, MB.
    pub resident_mb: f64,
    /// Job submission time.
    pub start: SimTime,
}

/// Outcome of a self-scheduled run.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkQueueOutcome {
    /// Time the last result reached the master.
    pub finish: SimTime,
    /// Chunks each worker completed, in `workers` order.
    pub chunks_done: Vec<usize>,
}

impl WorkQueueOutcome {
    /// Elapsed wall-clock time from job start to finish.
    pub fn makespan(&self, job_start: SimTime) -> SimTime {
        self.finish.saturating_sub(job_start)
    }
}

/// Simulate the work queue.
///
/// Transfers use the contention-free per-flow estimate (latency +
/// payload over currently-available bottleneck bandwidth) rather than
/// the full fluid-flow simulation: chunk messages are small and
/// pairwise, and this keeps the event loop at one event per chunk
/// completion. Compute uses the exact availability integration, so
/// workers slow down and speed up with the background load.
pub fn simulate_workqueue(
    topo: &Topology,
    job: &WorkQueueJob,
) -> Result<WorkQueueOutcome, SimError> {
    if job.workers.is_empty() {
        return Err(SimError::EmptySchedule);
    }
    topo.host(job.master)?;
    for &w in &job.workers {
        topo.host(w)?;
    }
    if job.n_chunks == 0 {
        return Ok(WorkQueueOutcome {
            finish: job.start,
            chunks_done: vec![0; job.workers.len()],
        });
    }

    // Worker-ready events; the queue's schedule-order tie-break keeps
    // chunk dispatch deterministic when workers free up together.
    let mut ready: EventQueue<SimTime, usize> = EventQueue::new();
    for (i, &w) in job.workers.iter().enumerate() {
        let t0 = job.start + topo.host(w)?.startup_wait();
        ready.schedule(t0, i);
    }

    let mut remaining = job.n_chunks;
    let mut chunks_done = vec![0usize; job.workers.len()];
    let mut finish = job.start;

    while remaining > 0 {
        let Some((now, _, wi)) = ready.pop() else {
            return Err(SimError::Invalid(
                "work queue drained while chunks remain".into(),
            ));
        };
        remaining -= 1;
        let worker = job.workers[wi];
        // Request/receive the chunk input.
        let got = now + topo.transfer_estimate(job.master, worker, job.mb_per_chunk, now)?;
        // Compute.
        let host = topo.host(worker)?;
        let done = host.compute_finish_checked(got, job.mflop_per_chunk, job.resident_mb)?;
        // Return the result.
        let returned =
            done + topo.transfer_estimate(worker, job.master, job.result_mb_per_chunk, done)?;
        chunks_done[wi] += 1;
        finish = finish.max(returned);
        ready.schedule(returned, wi);
    }

    Ok(WorkQueueOutcome {
        finish,
        chunks_done,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostSpec;
    use crate::load::LoadModel;
    use crate::net::{LinkSpec, TopologyBuilder};

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    fn topo(speeds: &[f64], latency_ms: u64) -> Topology {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated(
            "seg",
            100.0,
            SimTime::from_millis(latency_ms),
        ));
        b.add_host(HostSpec::dedicated("master", 10.0, 256.0, seg));
        for (i, &sp) in speeds.iter().enumerate() {
            b.add_host(HostSpec::dedicated(&format!("w{i}"), sp, 256.0, seg));
        }
        b.instantiate(s(1e7), 0).unwrap()
    }

    fn job(workers: usize, chunks: usize) -> WorkQueueJob {
        WorkQueueJob {
            master: HostId(0),
            workers: (1..=workers).map(HostId).collect(),
            n_chunks: chunks,
            mflop_per_chunk: 100.0,
            mb_per_chunk: 0.01,
            result_mb_per_chunk: 0.001,
            resident_mb: 1.0,
            start: SimTime::ZERO,
        }
    }

    #[test]
    fn single_worker_processes_everything() {
        let topo = topo(&[10.0], 0);
        let out = simulate_workqueue(&topo, &job(1, 20)).unwrap();
        assert_eq!(out.chunks_done, vec![20]);
        // 20 chunks × 10 s compute (transfers ~0).
        assert!((out.makespan(SimTime::ZERO).as_secs_f64() - 200.0).abs() < 1.0);
    }

    #[test]
    fn faster_workers_take_more_chunks() {
        let topo = topo(&[10.0, 40.0], 0);
        let out = simulate_workqueue(&topo, &job(2, 50)).unwrap();
        // 4x faster worker should take roughly 4x the chunks.
        assert!(
            out.chunks_done[1] > 3 * out.chunks_done[0],
            "{:?}",
            out.chunks_done
        );
        assert_eq!(out.chunks_done.iter().sum::<usize>(), 50);
    }

    #[test]
    fn loaded_worker_takes_fewer_chunks_without_any_forecast() {
        let mut b = TopologyBuilder::new();
        let seg = b.add_segment(LinkSpec::dedicated("seg", 100.0, SimTime::ZERO));
        b.add_host(HostSpec::dedicated("master", 10.0, 256.0, seg));
        b.add_host(HostSpec::dedicated("free", 20.0, 256.0, seg));
        b.add_host(HostSpec::workstation(
            "busy",
            20.0,
            256.0,
            seg,
            LoadModel::Constant(0.25),
        ));
        let topo = b.instantiate(s(1e7), 0).unwrap();
        let out = simulate_workqueue(&topo, &job(2, 50)).unwrap();
        // The busy worker delivers a quarter of the throughput.
        assert!(
            out.chunks_done[0] > 2 * out.chunks_done[1],
            "{:?}",
            out.chunks_done
        );
    }

    #[test]
    fn latency_taxes_every_chunk() {
        let fast = simulate_workqueue(&topo(&[10.0, 10.0], 0), &job(2, 40)).unwrap();
        let slow = simulate_workqueue(&topo(&[10.0, 10.0], 500), &job(2, 40)).unwrap();
        // 1 s of round-trip latency per chunk (500 ms each way) on a
        // 10 s compute: ~10% slower overall.
        let f = fast.makespan(SimTime::ZERO).as_secs_f64();
        let sl = slow.makespan(SimTime::ZERO).as_secs_f64();
        assert!(sl > f + 15.0, "fast {f}, slow {sl}");
    }

    #[test]
    fn zero_chunks_is_trivial() {
        let topo = topo(&[10.0], 0);
        let out = simulate_workqueue(&topo, &job(1, 0)).unwrap();
        assert_eq!(out.finish, SimTime::ZERO);
    }

    #[test]
    fn no_workers_is_an_error() {
        let topo = topo(&[10.0], 0);
        let mut j = job(1, 5);
        j.workers.clear();
        assert!(matches!(
            simulate_workqueue(&topo, &j),
            Err(SimError::EmptySchedule)
        ));
    }

    #[test]
    fn deterministic() {
        let topo = topo(&[10.0, 25.0, 40.0], 2);
        let a = simulate_workqueue(&topo, &job(3, 100)).unwrap();
        let b = simulate_workqueue(&topo, &job(3, 100)).unwrap();
        assert_eq!(a, b);
    }
}
