//! Two-stage pipeline execution (the 3D-REACT shape, §2.2–2.3).
//!
//! A *producer* task (LHSF in the paper) computes units of work in
//! order and ships each across the network to a *consumer* task
//! (Log-D/ASY). Production, transfer and consumption of different
//! units overlap; a bounded pipeline depth limits how far the producer
//! may run ahead of the consumer, modelling the buffering limit on the
//! consumer side.
//!
//! The paper's §2.3 describes the tradeoff this executor reproduces:
//! too *small* a unit means the consumer stalls waiting for data
//! (per-message latency dominates); too *large* a unit means less
//! overlap and a buffering cost on the consumer end. The `react3d`
//! application maps its surface-function granularity onto these unit
//! parameters and sweeps it.

use crate::error::SimError;
use crate::host::HostId;
use crate::net::{simulate_transfers, Topology, TransferReq};
use crate::time::SimTime;

/// A two-stage pipelined job.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineJob {
    /// Host running the producer task.
    pub producer: HostId,
    /// Host running the consumer task.
    pub consumer: HostId,
    /// Number of units to stream through the pipeline.
    pub n_units: usize,
    /// Producer compute per unit, in Mflop.
    pub producer_mflop_per_unit: f64,
    /// Consumer compute per unit, in Mflop.
    pub consumer_mflop_per_unit: f64,
    /// Data shipped per unit, in MB.
    pub mb_per_unit: f64,
    /// Producer resident set, in MB.
    pub producer_resident_mb: f64,
    /// Consumer resident set, in MB (grows with unit size — this is
    /// where the paper's "buffering performance cost" bites).
    pub consumer_resident_mb: f64,
    /// Maximum units produced but not yet consumed (pipeline depth ≥ 1).
    pub max_in_flight: usize,
    /// Job submission time.
    pub start: SimTime,
}

/// Results of simulating a pipelined job.
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineOutcome {
    /// Time the consumer finishes the last unit.
    pub finish: SimTime,
    /// Seconds the consumer spent stalled waiting for data.
    pub consumer_stall_seconds: f64,
    /// Seconds the producer spent blocked on the pipeline-depth bound.
    pub producer_block_seconds: f64,
    /// Per-unit consumer completion times.
    pub unit_done: Vec<SimTime>,
}

impl PipelineOutcome {
    /// Elapsed wall-clock time from job start to finish.
    pub fn makespan(&self, job_start: SimTime) -> SimTime {
        self.finish.saturating_sub(job_start)
    }
}

/// Simulate the pipeline.
///
/// Units are produced, shipped and consumed strictly in order.
/// Transfers are serialized on the sending side (one outstanding
/// message at a time) but overlap with both endpoint computations, and
/// contend with any background traffic on the route.
pub fn simulate_pipeline(topo: &Topology, job: &PipelineJob) -> Result<PipelineOutcome, SimError> {
    if job.n_units == 0 {
        return Ok(PipelineOutcome {
            finish: job.start,
            consumer_stall_seconds: 0.0,
            producer_block_seconds: 0.0,
            unit_done: Vec::new(),
        });
    }
    if job.max_in_flight == 0 {
        return Err(SimError::Invalid(
            "pipeline depth (max_in_flight) must be at least 1".into(),
        ));
    }
    let prod = topo.host(job.producer)?;
    let cons = topo.host(job.consumer)?;

    // Co-allocation: both tasks must hold their resources.
    let t0 = job.start + prod.startup_wait().max(cons.startup_wait());

    let n = job.n_units;
    let mut prod_done = vec![SimTime::ZERO; n];
    let mut arrive = vec![SimTime::ZERO; n];
    let mut cons_done = vec![SimTime::ZERO; n];
    let mut stall = SimTime::ZERO;
    let mut block = SimTime::ZERO;

    let mut prev_prod_done = t0;
    let mut prev_xfer_done = t0;
    let mut prev_cons_done = t0;

    for i in 0..n {
        // Pipeline-depth gate: unit i may start production only after
        // unit i - depth has been consumed.
        let gate = if i >= job.max_in_flight {
            cons_done[i - job.max_in_flight]
        } else {
            t0
        };
        let p_start = prev_prod_done.max(gate);
        block += p_start - prev_prod_done;
        prod_done[i] = prod.compute_finish_checked(
            p_start,
            job.producer_mflop_per_unit,
            job.producer_resident_mb,
        )?;
        prev_prod_done = prod_done[i];

        // Ship the unit; sends are serialized in order.
        let x_start = prod_done[i].max(prev_xfer_done);
        if job.producer == job.consumer || job.mb_per_unit <= 0.0 {
            arrive[i] = x_start;
            prev_xfer_done = x_start;
        } else {
            let res = simulate_transfers(
                topo,
                &[TransferReq {
                    from: job.producer,
                    to: job.consumer,
                    mb: job.mb_per_unit,
                    start: x_start,
                    tag: i,
                }],
            )?;
            arrive[i] = res[0].delivered;
            prev_xfer_done = arrive[i];
        }

        // Consume in order.
        let c_start = arrive[i].max(prev_cons_done);
        stall += c_start - prev_cons_done;
        cons_done[i] = cons.compute_finish_checked(
            c_start,
            job.consumer_mflop_per_unit,
            job.consumer_resident_mb,
        )?;
        prev_cons_done = cons_done[i];
    }

    Ok(PipelineOutcome {
        finish: cons_done[n - 1],
        consumer_stall_seconds: stall.as_secs_f64(),
        producer_block_seconds: block.as_secs_f64(),
        unit_done: cons_done,
    })
}

/// Single-site baseline: run producer work then consumer work for all
/// units sequentially on one host — the paper's "one dedicated CPU"
/// comparison point (§2.3 reports ≥16 h single-site vs <5 h
/// distributed for 3D-REACT).
pub fn simulate_single_site(
    topo: &Topology,
    host: HostId,
    job: &PipelineJob,
) -> Result<SimTime, SimError> {
    let h = topo.host(host)?;
    let t0 = job.start + h.startup_wait();
    let total = job.n_units as f64 * (job.producer_mflop_per_unit + job.consumer_mflop_per_unit);
    let resident = job.producer_resident_mb + job.consumer_resident_mb;
    h.compute_finish_checked(t0, total, resident)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::host::HostSpec;
    use crate::net::{LinkSpec, TopologyBuilder};

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    /// Producer 10 Mflop/s, consumer 10 Mflop/s, 10 MB/s link.
    fn topo() -> Topology {
        let mut b = TopologyBuilder::new();
        let sa = b.add_segment(LinkSpec::dedicated("segA", 100.0, SimTime::ZERO));
        let sb = b.add_segment(LinkSpec::dedicated("segB", 100.0, SimTime::ZERO));
        let wan = b.add_link(LinkSpec::dedicated("wan", 10.0, SimTime::ZERO));
        b.add_route(sa, sb, vec![wan]).unwrap();
        b.add_host(HostSpec::dedicated("prod", 10.0, 1024.0, sa));
        b.add_host(HostSpec::dedicated("cons", 10.0, 1024.0, sb));
        b.instantiate(s(1e7), 0).unwrap()
    }

    fn job(n: usize, depth: usize) -> PipelineJob {
        PipelineJob {
            producer: HostId(0),
            consumer: HostId(1),
            n_units: n,
            producer_mflop_per_unit: 100.0, // 10 s/unit
            consumer_mflop_per_unit: 100.0, // 10 s/unit
            mb_per_unit: 10.0,              // 1 s/unit on the WAN
            producer_resident_mb: 1.0,
            consumer_resident_mb: 1.0,
            max_in_flight: depth,
            start: SimTime::ZERO,
        }
    }

    #[test]
    fn single_unit_is_sequential() {
        let topo = topo();
        let out = simulate_pipeline(&topo, &job(1, 4)).unwrap();
        // 10 s produce + 1 s ship + 10 s consume.
        assert_eq!(out.finish, s(21.0));
        assert_eq!(out.unit_done.len(), 1);
    }

    #[test]
    fn pipelining_overlaps_stages() {
        let topo = topo();
        let out = simulate_pipeline(&topo, &job(10, 4)).unwrap();
        // Steady state: both stages run at 10 s/unit, transfer hidden.
        // Fill (10 s produce + 1 s ship), then the consumer processes
        // all 10 units back-to-back: 11 + 10 * 10 = 111 s.
        assert_eq!(out.finish, s(111.0));
        // Far better than sequential: 10 * (10 + 1 + 10) = 210 s.
        assert!(out.finish < s(210.0));
    }

    #[test]
    fn depth_one_serializes_adjacent_units() {
        let topo = topo();
        let deep = simulate_pipeline(&topo, &job(10, 8)).unwrap();
        let shallow = simulate_pipeline(&topo, &job(10, 1)).unwrap();
        assert!(shallow.finish > deep.finish);
        assert!(shallow.producer_block_seconds > 0.0);
    }

    #[test]
    fn consumer_stall_when_producer_is_bottleneck() {
        let topo = topo();
        let mut j = job(5, 8);
        j.consumer_mflop_per_unit = 10.0; // consumer 1 s/unit, producer 10 s/unit
        let out = simulate_pipeline(&topo, &j).unwrap();
        // The consumer mostly waits on fresh data.
        assert!(out.consumer_stall_seconds > 20.0);
    }

    #[test]
    fn zero_units_is_trivial() {
        let topo = topo();
        let out = simulate_pipeline(&topo, &job(0, 4)).unwrap();
        assert_eq!(out.finish, SimTime::ZERO);
    }

    #[test]
    fn zero_depth_is_invalid() {
        let topo = topo();
        assert!(matches!(
            simulate_pipeline(&topo, &job(3, 0)),
            Err(SimError::Invalid(_))
        ));
    }

    #[test]
    fn colocated_pipeline_skips_the_network() {
        let topo = topo();
        let mut j = job(5, 4);
        j.consumer = HostId(0);
        let colocated = simulate_pipeline(&topo, &j).unwrap();
        let distributed = simulate_pipeline(&topo, &job(5, 4)).unwrap();
        // Colocated units arrive the instant they are produced, so no
        // transfer time is paid. (Note the executor models the two
        // tasks as independent contexts, so they still overlap; CPU
        // contention between colocated tasks is not modelled.)
        assert!(colocated.finish < distributed.finish);
    }

    #[test]
    fn single_site_baseline_is_sequential_sum() {
        let topo = topo();
        let t = simulate_single_site(&topo, HostId(0), &job(10, 4)).unwrap();
        // 10 units * 200 Mflop / 10 Mflop/s = 200 s.
        assert_eq!(t, s(200.0));
    }

    #[test]
    fn distributed_beats_single_site_react_shape() {
        // The §2.3 headline: distributed < 5 h vs ≥ 16 h single-site.
        let topo = topo();
        let j = job(50, 8);
        let dist = simulate_pipeline(&topo, &j).unwrap().finish;
        let single = simulate_single_site(&topo, HostId(0), &j).unwrap();
        assert!(
            dist.as_secs_f64() < 0.6 * single.as_secs_f64(),
            "distributed {dist} should be well under single-site {single}"
        );
    }
}
