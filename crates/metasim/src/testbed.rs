//! Canonical testbed configurations.
//!
//! [`pcl_sdsc`] reproduces Figure 2 of the paper: the UCSD Parallel
//! Computation Laboratory (a Sun Sparc-2 and a Sparc-10 on one Ethernet
//! segment, two IBM RS6000s on another) connected by a gateway to the
//! San Diego Supercomputer Center (four DEC Alphas on a non-dedicated
//! FDDI ring). The Figure 6 experiments add two unloaded SP-2 nodes at
//! SDSC on their own switch.
//!
//! Nominal speeds are representative mid-90s LINPACK-class numbers; the
//! absolute values do not matter for reproducing the paper's *shape* —
//! what matters is the heterogeneity ratios and which media are shared.
//! SP-2 node memory is sized so a 2-node uniform partition of a
//! `3700 × 3700` Jacobi grid exactly saturates physical memory, which is
//! where Figure 6 places its spill point.

use crate::error::SimError;
use crate::host::{HostId, HostSpec};
use crate::load::LoadModel;
use crate::net::{LinkSpec, SegmentId, Topology, TopologyBuilder};
use crate::time::SimTime;

/// How heavily background users load the non-dedicated resources.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoadProfile {
    /// Everything dedicated: availability pinned at 1. A control case.
    Dedicated,
    /// Light interactive use: availability mostly near 0.85.
    Light,
    /// The default: a busy multi-user lab, availability drifting
    /// around 0.55 with user sessions coming and going.
    Moderate,
    /// Heavily contended: availability drifting around 0.3.
    Heavy,
}

impl LoadProfile {
    /// Mean CPU availability this profile aims at.
    pub fn target_mean(&self) -> f64 {
        match self {
            LoadProfile::Dedicated => 1.0,
            LoadProfile::Light => 0.85,
            LoadProfile::Moderate => 0.55,
            LoadProfile::Heavy => 0.3,
        }
    }

    /// Load model for a time-shared CPU. `skew` in `[-1, 1]` biases the
    /// level so different hosts in the same profile differ — strongly.
    /// Real multi-user pools are very uneven (one workstation is
    /// somebody's simulation rig while its neighbour idles), and that
    /// unevenness is precisely what static schedules cannot see and
    /// AppLeS can (§3.2). The Figure 5 gap depends on it.
    pub fn cpu_load(&self, skew: f64) -> LoadModel {
        match self {
            LoadProfile::Dedicated => LoadModel::Constant(1.0),
            _ => {
                let mean = (self.target_mean() + 0.45 * skew).clamp(0.08, 1.0);
                let spread = 0.3 * mean;
                LoadModel::RandomWalk {
                    start: mean,
                    step: 0.08,
                    interval: SimTime::from_secs(5),
                    floor: (mean - spread).max(0.02),
                    ceil: (mean + spread).min(1.0),
                }
            }
        }
    }

    /// Load model for a shared network medium.
    pub fn net_load(&self, skew: f64) -> LoadModel {
        match self {
            LoadProfile::Dedicated => LoadModel::Constant(1.0),
            _ => {
                // Networks are burstier than CPUs: on/off cross-traffic.
                let idle = (self.target_mean() + 0.3 + 0.05 * skew).clamp(0.2, 1.0);
                let busy = (self.target_mean() - 0.15 + 0.05 * skew).clamp(0.05, 1.0);
                LoadModel::MarkovOnOff {
                    idle_avail: idle,
                    busy_avail: busy,
                    mean_idle: SimTime::from_secs(40),
                    mean_busy: SimTime::from_secs(15),
                }
            }
        }
    }
}

/// Options for building the Figure 2 testbed.
#[derive(Debug, Clone)]
pub struct TestbedConfig {
    /// Background-load intensity on the non-dedicated resources.
    pub profile: LoadProfile,
    /// Horizon over which load processes are realized.
    pub horizon: SimTime,
    /// Seed controlling every realized availability process.
    pub seed: u64,
    /// Include the two SP-2 nodes used in the Figure 6 experiments.
    pub with_sp2: bool,
}

impl Default for TestbedConfig {
    fn default() -> Self {
        TestbedConfig {
            profile: LoadProfile::Moderate,
            horizon: SimTime::from_secs(200_000),
            seed: 1996,
            with_sp2: false,
        }
    }
}

/// The instantiated Figure 2 testbed with named host handles.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// The underlying topology.
    pub topo: Topology,
    /// The PCL Sun Sparc-2.
    pub sparc2: HostId,
    /// The PCL Sun Sparc-10.
    pub sparc10: HostId,
    /// The two PCL IBM RS6000s.
    pub rs6000: [HostId; 2],
    /// The four SDSC DEC Alphas on the FDDI ring.
    pub alphas: [HostId; 4],
    /// The two SDSC SP-2 nodes (present when `with_sp2`).
    pub sp2: Option<[HostId; 2]>,
    /// PCL Sun Ethernet segment.
    pub seg_suns: SegmentId,
    /// PCL RS6000 Ethernet segment.
    pub seg_rs: SegmentId,
    /// SDSC FDDI ring.
    pub seg_fddi: SegmentId,
    /// SDSC SP-2 switch (present when `with_sp2`).
    pub seg_sp2: Option<SegmentId>,
}

impl Testbed {
    /// Every host in the testbed, in a stable order.
    pub fn all_hosts(&self) -> Vec<HostId> {
        let mut v = vec![self.sparc2, self.sparc10];
        v.extend(self.rs6000);
        v.extend(self.alphas);
        if let Some(sp2) = self.sp2 {
            v.extend(sp2);
        }
        v
    }

    /// The workstation hosts (everything except the SP-2 nodes).
    pub fn workstations(&self) -> Vec<HostId> {
        let mut v = vec![self.sparc2, self.sparc10];
        v.extend(self.rs6000);
        v.extend(self.alphas);
        v
    }
}

/// Nominal speeds (Mflop/s) and memories (MB) for the testbed machines.
pub mod nominal {
    /// Sun Sparc-2.
    pub const SPARC2_MFLOPS: f64 = 4.0;
    /// Sun Sparc-2 memory.
    pub const SPARC2_MEM_MB: f64 = 32.0;
    /// Sun Sparc-10.
    pub const SPARC10_MFLOPS: f64 = 10.0;
    /// Sun Sparc-10 memory.
    pub const SPARC10_MEM_MB: f64 = 64.0;
    /// IBM RS6000.
    pub const RS6000_MFLOPS: f64 = 25.0;
    /// IBM RS6000 memory.
    pub const RS6000_MEM_MB: f64 = 128.0;
    /// DEC Alpha.
    pub const ALPHA_MFLOPS: f64 = 40.0;
    /// DEC Alpha memory.
    pub const ALPHA_MEM_MB: f64 = 128.0;
    /// IBM SP-2 node.
    pub const SP2_MFLOPS: f64 = 110.0;
    /// IBM SP-2 node memory: sized so a 2-node uniform partition of a
    /// 3700×3700 double-precision Jacobi grid (16 B/point, two arrays)
    /// exactly fills physical memory — Figure 6's spill point.
    pub const SP2_MEM_MB: f64 = 110.0;
    /// 10 Mbit/s Ethernet in MB/s.
    pub const ETHERNET_MBPS: f64 = 1.25;
    /// 100 Mbit/s FDDI in MB/s.
    pub const FDDI_MBPS: f64 = 12.5;
    /// PCL↔SDSC gateway usable bandwidth in MB/s.
    pub const GATEWAY_MBPS: f64 = 0.9;
    /// SP-2 switch bandwidth in MB/s.
    pub const SP2_SWITCH_MBPS: f64 = 40.0;
}

/// Build the SDSC/PCL testbed of Figure 2.
pub fn pcl_sdsc(cfg: &TestbedConfig) -> Result<Testbed, SimError> {
    use nominal::*;
    let p = cfg.profile;
    let mut b = TopologyBuilder::new();

    // Shared media.
    let seg_suns = b.add_segment(LinkSpec::shared(
        "pcl-eth-suns",
        ETHERNET_MBPS,
        SimTime::from_millis(1),
        p.net_load(-0.2),
    ));
    let seg_rs = b.add_segment(LinkSpec::shared(
        "pcl-eth-rs6000",
        ETHERNET_MBPS,
        SimTime::from_millis(1),
        p.net_load(0.1),
    ));
    let seg_fddi = b.add_segment(LinkSpec::shared(
        "sdsc-fddi",
        FDDI_MBPS,
        SimTime::from_micros(500),
        p.net_load(0.4),
    ));
    let pcl_router = b.add_link(LinkSpec::shared(
        "pcl-router",
        ETHERNET_MBPS,
        SimTime::from_millis(1),
        p.net_load(0.0),
    ));
    let gateway = b.add_link(LinkSpec::shared(
        "pcl-sdsc-gateway",
        GATEWAY_MBPS,
        SimTime::from_millis(3),
        p.net_load(-0.4),
    ));

    // Inter-segment routes.
    b.add_route(seg_suns, seg_rs, vec![pcl_router])?;
    b.add_route(seg_suns, seg_fddi, vec![gateway])?;
    b.add_route(seg_rs, seg_fddi, vec![gateway])?;

    // PCL workstations.
    let sparc2 = b.add_host(HostSpec::workstation(
        "pcl-sparc2",
        SPARC2_MFLOPS,
        SPARC2_MEM_MB,
        seg_suns,
        p.cpu_load(-0.6),
    ));
    let sparc10 = b.add_host(HostSpec::workstation(
        "pcl-sparc10",
        SPARC10_MFLOPS,
        SPARC10_MEM_MB,
        seg_suns,
        p.cpu_load(0.3),
    ));
    let rs0 = b.add_host(HostSpec::workstation(
        "pcl-rs6000-0",
        RS6000_MFLOPS,
        RS6000_MEM_MB,
        seg_rs,
        p.cpu_load(0.8),
    ));
    let rs1 = b.add_host(HostSpec::workstation(
        "pcl-rs6000-1",
        RS6000_MFLOPS,
        RS6000_MEM_MB,
        seg_rs,
        p.cpu_load(-0.3),
    ));

    // SDSC Alphas.
    let mut alphas = [HostId(0); 4];
    for (i, slot) in alphas.iter_mut().enumerate() {
        *slot = b.add_host(HostSpec::workstation(
            &format!("sdsc-alpha-{i}"),
            ALPHA_MFLOPS,
            ALPHA_MEM_MB,
            seg_fddi,
            p.cpu_load(((i as f64) - 1.5) / 1.5 * 0.7),
        ));
    }

    // Optional SP-2 nodes (unloaded, per Figure 6's setup).
    let (seg_sp2, sp2) = if cfg.with_sp2 {
        let seg = b.add_segment(LinkSpec::dedicated(
            "sdsc-sp2-switch",
            SP2_SWITCH_MBPS,
            SimTime::from_micros(100),
        ));
        let sdsc_router = b.add_link(LinkSpec::dedicated(
            "sdsc-router",
            FDDI_MBPS,
            SimTime::from_micros(500),
        ));
        b.add_route(seg, seg_fddi, vec![sdsc_router])?;
        b.add_route(seg, seg_suns, vec![sdsc_router, gateway])?;
        b.add_route(seg, seg_rs, vec![sdsc_router, gateway])?;
        let n0 = b.add_host(HostSpec::dedicated(
            "sdsc-sp2-0",
            SP2_MFLOPS,
            SP2_MEM_MB,
            seg,
        ));
        let n1 = b.add_host(HostSpec::dedicated(
            "sdsc-sp2-1",
            SP2_MFLOPS,
            SP2_MEM_MB,
            seg,
        ));
        (Some(seg), Some([n0, n1]))
    } else {
        (None, None)
    };

    let topo = b.instantiate(cfg.horizon, cfg.seed)?;
    Ok(Testbed {
        topo,
        sparc2,
        sparc10,
        rs6000: [rs0, rs1],
        alphas,
        sp2,
        seg_suns,
        seg_rs,
        seg_fddi,
        seg_sp2,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_testbed_has_eight_hosts() {
        let tb = pcl_sdsc(&TestbedConfig::default()).unwrap();
        assert_eq!(tb.topo.hosts().len(), 8);
        assert_eq!(tb.all_hosts().len(), 8);
        assert!(tb.sp2.is_none());
    }

    #[test]
    fn sp2_testbed_has_ten_hosts() {
        let cfg = TestbedConfig {
            with_sp2: true,
            ..Default::default()
        };
        let tb = pcl_sdsc(&cfg).unwrap();
        assert_eq!(tb.topo.hosts().len(), 10);
        let sp2 = tb.sp2.unwrap();
        let h = tb.topo.host(sp2[0]).unwrap();
        assert_eq!(h.spec.mflops, nominal::SP2_MFLOPS);
        // SP-2 nodes are dedicated: always fully available.
        assert_eq!(h.availability().value_at(SimTime::from_secs(100)), 1.0);
    }

    #[test]
    fn every_host_pair_is_routable() {
        let cfg = TestbedConfig {
            with_sp2: true,
            ..Default::default()
        };
        let tb = pcl_sdsc(&cfg).unwrap();
        let hosts = tb.all_hosts();
        for &a in &hosts {
            for &b in &hosts {
                assert!(tb.topo.route(a, b).is_ok(), "no route between {a} and {b}");
            }
        }
    }

    #[test]
    fn cross_site_latency_exceeds_local() {
        let tb = pcl_sdsc(&TestbedConfig::default()).unwrap();
        let local = tb.topo.route_latency(tb.sparc2, tb.sparc10).unwrap();
        let remote = tb.topo.route_latency(tb.sparc2, tb.alphas[0]).unwrap();
        assert!(remote > local);
    }

    #[test]
    fn moderate_profile_actually_loads_cpus() {
        let tb = pcl_sdsc(&TestbedConfig::default()).unwrap();
        let h = tb.topo.host(tb.sparc10).unwrap();
        let mean = h.mean_availability(SimTime::ZERO, SimTime::from_secs(100_000));
        assert!(
            mean < 0.95,
            "moderate profile should leave mean < 0.95, got {mean}"
        );
        assert!(
            mean > 0.2,
            "moderate profile should not starve hosts, got {mean}"
        );
    }

    #[test]
    fn dedicated_profile_pins_availability() {
        let cfg = TestbedConfig {
            profile: LoadProfile::Dedicated,
            ..Default::default()
        };
        let tb = pcl_sdsc(&cfg).unwrap();
        for &h in &tb.all_hosts() {
            let host = tb.topo.host(h).unwrap();
            assert_eq!(
                host.mean_availability(SimTime::ZERO, SimTime::from_secs(1000)),
                1.0
            );
        }
    }

    #[test]
    fn heavier_profiles_deliver_less() {
        let mk = |p| {
            let cfg = TestbedConfig {
                profile: p,
                ..Default::default()
            };
            let tb = pcl_sdsc(&cfg).unwrap();
            let h = tb.topo.host(tb.alphas[0]).unwrap();
            h.mean_availability(SimTime::ZERO, SimTime::from_secs(100_000))
        };
        let light = mk(LoadProfile::Light);
        let moderate = mk(LoadProfile::Moderate);
        let heavy = mk(LoadProfile::Heavy);
        assert!(light > moderate && moderate > heavy);
    }

    #[test]
    fn same_seed_reproduces_identical_testbeds() {
        let a = pcl_sdsc(&TestbedConfig::default()).unwrap();
        let b = pcl_sdsc(&TestbedConfig::default()).unwrap();
        for (&ha, &hb) in a.all_hosts().iter().zip(b.all_hosts().iter()) {
            assert_eq!(
                a.topo.host(ha).unwrap().availability(),
                b.topo.host(hb).unwrap().availability()
            );
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = pcl_sdsc(&TestbedConfig::default()).unwrap();
        let cfg = TestbedConfig {
            seed: 7777,
            ..Default::default()
        };
        let b = pcl_sdsc(&cfg).unwrap();
        let ha = a.topo.host(a.sparc10).unwrap();
        let hb = b.topo.host(b.sparc10).unwrap();
        assert_ne!(ha.availability(), hb.availability());
    }
}
