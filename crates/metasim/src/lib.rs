#![warn(missing_docs)]

//! # metasim — a discrete-event simulator for metacomputing systems
//!
//! `metasim` models the execution environment assumed by the AppLeS paper
//! (Berman & Wolski, HPDC 1996): a collection of *heterogeneous*,
//! *non-dedicated* hosts joined by a *heterogeneous*, *shared* network.
//! It provides:
//!
//! * [`SimTime`] — fixed-point simulated time (microsecond resolution),
//! * [`EventQueue`] (re-exported from the `simcore` crate) — a
//!   deterministic, indexed event queue with stable ids and O(log n)
//!   cancel/reschedule,
//! * [`load`] — stochastic background-load generators producing
//!   piecewise-constant *availability* processes for CPUs and links,
//! * [`host`] — host models with CPU speed, memory capacity, sharing
//!   policy and a paging penalty,
//! * [`net`] — network topology (shared segments, routed links) with a
//!   fluid-flow transfer simulator that models bandwidth contention,
//! * [`fault`] — seeded host-crash and link-outage schedules; the
//!   executors turn mid-run host death into a
//!   [`SimError::PlacementLost`] revocation signal,
//! * [`exec`] — executors for the two application shapes the paper
//!   studies: bulk-synchronous iterative SPMD codes (Jacobi2D) and
//!   two-stage pipelines (3D-REACT),
//! * [`testbed`] — canonical system configurations, including the
//!   SDSC/PCL testbed of Figure 2.
//!
//! Everything is deterministic given a seed: identical inputs produce
//! identical simulated timings, which the test-suite relies on.
//!
//! ## Quick example
//!
//! ```
//! use metasim::{SimTime, load::StepSeries};
//!
//! // A host that is fully available for 10 s, then half-loaded.
//! let avail = StepSeries::from_points(vec![
//!     (SimTime::ZERO, 1.0),
//!     (SimTime::from_secs_f64(10.0), 0.5),
//! ]);
//! // 100 Mflop of work at 10 Mflop/s nominal: 10 s at full speed.
//! let done = avail.time_to_complete(SimTime::ZERO, 100.0, 10.0).unwrap();
//! assert_eq!(done, SimTime::from_secs_f64(10.0));
//! ```

pub mod error;
pub mod exec;
pub mod fault;
pub mod host;
pub mod load;
pub mod net;
pub mod simtrace;
pub mod testbed;
pub mod time;
pub mod topogen;
pub mod trace;
pub mod tracefile;
pub mod validate;

pub use error::SimError;
pub use fault::{
    apply_faults, apply_faults_with_sink, FaultModel, FaultSpec, HostFault, LinkFault,
};
pub use host::{Host, HostId, HostSpec, SharingPolicy};
pub use net::{LinkId, LinkSpec, RouteRef, RouteTable, SegmentId, Topology};
pub use simcore::{DirtySet, EventId, EventQueue};
pub use simtrace::{EventSink, NoopSink, TraceEvent, TraceSummary, VecSink, WriterSink};
pub use time::SimTime;
pub use topogen::{generate, TopoGenConfig, TopoSpec};
pub use validate::{validate_faults, validate_topology, ConfigIssue, ValidationReport};
