//! Background load and resource availability.
//!
//! The AppLeS paper's central premise (§3.2) is that metacomputing
//! resources are *non-dedicated*: other users' jobs create contention, so
//! from the application's perspective each resource delivers a
//! time-varying fraction of its nominal capability. We model this
//! fraction as a piecewise-constant **availability process** in `[0, 1]`:
//! a CPU with nominal speed `S` and availability `a(t)` delivers work at
//! rate `S * a(t)`; a link with capacity `B` delivers `B * a(t)` to
//! foreground transfers.
//!
//! [`StepSeries`] is the concrete representation; [`LoadModel`] describes
//! the stochastic processes used to generate one. Generation is
//! deterministic per seed so experiments are reproducible, and the same
//! realized series can be replayed for every scheduling policy under
//! comparison — the "back-to-back under similar conditions" methodology
//! of the paper's §5.

use crate::error::SimError;
use crate::time::SimTime;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A piecewise-constant function of simulated time with values in
/// `[0, 1]`, closed on the left: the value at a change point is the new
/// value. The series extends its last value to infinity.
#[derive(Debug, Clone, PartialEq)]
pub struct StepSeries {
    /// Strictly increasing change points with their values. The first
    /// point is always at `SimTime::ZERO`.
    points: Vec<(SimTime, f64)>,
}

impl StepSeries {
    /// A series pinned at `value` forever.
    pub fn constant(value: f64) -> Self {
        StepSeries {
            points: vec![(SimTime::ZERO, value.clamp(0.0, 1.0))],
        }
    }

    /// Build from explicit `(time, value)` pairs.
    ///
    /// Points are sorted; duplicates at the same time keep the last
    /// value; values are clamped to `[0, 1]`. If no point is given at
    /// time zero, the earliest value is extended back to time zero.
    pub fn from_points(mut pts: Vec<(SimTime, f64)>) -> Self {
        // simlint: allow(panic-in-lib): documented precondition; an empty series has no value to extend
        assert!(!pts.is_empty(), "StepSeries needs at least one point");
        pts.sort_by_key(|&(t, _)| t);
        let mut points: Vec<(SimTime, f64)> = Vec::with_capacity(pts.len());
        for (t, v) in pts {
            let v = v.clamp(0.0, 1.0);
            match points.last_mut() {
                Some(last) if last.0 == t => last.1 = v,
                _ => points.push((t, v)),
            }
        }
        if points[0].0 != SimTime::ZERO {
            let v0 = points[0].1;
            points.insert(0, (SimTime::ZERO, v0));
        }
        // Drop redundant points that repeat the previous value.
        points.dedup_by(|next, prev| (next.1 - prev.1).abs() < f64::EPSILON);
        StepSeries { points }
    }

    /// The value at time `t`.
    pub fn value_at(&self, t: SimTime) -> f64 {
        match self.points.binary_search_by_key(&t, |&(pt, _)| pt) {
            Ok(i) => self.points[i].1,
            Err(0) => self.points[0].1,
            Err(i) => self.points[i - 1].1,
        }
    }

    /// The change points of the series.
    pub fn points(&self) -> &[(SimTime, f64)] {
        &self.points
    }

    /// The next change strictly after `t`, if any.
    pub fn next_change_after(&self, t: SimTime) -> Option<SimTime> {
        let idx = match self.points.binary_search_by_key(&t, |&(pt, _)| pt) {
            Ok(i) => i + 1,
            Err(i) => i,
        };
        self.points.get(idx).map(|&(pt, _)| pt)
    }

    /// Integral of the series over `[from, to]`, in value·seconds.
    pub fn integral(&self, from: SimTime, to: SimTime) -> f64 {
        if to <= from {
            return 0.0;
        }
        let mut acc = 0.0;
        let mut cursor = from;
        let mut value = self.value_at(from);
        while cursor < to {
            let next = self
                .next_change_after(cursor)
                .map(|n| n.min(to))
                .unwrap_or(to);
            // simlint: allow(sim-time-hygiene): work integral, not a time sum — the f64 load value is weighted by each interval's length
            acc += value * (next - cursor).as_secs_f64();
            if next < to {
                value = self.value_at(next);
            }
            cursor = next;
        }
        acc
    }

    /// Mean value over `[from, to]`.
    pub fn mean(&self, from: SimTime, to: SimTime) -> f64 {
        let dur = (to.saturating_sub(from)).as_secs_f64();
        if dur <= 0.0 {
            return self.value_at(from);
        }
        self.integral(from, to) / dur
    }

    /// Time at which `work` units complete when processed at rate
    /// `speed * value(t)` starting at `start`.
    ///
    /// Returns [`SimError::NeverCompletes`] if the availability stays at
    /// zero forever after some point, and an error if `speed <= 0`.
    pub fn time_to_complete(
        &self,
        start: SimTime,
        work: f64,
        speed: f64,
    ) -> Result<SimTime, SimError> {
        if speed <= 0.0 || !speed.is_finite() {
            return Err(SimError::NonPositive {
                what: "speed",
                value: speed,
            });
        }
        if work <= 0.0 {
            return Ok(start);
        }
        let mut remaining = work;
        let mut cursor = start;
        let mut value = self.value_at(start);
        loop {
            let next = self.next_change_after(cursor);
            let rate = speed * value;
            match next {
                Some(n) => {
                    let span = (n - cursor).as_secs_f64();
                    let capacity = rate * span;
                    if capacity >= remaining && rate > 0.0 {
                        let dt = remaining / rate;
                        return Ok(cursor + SimTime::from_secs_f64(dt));
                    }
                    remaining -= capacity;
                    value = self.value_at(n);
                    cursor = n;
                }
                None => {
                    // Final segment extends forever.
                    if rate <= 0.0 {
                        return Err(SimError::NeverCompletes { work: remaining });
                    }
                    let dt = remaining / rate;
                    return Ok(cursor + SimTime::from_secs_f64(dt));
                }
            }
        }
    }

    /// A copy of the series with values inside `[from, to)` multiplied
    /// by `factor` (clamped back into `[0, 1]`). This is how one
    /// application's resource usage is imposed on the availability
    /// another application sees: running at a 60% share on a host for
    /// some window scales the host's availability by 0.4 there.
    pub fn scaled_in_window(&self, from: SimTime, to: SimTime, factor: f64) -> StepSeries {
        self.with_impositions(&[Imposition::new(from, to, factor)])
    }

    /// A copy of the series with a whole set of [`Imposition`]s applied
    /// at once. Overlapping windows compose multiplicatively: two jobs
    /// each taking a 50% share of a host leave 25% of it for a third
    /// observer.
    ///
    /// One merged sweep over the union of change points: window edges
    /// are walked alongside the base points with cursors, and a sorted
    /// index list of the currently-open windows is maintained across
    /// edges, so the combined factor is recomputed in `O(k)` at each of
    /// the (at most `2n`) times the active set changes — `k` being the
    /// overlap depth there, not the total imposition count. Layering
    /// `n` impositions costs `O((points + n) log (points + n) + n·k)`,
    /// not `O(points · n)` as with a per-time scan, not `O(n²)` as
    /// with a full rescan of all windows per edge, and not `n` full
    /// copies as with repeated [`scaled_in_window`] calls. The result
    /// is exactly equal (bit for bit) to applying the windows
    /// sequentially, because the index list is kept ascending and
    /// overlapping factors are always multiplied in imposition order.
    ///
    /// Empty windows (`to <= from`) are ignored; factors are floored at
    /// zero and the resulting values clamped back into `[0, 1]`.
    ///
    /// [`scaled_in_window`]: StepSeries::scaled_in_window
    pub fn with_impositions(&self, impositions: &[Imposition]) -> StepSeries {
        let live: Vec<&Imposition> = impositions.iter().filter(|i| i.to > i.from).collect();
        if live.is_empty() {
            return self.clone();
        }
        // Window edges: (time, is_end, imposition index), time-sorted.
        let mut bounds: Vec<(SimTime, bool, usize)> = Vec::with_capacity(live.len() * 2);
        for (k, imp) in live.iter().enumerate() {
            bounds.push((imp.from, false, k));
            bounds.push((imp.to, true, k));
        }
        bounds.sort_unstable();

        // Change points of the result: the base series' own points plus
        // every window edge. Values can only change at these times.
        let mut times: Vec<SimTime> = self.points.iter().map(|&(t, _)| t).collect();
        times.extend(bounds.iter().map(|&(t, _, _)| t));
        times.sort_unstable();
        times.dedup();

        // Indices of the windows open at the sweep time, kept sorted
        // ascending: recomputing the product over this list multiplies
        // factors in imposition order, exactly like the sequential
        // application, while costing only the current overlap depth
        // instead of a rescan of every window per edge.
        let mut active: Vec<usize> = Vec::new();
        let mut combined = 1.0f64;
        let mut bi = 0usize; // next unprocessed window edge
        let mut pi = 0usize; // base point in force at the sweep time
        let mut pts = Vec::with_capacity(times.len());
        for t in times {
            let mut changed = false;
            while bi < bounds.len() && bounds[bi].0 == t {
                let (_, is_end, k) = bounds[bi];
                match (active.binary_search(&k), is_end) {
                    (Ok(pos), true) => {
                        active.remove(pos); // windows are [from, to)
                    }
                    (Err(pos), false) => active.insert(pos, k),
                    // A window's start strictly precedes its end
                    // (`to > from` filtered above) and indices are
                    // unique, so an edge never finds its window in the
                    // opposite state.
                    _ => {}
                }
                changed = true;
                bi += 1;
            }
            if changed {
                combined = active.iter().map(|&k| live[k].factor.max(0.0)).product();
            }
            while pi + 1 < self.points.len() && self.points[pi + 1].0 <= t {
                pi += 1;
            }
            pts.push((t, self.points[pi].1 * combined));
        }
        StepSeries::from_points(pts)
    }

    /// Sample the series at a fixed period over `[0, horizon]`, as a
    /// measurement stream (what a sensor would observe).
    pub fn sample(&self, period: SimTime, horizon: SimTime) -> Vec<(SimTime, f64)> {
        // simlint: allow(panic-in-lib): documented precondition; a zero period would loop forever
        assert!(period > SimTime::ZERO, "sampling period must be positive");
        let mut out = Vec::new();
        let mut t = SimTime::ZERO;
        while t <= horizon {
            out.push((t, self.value_at(t)));
            t += period;
        }
        out
    }
}

/// One application's resource usage expressed as a multiplicative drag
/// on the availability everyone else observes: inside `[from, to)` the
/// underlying series is scaled by `factor`. A job taking a 60% share of
/// a host for its run imposes `factor = 0.4` over that window.
///
/// Apply a batch with [`StepSeries::with_impositions`]; overlapping
/// windows compose multiplicatively.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Imposition {
    /// Start of the window (inclusive).
    pub from: SimTime,
    /// End of the window (exclusive).
    pub to: SimTime,
    /// Multiplier applied to availability inside the window; floored at
    /// zero when applied.
    pub factor: f64,
}

impl Imposition {
    /// An imposition scaling availability by `factor` over `[from, to)`.
    pub fn new(from: SimTime, to: SimTime, factor: f64) -> Self {
        Imposition { from, to, factor }
    }

    /// Whether the window covers time `t` (left-closed, right-open).
    pub fn active_at(&self, t: SimTime) -> bool {
        self.from <= t && t < self.to
    }
}

/// A stochastic model of background load, realized into a [`StepSeries`]
/// of *availability* over a horizon.
#[derive(Debug, Clone, PartialEq)]
pub enum LoadModel {
    /// Fixed availability (a dedicated resource is `Constant(1.0)`).
    Constant(f64),
    /// Square wave alternating between `high` and `low` with the given
    /// half-period: models a periodic competing job (e.g. a cron batch).
    Periodic {
        /// Availability during the high half-cycle.
        high: f64,
        /// Availability during the low half-cycle.
        low: f64,
        /// Length of each half-cycle.
        half_period: SimTime,
        /// Phase offset into the cycle at time zero.
        phase: SimTime,
    },
    /// Bounded random walk: availability takes a step uniform in
    /// `[-step, step]` every `interval`, reflected into `[floor, ceil]`.
    /// Models drifting multi-user load, the regime the Network Weather
    /// Service was designed to forecast.
    RandomWalk {
        /// Initial availability.
        start: f64,
        /// Maximum step magnitude per interval.
        step: f64,
        /// Time between steps.
        interval: SimTime,
        /// Lower reflection bound.
        floor: f64,
        /// Upper reflection bound.
        ceil: f64,
    },
    /// Two-state Markov-modulated load: the resource alternates between
    /// a `busy` availability and an `idle` availability, with
    /// exponentially distributed state holding times. Models an
    /// interactive user who comes and goes.
    MarkovOnOff {
        /// Availability while the competing user is away.
        idle_avail: f64,
        /// Availability while the competing user is active.
        busy_avail: f64,
        /// Mean holding time of the idle state.
        mean_idle: SimTime,
        /// Mean holding time of the busy state.
        mean_busy: SimTime,
    },
    /// Replay an explicit trace.
    Trace(Vec<(SimTime, f64)>),
}

impl LoadModel {
    /// Realize the model into a concrete availability series on
    /// `[0, horizon]`, deterministically for a given `seed`.
    pub fn realize(&self, horizon: SimTime, seed: u64) -> StepSeries {
        match self {
            LoadModel::Constant(v) => StepSeries::constant(*v),
            LoadModel::Periodic {
                high,
                low,
                half_period,
                phase,
            } => {
                // simlint: allow(panic-in-lib): documented precondition; a zero half-period would generate infinite points
                assert!(
                    *half_period > SimTime::ZERO,
                    "periodic load needs a positive half-period"
                );
                let mut pts = Vec::new();
                // Walk whole cycles from -phase so the wave is phase-shifted.
                let mut t = 0i64 - phase.as_micros() as i64;
                let hp = half_period.as_micros() as i64;
                let mut level_high = true;
                while t < horizon.as_micros() as i64 + hp {
                    let clamped = t.max(0) as u64;
                    pts.push((
                        SimTime::from_micros(clamped),
                        if level_high { *high } else { *low },
                    ));
                    t += hp;
                    level_high = !level_high;
                }
                StepSeries::from_points(pts)
            }
            LoadModel::RandomWalk {
                start,
                step,
                interval,
                floor,
                ceil,
            } => {
                // simlint: allow(panic-in-lib): documented precondition; a zero interval would generate infinite points
                assert!(
                    *interval > SimTime::ZERO,
                    "random walk needs a positive interval"
                );
                // simlint: allow(panic-in-lib): documented precondition; an inverted range has no valid sample
                assert!(floor <= ceil, "random walk floor must not exceed ceil");
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut pts = Vec::new();
                let mut v = start.clamp(*floor, *ceil);
                let mut t = SimTime::ZERO;
                while t <= horizon {
                    pts.push((t, v));
                    let delta = rng.gen_range(-*step..=*step);
                    v += delta;
                    // Reflect into [floor, ceil].
                    if v > *ceil {
                        v = 2.0 * ceil - v;
                    }
                    if v < *floor {
                        v = 2.0 * floor - v;
                    }
                    v = v.clamp(*floor, *ceil);
                    t += *interval;
                }
                StepSeries::from_points(pts)
            }
            LoadModel::MarkovOnOff {
                idle_avail,
                busy_avail,
                mean_idle,
                mean_busy,
            } => {
                // simlint: allow(panic-in-lib): documented precondition; zero holding times would generate infinite points
                assert!(
                    *mean_idle > SimTime::ZERO && *mean_busy > SimTime::ZERO,
                    "Markov on/off needs positive mean holding times"
                );
                let mut rng = ChaCha8Rng::seed_from_u64(seed);
                let mut pts = Vec::new();
                let mut idle = true;
                let mut t = SimTime::ZERO;
                while t <= horizon {
                    pts.push((t, if idle { *idle_avail } else { *busy_avail }));
                    let mean = if idle { *mean_idle } else { *mean_busy };
                    // Exponential holding time via inverse transform.
                    let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                    let hold = -u.ln() * mean.as_secs_f64();
                    t += SimTime::from_secs_f64(hold.max(1e-6));
                    idle = !idle;
                }
                StepSeries::from_points(pts)
            }
            LoadModel::Trace(pts) => StepSeries::from_points(pts.clone()),
        }
    }

    /// The long-run mean availability of the model (exact where a closed
    /// form exists, otherwise estimated from a realization).
    pub fn mean_availability(&self, horizon: SimTime, seed: u64) -> f64 {
        match self {
            LoadModel::Constant(v) => v.clamp(0.0, 1.0),
            LoadModel::Periodic { high, low, .. } => (high + low) / 2.0,
            LoadModel::MarkovOnOff {
                idle_avail,
                busy_avail,
                mean_idle,
                mean_busy,
            } => {
                let wi = mean_idle.as_secs_f64();
                let wb = mean_busy.as_secs_f64();
                (idle_avail * wi + busy_avail * wb) / (wi + wb)
            }
            _ => self.realize(horizon, seed).mean(SimTime::ZERO, horizon),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(x: f64) -> SimTime {
        SimTime::from_secs_f64(x)
    }

    #[test]
    fn constant_series() {
        let c = StepSeries::constant(0.5);
        assert_eq!(c.value_at(SimTime::ZERO), 0.5);
        assert_eq!(c.value_at(s(1e6)), 0.5);
        assert!((c.integral(s(0.0), s(10.0)) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn values_are_clamped() {
        let c = StepSeries::constant(3.0);
        assert_eq!(c.value_at(SimTime::ZERO), 1.0);
        let p = StepSeries::from_points(vec![(SimTime::ZERO, -0.5)]);
        assert_eq!(p.value_at(SimTime::ZERO), 0.0);
    }

    #[test]
    fn step_lookup_is_left_closed() {
        let ss = StepSeries::from_points(vec![(s(0.0), 1.0), (s(10.0), 0.25)]);
        assert_eq!(ss.value_at(s(9.999_999)), 1.0);
        assert_eq!(ss.value_at(s(10.0)), 0.25);
        assert_eq!(ss.value_at(s(11.0)), 0.25);
    }

    #[test]
    fn from_points_sorts_and_backfills_origin() {
        let ss = StepSeries::from_points(vec![(s(5.0), 0.2), (s(2.0), 0.8)]);
        assert_eq!(ss.value_at(SimTime::ZERO), 0.8);
        assert_eq!(ss.value_at(s(3.0)), 0.8);
        assert_eq!(ss.value_at(s(5.0)), 0.2);
    }

    #[test]
    fn integral_across_steps() {
        let ss = StepSeries::from_points(vec![(s(0.0), 1.0), (s(10.0), 0.5)]);
        // [0,20]: 10*1.0 + 10*0.5 = 15
        assert!((ss.integral(s(0.0), s(20.0)) - 15.0).abs() < 1e-9);
        // [5,15]: 5*1.0 + 5*0.5 = 7.5
        assert!((ss.integral(s(5.0), s(15.0)) - 7.5).abs() < 1e-9);
        // Degenerate interval.
        assert_eq!(ss.integral(s(5.0), s(5.0)), 0.0);
    }

    #[test]
    fn time_to_complete_full_availability() {
        let ss = StepSeries::constant(1.0);
        let done = ss.time_to_complete(SimTime::ZERO, 100.0, 10.0).unwrap();
        assert_eq!(done, s(10.0));
    }

    #[test]
    fn time_to_complete_spanning_step() {
        // Full speed for 5 s, then half speed. 100 units at speed 10:
        // 50 done by t=5, remaining 50 at rate 5 takes 10 more seconds.
        let ss = StepSeries::from_points(vec![(s(0.0), 1.0), (s(5.0), 0.5)]);
        let done = ss.time_to_complete(SimTime::ZERO, 100.0, 10.0).unwrap();
        assert_eq!(done, s(15.0));
    }

    #[test]
    fn time_to_complete_waits_out_zero_availability() {
        let ss = StepSeries::from_points(vec![(s(0.0), 0.0), (s(10.0), 1.0)]);
        let done = ss.time_to_complete(SimTime::ZERO, 10.0, 10.0).unwrap();
        assert_eq!(done, s(11.0));
    }

    #[test]
    fn time_to_complete_zero_forever_errors() {
        let ss = StepSeries::constant(0.0);
        assert!(matches!(
            ss.time_to_complete(SimTime::ZERO, 1.0, 1.0),
            Err(SimError::NeverCompletes { .. })
        ));
    }

    #[test]
    fn time_to_complete_rejects_bad_speed() {
        let ss = StepSeries::constant(1.0);
        assert!(ss.time_to_complete(SimTime::ZERO, 1.0, 0.0).is_err());
        assert!(ss.time_to_complete(SimTime::ZERO, 1.0, -1.0).is_err());
    }

    #[test]
    fn time_to_complete_zero_work_is_instant() {
        let ss = StepSeries::constant(0.0);
        assert_eq!(ss.time_to_complete(s(3.0), 0.0, 1.0).unwrap(), s(3.0));
    }

    #[test]
    fn scaled_in_window_scales_only_the_window() {
        let ss = StepSeries::from_points(vec![(s(0.0), 0.8), (s(20.0), 0.4)]);
        let scaled = ss.scaled_in_window(s(5.0), s(25.0), 0.5);
        assert_eq!(scaled.value_at(s(0.0)), 0.8); // before window
        assert_eq!(scaled.value_at(s(10.0)), 0.4); // 0.8 * 0.5
        assert_eq!(scaled.value_at(s(22.0)), 0.2); // 0.4 * 0.5
        assert_eq!(scaled.value_at(s(25.0)), 0.4); // window ends
        assert_eq!(scaled.value_at(s(30.0)), 0.4);
    }

    #[test]
    fn scaled_in_window_handles_interior_windows() {
        let ss = StepSeries::constant(1.0);
        let scaled = ss.scaled_in_window(s(10.0), s(20.0), 0.25);
        assert_eq!(scaled.value_at(s(9.0)), 1.0);
        assert_eq!(scaled.value_at(s(10.0)), 0.25);
        assert_eq!(scaled.value_at(s(19.9)), 0.25);
        assert_eq!(scaled.value_at(s(20.0)), 1.0);
    }

    #[test]
    fn scaled_in_empty_window_is_identity() {
        let ss = StepSeries::from_points(vec![(s(0.0), 0.6), (s(5.0), 0.9)]);
        assert_eq!(ss.scaled_in_window(s(7.0), s(7.0), 0.1), ss);
        assert_eq!(ss.scaled_in_window(s(9.0), s(3.0), 0.1), ss);
    }

    #[test]
    fn scaling_to_zero_blocks_the_window() {
        let ss = StepSeries::constant(1.0);
        let scaled = ss.scaled_in_window(s(2.0), s(4.0), 0.0);
        assert_eq!(scaled.value_at(s(3.0)), 0.0);
        // Work started before the block resumes after it.
        let done = scaled.time_to_complete(SimTime::ZERO, 30.0, 10.0).unwrap();
        assert_eq!(done, s(5.0)); // 2 s + 2 s blocked + 1 s
    }

    #[test]
    fn impositions_compose_multiplicatively() {
        let ss = StepSeries::constant(1.0);
        let layered = ss.with_impositions(&[
            Imposition::new(s(0.0), s(20.0), 0.5),
            Imposition::new(s(10.0), s(30.0), 0.5),
        ]);
        assert_eq!(layered.value_at(s(5.0)), 0.5); // first only
        assert_eq!(layered.value_at(s(15.0)), 0.25); // both overlap
        assert_eq!(layered.value_at(s(25.0)), 0.5); // second only
        assert_eq!(layered.value_at(s(35.0)), 1.0); // neither
    }

    #[test]
    fn with_impositions_matches_sequential_scaling() {
        let ss = StepSeries::from_points(vec![(s(0.0), 0.9), (s(12.0), 0.6), (s(40.0), 0.3)]);
        let imps = [
            Imposition::new(s(5.0), s(25.0), 0.7),
            Imposition::new(s(18.0), s(50.0), 0.4),
            Imposition::new(s(20.0), s(20.0), 0.0), // empty: ignored
        ];
        let batched = ss.with_impositions(&imps);
        let sequential =
            ss.scaled_in_window(s(5.0), s(25.0), 0.7)
                .scaled_in_window(s(18.0), s(50.0), 0.4);
        for t in [0.0, 5.0, 10.0, 18.0, 19.0, 25.0, 39.0, 45.0, 60.0] {
            assert!(
                (batched.value_at(s(t)) - sequential.value_at(s(t))).abs() < 1e-12,
                "mismatch at t={t}: {} vs {}",
                batched.value_at(s(t)),
                sequential.value_at(s(t)),
            );
        }
    }

    #[test]
    fn with_impositions_sweep_matches_per_time_scan_exactly() {
        // Oracle: the pre-simcore implementation — evaluate every
        // change point by filtering the full imposition list. The
        // merged sweep must reproduce it bit for bit.
        fn scan(ss: &StepSeries, imps: &[Imposition]) -> StepSeries {
            let live: Vec<&Imposition> = imps.iter().filter(|i| i.to > i.from).collect();
            let mut times: Vec<SimTime> = ss.points().iter().map(|&(t, _)| t).collect();
            for imp in &live {
                times.push(imp.from);
                times.push(imp.to);
            }
            times.sort_unstable();
            times.dedup();
            StepSeries::from_points(
                times
                    .into_iter()
                    .map(|t| {
                        let combined: f64 = live
                            .iter()
                            .filter(|i| i.active_at(t))
                            .map(|i| i.factor.max(0.0))
                            .product();
                        (t, ss.value_at(t) * combined)
                    })
                    .collect(),
            )
        }
        let ss = StepSeries::from_points(vec![
            (s(0.0), 0.93),
            (s(3.7), 0.41),
            (s(11.2), 0.77),
            (s(29.0), 0.13),
            (s(53.5), 0.88),
        ]);
        // Messy overlap: nested, abutting, duplicated edges, windows
        // starting on base points, negative factor (floored at zero).
        let imps = [
            Imposition::new(s(1.0), s(30.0), 0.71),
            Imposition::new(s(3.7), s(11.2), 0.53),
            Imposition::new(s(5.0), s(5.0), 0.9), // empty: ignored
            Imposition::new(s(11.2), s(29.0), 0.97),
            Imposition::new(s(1.0), s(60.0), 0.83),
            Imposition::new(s(40.0), s(45.0), -0.5),
            Imposition::new(s(45.0), s(55.0), 0.31),
        ];
        assert_eq!(ss.with_impositions(&imps), scan(&ss, &imps));
    }

    #[test]
    fn empty_imposition_set_is_identity() {
        let ss = StepSeries::from_points(vec![(s(0.0), 0.6), (s(5.0), 0.9)]);
        assert_eq!(ss.with_impositions(&[]), ss);
        assert_eq!(
            ss.with_impositions(&[Imposition::new(s(9.0), s(3.0), 0.1)]),
            ss
        );
    }

    #[test]
    fn imposition_negative_factor_floors_at_zero() {
        let ss = StepSeries::constant(0.8);
        let layered = ss.with_impositions(&[Imposition::new(s(1.0), s(2.0), -3.0)]);
        assert_eq!(layered.value_at(s(1.5)), 0.0);
        assert_eq!(layered.value_at(s(2.5)), 0.8);
    }

    #[test]
    fn periodic_realization_alternates() {
        let m = LoadModel::Periodic {
            high: 1.0,
            low: 0.2,
            half_period: s(10.0),
            phase: SimTime::ZERO,
        };
        let ss = m.realize(s(100.0), 0);
        assert_eq!(ss.value_at(s(5.0)), 1.0);
        assert_eq!(ss.value_at(s(15.0)), 0.2);
        assert_eq!(ss.value_at(s(25.0)), 1.0);
    }

    #[test]
    fn periodic_phase_shifts_the_wave() {
        let m = LoadModel::Periodic {
            high: 1.0,
            low: 0.2,
            half_period: s(10.0),
            phase: s(10.0),
        };
        let ss = m.realize(s(100.0), 0);
        // With a half-period phase offset, the wave starts low.
        assert_eq!(ss.value_at(s(5.0)), 0.2);
        assert_eq!(ss.value_at(s(15.0)), 1.0);
    }

    #[test]
    fn random_walk_stays_in_bounds_and_is_deterministic() {
        let m = LoadModel::RandomWalk {
            start: 0.5,
            step: 0.3,
            interval: s(1.0),
            floor: 0.1,
            ceil: 0.9,
        };
        let a = m.realize(s(500.0), 42);
        let b = m.realize(s(500.0), 42);
        assert_eq!(a, b);
        for &(_, v) in a.points() {
            assert!((0.1..=0.9).contains(&v), "walk escaped bounds: {v}");
        }
        let c = m.realize(s(500.0), 43);
        assert_ne!(a, c, "different seeds should differ");
    }

    #[test]
    fn markov_on_off_is_deterministic_and_two_valued() {
        let m = LoadModel::MarkovOnOff {
            idle_avail: 1.0,
            busy_avail: 0.3,
            mean_idle: s(20.0),
            mean_busy: s(10.0),
        };
        let a = m.realize(s(1000.0), 7);
        assert_eq!(a, m.realize(s(1000.0), 7));
        for &(_, v) in a.points() {
            assert!(v == 1.0 || v == 0.3, "unexpected level {v}");
        }
    }

    #[test]
    fn markov_mean_availability_matches_theory() {
        let m = LoadModel::MarkovOnOff {
            idle_avail: 1.0,
            busy_avail: 0.0,
            mean_idle: s(30.0),
            mean_busy: s(10.0),
        };
        let theory = m.mean_availability(s(1.0), 0);
        assert!((theory - 0.75).abs() < 1e-12);
        // Empirical mean over a long horizon should be near the theory.
        let ss = m.realize(s(50_000.0), 11);
        let emp = ss.mean(SimTime::ZERO, s(50_000.0));
        assert!(
            (emp - theory).abs() < 0.05,
            "empirical {emp} vs theoretical {theory}"
        );
    }

    #[test]
    fn sampling_produces_regular_stream() {
        let ss = StepSeries::from_points(vec![(s(0.0), 1.0), (s(5.0), 0.5)]);
        let samples = ss.sample(s(2.0), s(8.0));
        assert_eq!(samples.len(), 5); // t = 0,2,4,6,8
        assert_eq!(samples[0].1, 1.0);
        assert_eq!(samples[3].1, 0.5);
    }

    #[test]
    fn next_change_after_finds_following_point() {
        let ss = StepSeries::from_points(vec![(s(0.0), 1.0), (s(5.0), 0.5), (s(9.0), 0.7)]);
        assert_eq!(ss.next_change_after(SimTime::ZERO), Some(s(5.0)));
        assert_eq!(ss.next_change_after(s(5.0)), Some(s(9.0)));
        assert_eq!(ss.next_change_after(s(9.0)), None);
        assert_eq!(ss.next_change_after(s(4.0)), Some(s(5.0)));
    }

    #[test]
    fn trace_model_replays() {
        let m = LoadModel::Trace(vec![(s(0.0), 0.9), (s(3.0), 0.1)]);
        let ss = m.realize(s(10.0), 0);
        assert_eq!(ss.value_at(s(1.0)), 0.9);
        assert_eq!(ss.value_at(s(4.0)), 0.1);
    }
}
