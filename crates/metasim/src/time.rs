//! Fixed-point simulated time.
//!
//! Simulated time is represented as an integer number of microseconds so
//! that event ordering is exact and platform-independent. Floating-point
//! seconds are used at the boundary for physics-style calculations (work
//! integration, bandwidth), with conversions that always round *up* so a
//! computed completion never lands before the work is actually done.

use std::fmt;
use std::ops::{Add, AddAssign, Sub, SubAssign};

/// A point in simulated time, in microseconds since the start of the
/// simulation.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable time; used as "never".
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Number of microseconds in one second.
    pub const MICROS_PER_SEC: u64 = 1_000_000;

    /// Construct from whole microseconds.
    #[inline]
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Construct from whole milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * Self::MICROS_PER_SEC)
    }

    /// Construct from fractional seconds, rounding up to the next
    /// microsecond. Negative and NaN inputs saturate to zero; `+inf`
    /// saturates to [`SimTime::MAX`].
    pub fn from_secs_f64(s: f64) -> Self {
        // NaN compares false, so NaN also saturates to zero here.
        if s.partial_cmp(&0.0) != Some(std::cmp::Ordering::Greater) {
            return SimTime::ZERO;
        }
        let us = s * Self::MICROS_PER_SEC as f64;
        if us >= u64::MAX as f64 {
            SimTime::MAX
        } else {
            SimTime(us.ceil() as u64)
        }
    }

    /// This time as whole microseconds.
    #[inline]
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// This time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / Self::MICROS_PER_SEC as f64
    }

    /// Saturating subtraction: `self - rhs`, or zero if `rhs > self`.
    #[inline]
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// Checked addition; `None` on overflow.
    #[inline]
    pub fn checked_add(self, rhs: SimTime) -> Option<SimTime> {
        self.0.checked_add(rhs.0).map(SimTime)
    }

    /// The larger of two times.
    #[inline]
    pub fn max(self, rhs: SimTime) -> SimTime {
        if self >= rhs {
            self
        } else {
            rhs
        }
    }

    /// The smaller of two times.
    #[inline]
    pub fn min(self, rhs: SimTime) -> SimTime {
        if self <= rhs {
            self
        } else {
            rhs
        }
    }
}

impl Add for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_add(rhs.0)
                // simlint: allow(panic-in-lib): clock overflow (~58k simulated years) is unrecoverable caller error
                .expect("SimTime addition overflowed"),
        )
    }
}

impl AddAssign for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimTime) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(
            self.0
                .checked_sub(rhs.0)
                // simlint: allow(panic-in-lib): subtracting past t=0 is a caller bug; wrapping would corrupt every later timestamp
                .expect("SimTime subtraction underflowed"),
        )
    }
}

impl SubAssign for SimTime {
    #[inline]
    fn sub_assign(&mut self, rhs: SimTime) {
        *self = *self - rhs;
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}us", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_round_trips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimTime::from_micros(7).as_micros(), 7);
        let t = SimTime::from_secs_f64(1.5);
        assert_eq!(t.as_micros(), 1_500_000);
        assert!((t.as_secs_f64() - 1.5).abs() < 1e-12);
    }

    #[test]
    fn from_secs_f64_rounds_up() {
        // 1 nanosecond of work must still take at least 1 microsecond.
        assert_eq!(SimTime::from_secs_f64(1e-9).as_micros(), 1);
        assert_eq!(SimTime::from_secs_f64(0.000_001_1).as_micros(), 2);
    }

    #[test]
    fn from_secs_f64_saturates_pathological_inputs() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::NAN), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(f64::INFINITY), SimTime::MAX);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_secs(2);
        let b = SimTime::from_secs(1);
        assert_eq!(a + b, SimTime::from_secs(3));
        assert_eq!(a - b, SimTime::from_secs(1));
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    #[should_panic(expected = "underflowed")]
    fn subtraction_underflow_panics() {
        let _ = SimTime::from_secs(1) - SimTime::from_secs(2);
    }

    #[test]
    fn ordering_is_total() {
        let mut ts = vec![
            SimTime::from_secs(3),
            SimTime::ZERO,
            SimTime::from_micros(1),
            SimTime::MAX,
        ];
        ts.sort();
        assert_eq!(
            ts,
            vec![
                SimTime::ZERO,
                SimTime::from_micros(1),
                SimTime::from_secs(3),
                SimTime::MAX
            ]
        );
    }
}
