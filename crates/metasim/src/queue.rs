//! A deterministic event queue.
//!
//! Events are ordered by `(time, sequence)`: ties in simulated time are
//! broken by insertion order, so a simulation replays identically across
//! runs and platforms regardless of payload type.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for Entry<E> {}
impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A priority queue of timestamped events with deterministic tie-breaking.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// An empty queue positioned at time zero.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: SimTime::ZERO,
        }
    }

    /// The time of the most recently popped event (the simulation clock).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedule `payload` at absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is earlier than the current clock — scheduling into
    /// the past is always a logic error in a discrete-event simulation.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        // simlint: allow(panic-in-lib): documented `# Panics`: scheduling into the past is a simulator logic bug
        assert!(
            at >= self.now,
            "scheduled event at {:?} before current time {:?}",
            at,
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
    }

    /// Pop the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            debug_assert!(e.time >= self.now, "event queue went backwards");
            self.now = e.time;
            (e.time, e.payload)
        })
    }

    /// Peek at the timestamp of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(3), "c");
        q.schedule(SimTime::from_secs(1), "a");
        q.schedule(SimTime::from_secs(2), "b");
        let order: Vec<&str> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        let t = SimTime::from_secs(1);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| q.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_secs(5));
    }

    #[test]
    #[should_panic(expected = "before current time")]
    fn scheduling_into_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(5), ());
        q.pop();
        q.schedule(SimTime::from_secs(1), ());
    }

    #[test]
    fn peek_does_not_advance_clock() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_secs(2), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
