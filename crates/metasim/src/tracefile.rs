//! Parsing externally recorded load traces.
//!
//! The paper's environment was driven by *real* contention; when a
//! user has measured availability traces (e.g. from `vmstat`/`uptime`
//! archives or an actual NWS deployment), [`parse_trace`] turns them
//! into [`LoadModel::Trace`] inputs so experiments replay recorded
//! conditions instead of synthetic generators.
//!
//! The format is deliberately minimal: one `time,value` pair per line,
//! time in seconds (fractional allowed), value the availability in
//! `[0, 1]`. Blank lines and `#` comments are ignored.

use crate::error::SimError;
use crate::load::LoadModel;
use crate::time::SimTime;

/// Parse a `time,value` trace into points for [`LoadModel::Trace`].
///
/// Returns an error naming the offending line on malformed input.
/// Times must be non-decreasing; duplicate times keep the last value
/// (same semantics as [`crate::load::StepSeries::from_points`]).
pub fn parse_trace(text: &str) -> Result<Vec<(SimTime, f64)>, SimError> {
    let mut out = Vec::new();
    let mut last_t: Option<f64> = None;
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.splitn(2, ',');
        let t_str = parts.next().unwrap_or("").trim();
        let v_str = parts
            .next()
            .ok_or_else(|| SimError::Invalid(format!("line {}: missing comma", lineno + 1)))?
            .trim();
        let t: f64 = t_str
            .parse()
            .map_err(|_| SimError::Invalid(format!("line {}: bad time {t_str:?}", lineno + 1)))?;
        let v: f64 = v_str
            .parse()
            .map_err(|_| SimError::Invalid(format!("line {}: bad value {v_str:?}", lineno + 1)))?;
        if !(0.0..=1.0).contains(&v) {
            return Err(SimError::Invalid(format!(
                "line {}: availability {v} outside [0, 1]",
                lineno + 1
            )));
        }
        if t < 0.0 || !t.is_finite() {
            return Err(SimError::Invalid(format!(
                "line {}: time {t} must be finite and non-negative",
                lineno + 1
            )));
        }
        if let Some(prev) = last_t {
            if t < prev {
                return Err(SimError::Invalid(format!(
                    "line {}: time {t} goes backwards (previous {prev})",
                    lineno + 1
                )));
            }
        }
        last_t = Some(t);
        out.push((SimTime::from_secs_f64(t), v));
    }
    if out.is_empty() {
        return Err(SimError::Invalid("trace contains no samples".into()));
    }
    Ok(out)
}

/// Parse a trace directly into a [`LoadModel`].
pub fn load_model_from_trace(text: &str) -> Result<LoadModel, SimError> {
    Ok(LoadModel::Trace(parse_trace(text)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_simple_trace() {
        let pts = parse_trace("0,1.0\n10,0.5\n20.5,0.25\n").unwrap();
        assert_eq!(pts.len(), 3);
        assert_eq!(pts[0], (SimTime::ZERO, 1.0));
        assert_eq!(pts[2].0, SimTime::from_secs_f64(20.5));
    }

    #[test]
    fn skips_comments_and_blanks() {
        let pts = parse_trace("# header\n\n0, 0.9\n# mid\n5, 0.4\n").unwrap();
        assert_eq!(pts.len(), 2);
    }

    #[test]
    fn rejects_missing_comma() {
        let err = parse_trace("0 1.0").unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn rejects_bad_numbers() {
        assert!(parse_trace("x,0.5").is_err());
        assert!(parse_trace("0,abc").is_err());
    }

    #[test]
    fn rejects_out_of_range_values() {
        assert!(parse_trace("0,1.5").is_err());
        assert!(parse_trace("0,-0.1").is_err());
    }

    #[test]
    fn rejects_backwards_time() {
        let err = parse_trace("0,0.5\n10,0.5\n5,0.5").unwrap_err();
        assert!(err.to_string().contains("backwards"));
    }

    #[test]
    fn rejects_empty_trace() {
        assert!(parse_trace("# nothing\n").is_err());
    }

    #[test]
    fn model_round_trips_through_realization() {
        let model = load_model_from_trace("0,0.8\n100,0.2\n").unwrap();
        let ss = model.realize(SimTime::from_secs(1000), 0);
        assert_eq!(ss.value_at(SimTime::from_secs(50)), 0.8);
        assert_eq!(ss.value_at(SimTime::from_secs(150)), 0.2);
    }

    #[test]
    fn duplicate_times_keep_last_value() {
        let model = load_model_from_trace("0,0.8\n10,0.5\n10,0.3\n").unwrap();
        let ss = model.realize(SimTime::from_secs(100), 0);
        assert_eq!(ss.value_at(SimTime::from_secs(10)), 0.3);
    }
}
